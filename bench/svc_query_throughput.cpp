// Service-layer throughput: the svc::QueryEngine query path, cold vs.
// warm vs. contended, against the uncached profile-then-coordinate path.
//
// What this harness must show (ISSUE 1 acceptance):
//  * a warm-cache frontier query is >= 10x faster than re-running the
//    uncached profile/sweep path per request — in practice the gap is
//    orders of magnitude, because a frontier is a full allocation sweep
//    per grid budget while a warm hit is a hash plus a list splice;
//  * under thread contention the engine keeps serving (and stays
//    race-free under the `tsan` CMake preset);
//  * single-flight coalescing keeps the compute count at the number of
//    distinct descriptors, not the number of requests.
// The bare profile+coord path is also timed, for context: the simulator's
// critical-power profile is itself closed-form cheap (five pinned node
// evaluations), so on that path the cache buys coalescing and stats, not
// wall clock — on real hardware each pinned run is a timed application
// execution and the cached path wins there too.
// The process exits non-zero when the 10x bar is missed, so the smoke
// test gates on it.
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Distinct descriptors: both CPU platforms x the suite x light numeric
/// perturbations (each perturbation is a different application profile,
/// hence a different cache key).
[[nodiscard]] std::vector<svc::CpuQuery> build_corpus(int variants_per_wl) {
  std::vector<svc::CpuQuery> corpus;
  const std::vector<hw::CpuMachine> machines{hw::ivybridge_node(),
                                             hw::haswell_node()};
  const auto suite = workload::cpu_suite();
  for (const auto& machine : machines) {
    for (const auto& wl : suite) {
      for (int v = 0; v < variants_per_wl; ++v) {
        workload::Workload w = wl;
        w.name += "#" + std::to_string(v);
        for (auto& ph : w.phases) {
          ph.bytes_per_unit *= 1.0 + 0.05 * static_cast<double>(v);
        }
        for (const double b : {150.0, 190.0, 230.0, 270.0}) {
          corpus.push_back({machine, w, Watts{b},
                            core::CpuCoordVariant::kProportional});
        }
      }
    }
  }
  return corpus;
}

/// The path a node manager without the service layer runs per request.
[[nodiscard]] double time_uncached(const std::vector<svc::CpuQuery>& queries,
                                   double* checksum) {
  const auto t0 = Clock::now();
  for (const auto& q : queries) {
    const sim::CpuNodeSim node(q.machine, q.wl);
    const auto profile = core::profile_critical_powers(node);
    *checksum += core::coord_cpu(profile, q.budget, q.variant).cpu.value();
  }
  return ms_since(t0);
}

[[nodiscard]] double time_engine(svc::QueryEngine& engine,
                                 const std::vector<svc::CpuQuery>& queries,
                                 double* checksum) {
  const auto t0 = Clock::now();
  for (const auto& q : queries) {
    *checksum += engine.query_cpu(q.machine, q.wl, q.budget, q.variant)
                     .cpu.value();
  }
  return ms_since(t0);
}

void print_stats(const svc::EngineStats& s) {
  TableWriter t({"queries", "hits", "misses", "coalesced", "computes",
                 "evictions", "hit_rate", "p50_us", "p99_us"});
  t.add_row({std::to_string(s.queries), std::to_string(s.hits),
             std::to_string(s.misses), std::to_string(s.coalesced),
             std::to_string(s.computes), std::to_string(s.evictions),
             TableWriter::num(s.hit_rate(), 3), TableWriter::num(s.p50_us, 2),
             TableWriter::num(s.p99_us, 2)});
  t.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"seed"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --seed=N)\n";
    return 2;
  }
  // Base seed for the contended clients' request streams; each thread
  // derives its own stream, so runs reproduce per (seed, thread count).
  const auto seed = static_cast<std::uint64_t>(args.value_num("seed", 42.0));
  bench::print_header("svc throughput",
                      "coordination query engine: cold / warm / contended");
  // Under TSan everything is ~10x slower; shrink the corpus so the smoke
  // test stays fast while the ratio check (relative) is unaffected.
#if defined(__SANITIZE_THREAD__)
  const int variants = 1;
  const int contended_threads = 4;
  const int contended_iters = 2000;
#else
  const int variants = 4;
  const int contended_threads = 8;
  const int contended_iters = 20000;
#endif
  const auto corpus = build_corpus(variants);
  std::size_t unique_pairs = corpus.size() / 4;  // 4 budgets per descriptor
  std::cout << corpus.size() << " queries over " << unique_pairs
            << " distinct (machine, workload) descriptors\n";

  double sink = 0.0;

  // --- Baseline: profile per request, no caching. ---
  bench::print_section("uncached profile+coord per request");
  const double uncached_ms = time_uncached(corpus, &sink);
  const double uncached_us_per_q =
      1e3 * uncached_ms / static_cast<double>(corpus.size());
  std::cout << TableWriter::num(uncached_ms, 1) << " ms total, "
            << TableWriter::num(uncached_us_per_q, 2) << " us/query\n";

  // --- Cold: every descriptor misses once. ---
  bench::print_section("engine, cold cache");
  svc::QueryEngine engine;
  const double cold_ms = time_engine(engine, corpus, &sink);
  std::cout << TableWriter::num(cold_ms, 1) << " ms total, "
            << TableWriter::num(
                   1e3 * cold_ms / static_cast<double>(corpus.size()), 2)
            << " us/query\n";
  print_stats(engine.stats());

  // --- Warm: pure hit path. ---
  bench::print_section("engine, warm cache");
  double warm_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    warm_ms = std::min(warm_ms, time_engine(engine, corpus, &sink));
  }
  const double warm_us_per_q =
      1e3 * warm_ms / static_cast<double>(corpus.size());
  std::cout << TableWriter::num(warm_ms, 2) << " ms total (best of 3), "
            << TableWriter::num(warm_us_per_q, 2) << " us/query\n";

  // --- Batched submission. ---
  bench::print_section("engine, warm batch API");
  const auto tb = Clock::now();
  const auto answers = engine.query_cpu_batch(corpus);
  const double batch_ms = ms_since(tb);
  sink += answers.back().cpu.value();
  std::cout << TableWriter::num(batch_ms, 2) << " ms total, "
            << TableWriter::num(
                   1e3 * batch_ms / static_cast<double>(corpus.size()), 2)
            << " us/query\n";

  // --- Frontier: the expensive planning-path call, where the cache is
  // the difference between a sweep and a lookup. ---
  bench::print_section("frontier: uncached sweep vs warm cache");
#if defined(__SANITIZE_THREAD__)
  const std::size_t frontier_pairs = 2;
  const int frontier_warm_reps = 200;
#else
  const std::size_t frontier_pairs = 6;
  const int frontier_warm_reps = 2000;
#endif
  const auto grid = sim::budget_grid(Watts{150.0}, Watts{270.0}, Watts{40.0});
  const sim::CpuSweepOptions sweep_opt{};
  std::vector<svc::CpuQuery> planning;
  for (std::size_t i = 0; i < corpus.size() && planning.size() < frontier_pairs;
       i += 4) {  // one entry per descriptor (4 budgets each)
    planning.push_back(corpus[i]);
  }

  const auto tf0 = Clock::now();
  for (const auto& q : planning) {
    const sim::CpuNodeSim node(q.machine, q.wl);
    const auto frontier = core::perf_frontier_cpu(node, grid, sweep_opt);
    sink += frontier.back().perf_max;
  }
  const double frontier_uncached_ms = ms_since(tf0);
  const double frontier_uncached_us =
      1e3 * frontier_uncached_ms / static_cast<double>(planning.size());
  std::cout << "uncached: " << TableWriter::num(frontier_uncached_ms, 1)
            << " ms for " << planning.size() << " frontiers, "
            << TableWriter::num(frontier_uncached_us, 0) << " us/request\n";

  for (const auto& q : planning) {  // prime the frontier cache
    sink += engine.cpu_frontier(q.machine, q.wl, grid, sweep_opt)
                ->back().perf_max;
  }
  const auto tf1 = Clock::now();
  for (int rep = 0; rep < frontier_warm_reps; ++rep) {
    const auto& q = planning[static_cast<std::size_t>(rep) % planning.size()];
    sink += engine.cpu_frontier(q.machine, q.wl, grid, sweep_opt)
                ->back().perf_max;
  }
  const double frontier_warm_us =
      1e3 * ms_since(tf1) / static_cast<double>(frontier_warm_reps);
  std::cout << "warm:     " << TableWriter::num(frontier_warm_us, 2)
            << " us/request over " << frontier_warm_reps << " requests\n";

  // --- Contended: fresh engine, every thread replays the corpus. ---
  bench::print_section("engine, contended (fresh cache, all threads racing)");
  svc::QueryEngine contended;
  const auto tc = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(contended_threads));
    for (int t = 0; t < contended_threads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(seed, static_cast<std::uint64_t>(t));
        double local = 0.0;
        for (int i = 0; i < contended_iters; ++i) {
          const auto& q = corpus[rng.below(corpus.size())];
          local += contended.query_cpu(q.machine, q.wl, q.budget, q.variant)
                       .cpu.value();
        }
        static std::mutex mu;
        const std::lock_guard lock(mu);
        sink += local;
      });
    }
    for (auto& th : threads) th.join();
  }
  const double contended_ms = ms_since(tc);
  const double total_q =
      static_cast<double>(contended_threads) * contended_iters;
  std::cout << TableWriter::num(contended_ms, 1) << " ms for "
            << static_cast<std::uint64_t>(total_q) << " queries ("
            << TableWriter::num(total_q / contended_ms, 0) << " q/ms)\n";
  const auto cs = contended.stats();
  print_stats(cs);

  // --- Observability: the same numbers, scraped the way an operator
  // would (informational — exercises exposition with metrics compiled
  // in on the perf path). ---
  bench::print_section("metrics exposition (contended engine)");
  const obs::MetricsSnapshot snap = contended.metrics_snapshot();
  const std::string prom = obs::render_prometheus(snap);
  std::cout << "render_prometheus: " << prom.size() << " bytes, "
            << snap.metrics.size() << " series; latency histogram count = "
            << snap.counter("pbc_svc_queries_total") << " queries\n";
  std::size_t slow_total = contended.slow_queries().total();
  std::cout << "slow queries over "
            << contended.options().slow_query_us / 1000.0
            << " ms threshold: " << slow_total << "\n";

  // --- The acceptance gates. ---
  bench::print_section("verdict");
  const double frontier_speedup = frontier_uncached_us / frontier_warm_us;
  std::cout << "warm frontier speedup over uncached sweep: "
            << TableWriter::num(frontier_speedup, 0)
            << "x (required: >= 10x)\n";
  std::cout << "warm coord query vs uncached profile+coord: "
            << TableWriter::num(uncached_us_per_q / warm_us_per_q, 2)
            << "x (informational; the sim profile is closed-form cheap)\n";
  const bool coalesced_ok = cs.computes <= unique_pairs;
  std::cout << "contended computes " << cs.computes << " <= " << unique_pairs
            << " distinct descriptors: " << (coalesced_ok ? "yes" : "NO")
            << "\n";
  if (sink == 12345.6789) std::cout << "";  // keep the work observable
  if (frontier_speedup < 10.0 || !coalesced_ok) {
    std::cout << "FAILED\n";
    return 1;
  }
  std::cout << "ok\n";
  return 0;
}
