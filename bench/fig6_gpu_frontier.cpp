// Figure 6 — Upper performance bound vs. power cap for SGEMM and MiniFE on
// the Titan XP and Titan V cards, including the default capping policy.
//
// Paper findings this harness must reproduce:
//  * Titan XP: SGEMM's bound keeps increasing through the whole supported
//    cap range (demand > 300 W); MiniFE's bound flattens once the cap
//    passes its demand (paper: ~180 W; our simulated card lands somewhat
//    higher — see EXPERIMENTS.md);
//  * Titan V: SGEMM's bound flattens near 180 W; MiniFE's bound barely
//    changes over the studied range;
//  * the default Nvidia capping policy fails to reach the maximum on the
//    Titan XP (it pins memory at the nominal clock).
#include "bench_common.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void frontier_for(const hw::GpuMachine& card, const workload::Workload& wl) {
  bench::print_section(wl.name + " on " + card.name);
  const sim::GpuNodeSim node(card, wl);
  const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0}, Watts{12.5});
  const auto frontier = core::perf_frontier_gpu(node, caps);

  TableWriter t({"cap_W", "perf_max", "default_policy", "best_mem_alloc_W",
                 "default_gap"});
  PlotSeries best{"best allocation", {}, {}};
  PlotSeries dflt{"default policy", {}, {}};
  for (const auto& fp : frontier) {
    const double d = node.default_policy(fp.budget).perf;
    t.add_row({TableWriter::num(fp.budget.value(), 1),
               TableWriter::num(fp.perf_max, 1), TableWriter::num(d, 1),
               TableWriter::num(fp.best_mem_cap.value(), 1),
               TableWriter::num(100.0 * (1.0 - d / fp.perf_max), 1) + "%"});
    best.x.push_back(fp.budget.value());
    best.y.push_back(fp.perf_max);
    dflt.x.push_back(fp.budget.value());
    dflt.y.push_back(d);
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = wl.name + " perf_max vs cap — " + card.name;
  opt.x_label = "board power cap (W)";
  std::cout << render_plot({best, dflt}, opt);

  const Watts sat = core::saturation_budget(frontier);
  std::cout << "bound stops growing at: "
            << TableWriter::num(sat.value(), 0) << " W; uncapped demand: "
            << TableWriter::num(node.uncapped_board_power().value(), 1)
            << " W\n";
}

}  // namespace

int main() {
  bench::print_header("Figure 6",
                      "GPU perf_max vs power cap (SGEMM, MiniFE on both cards)");
  for (const auto& make : {hw::titan_xp, hw::titan_v}) {
    const auto card = make();
    frontier_for(card, workload::sgemm());
    frontier_for(card, workload::minife());
  }
  return 0;
}
