// Extensions — the paper's stated future work, implemented and measured:
//
//  §5  "online dynamic power budgeting and distribution": per-phase power
//      shifting (core/dynamic.hpp) vs. the static COORD split and the best
//      static split, on phase-heterogeneous workloads;
//  §8  "multi-task and multi-tenant systems": two jobs co-scheduled on one
//      power-bounded node (sim/shared_node.hpp + core/cotune.hpp), scored
//      by system throughput (STP) against solo runs.
#include "bench_common.hpp"
#include "core/cluster_sim.hpp"
#include "core/coord.hpp"
#include "core/cotune.hpp"
#include "core/critical.hpp"
#include "core/dynamic.hpp"
#include "core/hybrid.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void dynamic_shifting() {
  bench::print_section(
      "online power shifting vs static splits (per-phase adaptation)");
  const auto machine = hw::ivybridge_node();
  TableWriter t({"benchmark", "budget_W", "static_COORD", "best_static",
                 "dynamic", "dyn/best_static", "shifts"});
  for (const char* name : {"FT", "BT", "LU"}) {
    const auto wl = workload::cpu_benchmark(name).value();
    const sim::CpuNodeSim node(machine, wl);
    const auto trace = workload::generate_trace(wl, {400.0, 2.0, 0.6, 17});
    const auto profile = core::profile_critical_powers(node);
    for (double b : {150.0, 170.0, 190.0, 220.0}) {
      const auto alloc = core::coord_cpu(profile, Watts{b});
      if (alloc.status == core::CoordStatus::kBudgetTooSmall) continue;
      const auto fixed =
          sim::replay_trace(node, trace, alloc.cpu, alloc.mem);
      double best_static = 0.0;
      for (double m = 68.0; m <= b - 48.0; m += 4.0) {
        best_static = std::max(
            best_static,
            sim::replay_trace(node, trace, Watts{b - m}, Watts{m})
                .aggregate.perf);
      }
      const auto dyn = core::replay_with_shifting(node, trace, Watts{b});
      t.add_row({name, TableWriter::num(b, 0),
                 TableWriter::num(fixed.aggregate.perf, 1),
                 TableWriter::num(best_static, 1),
                 TableWriter::num(dyn.replay.aggregate.perf, 1),
                 TableWriter::num(dyn.replay.aggregate.perf / best_static,
                                  3),
                 std::to_string(dyn.shifts)});
    }
  }
  t.render(std::cout);
  std::cout << "(per-phase shifting beats even the best *static* split "
               "whenever the phases want different balances — the paper's "
               "motivation for adaptive in-application scheduling)\n";
}

void coscheduling() {
  bench::print_section("multi-tenant co-scheduling under one node budget");
  const auto machine = hw::ivybridge_node();
  TableWriter t({"pair", "budget_W", "cores", "cpu/mem_W", "perf_a",
                 "perf_b", "STP"});
  const std::vector<std::pair<workload::Workload, workload::Workload>> pairs{
      {workload::dgemm(), workload::stream_cpu()},
      {workload::npb_ep(), workload::npb_mg()},
      {workload::stream_cpu(), workload::stream_cpu()},
      {workload::sra(), workload::npb_bt()},
  };
  for (const auto& [a, b] : pairs) {
    for (double budget : {200.0, 240.0}) {
      const auto r = core::cotune_pair(machine, a, b, Watts{budget});
      t.add_row({a.name + "+" + b.name, TableWriter::num(budget, 0),
                 std::to_string(r.cores_a) + "/" + std::to_string(r.cores_b),
                 TableWriter::num(r.cpu_cap.value(), 0) + "/" +
                     TableWriter::num(r.mem_cap.value(), 0),
                 TableWriter::num(r.perf_a, 1), TableWriter::num(r.perf_b, 1),
                 TableWriter::num(r.stp, 2)});
    }
  }
  t.render(std::cout);
  std::cout << "(complementary pairs — compute + bandwidth — co-run near "
               "their solo speeds; two bandwidth hogs halve each other)\n";
}

void hybrid_nodes() {
  bench::print_section(
      "hybrid CPU+GPU node coordination (three components, one budget)");
  const core::HybridNode node{hw::ivybridge_node(), hw::titan_xp(),
                              workload::npb_sp(), workload::minife()};
  TableWriter t({"node_budget_W", "host_cpu/mem_W", "gpu_cap_W",
                 "host_perf", "gpu_perf", "utility", "oracle_utility",
                 "ratio", "status"});
  for (double b : {300.0, 350.0, 400.0, 450.0, 520.0}) {
    const auto c = core::coord_hybrid(node, Watts{b});
    const auto o = core::hybrid_oracle(node, Watts{b}, Watts{12.0});
    t.add_row({TableWriter::num(b, 0),
               TableWriter::num(c.host.cpu.value(), 0) + "/" +
                   TableWriter::num(c.host.mem.value(), 0),
               TableWriter::num(c.gpu_cap.value(), 0),
               TableWriter::num(c.host_perf, 1),
               TableWriter::num(c.gpu_perf, 1),
               TableWriter::num(c.utility, 3), TableWriter::num(o.utility, 3),
               TableWriter::num(c.utility / o.utility, 3),
               to_string(c.status)});
  }
  t.render(std::cout);
  std::cout << "(hierarchical COORD tracks the two-level sweep oracle once "
               "the budget clears the combined productive band)\n";
}

void cluster_over_time() {
  bench::print_section(
      "power-bounded cluster over time (event simulation, FIFO + "
      "admission control)");
  const std::vector<core::SimJob> jobs{
      {"dgemm-a", workload::dgemm(), Seconds{0.0}, 40000.0},
      {"stream-a", workload::stream_cpu(), Seconds{5.0}, 800.0},
      {"mg-a", workload::npb_mg(), Seconds{10.0}, 12000.0},
      {"sra-a", workload::sra(), Seconds{15.0}, 80.0},
      {"bt-a", workload::npb_bt(), Seconds{20.0}, 20000.0},
      {"cg-a", workload::npb_cg(), Seconds{120.0}, 5000.0},
      {"ft-a", workload::npb_ft(), Seconds{130.0}, 9000.0},
      {"dgemm-b", workload::dgemm(), Seconds{140.0}, 40000.0},
  };
  TableWriter t({"global_W", "policy", "makespan_s", "mean_wait_s",
                 "work/kJ"});
  for (double budget : {400.0, 600.0, 900.0}) {
    for (const auto policy :
         {core::SplitPolicy::kCoord, core::SplitPolicy::kEvenSplit}) {
      core::ClusterSimConfig cfg;
      cfg.nodes = 4;
      cfg.global_budget = Watts{budget};
      cfg.policy = policy;
      const auto run = simulate_cluster(hw::ivybridge_node(), jobs, cfg);
      t.add_row({TableWriter::num(budget, 0),
                 policy == core::SplitPolicy::kCoord ? "COORD" : "even-split",
                 TableWriter::num(run.makespan.value(), 1),
                 TableWriter::num(run.mean_wait.value(), 1),
                 TableWriter::num(1000.0 * run.work_per_joule, 2)});
    }
  }
  t.render(std::cout);
  std::cout << "(per-node coordination compounds at cluster scale: shorter "
               "makespans and more work per joule, most visibly when power "
               "is scarce)\n";

  bench::print_section("heterogeneous cluster: 4 CPU nodes + 2 Titan XPs");
  std::vector<core::SimJob> hetero = jobs;
  hetero.push_back({"sgemm-g", workload::sgemm(), Seconds{2.0}, 2.0e6});
  hetero.push_back({"minife-g", workload::minife(), Seconds{8.0}, 40000.0});
  TableWriter t2({"global_W", "queue", "makespan_s", "mean_wait_s"});
  for (double budget : {700.0, 1100.0}) {
    for (const auto queue_policy :
         {core::QueuePolicy::kFifo, core::QueuePolicy::kBackfill}) {
      core::ClusterSimConfig cfg;
      cfg.nodes = 4;
      cfg.gpu_nodes = 2;
      cfg.global_budget = Watts{budget};
      cfg.queue_policy = queue_policy;
      const auto run = simulate_cluster(hw::ivybridge_node(), hw::titan_xp(),
                                        hetero, cfg);
      t2.add_row({TableWriter::num(budget, 0),
                  queue_policy == core::QueuePolicy::kFifo ? "FIFO"
                                                           : "backfill",
                  TableWriter::num(run.makespan.value(), 1),
                  TableWriter::num(run.mean_wait.value(), 1)});
    }
  }
  t2.render(std::cout);
  std::cout << "(CPU and GPU jobs draw from one power pool; backfill lets "
               "jobs of either domain slip past a power-starved head)\n";
}

}  // namespace

int main() {
  bench::print_header("Extensions",
                      "paper future work: dynamic shifting, multi-tenancy, "
                      "hybrid nodes, cluster over time");
  dynamic_shifting();
  coscheduling();
  hybrid_nodes();
  cluster_over_time();
  return 0;
}
