// Research question 4 (§2.1): "What ranges of P_b are acceptable regarding
// achievable performance and power efficiency?" — the budget-planning
// table a higher-level power scheduler consumes, derived per benchmark
// from the perf_max frontier and its efficiency curve.
//
// Paper guidance this harness instantiates (§3.1 insights):
//  * budgets below the productive threshold should be rejected or
//    reclaimed;
//  * over-budgeting beyond saturation wastes power — return the surplus;
//  * schedulers should differentiate between applications: the acceptable
//    ranges are strongly workload-dependent.
#include "bench_common.hpp"
#include "core/budget_plan.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

int main() {
  bench::print_header("RQ4", "acceptable budget ranges per benchmark");

  for (const auto& machine : {hw::ivybridge_node(), hw::haswell_node()}) {
    bench::print_section(machine.name);
    TableWriter t({"benchmark", "reject_below_W", "efficient_at_W",
                   "diminishing_at_W", "saturation_at_W", "peak_perf",
                   "perf/W_at_efficient"});
    for (const auto& wl : workload::cpu_suite()) {
      const sim::CpuNodeSim node(machine, wl);
      const auto plan = core::plan_budget(node);
      t.add_row({wl.name, TableWriter::num(plan.reject_below.value(), 0),
                 TableWriter::num(plan.efficient_at.value(), 0),
                 TableWriter::num(plan.diminishing_at.value(), 0),
                 TableWriter::num(plan.saturation_at.value(), 0),
                 TableWriter::num(plan.peak_perf, 1),
                 TableWriter::num(plan.peak_efficiency, 3)});
    }
    t.render(std::cout);
  }
  std::cout << "\n(budgets below reject_below run in categories IV-VI only; "
               "budgets past saturation_at are pure surplus to reclaim — "
               "the paper's §3.1 scheduling insights as a lookup table)\n";
  return 0;
}
