// Figure 4 — The patterns of the performance impact of cross-component
// allocations across total budgets, for (a) star RandomAccess and
// (b) EP-DGEMM on the IvyBridge node.
//
// Paper findings this harness must reproduce:
//  * the general pattern looks similar across budgets, but the number of
//    categories and each scenario's span shrink as the budget shrinks;
//  * scenario I disappears once P_b drops below the sum of the component
//    demands; II and III shrink next — exactly the scenarios that deliver
//    high performance;
//  * the optimal split moves to scenario intersections at smaller budgets.
#include "bench_common.hpp"
#include "core/categorize.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

namespace {

void patterns_for(const workload::Workload& wl) {
  bench::print_section(wl.name + " on IvyBridge");
  const auto machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, wl);

  std::vector<PlotSeries> series;
  TableWriter t({"budget_W", "categories", "spans", "perf_max", "best_mem_W"});
  for (double b : {144.0, 176.0, 208.0, 240.0, 272.0}) {
    sim::BudgetSweep sweep;
    sweep.budget = Watts{b};
    sweep.samples = sim::sweep_cpu_split(
        node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    const auto spans = core::category_spans_cpu(sweep, machine);
    std::string cats;
    for (const auto c : core::categories_present(spans)) {
      if (!cats.empty()) cats += ',';
      cats += core::to_string(c);
    }
    const auto* best = sweep.best();
    t.add_row({TableWriter::num(b, 0), cats, core::format_spans(spans),
               TableWriter::num(best->perf, 2),
               TableWriter::num(best->mem_cap.value(), 0)});

    PlotSeries s{std::to_string(static_cast<int>(b)) + "W", {}, {}};
    for (const auto& x : sweep.samples) {
      s.x.push_back(x.mem_cap.value());
      s.y.push_back(x.perf);
    }
    series.push_back(std::move(s));
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = wl.name + ": perf vs memory allocation, one curve per budget";
  opt.x_label = "memory power allocation (W)";
  std::cout << render_plot(series, opt);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4", "Allocation patterns across budgets (SRA and EP-DGEMM)");
  patterns_for(workload::sra());
  patterns_for(workload::dgemm());
  std::cout << "\n(paper: scenario I disappears below the application's max "
               "power demand;\n the spans of II/III shrink next — the "
               "high-performance scenarios vanish first)\n";
  return 0;
}
