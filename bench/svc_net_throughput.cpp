// pbcd loopback throughput: the full network serving path — framed
// binary requests over real TCP sockets into the sharded daemon and
// back — measured closed-loop with pipelining, plus the overload story.
//
// Two phases, two gates (ISSUE 10 acceptance):
//  * throughput: N client threads pipeline a warm closed-form request
//    mix (CPU + GPU coordination queries) against an in-process daemon;
//    the gate holds >= --min-rps requests/second with the per-request
//    p99 (send to matching response, queueing included) <= --max-p99-ms.
//  * overload: a fresh daemon capped at an admission rate R is offered
//    2x R split asymmetrically across two clients (one ~1.7x more
//    aggressive than the other). The shedder must keep the ACCEPTED p99
//    inside the same latency bound and hold the two clients' accept
//    counts within 10% of each other — FastCap-style fair degradation:
//    how aggressively you offer load must not buy you a larger share.
//
// Modes:
//   * default: human-readable tables, no gating.
//   * --json[=path] (default BENCH_svc_net.json): the CI perf record.
//     Exits non-zero when either gate fails. --smoke shrinks the run
//     for sanitizer ctest (gates are disabled there via --min-rps=0
//     --max-p99-ms=1e9; throughput under TSan means nothing).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hw/platforms.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/request.hpp"
#include "util/cli.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double s_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Warm closed-form request mix: every CPU suite workload on both CPU
/// platforms at four budgets, plus the GPU suite at three caps — all
/// cache hits after one priming pass, so the measurement is the wire +
/// daemon serving path, not solver time.
[[nodiscard]] std::vector<svc::Request> build_corpus() {
  std::vector<svc::Request> corpus;
  std::uint64_t id = 1;
  const std::vector<hw::CpuMachine> cpus{hw::ivybridge_node(),
                                         hw::haswell_node()};
  for (const auto& machine : cpus) {
    for (const auto& wl : workload::cpu_suite()) {
      for (const double b : {150.0, 190.0, 230.0, 270.0}) {
        svc::Request req;
        req.id = id++;
        req.op = svc::QueryCpuOp{machine, wl, Watts{b},
                                 core::CpuCoordVariant::kProportional};
        corpus.push_back(std::move(req));
      }
    }
  }
  const hw::GpuMachine gpu = hw::titan_xp();
  for (const auto& wl : workload::gpu_suite()) {
    for (const double b : {120.0, 160.0, 200.0}) {
      svc::Request req;
      req.id = id++;
      req.op = svc::QueryGpuOp{gpu, wl, Watts{b}, 0.5};
      corpus.push_back(std::move(req));
    }
  }
  return corpus;
}

struct ClientResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;  ///< transport or unexpected server errors
  std::vector<double> latency_ms;  ///< accepted requests only
};

/// Pipelined closed loop: keep `window` requests in flight, replaying
/// the corpus round-robin. Responses come back in send order, so the
/// front of the send-timestamp queue always matches the next response.
[[nodiscard]] ClientResult run_pipelined_client(
    std::uint16_t port, const std::vector<svc::Request>& corpus,
    std::size_t offset, std::uint64_t n_requests, std::size_t window) {
  ClientResult out;
  auto connected = net::Client::connect("127.0.0.1", port);
  if (!connected.ok()) {
    out.failed = n_requests;
    return out;
  }
  net::Client client = std::move(connected.value());
  out.latency_ms.reserve(n_requests);
  std::deque<Clock::time_point> in_flight;

  const auto receive_one = [&] {
    const auto resp = client.receive();
    const auto t_sent = in_flight.front();
    in_flight.pop_front();
    if (resp.ok()) {
      ++out.ok;
      out.latency_ms.push_back(1e3 * s_since(t_sent));
    } else if (resp.error().code == ErrorCode::kUnavailable) {
      ++out.shed;
    } else {
      ++out.failed;
    }
  };

  for (std::uint64_t i = 0; i < n_requests; ++i) {
    if (in_flight.size() >= window) receive_one();
    const auto& req = corpus[(offset + i) % corpus.size()];
    in_flight.push_back(Clock::now());
    if (!client.send(req).ok()) {
      in_flight.pop_back();
      out.failed += n_requests - i;
      return out;
    }
    ++out.sent;
  }
  while (!in_flight.empty()) receive_one();
  return out;
}

/// Paced open-ish loop for the overload phase: every 1ms tick, send
/// `per_tick` requests then drain their responses, sleeping out the
/// rest of the tick. Shed responses (kUnavailable) are counted, not
/// retried; accepted latencies include the tick's own batching delay.
[[nodiscard]] ClientResult run_paced_client(std::uint16_t port,
                                            const svc::Request& req,
                                            int per_tick, int ticks) {
  ClientResult out;
  auto connected = net::Client::connect("127.0.0.1", port);
  if (!connected.ok()) return out;
  net::Client client = std::move(connected.value());
  out.latency_ms.reserve(static_cast<std::size_t>(per_tick) *
                         static_cast<std::size_t>(ticks));
  const auto t0 = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    std::vector<Clock::time_point> sent_at;
    sent_at.reserve(static_cast<std::size_t>(per_tick));
    for (int k = 0; k < per_tick; ++k) {
      sent_at.push_back(Clock::now());
      if (!client.send(req).ok()) {
        ++out.failed;
        sent_at.pop_back();
      } else {
        ++out.sent;
      }
    }
    for (const auto t_sent : sent_at) {
      const auto resp = client.receive();
      if (resp.ok()) {
        ++out.ok;
        out.latency_ms.push_back(1e3 * s_since(t_sent));
      } else if (resp.error().code == ErrorCode::kUnavailable) {
        ++out.shed;
      } else {
        ++out.failed;
      }
    }
    std::this_thread::sleep_until(t0 + std::chrono::milliseconds(t + 1));
  }
  return out;
}

[[nodiscard]] double percentile_ms(std::vector<double>& ms, double p) {
  if (ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(ms.size() - 1) + 0.5);
  std::nth_element(ms.begin(), ms.begin() + static_cast<std::ptrdiff_t>(idx),
                   ms.end());
  return ms[idx];
}

struct ThroughputRun {
  double wall_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct OverloadRun {
  double admission_rate = 0.0;
  double duration_s = 0.0;
  ClientResult aggressive;
  ClientResult modest;
  std::uint64_t shed_total = 0;
  double client_skew = 1.0;  ///< |accA - accB| / max(accA, accB)
  double accepted_p99_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options(
          {"json", "min-rps", "max-p99-ms", "clients", "requests", "window",
           "smoke"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --json[=FILE] --min-rps=N --max-p99-ms=N "
                 "--clients=N --requests=N --window=N --smoke)\n";
    return 2;
  }
  const bool smoke = args.has("smoke");
  const bool json_mode = args.has("json");
  const std::string json_path =
      args.value("json").value_or("BENCH_svc_net.json");
  const double min_rps = args.value_num("min-rps", 50000.0);
  const double max_p99_ms = args.value_num("max-p99-ms", 5.0);
  const int clients =
      static_cast<int>(args.value_num("clients", smoke ? 2.0 : 4.0));
  const auto n_requests = static_cast<std::uint64_t>(
      args.value_num("requests", smoke ? 2000.0 : 50000.0));
  // Window 8 keeps per-request queueing (clients x window outstanding
  // against one event loop) well inside the p99 bound; deeper pipelines
  // buy ~20% more throughput at 3-4x the tail latency.
  const auto window =
      static_cast<std::size_t>(args.value_num("window", 8.0));

  if (!json_mode) {
    bench::print_header("pbcd loopback throughput",
                        "framed TCP serving path: pipelined clients, "
                        "overload shedding");
  }

  const auto corpus = build_corpus();

  // --- Phase 1: throughput + latency on the open serving path. ---
  net::DaemonOptions dopt;
  dopt.shards = 2;
  net::Daemon daemon(dopt);
  if (const auto st = daemon.start(); !st.ok()) {
    std::cerr << "daemon start failed: " << st.error().to_string() << '\n';
    return 1;
  }
  {
    // Priming pass: one of every distinct request, so every shard's
    // cache is warm before the clock starts.
    auto warm = net::Client::connect("127.0.0.1", daemon.port());
    if (!warm.ok()) {
      std::cerr << "warmup connect failed\n";
      return 1;
    }
    for (const auto& req : corpus) {
      if (!warm.value().call(req).ok()) {
        std::cerr << "warmup request failed\n";
        return 1;
      }
    }
  }

  ThroughputRun tp;
  {
    std::vector<ClientResult> results(static_cast<std::size_t>(clients));
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (std::size_t c = 0; c < results.size(); ++c) {
      threads.emplace_back([&, c] {
        results[c] = run_pipelined_client(
            daemon.port(), corpus, c * 37, n_requests, window);
      });
    }
    for (auto& th : threads) th.join();
    tp.wall_s = s_since(t0);
    std::vector<double> all_ms;
    for (auto& r : results) {
      tp.requests += r.ok;
      tp.failed += r.failed + r.shed;
      all_ms.insert(all_ms.end(), r.latency_ms.begin(), r.latency_ms.end());
    }
    tp.rps = tp.wall_s > 0.0 ? static_cast<double>(tp.requests) / tp.wall_s
                             : 0.0;
    tp.p50_ms = percentile_ms(all_ms, 0.50);
    tp.p99_ms = percentile_ms(all_ms, 0.99);
  }
  daemon.stop();

  // --- Phase 2: 2x overload against a hard admission rate. ---
  // The cap is set far below the serving capacity phase 1 just
  // demonstrated, so what this phase measures is the shedder's policy
  // (fair split, accepted latency), not the socket path's limits.
  OverloadRun ov;
  ov.admission_rate = smoke ? 4000.0 : 20000.0;
  const int ticks = smoke ? 500 : 2000;
  ov.duration_s = ticks * 1e-3;
  {
    net::DaemonOptions oopt;
    oopt.shards = 2;
    oopt.admission.max_rate = ov.admission_rate;
    oopt.admission.min_rate = std::min(2000.0, ov.admission_rate / 2.0);
    net::Daemon shed_daemon(oopt);
    if (const auto st = shed_daemon.start(); !st.ok()) {
      std::cerr << "overload daemon start failed: "
                << st.error().to_string() << '\n';
      return 1;
    }
    // Offered load 2x the cap, split 1.25R : 0.75R — both clients over
    // their R/2 fair share, the aggressive one by 2.5x.
    const int per_tick_a =
        static_cast<int>(std::lround(1.25 * ov.admission_rate / 1000.0));
    const int per_tick_b =
        static_cast<int>(std::lround(0.75 * ov.admission_rate / 1000.0));
    const svc::Request& req = corpus.front();
    {
      auto warm = net::Client::connect("127.0.0.1", shed_daemon.port());
      if (warm.ok()) (void)warm.value().call(req);
    }
    std::thread ta([&] {
      ov.aggressive =
          run_paced_client(shed_daemon.port(), req, per_tick_a, ticks);
    });
    std::thread tb([&] {
      ov.modest =
          run_paced_client(shed_daemon.port(), req, per_tick_b, ticks);
    });
    ta.join();
    tb.join();
    shed_daemon.stop();
  }
  ov.shed_total = ov.aggressive.shed + ov.modest.shed;
  const auto acc_a = ov.aggressive.ok;
  const auto acc_b = ov.modest.ok;
  ov.client_skew =
      std::max(acc_a, acc_b) > 0
          ? static_cast<double>(
                acc_a > acc_b ? acc_a - acc_b : acc_b - acc_a) /
                static_cast<double>(std::max(acc_a, acc_b))
          : 1.0;
  {
    std::vector<double> acc_ms;
    acc_ms.reserve(ov.aggressive.latency_ms.size() +
                   ov.modest.latency_ms.size());
    acc_ms.insert(acc_ms.end(), ov.aggressive.latency_ms.begin(),
                  ov.aggressive.latency_ms.end());
    acc_ms.insert(acc_ms.end(), ov.modest.latency_ms.begin(),
                  ov.modest.latency_ms.end());
    ov.accepted_p99_ms = percentile_ms(acc_ms, 0.99);
  }

  // --- Gates. Under sanitizers the speed-shaped checks (req/s floor,
  // p99 bounds, the fairness skew — which needs the paced clients to
  // actually hold their offered rates) are exercise-only: a 10x+
  // slowdown turns them into noise. The correctness checks (no
  // transport/server errors, shedding actually engaged) stay armed.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr bool sanitized = true;
#else
  constexpr bool sanitized = false;
#endif
  const bool tp_pass =
      tp.failed == 0 &&
      (sanitized || (tp.rps + 1e-9 >= min_rps && tp.p99_ms <= max_p99_ms));
  const bool ov_pass =
      ov.aggressive.failed == 0 && ov.modest.failed == 0 &&
      ov.shed_total > 0 &&
      (sanitized ||
       (ov.client_skew <= 0.10 && ov.accepted_p99_ms <= max_p99_ms));

  if (!json_mode) {
    bench::print_section("throughput (pipelined, warm mix)");
    TableWriter t({"clients", "window", "requests", "wall_s", "req_per_s",
                   "p50_ms", "p99_ms"});
    t.add_row({std::to_string(clients), std::to_string(window),
               std::to_string(tp.requests), TableWriter::num(tp.wall_s, 3),
               TableWriter::num(tp.rps, 0), TableWriter::num(tp.p50_ms, 3),
               TableWriter::num(tp.p99_ms, 3)});
    t.render(std::cout);

    bench::print_section("2x overload vs admission cap");
    TableWriter o({"client", "offered", "accepted", "shed", "accept_rate"});
    const auto row = [&](const char* name, const ClientResult& r) {
      o.add_row({name, std::to_string(r.sent), std::to_string(r.ok),
                 std::to_string(r.shed),
                 TableWriter::num(static_cast<double>(r.ok) / ov.duration_s,
                                  0)});
    };
    row("aggressive", ov.aggressive);
    row("modest", ov.modest);
    o.render(std::cout);
    std::cout << "admission cap " << TableWriter::num(ov.admission_rate, 0)
              << " req/s; accept skew "
              << TableWriter::num(100.0 * ov.client_skew, 1)
              << "% (fair-split bound: 10%); accepted p99 "
              << TableWriter::num(ov.accepted_p99_ms, 3) << " ms\n";
    std::cout << "\nthroughput " << (tp_pass ? "ok" : "BELOW GATE")
              << ", overload " << (ov_pass ? "ok" : "BELOW GATE")
              << " (informational without --json)\n";
    return 0;
  }

  const bool pass = tp_pass && ov_pass;
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "svc_net_throughput: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"bench\": \"svc_net_throughput\",\n"
      << "  \"mode\": \"gate\",\n"
      << "  \"config\": {\n"
      << "    \"clients\": " << clients << ",\n"
      << "    \"requests_per_client\": " << n_requests << ",\n"
      << "    \"pipeline_window\": " << window << ",\n"
      << "    \"shards\": 2,\n"
      << "    \"codec\": \"binary\",\n"
      << "    \"distinct_requests\": " << corpus.size() << "\n"
      << "  },\n"
      << "  \"metrics\": {\n"
      << "    \"wall_s\": " << tp.wall_s << ",\n"
      << "    \"requests_total\": " << tp.requests << ",\n"
      << "    \"requests_failed\": " << tp.failed << ",\n"
      << "    \"req_per_sec\": " << tp.rps << ",\n"
      << "    \"p50_ms\": " << tp.p50_ms << ",\n"
      << "    \"p99_ms\": " << tp.p99_ms << "\n"
      << "  },\n"
      << "  \"overload\": {\n"
      << "    \"admission_rate_rps\": " << ov.admission_rate << ",\n"
      << "    \"offered_multiple\": 2.0,\n"
      << "    \"duration_s\": " << ov.duration_s << ",\n"
      << "    \"aggressive_offered\": " << ov.aggressive.sent << ",\n"
      << "    \"aggressive_accepted\": " << ov.aggressive.ok << ",\n"
      << "    \"modest_offered\": " << ov.modest.sent << ",\n"
      << "    \"modest_accepted\": " << ov.modest.ok << ",\n"
      << "    \"shed_total\": " << ov.shed_total << ",\n"
      << "    \"accepted_p99_ms\": " << ov.accepted_p99_ms << "\n"
      << "  },\n"
      << "  \"gate\": {\n"
      << "    \"name\": \"loopback_throughput_p99\",\n"
      << "    \"min_rps\": " << min_rps << ",\n"
      << "    \"actual_rps\": " << tp.rps << ",\n"
      << "    \"max_p99_ms\": " << max_p99_ms << ",\n"
      << "    \"actual_p99_ms\": " << tp.p99_ms << ",\n"
      << "    \"pass\": " << (tp_pass ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"overload_gate\": {\n"
      << "    \"name\": \"overload_fair_shed\",\n"
      << "    \"max_p99_ms\": " << max_p99_ms << ",\n"
      << "    \"actual_p99_ms\": " << ov.accepted_p99_ms << ",\n"
      << "    \"max_client_skew\": 0.100,\n"
      << "    \"actual_client_skew\": " << ov.client_skew << ",\n"
      << "    \"shed_total\": " << ov.shed_total << ",\n"
      << "    \"pass\": " << (ov_pass ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  // Side record: the throughput daemon's registry (net counters + svc
  // per-kind latency histograms) next to the gate JSON — the daemon
  // shards publish into their own shared registry, not the global one.
  bench::dump_metrics_json(json_path, daemon.metrics());

  std::printf(
      "svc_net_throughput --json: %llu reqs over %d clients in %.2fs -> "
      "%.0f req/s (floor %.0f), p50 %.3f ms, p99 %.3f ms (bound %.1f) -> "
      "%s\n",
      static_cast<unsigned long long>(tp.requests), clients, tp.wall_s,
      tp.rps, min_rps, tp.p50_ms, tp.p99_ms, max_p99_ms,
      tp_pass ? "pass" : "FAIL");
  std::printf(
      "svc_net_throughput --json: 2x overload vs %.0f req/s cap: accepted "
      "%llu/%llu (aggressive/modest, skew %.1f%%), shed %llu, accepted p99 "
      "%.3f ms -> %s\n",
      ov.admission_rate, static_cast<unsigned long long>(ov.aggressive.ok),
      static_cast<unsigned long long>(ov.modest.ok), 100.0 * ov.client_skew,
      static_cast<unsigned long long>(ov.shed_total), ov.accepted_p99_ms,
      ov_pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
