// Google-benchmark microbenchmarks of the simulator itself: how fast the
// closed-form governor fixed point, the time-stepped engine, and the
// parallel sweep runner execute. These bound how large a budget×split grid
// the characterization harnesses can afford.
#include <benchmark/benchmark.h>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/engine.hpp"
#include "sim/sweep.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void BM_CpuSteadyState(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  double cap = 80.0;
  for (auto _ : state) {
    cap = cap >= 160.0 ? 80.0 : cap + 1.0;
    benchmark::DoNotOptimize(
        node.steady_state(Watts{cap}, Watts{240.0 - cap}));
  }
}
BENCHMARK(BM_CpuSteadyState);

void BM_GpuSteadyState(benchmark::State& state) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::minife());
  std::size_t clk = 0;
  for (auto _ : state) {
    clk = (clk + 1) % node.gpu_model().mem_clock_count();
    benchmark::DoNotOptimize(node.steady_state(clk, Watts{200.0}));
  }
}
BENCHMARK(BM_GpuSteadyState);

void BM_SplitSweep(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const Watts step{static_cast<double>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_cpu_split(
        node, Watts{240.0}, {Watts{40.0}, Watts{32.0}, step}));
  }
}
BENCHMARK(BM_SplitSweep)->Arg(8)->Arg(4)->Arg(2);

void BM_BudgetSweepParallel(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto budgets = sim::budget_grid(Watts{140.0}, Watts{280.0},
                                        Watts{10.0});
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::sweep_cpu_budgets(node, budgets, {}, &pool));
  }
}
BENCHMARK(BM_BudgetSweepParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TimeSteppedEngine(benchmark::State& state) {
  sim::EngineConfig cfg;
  cfg.duration = Seconds{0.5};
  cfg.warmup = Seconds{0.1};
  const sim::RaplEngine engine(hw::ivybridge_node(), workload::stream_cpu(),
                               cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Watts{120.0}, Watts{100.0}));
  }
}
BENCHMARK(BM_TimeSteppedEngine);

void BM_CriticalPowerProfiling(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_lu());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::profile_critical_powers(node));
  }
}
BENCHMARK(BM_CriticalPowerProfiling);

void BM_CoordDecision(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto profile = core::profile_critical_powers(node);
  double budget = 140.0;
  for (auto _ : state) {
    budget = budget >= 260.0 ? 140.0 : budget + 0.5;
    benchmark::DoNotOptimize(core::coord_cpu(profile, Watts{budget}));
  }
}
BENCHMARK(BM_CoordDecision);

}  // namespace

BENCHMARK_MAIN();
