// Microbenchmarks of the simulator itself: how fast the closed-form
// governor fixed point, the time-stepped engine, and the parallel sweep
// runner execute. These bound how large a budget×split grid the
// characterization harnesses can afford.
//
// Two modes:
//   * default: the google-benchmark suite below (BM_*).
//   * --json[=path] (default BENCH_sim.json): a self-timed perf-trajectory
//     record — ops/sec for single solves, warm sweeps, and the frontier,
//     on both solver paths — plus two gates. The warm-sweep gate fails
//     the process (exit 1) when the fast path is not at least
//     --min-speedup (default 6) times the reference path on
//     sweep_cpu_budgets; the frontier gate requires the blocked frontier
//     driver to beat the per-budget sweep_cpu_split_best baseline by
//     --min-frontier-speedup (default 3, or 1.5 under --force-generic).
//     Setting either threshold to 0 turns that gate into a smoke test.
//     --force-generic pins the portable (no-SIMD) kernels so CI can hold
//     the fallback path to the pre-SIMD floor. CI runs this mode on a
//     Release build; ctest runs it with the gates disabled so
//     debug/sanitizer configurations stay meaningful.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "sim/engine.hpp"
#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"
#include "sim/sweep.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void BM_CpuSteadyState(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  node.prepare();
  double cap = 80.0;
  for (auto _ : state) {
    cap = cap >= 160.0 ? 80.0 : cap + 1.0;
    benchmark::DoNotOptimize(
        node.steady_state(Watts{cap}, Watts{240.0 - cap}));
  }
}
BENCHMARK(BM_CpuSteadyState);

void BM_CpuSteadyStateReference(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  double cap = 80.0;
  for (auto _ : state) {
    cap = cap >= 160.0 ? 80.0 : cap + 1.0;
    benchmark::DoNotOptimize(
        node.reference_steady_state(Watts{cap}, Watts{240.0 - cap}));
  }
}
BENCHMARK(BM_CpuSteadyStateReference);

void BM_CpuSteadyStateBatch(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  node.prepare();
  std::vector<sim::CapPair> caps;
  for (double cap = 80.0; cap < 160.0; cap += 0.5) {
    caps.push_back({Watts{cap}, Watts{240.0 - cap}});
  }
  std::vector<sim::AllocationSample> out(caps.size());
  sim::SolveArena arena;
  for (auto _ : state) {
    const auto scope = arena.scope();
    node.steady_state_batch(caps, out, arena);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(caps.size()));
}
BENCHMARK(BM_CpuSteadyStateBatch);

void BM_BatchMaxIndexKernel(benchmark::State& state) {
  // The raw SIMD primitive: one monotone curve, a dense threshold grid.
  const std::size_t curve_len = static_cast<std::size_t>(state.range(0));
  std::vector<double> curve(curve_len);
  for (std::size_t i = 0; i < curve_len; ++i) {
    curve[i] = 10.0 + 3.0 * static_cast<double>(i);
  }
  std::vector<double> thr(4096);
  for (std::size_t j = 0; j < thr.size(); ++j) {
    thr[j] = static_cast<double>(j % (3 * curve_len + 20));
  }
  std::vector<std::int32_t> out(thr.size());
  for (auto _ : state) {
    sim::simd::batch_max_index_within(curve, thr, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thr.size()));
  state.SetLabel(sim::simd::to_string(sim::simd::active_tier()));
}
BENCHMARK(BM_BatchMaxIndexKernel)->Arg(8)->Arg(32)->Arg(128);

void BM_GpuSteadyState(benchmark::State& state) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::minife());
  node.prepare();
  std::size_t clk = 0;
  for (auto _ : state) {
    clk = (clk + 1) % node.gpu_model().mem_clock_count();
    benchmark::DoNotOptimize(node.steady_state(clk, Watts{200.0}));
  }
}
BENCHMARK(BM_GpuSteadyState);

void BM_SplitSweep(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  node.prepare();
  const Watts step{static_cast<double>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_cpu_split(
        node, Watts{240.0}, {Watts{40.0}, Watts{32.0}, step}));
  }
}
BENCHMARK(BM_SplitSweep)->Arg(8)->Arg(4)->Arg(2);

void BM_SplitSweepReference(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const Watts step{static_cast<double>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_cpu_split(
        node, Watts{240.0},
        {Watts{40.0}, Watts{32.0}, step, sim::SolverPath::kReference}));
  }
}
BENCHMARK(BM_SplitSweepReference)->Arg(8)->Arg(4);

void BM_BudgetSweepParallel(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto budgets = sim::budget_grid(Watts{140.0}, Watts{280.0},
                                        Watts{10.0});
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::sweep_cpu_budgets(node, budgets, {}, &pool));
  }
}
BENCHMARK(BM_BudgetSweepParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TimeSteppedEngine(benchmark::State& state) {
  sim::EngineConfig cfg;
  cfg.duration = Seconds{0.5};
  cfg.warmup = Seconds{0.1};
  const sim::RaplEngine engine(hw::ivybridge_node(), workload::stream_cpu(),
                               cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(Watts{120.0}, Watts{100.0}));
  }
}
BENCHMARK(BM_TimeSteppedEngine);

void BM_CriticalPowerProfiling(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_lu());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::profile_critical_powers(node));
  }
}
BENCHMARK(BM_CriticalPowerProfiling);

void BM_CoordDecision(benchmark::State& state) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto profile = core::profile_critical_powers(node);
  double budget = 140.0;
  for (auto _ : state) {
    budget = budget >= 260.0 ? 140.0 : budget + 0.5;
    benchmark::DoNotOptimize(core::coord_cpu(profile, Watts{budget}));
  }
}
BENCHMARK(BM_CoordDecision);

// ---------------------------------------------------------------------------
// --json gate mode
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

template <class F>
[[nodiscard]] double time_once_s(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto dt = Clock::now() - t0;
  return std::chrono::duration_cast<std::chrono::duration<double>>(dt)
      .count();
}

/// Best-of-reps wall time, in seconds.
template <class F>
[[nodiscard]] double time_best_s(int reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, time_once_s(f));
  return best;
}

struct GateRecord {
  double min_speedup = 0.0;
  double actual = 0.0;
  [[nodiscard]] bool pass() const noexcept {
    return actual + 1e-12 >= min_speedup;
  }
};

int run_gate_mode(const std::string& json_path, double min_speedup,
                  double min_frontier_speedup, int reps) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const workload::Workload cpu_wl = workload::npb_mg();
  const auto budgets =
      sim::budget_grid(Watts{140.0}, Watts{280.0}, Watts{4.0});
  // Single-threaded pool: the gate measures the algorithmic speedup, not
  // core count.
  ThreadPool pool(1);
  sim::CpuSweepOptions fast_opt;
  fast_opt.path = sim::SolverPath::kFast;
  sim::CpuSweepOptions ref_opt;
  ref_opt.path = sim::SolverPath::kReference;

  std::size_t sweep_solves = 0;
  for (const Watts b : budgets) {
    sweep_solves += sim::cpu_split_grid(b, fast_opt).size();
  }

  const sim::CpuNodeSim node(cpu_machine, cpu_wl);
  double perf_sink = 0.0;

  // Reference sweep: one timed pass (it is the slow baseline).
  const double sweep_ref_s = time_once_s([&] {
    const auto sweeps = sim::sweep_cpu_budgets(node, budgets, ref_opt, &pool);
    perf_sink += sweeps.front().samples.front().perf;
  });

  // Warm fast sweep: table built once up front, then best-of-reps — the
  // steady-state cost the query service actually pays.
  node.prepare();
  const double sweep_fast_s = time_best_s(reps, [&] {
    const auto sweeps =
        sim::sweep_cpu_budgets(node, budgets, fast_opt, &pool);
    perf_sink += sweeps.front().samples.front().perf;
  });

  // Single-solve throughput on both paths over a cap schedule.
  constexpr int kSolveIters = 2000;
  const auto solve_loop = [&](bool fast) {
    double cap = 80.0;
    for (int i = 0; i < kSolveIters; ++i) {
      cap = cap >= 160.0 ? 80.0 : cap + 1.0;
      const auto s =
          fast ? node.steady_state(Watts{cap}, Watts{240.0 - cap})
               : node.reference_steady_state(Watts{cap}, Watts{240.0 - cap});
      perf_sink += s.perf;
    }
  };
  const double solve_fast_s = time_best_s(reps, [&] { solve_loop(true); });
  const double solve_ref_s = time_once_s([&] { solve_loop(false); });

  // Frontier throughput (budgets per second, warm): the blocked driver
  // behind perf_frontier_cpu, vs the retained per-budget baseline (one
  // sweep_cpu_split_best call per budget over the same table). Both legs
  // run whatever SIMD tier is active, so the --force-generic run gates
  // the portable blocked engine against the portable baseline. A single
  // warm build is tens of microseconds — far below scheduler noise — so
  // each timed sample loops the build to amortize, like the kernel row.
  constexpr int kFrontierIters = 32;
  const double frontier_s = time_best_s(reps, [&] {
    for (int i = 0; i < kFrontierIters; ++i) {
      const auto frontier =
          core::perf_frontier_cpu(node, budgets, fast_opt, &pool);
      perf_sink += frontier.front().perf_max;
    }
  });
  const double frontier_base_s = time_best_s(reps, [&] {
    for (int i = 0; i < kFrontierIters; ++i) {
      for (const Watts b : budgets) {
        if (const auto best = sim::sweep_cpu_split_best(node, b, fast_opt)) {
          perf_sink += best->perf;
        }
      }
    }
  });
  const std::size_t frontier_budgets = budgets.size() * kFrontierIters;

  // SoA batch entry point: the whole cap grid of every budget through one
  // span call per budget (solves/s), plus the raw kernel's lane
  // throughput (cells/s) on a representative monotone curve.
  sim::SolveArena arena;
  const double batch_s = time_best_s(reps, [&] {
    for (const Watts b : budgets) {
      const auto caps = sim::cpu_split_grid(b, fast_opt);
      const auto scope = arena.scope();
      const auto out = arena.get<sim::AllocationSample>(caps.size());
      node.steady_state_batch(caps, out, arena);
      perf_sink += out.front().perf;
    }
  });

  constexpr std::size_t kKernelThresholds = 4096;
  constexpr int kKernelIters = 400;
  std::vector<double> kcurve(32);
  for (std::size_t i = 0; i < kcurve.size(); ++i) {
    kcurve[i] = 10.0 + 3.0 * static_cast<double>(i);
  }
  std::vector<double> kthr(kKernelThresholds);
  for (std::size_t j = 0; j < kthr.size(); ++j) {
    kthr[j] = static_cast<double>(j % 120);
  }
  std::vector<std::int32_t> kout(kthr.size());
  const double kernel_s = time_best_s(reps, [&] {
    for (int i = 0; i < kKernelIters; ++i) {
      sim::simd::batch_max_index_within(kcurve, kthr, kout);
    }
    perf_sink += kout.front();
  });
  const std::size_t kernel_cells =
      kKernelThresholds * static_cast<std::size_t>(kKernelIters);

  // GPU solves, both paths.
  const sim::GpuNodeSim gpu_node(hw::titan_xp(), workload::minife());
  gpu_node.prepare();
  std::vector<Watts> gpu_caps;
  for (double c = 125.0; c <= 250.0; c += 1.0) gpu_caps.push_back(Watts{c});
  const double gpu_fast_s = time_best_s(reps, [&] {
    for (std::size_t clk = 0; clk < gpu_node.gpu_model().mem_clock_count();
         ++clk) {
      const auto out = gpu_node.steady_state_batch(clk, gpu_caps);
      perf_sink += out.front().perf;
    }
  });
  const double gpu_ref_s = time_once_s([&] {
    for (std::size_t clk = 0; clk < gpu_node.gpu_model().mem_clock_count();
         ++clk) {
      for (const Watts c : gpu_caps) {
        perf_sink += gpu_node.reference_steady_state(clk, c).perf;
      }
    }
  });
  const std::size_t gpu_solves =
      gpu_caps.size() * gpu_node.gpu_model().mem_clock_count();

  // GPU frontier throughput: the batched best-clock driver over the same
  // cap grid (board caps per second, warm), amortized like the CPU legs.
  const double gpu_frontier_s = time_best_s(reps, [&] {
    for (int i = 0; i < kFrontierIters; ++i) {
      const auto frontier =
          core::perf_frontier_gpu(gpu_node, gpu_caps, &pool);
      perf_sink += frontier.front().perf_max;
    }
  });
  const std::size_t gpu_frontier_caps = gpu_caps.size() * kFrontierIters;

  const auto ops = [](std::size_t n, double s) {
    return s > 0.0 ? static_cast<double>(n) / s : 0.0;
  };
  GateRecord gate;
  gate.min_speedup = min_speedup;
  gate.actual = sweep_fast_s > 0.0 ? sweep_ref_s / sweep_fast_s : 0.0;
  GateRecord frontier_gate;
  frontier_gate.min_speedup = min_frontier_speedup;
  frontier_gate.actual =
      frontier_s > 0.0 ? frontier_base_s / frontier_s : 0.0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "perf_sim_microbench: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"bench\": \"perf_sim_microbench\",\n"
      << "  \"mode\": \"gate\",\n"
      << "  \"simd_tier\": \""
      << sim::simd::to_string(sim::simd::active_tier()) << "\",\n"
      << "  \"metrics\": {\n"
      << "    \"batch_max_index_cells_per_sec\": "
      << ops(kernel_cells, kernel_s) << ",\n"
      << "    \"cpu_batch_solves_per_sec\": " << ops(sweep_solves, batch_s)
      << ",\n"
      << "    \"cpu_solve_fast_ops_per_sec\": "
      << ops(kSolveIters, solve_fast_s) << ",\n"
      << "    \"cpu_solve_ref_ops_per_sec\": "
      << ops(kSolveIters, solve_ref_s) << ",\n"
      << "    \"cpu_sweep_fast_solves_per_sec\": "
      << ops(sweep_solves, sweep_fast_s) << ",\n"
      << "    \"cpu_sweep_ref_solves_per_sec\": "
      << ops(sweep_solves, sweep_ref_s) << ",\n"
      << "    \"cpu_sweep_speedup\": " << gate.actual << ",\n"
      << "    \"frontier_base_budgets_per_sec\": "
      << ops(frontier_budgets, frontier_base_s) << ",\n"
      << "    \"frontier_budgets_per_sec\": "
      << ops(frontier_budgets, frontier_s) << ",\n"
      << "    \"frontier_speedup\": " << frontier_gate.actual << ",\n"
      << "    \"gpu_frontier_budgets_per_sec\": "
      << ops(gpu_frontier_caps, gpu_frontier_s) << ",\n"
      << "    \"gpu_solve_fast_ops_per_sec\": " << ops(gpu_solves, gpu_fast_s)
      << ",\n"
      << "    \"gpu_solve_ref_ops_per_sec\": " << ops(gpu_solves, gpu_ref_s)
      << ",\n"
      << "    \"gpu_solve_speedup\": "
      << (gpu_fast_s > 0.0 ? gpu_ref_s / gpu_fast_s : 0.0) << "\n"
      << "  },\n"
      << "  \"gate\": {\n"
      << "    \"name\": \"warm_sweep_speedup\",\n"
      << "    \"min\": " << gate.min_speedup << ",\n"
      << "    \"actual\": " << gate.actual << ",\n"
      << "    \"pass\": " << (gate.pass() ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"frontier_gate\": {\n"
      << "    \"name\": \"frontier_speedup\",\n"
      << "    \"min\": " << frontier_gate.min_speedup << ",\n"
      << "    \"actual\": " << frontier_gate.actual << ",\n"
      << "    \"pass\": " << (frontier_gate.pass() ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"sink\": " << perf_sink << "\n"
      << "}\n";
  out.close();
  // Side record: the sim-layer counters behind this run (table builds and
  // their build-time histograms), machine-readable next to the gate JSON.
  bench::dump_global_metrics_json(json_path);

  std::printf(
      "perf_sim_microbench --json [%s]: sweep speedup %.1fx "
      "(fast %.0f solves/s, ref %.0f solves/s), batch %.0f solves/s, "
      "kernel %.0f cells/s, solve %.0f/s vs %.0f/s, "
      "frontier[%s] %.0f budgets/s (%.1fx vs per-budget %.0f/s), "
      "gpu frontier %.0f caps/s, gpu speedup %.1fx -> %s\n",
      sim::simd::to_string(sim::simd::active_tier()), gate.actual,
      ops(sweep_solves, sweep_fast_s), ops(sweep_solves, sweep_ref_s),
      ops(sweep_solves, batch_s), ops(kernel_cells, kernel_s),
      ops(kSolveIters, solve_fast_s), ops(kSolveIters, solve_ref_s),
      sim::simd::to_string(sim::simd::active_tier()),
      ops(frontier_budgets, frontier_s), frontier_gate.actual,
      ops(frontier_budgets, frontier_base_s),
      ops(gpu_frontier_caps, gpu_frontier_s),
      gpu_fast_s > 0.0 ? gpu_ref_s / gpu_fast_s : 0.0, json_path.c_str());

  if (!gate.pass()) {
    std::fprintf(stderr,
                 "perf_sim_microbench: GATE FAILED — warm sweep speedup "
                 "%.2fx < required %.2fx\n",
                 gate.actual, gate.min_speedup);
    return 1;
  }
  if (!frontier_gate.pass()) {
    std::fprintf(stderr,
                 "perf_sim_microbench: GATE FAILED — frontier speedup "
                 "%.2fx < required %.2fx (blocked vs per-budget)\n",
                 frontier_gate.actual, frontier_gate.min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  bool force_generic = false;
  std::string json_path = "BENCH_sim.json";
  double min_speedup = 6.0;
  double min_frontier_speedup = -1.0;  // resolved after the flag loop
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json_mode = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = a.substr(7);
    } else if (a.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(a.substr(14));
    } else if (a.rfind("--min-frontier-speedup=", 0) == 0) {
      min_frontier_speedup = std::stod(a.substr(23));
    } else if (a.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::stoi(a.substr(7)));
    } else if (a == "--force-generic") {
      // CI leg that pins the portable kernels: the gates then check the
      // fallback path's floor, not the SIMD ratchet. The forced tier
      // threads through every timed leg — including both frontier legs —
      // via the process-wide dispatch.
      force_generic = true;
      pbc::sim::simd::force_simd_tier(pbc::sim::simd::SimdTier::kGeneric);
    }
  }
  // The blocked frontier must beat the per-budget driver 3x on the native
  // tier; the generic-forced leg keeps the (smaller) win the portable
  // kernels manage. Explicit --min-frontier-speedup (e.g. 0 for the
  // ctest smoke run) overrides both defaults.
  if (min_frontier_speedup < 0.0) {
    min_frontier_speedup = force_generic ? 1.5 : 3.0;
  }
  if (json_mode) {
    return run_gate_mode(json_path, min_speedup, min_frontier_speedup, reps);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
