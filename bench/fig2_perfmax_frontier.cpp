// Figure 2 — Upper performance bound perf_max vs. total budget P_b for
// DGEMM and RandomAccess (SRA) on the IvyBridge and Haswell platforms.
//
// Paper findings this harness must reproduce:
//  * perf_max grows monotonically at varying rates, then flattens —
//    segmented growth (DGEMM on IvyBridge: slow below ~125 W, fast to
//    ~145 W, slow again, flat past ~240 W);
//  * DGEMM gains performance faster and has a larger max power demand
//    than the memory-bound benchmarks;
//  * Haswell/DDR4 wins at small budgets, both platforms consume similar
//    power at their respective maxima.
#include "bench_common.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

namespace {

void frontier_for(const hw::CpuMachine& machine,
                  const workload::Workload& wl) {
  bench::print_section(wl.name + " on " + machine.name);
  const sim::CpuNodeSim node(machine, wl);
  const auto budgets = sim::budget_grid(Watts{110.0}, Watts{300.0},
                                        Watts{10.0});
  const auto frontier = core::perf_frontier_cpu(
      node, budgets, {Watts{40.0}, Watts{32.0}, Watts{4.0}});

  TableWriter t({"budget_W", std::string("perf_max_") + wl.metric_name,
                 "best_cpu_W", "best_mem_W", "consumed_W"});
  PlotSeries series{wl.name, {}, {}};
  for (const auto& fp : frontier) {
    t.add_row({TableWriter::num(fp.budget.value(), 0),
               TableWriter::num(fp.perf_max, 2),
               TableWriter::num(fp.best_proc_cap.value(), 0),
               TableWriter::num(fp.best_mem_cap.value(), 0),
               TableWriter::num(fp.consumed.value(), 1)});
    series.x.push_back(fp.budget.value());
    series.y.push_back(fp.perf_max);
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = wl.name + " perf_max vs budget — " + machine.name;
  opt.x_label = "total power budget (W)";
  std::cout << render_plot({series}, opt);

  std::cout << "saturation budget (perf_max stops growing): "
            << TableWriter::num(core::saturation_budget(frontier).value(), 0)
            << " W;  consumed at max: "
            << TableWriter::num(frontier.back().consumed.value(), 1)
            << " W\n";
}

}  // namespace

int main() {
  bench::print_header("Figure 2",
                      "perf_max(P_b) for DGEMM and SRA on both CPU platforms");
  const auto ivy = hw::ivybridge_node();
  const auto has = hw::haswell_node();
  for (const auto& wl : {workload::dgemm(), workload::sra()}) {
    frontier_for(ivy, wl);
    frontier_for(has, wl);
  }

  bench::print_section("cross-platform summary at small budgets");
  TableWriter t({"benchmark", "platform", "perf_max@150W", "perf_max@saturation"});
  for (const auto& wl : {workload::dgemm(), workload::sra()}) {
    for (const auto* machine : {&ivy, &has}) {
      const sim::CpuNodeSim node(*machine, wl);
      const std::vector<Watts> probe{Watts{150.0}, Watts{300.0}};
      const auto f = core::perf_frontier_cpu(
          node, probe, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
      t.add_row({wl.name, machine->name, TableWriter::num(f[0].perf_max, 2),
                 TableWriter::num(f[1].perf_max, 2)});
    }
  }
  t.render(std::cout);
  std::cout << "(paper: Haswell delivers better performance at small "
               "budgets thanks to DDR4)\n";
  return 0;
}
