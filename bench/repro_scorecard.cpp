// The executable reproduction scorecard: every headline claim, run fresh
// and judged against its acceptance band (EXPERIMENTS.md as code). Exits
// non-zero if any claim drifts out of band, so scripts can gate on it.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/scorecard.hpp"

int main() {
  using namespace pbc;
  bench::print_header("Scorecard", "headline claims, re-validated live");

  const auto results = core::run_scorecard();
  TableWriter t({"status", "id", "paper claim", "measured"});
  for (const auto& r : results) {
    t.add_row({r.in_band ? "PASS" : "OUT-OF-BAND", r.id, r.claim,
               r.measured});
  }
  t.render(std::cout);

  const bool ok = core::all_in_band(results);
  std::cout << '\n'
            << (ok ? "all claims in band" : "SOME CLAIMS OUT OF BAND")
            << " (" << results.size() << " checks)\n";
  return ok ? 0 : 1;
}
