// Figure 3 — Categorization of power-allocation scenarios: application
// performance and actual component power consumption for every split of a
// 240 W budget, SRA (RandomAccess) on the IvyBridge node.
//
// Paper findings this harness must reproduce:
//  * six distinct scenario categories I-VI along the split axis;
//  * scenario I near P_mem ∈ [120, 132] W with actual powers ~112 W (CPU)
//    and ~116 W (DRAM);
//  * gradual performance decline through II (DVFS), steep decline in III
//    (bandwidth throttling), a cliff in IV (duty cycling), and hardware
//    floors in V/VI (caps not respected).
#include "bench_common.hpp"
#include "core/categorize.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

int main() {
  bench::print_header("Figure 3",
                      "Scenario categorization: SRA on IvyBridge at 240 W");
  const auto machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, workload::sra());

  sim::BudgetSweep sweep;
  sweep.budget = Watts{240.0};
  sweep.samples = sim::sweep_cpu_split(
      node, Watts{240.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});

  bench::print_section("(a) performance and (b) actual power per split");
  TableWriter t({"mem_cap_W", "cpu_cap_W", "perf_GUPs", "cpu_W", "mem_W",
                 "mechanism", "category", "blackbox"});
  PlotSeries perf{"perf (GUP/s)", {}, {}};
  PlotSeries cpu_power{"cpu power", {}, {}};
  PlotSeries mem_power{"mem power", {}, {}};
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const auto& s = sweep.samples[i];
    const auto cat = core::categorize_cpu(s, machine);
    const auto bb = core::categorize_cpu_blackbox(sweep, i, machine);
    t.add_row({TableWriter::num(s.mem_cap.value(), 0),
               TableWriter::num(s.proc_cap.value(), 0),
               TableWriter::num(s.perf, 3),
               TableWriter::num(s.proc_power.value(), 1),
               TableWriter::num(s.mem_power.value(), 1),
               std::string(to_string(s.proc_region)) + "/" +
                   to_string(s.mem_region),
               core::to_string(cat), core::to_string(bb)});
    perf.x.push_back(s.mem_cap.value());
    perf.y.push_back(s.perf);
    cpu_power.x.push_back(s.mem_cap.value());
    cpu_power.y.push_back(s.proc_power.value());
    mem_power.x.push_back(s.mem_cap.value());
    mem_power.y.push_back(s.mem_power.value());
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = "(a) SRA performance vs memory allocation at 240 W";
  opt.x_label = "memory power allocation (W)";
  std::cout << render_plot({perf}, opt);
  PlotOptions opt2;
  opt2.title = "(b) actual component power vs memory allocation at 240 W";
  opt2.x_label = "memory power allocation (W)";
  std::cout << render_plot({cpu_power, mem_power}, opt2);

  bench::print_section("category spans");
  const auto spans = core::category_spans_cpu(sweep, machine);
  std::cout << core::format_spans(spans) << '\n';
  std::cout << "(paper: scenario I at P_mem in [120,132] W; actual powers "
               "~112 W CPU / ~116 W DRAM in scenario I)\n";

  // Scenario-I actual powers, for EXPERIMENTS.md.
  for (const auto& sp : spans) {
    if (sp.category == core::Category::kI) {
      const auto& s = sweep.samples[(sp.first + sp.last) / 2];
      std::cout << "scenario I measured: P_mem span [" << sp.mem_lo.value()
                << ", " << sp.mem_hi.value() << "] W; actual cpu="
                << TableWriter::num(s.proc_power.value(), 1)
                << " W, mem=" << TableWriter::num(s.mem_power.value(), 1)
                << " W\n";
    }
  }
  return 0;
}
