// Cluster-scale throughput of the discrete-event coordination engine:
// how fast core::simulate_cluster chews through thousands of nodes and
// tens of thousands of jobs, fast path vs the retained reference path.
//
// Three modes:
//   * default: a fast-path scaling table over cluster sizes from 64 nodes
//     / 5k jobs up to 4096 nodes / 50k jobs (CPU+GPU mix, backfill,
//     admission control).
//   * --json[=path] (default BENCH_cluster.json): the CI perf record. On
//     a 256-node / 10k-job trace it times the reference path once and the
//     fast path best-of---reps (profiling pool pinned to one thread so the
//     gate measures the algorithmic speedup, not core count), verifies
//     the two runs are identical, and fails the process (exit 1) when the
//     end-to-end speedup falls below --min-speedup (default 10;
//     --min-speedup=0 turns the run into a smoke test). The event path
//     (ClusterPath::kEvent over an implicit flat tree) runs the same
//     trace and must also be bit-identical to the reference. The record
//     further carries a hierarchical event-path scaling sweep up to 100k
//     nodes / 1M jobs (32-node racks under 32-rack rows, the regime the
//     flat paths cannot reach: their ledger release walks every active
//     grant) gated by --min-event-jps on the largest point, and a
//     GrantLedger micro-bench of the incremental release against the
//     retained full rescan (4096 peak slots, 64 live). --smoke shrinks
//     every trace so debug/sanitizer ctest configurations stay quick.
//   * --csv=FILE: dumps the per-job outcomes of a fixed 16-node trace at
//     full precision for the golden-file regression
//     (tests/golden/cluster_throughput.csv).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "core/cluster_hier.hpp"
#include "core/cluster_sim.hpp"
#include "core/grant_ledger.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
[[nodiscard]] double time_once_s(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto dt = Clock::now() - t0;
  return std::chrono::duration_cast<std::chrono::duration<double>>(dt)
      .count();
}

template <class F>
[[nodiscard]] double time_best_s(int reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, time_once_s(f));
  return best;
}

[[nodiscard]] std::string g17(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Deterministic arrival trace over the full CPU+GPU suites. Work is
/// scaled by each workload's uncapped rate so every job targets a
/// duration in [20, 200) s; arrivals span half the zero-wait makespan, so
/// the cluster runs saturated (queues form, backfill matters) for the
/// bulk of the trace.
[[nodiscard]] std::vector<core::SimJob> make_trace(
    const hw::CpuMachine& cpu_machine, const hw::GpuMachine& gpu_machine,
    std::size_t n_jobs, std::size_t nodes, double gpu_fraction,
    std::uint64_t seed) {
  const auto cpu_wls = workload::cpu_suite();
  const auto gpu_wls = workload::gpu_suite();
  std::vector<double> cpu_rate(cpu_wls.size());
  for (std::size_t i = 0; i < cpu_wls.size(); ++i) {
    cpu_rate[i] =
        sim::CpuNodeSim(cpu_machine, cpu_wls[i]).uncapped().rate_gunits;
  }
  std::vector<double> gpu_rate(gpu_wls.size());
  for (std::size_t i = 0; i < gpu_wls.size(); ++i) {
    gpu_rate[i] = sim::GpuNodeSim(gpu_machine, gpu_wls[i])
                      .default_policy(gpu_machine.gpu.board_max_cap)
                      .rate_gunits;
  }

  Xoshiro256 rng(seed, /*stream=*/7);
  const double mean_duration = 110.0;
  const double span = 0.5 * mean_duration * static_cast<double>(n_jobs) /
                      static_cast<double>(nodes);
  std::vector<core::SimJob> jobs;
  jobs.reserve(n_jobs);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const bool gpu = rng.uniform() < gpu_fraction;
    core::SimJob job;
    if (gpu) {
      const std::size_t w = rng.below(gpu_wls.size());
      job.wl = gpu_wls[w];
      job.work_gunits = gpu_rate[w] * rng.uniform(20.0, 200.0);
    } else {
      const std::size_t w = rng.below(cpu_wls.size());
      job.wl = cpu_wls[w];
      job.work_gunits = cpu_rate[w] * rng.uniform(20.0, 200.0);
    }
    job.name = (gpu ? "g" : "c") + std::to_string(j);
    job.arrival = Seconds{rng.uniform(0.0, span)};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Saturating but feasible budget: ~70% of every node drawing a typical
/// full demand at once, so power (not node count) is the contended
/// resource.
[[nodiscard]] core::ClusterSimConfig make_config(std::size_t nodes,
                                                 std::size_t gpu_nodes) {
  core::ClusterSimConfig config;
  config.nodes = nodes;
  config.gpu_nodes = gpu_nodes;
  config.global_budget =
      Watts{0.7 * (static_cast<double>(nodes) * 220.0 +
                   static_cast<double>(gpu_nodes) * 230.0)};
  config.queue_policy = core::QueuePolicy::kBackfill;
  config.admission_control = true;
  return config;
}

struct ScalePoint {
  std::size_t nodes;
  std::size_t gpu_nodes;
  std::size_t jobs;
  double wall_s = 0.0;
  double jobs_per_sec = 0.0;
  double makespan_s = 0.0;
  double work_per_joule = 0.0;
};

[[nodiscard]] ScalePoint run_scale_point(std::size_t nodes,
                                         std::size_t gpu_nodes,
                                         std::size_t n_jobs,
                                         std::uint64_t seed) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();
  const auto jobs =
      make_trace(cpu_machine, gpu_machine, n_jobs, nodes, 0.15, seed);
  const auto config = make_config(nodes, gpu_nodes);

  ScalePoint p{nodes, gpu_nodes, n_jobs};
  core::ClusterRun run;
  p.wall_s = time_once_s([&] {
    run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });
  p.jobs_per_sec =
      p.wall_s > 0.0 ? static_cast<double>(n_jobs) / p.wall_s : 0.0;
  p.makespan_s = run.makespan.value();
  p.work_per_joule = run.work_per_joule;
  return p;
}

/// Event-path scale point over a uniform budget tree (32-node racks,
/// 32-rack rows). Redistribution stays on — this is the configuration
/// the paper's cross-component coordination argument targets.
[[nodiscard]] ScalePoint run_event_scale_point(std::size_t nodes,
                                               std::size_t gpu_nodes,
                                               std::size_t n_jobs,
                                               std::uint64_t seed) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();
  const auto jobs =
      make_trace(cpu_machine, gpu_machine, n_jobs, nodes, 0.15, seed);
  auto config = make_config(nodes, gpu_nodes);
  config.path = core::ClusterPath::kEvent;
  const core::HierarchySpec hier = core::uniform_hierarchy(
      nodes, gpu_nodes, config.global_budget, {32, 32});
  config.hierarchy = &hier;

  ScalePoint p{nodes, gpu_nodes, n_jobs};
  core::ClusterRun run;
  p.wall_s = time_once_s([&] {
    run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });
  p.jobs_per_sec =
      p.wall_s > 0.0 ? static_cast<double>(n_jobs) / p.wall_s : 0.0;
  p.makespan_s = run.makespan.value();
  p.work_per_joule = run.work_per_joule;
  return p;
}

struct LedgerBench {
  std::size_t peak_slots = 0;
  std::size_t active_grants = 0;
  double incremental_ns = 0.0;
  double full_rescan_ns = 0.0;
  double speedup = 0.0;
};

/// Release cost after a concurrency burst has drained: the ledger once
/// carried `peak` simultaneous grants but only `active` remain (spread
/// across the slot space), and the bench cycles release + re-hold over
/// the survivors. The incremental release walks the active slots only;
/// the retained full rescan re-sums every slot ever allocated — the
/// per-completion cost that tied the flat paths to peak concurrency.
[[nodiscard]] LedgerBench run_ledger_bench(std::size_t peak,
                                           std::size_t active, int iters) {
  LedgerBench b;
  b.peak_slots = peak;
  b.active_grants = active;
  Xoshiro256 rng(1, /*stream=*/23);
  std::vector<double> grants(peak);
  double total = 0.0;
  for (double& g : grants) {
    g = rng.uniform(10.0, 200.0);
    total += g;
  }
  core::GrantLedger inc(total * 1.05);
  core::GrantLedger full(total * 1.05);
  std::vector<std::size_t> inc_slot(peak);
  std::vector<std::size_t> full_slot(peak);
  for (std::size_t i = 0; i < peak; ++i) {
    inc_slot[i] = inc.hold(grants[i]);
    full_slot[i] = full.hold(grants[i]);
  }
  // Drain the burst, keeping every (peak/active)-th grant alive.
  const std::size_t stride = std::max<std::size_t>(1, peak / active);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < peak; ++i) {
    if (i % stride == 0 && live.size() < active) {
      live.push_back(i);
    } else {
      (void)inc.release(inc_slot[i]);
      (void)full.release_full_rescan(full_slot[i]);
    }
  }
  double sink = 0.0;
  const double inc_s = time_once_s([&] {
    for (int i = 0; i < iters; ++i) {
      const std::size_t idx = live[static_cast<std::size_t>(i) % live.size()];
      sink += inc.release(inc_slot[idx]);
      inc_slot[idx] = inc.hold(grants[idx]);
    }
  });
  const double full_s = time_once_s([&] {
    for (int i = 0; i < iters; ++i) {
      const std::size_t idx = live[static_cast<std::size_t>(i) % live.size()];
      sink += full.release_full_rescan(full_slot[idx]);
      full_slot[idx] = full.hold(grants[idx]);
    }
  });
  if (!(sink == sink)) std::abort();  // keep the loops observable
  b.incremental_ns = inc_s / iters * 1e9;
  b.full_rescan_ns = full_s / iters * 1e9;
  b.speedup = b.incremental_ns > 0.0 ? b.full_rescan_ns / b.incremental_ns
                                     : 0.0;
  return b;
}

[[nodiscard]] bool runs_identical(const core::ClusterRun& a,
                                  const core::ClusterRun& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.name != y.name || x.arrival.value() != y.arrival.value() ||
        x.start.value() != y.start.value() ||
        x.finish.value() != y.finish.value() ||
        x.budget.value() != y.budget.value() || x.perf != y.perf ||
        x.energy.value() != y.energy.value()) {
      return false;
    }
  }
  return a.makespan.value() == b.makespan.value() &&
         a.mean_wait.value() == b.mean_wait.value() &&
         a.mean_response.value() == b.mean_response.value() &&
         a.total_energy.value() == b.total_energy.value() &&
         a.work_per_joule == b.work_per_joule;
}

int run_gate_mode(const std::string& json_path, double min_speedup,
                  double min_event_jps, int reps, bool smoke,
                  std::uint64_t seed) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();

  const std::size_t nodes = smoke ? 24 : 256;
  const std::size_t gpu_nodes = smoke ? 4 : 32;
  const std::size_t n_jobs = smoke ? 400 : 10000;
  const auto jobs =
      make_trace(cpu_machine, gpu_machine, n_jobs, nodes, 0.15, seed);
  auto config = make_config(nodes, gpu_nodes);

  // One profiling thread: the gate certifies the algorithmic speedup
  // (prepared-node reuse + incremental queue index), not the machine's
  // core count. The parallel-profiling win is reported separately below.
  ThreadPool single(1);

  core::ClusterRun ref_run;
  config.path = core::ClusterPath::kReference;
  const double ref_s = time_once_s([&] {
    ref_run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });

  core::ClusterRun fast_run;
  config.path = core::ClusterPath::kFast;
  config.pool = &single;
  const double fast_s = time_best_s(reps, [&] {
    fast_run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });

  const bool identical = runs_identical(ref_run, fast_run);

  // Event path over the implicit flat tree, same trace and pool: must be
  // bit-identical to the reference too (the flat-mode contract the
  // differential tests hold at ≤4096 nodes).
  core::ClusterRun event_run;
  config.path = core::ClusterPath::kEvent;
  const double event_s = time_best_s(reps, [&] {
    event_run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });
  const bool event_identical = runs_identical(ref_run, event_run);

  // Full-pool fast run: adds the parallel pre-profiling on top.
  config.path = core::ClusterPath::kFast;
  config.pool = nullptr;
  const double fast_mt_s = time_best_s(reps, [&] {
    fast_run = core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);
  });

  const double speedup = fast_s > 0.0 ? ref_s / fast_s : 0.0;
  const double event_speedup = event_s > 0.0 ? ref_s / event_s : 0.0;

  // Fast-path scaling sweep for the record.
  std::vector<ScalePoint> scaling;
  if (smoke) {
    scaling.push_back(run_scale_point(16, 2, 200, seed));
    scaling.push_back(run_scale_point(64, 8, 800, seed));
  } else {
    scaling.push_back(run_scale_point(64, 8, 5000, seed));
    scaling.push_back(run_scale_point(256, 32, 10000, seed));
    scaling.push_back(run_scale_point(1024, 128, 20000, seed));
    scaling.push_back(run_scale_point(4096, 512, 50000, seed));
  }

  // Event-path sweep over the hierarchy, into the regime the flat paths
  // cannot reach (their per-completion ledger rescan is O(active
  // grants)). The largest point is the scaling gate.
  std::vector<ScalePoint> event_scaling;
  if (smoke) {
    event_scaling.push_back(run_event_scale_point(256, 32, 2000, seed));
  } else {
    event_scaling.push_back(run_event_scale_point(4096, 512, 50000, seed));
    event_scaling.push_back(run_event_scale_point(16384, 2048, 200000, seed));
    event_scaling.push_back(
        run_event_scale_point(100000, 12500, 1000000, seed));
  }
  const double event_jps = event_scaling.back().jobs_per_sec;

  const LedgerBench ledger = run_ledger_bench(
      /*peak=*/4096, /*active=*/64, /*iters=*/smoke ? 20000 : 200000);

  const bool gate_pass = identical && event_identical &&
                         speedup + 1e-12 >= min_speedup &&
                         event_jps + 1e-12 >= min_event_jps;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cluster_throughput: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"bench\": \"cluster_throughput\",\n"
      << "  \"mode\": \"gate\",\n"
      << "  \"trace\": {\n"
      << "    \"nodes\": " << nodes << ",\n"
      << "    \"gpu_nodes\": " << gpu_nodes << ",\n"
      << "    \"jobs\": " << n_jobs << ",\n"
      << "    \"queue_policy\": \"backfill\",\n"
      << "    \"admission_control\": true\n"
      << "  },\n"
      << "  \"metrics\": {\n"
      << "    \"reference_wall_s\": " << ref_s << ",\n"
      << "    \"fast_wall_s\": " << fast_s << ",\n"
      << "    \"fast_parallel_profile_wall_s\": " << fast_mt_s << ",\n"
      << "    \"reference_jobs_per_sec\": "
      << (ref_s > 0.0 ? static_cast<double>(n_jobs) / ref_s : 0.0) << ",\n"
      << "    \"fast_jobs_per_sec\": "
      << (fast_s > 0.0 ? static_cast<double>(n_jobs) / fast_s : 0.0) << ",\n"
      << "    \"end_to_end_speedup\": " << speedup << ",\n"
      << "    \"event_wall_s\": " << event_s << ",\n"
      << "    \"event_speedup\": " << event_speedup << ",\n"
      << "    \"paths_identical\": " << (identical ? "true" : "false")
      << ",\n"
      << "    \"event_path_identical\": "
      << (event_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"ledger\": {\n"
      << "    \"peak_slots\": " << ledger.peak_slots << ",\n"
      << "    \"active_grants\": " << ledger.active_grants << ",\n"
      << "    \"incremental_release_ns\": " << ledger.incremental_ns << ",\n"
      << "    \"full_rescan_release_ns\": " << ledger.full_rescan_ns << ",\n"
      << "    \"release_speedup\": " << ledger.speedup << "\n"
      << "  },\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    out << "    {\"nodes\": " << p.nodes << ", \"gpu_nodes\": " << p.gpu_nodes
        << ", \"jobs\": " << p.jobs << ", \"wall_s\": " << p.wall_s
        << ", \"jobs_per_sec\": " << p.jobs_per_sec
        << ", \"makespan_s\": " << p.makespan_s << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"event_scaling\": [\n";
  for (std::size_t i = 0; i < event_scaling.size(); ++i) {
    const ScalePoint& p = event_scaling[i];
    out << "    {\"nodes\": " << p.nodes << ", \"gpu_nodes\": " << p.gpu_nodes
        << ", \"jobs\": " << p.jobs << ", \"wall_s\": " << p.wall_s
        << ", \"jobs_per_sec\": " << p.jobs_per_sec
        << ", \"makespan_s\": " << p.makespan_s << "}"
        << (i + 1 < event_scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gate\": {\n"
      << "    \"name\": \"cluster_end_to_end_speedup\",\n"
      << "    \"min\": " << min_speedup << ",\n"
      << "    \"actual\": " << speedup << ",\n"
      << "    \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "    \"pass\": " << (gate_pass ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"event_gate\": {\n"
      << "    \"name\": \"event_scale_jobs_per_sec\",\n"
      << "    \"nodes\": " << event_scaling.back().nodes << ",\n"
      << "    \"jobs\": " << event_scaling.back().jobs << ",\n"
      << "    \"min_jobs_per_sec\": " << min_event_jps << ",\n"
      << "    \"actual_jobs_per_sec\": " << event_jps << ",\n"
      << "    \"identical\": " << (event_identical ? "true" : "false")
      << ",\n"
      << "    \"pass\": "
      << (event_identical && event_jps + 1e-12 >= min_event_jps ? "true"
                                                                : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  // Side record: sim/cluster counters behind this run, next to the gate
  // JSON (see docs/observability.md).
  bench::dump_global_metrics_json(json_path);

  std::printf(
      "cluster_throughput --json: %zu nodes / %zu jobs, ref %.2fs vs fast "
      "%.3fs -> %.1fx speedup (parallel profiling: %.3fs, event path "
      "%.3fs), paths %s/%s -> %s\n",
      nodes, n_jobs, ref_s, fast_s, speedup, fast_mt_s, event_s,
      identical ? "identical" : "DIVERGED",
      event_identical ? "identical" : "DIVERGED", json_path.c_str());
  std::printf(
      "cluster_throughput --json: event sweep %zu nodes / %zu jobs at "
      "%.0f jobs/s (floor %.0f), ledger release %.0f ns vs %.0f ns rescan "
      "(%.1fx)\n",
      event_scaling.back().nodes, event_scaling.back().jobs, event_jps,
      min_event_jps, ledger.incremental_ns, ledger.full_rescan_ns,
      ledger.speedup);

  if (!identical) {
    std::fprintf(stderr,
                 "cluster_throughput: GATE FAILED — fast and reference runs "
                 "diverged\n");
    return 1;
  }
  if (!event_identical) {
    std::fprintf(stderr,
                 "cluster_throughput: GATE FAILED — event and reference "
                 "runs diverged on the flat tree\n");
    return 1;
  }
  if (!gate_pass) {
    std::fprintf(stderr,
                 "cluster_throughput: GATE FAILED — end-to-end speedup "
                 "%.2fx < required %.2fx, or event throughput %.0f jobs/s "
                 "< required %.0f\n",
                 speedup, min_speedup, event_jps, min_event_jps);
    return 1;
  }
  return 0;
}

int run_csv_mode(const std::string& path, std::uint64_t seed) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();
  const auto jobs = make_trace(cpu_machine, gpu_machine, /*n_jobs=*/220,
                               /*nodes=*/16, /*gpu_fraction=*/0.2, seed);
  auto config = make_config(16, 4);
  ThreadPool single(1);
  config.pool = &single;
  const core::ClusterRun run =
      core::simulate_cluster(cpu_machine, gpu_machine, jobs, config);

  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  CsvWriter csv(os, {"name", "arrival_s", "start_s", "finish_s", "budget_w",
                     "perf", "energy_j"});
  for (const auto& o : run.jobs) {
    csv.write_row({o.name, g17(o.arrival.value()), g17(o.start.value()),
                   g17(o.finish.value()), g17(o.budget.value()), g17(o.perf),
                   g17(o.energy.value())});
  }
  std::cout << "wrote " << csv.rows_written() << " rows to " << path << '\n';
  return 0;
}

int run_scaling_table(std::uint64_t seed) {
  std::printf("%7s %9s %7s %9s %12s %12s %14s\n", "nodes", "gpu_nodes",
              "jobs", "wall_s", "jobs/s", "makespan_s", "work_per_joule");
  for (const auto& [nodes, gpus, n_jobs] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {64, 8, 5000}, {256, 32, 10000}, {1024, 128, 20000},
           {4096, 512, 50000}}) {
    const ScalePoint p = run_scale_point(nodes, gpus, n_jobs, seed);
    std::printf("%7zu %9zu %7zu %9.3f %12.0f %12.0f %14.4f\n", p.nodes,
                p.gpu_nodes, p.jobs, p.wall_s, p.jobs_per_sec, p.makespan_s,
                p.work_per_joule);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options(
          {"json", "csv", "min-speedup", "min-event-jps", "reps", "smoke",
           "seed"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --json[=FILE] --csv=FILE --min-speedup=N "
                 "--min-event-jps=N --reps=N --smoke --seed=N)\n";
    return 2;
  }

  // Default seed 42 is load-bearing: the golden_cluster_throughput test
  // compares --csv output against a committed snapshot generated with it.
  const auto seed = static_cast<std::uint64_t>(args.value_num("seed", 42.0));

  if (const auto csv_path = args.value("csv"))
    return run_csv_mode(*csv_path, seed);
  if (args.has("json")) {
    const std::string json_path =
        args.value("json").value_or("BENCH_cluster.json");
    const double min_speedup = args.value_num("min-speedup", 10.0);
    // Conservative floor on the 100k-node / 1M-job event sweep (smoke
    // mode shrinks the sweep, so the floor only applies off --smoke).
    const double min_event_jps = args.value_num(
        "min-event-jps", args.has("smoke") ? 0.0 : 20000.0);
    const int reps =
        std::max(1, static_cast<int>(args.value_num("reps", 3.0)));
    return run_gate_mode(json_path, min_speedup, min_event_jps, reps,
                         args.has("smoke"), seed);
  }
  return run_scaling_table(seed);
}
