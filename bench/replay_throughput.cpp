// Throughput of the trace-replay / dynamic-shifting engine: how fast
// replay_trace_batch and shifting_batch chew through (trace × budget)
// grids, fast path vs the retained reference path (docs/dynamic.md).
//
// Three modes:
//   * default: a fast-path scaling table over trace lengths and budget
//     counts (warm phase-node set, full pool).
//   * --json[=path] (default BENCH_replay.json): the CI perf record. On a
//     4-trace × 16-budget npb_ft grid it times the reference path once
//     (fresh per-call phase nodes, a full solve per candidate) and the
//     warm batched fast path best-of---reps on a one-thread pool (so the
//     gate certifies the algorithmic speedup — prepared nodes + split /
//     climb memoization — not core count), verifies replay and shifting
//     grids are bit-identical across the paths, and exits 1 when the
//     smaller of the two speedups falls below --min-speedup (default 12;
//     --min-speedup=0 turns the run into a smoke test). --smoke shrinks
//     the traces so debug/sanitizer ctest configurations stay quick, and
//     --force-generic pins the SIMD dispatch to the portable tier so CI
//     can hold the no-SIMD configuration to the pre-SIMD floor.
//   * --csv=FILE: per-segment dump of a fixed shifting run at full
//     precision for the golden-file regression
//     (tests/golden/replay_throughput.csv).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamic.hpp"
#include "hw/platforms.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/simd.hpp"
#include "sim/trace_replay.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/trace.hpp"

using namespace pbc;

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
[[nodiscard]] double time_once_s(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto dt = Clock::now() - t0;
  return std::chrono::duration_cast<std::chrono::duration<double>>(dt)
      .count();
}

template <class F>
[[nodiscard]] double time_best_s(int reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, time_once_s(f));
  return best;
}

[[nodiscard]] std::string g17(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[nodiscard]] std::vector<workload::PhaseTrace> make_traces(
    const workload::Workload& wl, std::size_t count, double total_units) {
  std::vector<workload::PhaseTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workload::TraceOptions opt;
    opt.total_units = total_units;
    opt.segment_units = 1.0;
    opt.irregularity = 0.6;
    opt.seed = 1000 + i;
    traces.push_back(workload::generate_trace(wl, opt));
  }
  return traces;
}

[[nodiscard]] std::vector<Watts> make_budgets(std::size_t count) {
  // Tight-to-comfortable node budgets on ivybridge (floors 48 + 68 W).
  std::vector<Watts> budgets;
  budgets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    budgets.push_back(Watts{130.0 + 10.0 * static_cast<double>(i)});
  }
  return budgets;
}

[[nodiscard]] std::vector<sim::CapPair> budgets_to_caps(
    std::span<const Watts> budgets) {
  // A fixed 55/45 split of each budget, for the fixed-cap replay grid.
  std::vector<sim::CapPair> caps;
  caps.reserve(budgets.size());
  for (const Watts b : budgets) {
    caps.push_back(sim::CapPair{Watts{0.55 * b.value()},
                                Watts{0.45 * b.value()}});
  }
  return caps;
}

[[nodiscard]] bool replays_identical(const sim::TraceReplayResult& a,
                                     const sim::TraceReplayResult& b) {
  if (a.segments.size() != b.segments.size()) return false;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const auto& x = a.segments[i];
    const auto& y = b.segments[i];
    if (x.phase_index != y.phase_index || x.work_units != y.work_units ||
        x.duration.value() != y.duration.value() ||
        x.proc_power.value() != y.proc_power.value() ||
        x.mem_power.value() != y.mem_power.value() ||
        x.rate_gunits != y.rate_gunits) {
      return false;
    }
  }
  return a.aggregate == b.aggregate &&
         a.total_time.value() == b.total_time.value() &&
         a.proc_energy.value() == b.proc_energy.value() &&
         a.mem_energy.value() == b.mem_energy.value();
}

[[nodiscard]] bool shifts_identical(const core::ShiftingResult& a,
                                    const core::ShiftingResult& b) {
  if (a.shifts != b.shifts || a.caps.size() != b.caps.size()) return false;
  for (std::size_t i = 0; i < a.caps.size(); ++i) {
    if (a.caps[i].phase_index != b.caps[i].phase_index ||
        a.caps[i].cpu_cap.value() != b.caps[i].cpu_cap.value() ||
        a.caps[i].mem_cap.value() != b.caps[i].mem_cap.value()) {
      return false;
    }
  }
  return replays_identical(a.replay, b.replay);
}

struct ScalePoint {
  std::size_t segments;
  std::size_t traces;
  std::size_t budgets;
  double wall_s = 0.0;
  double cells_per_sec = 0.0;
  double seg_solves_per_sec = 0.0;
};

[[nodiscard]] ScalePoint run_scale_point(const sim::PhaseNodeSet& nodes,
                                         double total_units,
                                         std::size_t n_traces,
                                         std::size_t n_budgets) {
  const auto traces = make_traces(nodes.wl(), n_traces, total_units);
  const auto budgets = make_budgets(n_budgets);
  std::size_t segments = 0;
  for (const auto& t : traces) segments += t.size();

  ScalePoint p{segments / std::max<std::size_t>(n_traces, 1), n_traces,
               n_budgets};
  std::vector<core::ShiftingResult> out;
  p.wall_s = time_once_s(
      [&] { out = core::shifting_batch(nodes, traces, budgets); });
  const double cells = static_cast<double>(n_traces * n_budgets);
  const double seg_solves =
      static_cast<double>(segments) * static_cast<double>(n_budgets);
  p.cells_per_sec = p.wall_s > 0.0 ? cells / p.wall_s : 0.0;
  p.seg_solves_per_sec = p.wall_s > 0.0 ? seg_solves / p.wall_s : 0.0;
  return p;
}

int run_gate_mode(const std::string& json_path, double min_speedup, int reps,
                  bool smoke) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const workload::Workload wl = workload::npb_ft();

  const std::size_t n_traces = smoke ? 2 : 4;
  const std::size_t n_budgets = smoke ? 4 : 16;
  const double total_units = smoke ? 60.0 : 600.0;
  const auto traces = make_traces(wl, n_traces, total_units);
  const auto budgets = make_budgets(n_budgets);
  const auto caps = budgets_to_caps(budgets);
  std::size_t segments = 0;
  for (const auto& t : traces) segments += t.size();
  const std::size_t cells = n_traces * n_budgets;

  // The reference baseline: the retained original implementation, called
  // per grid cell the way pre-engine code had to — fresh per-call phase
  // nodes, one full steady-state solve per segment / climb candidate.
  const sim::CpuNodeSim node(machine, wl);
  core::ShiftingConfig ref_cfg;
  ref_cfg.path = sim::ReplayPath::kReference;

  std::vector<sim::TraceReplayResult> ref_replays(cells);
  std::vector<core::ShiftingResult> ref_shifts(cells);
  const double ref_replay_s = time_once_s([&] {
    for (std::size_t i = 0; i < cells; ++i) {
      ref_replays[i] = sim::replay_trace(node, traces[i / n_budgets],
                                         caps[i % n_budgets].cpu_cap,
                                         caps[i % n_budgets].mem_cap,
                                         sim::ReplayPath::kReference);
    }
  });
  const double ref_shift_s = time_once_s([&] {
    for (std::size_t i = 0; i < cells; ++i) {
      ref_shifts[i] = core::replay_with_shifting(
          node, traces[i / n_budgets], budgets[i % n_budgets], ref_cfg);
    }
  });

  // The warm batched fast path: phase-node set prepared up front (the
  // "warm" in the gate's name), pool pinned to one thread so the gate
  // certifies the algorithmic speedup, not core count.
  ThreadPool single(1);
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);

  std::vector<sim::TraceReplayResult> fast_replays;
  const double fast_replay_s = time_best_s(reps, [&] {
    fast_replays = sim::replay_trace_batch(*nodes, traces, caps, &single);
  });
  std::vector<core::ShiftingResult> fast_shifts;
  const double fast_shift_s = time_best_s(reps, [&] {
    fast_shifts = core::shifting_batch(*nodes, traces, budgets, {}, &single);
  });

  // Full-pool timing: adds grid-level parallelism on top.
  std::vector<core::ShiftingResult> mt_shifts;
  const double fast_shift_mt_s = time_best_s(reps, [&] {
    mt_shifts = core::shifting_batch(*nodes, traces, budgets, {});
  });

  bool identical = fast_replays.size() == cells && fast_shifts.size() == cells;
  if (identical) {
    for (std::size_t i = 0; i < cells; ++i) {
      if (!replays_identical(ref_replays[i], fast_replays[i]) ||
          !shifts_identical(ref_shifts[i], fast_shifts[i]) ||
          !shifts_identical(fast_shifts[i], mt_shifts[i])) {
        identical = false;
        break;
      }
    }
  }

  const double replay_speedup =
      fast_replay_s > 0.0 ? ref_replay_s / fast_replay_s : 0.0;
  const double shift_speedup =
      fast_shift_s > 0.0 ? ref_shift_s / fast_shift_s : 0.0;
  const double speedup = std::min(replay_speedup, shift_speedup);
  const bool gate_pass = identical && speedup + 1e-12 >= min_speedup;

  // Fast-path scaling sweep for the record (warm set, full pool).
  std::vector<ScalePoint> scaling;
  if (smoke) {
    scaling.push_back(run_scale_point(*nodes, 60.0, 2, 4));
  } else {
    scaling.push_back(run_scale_point(*nodes, 200.0, 4, 8));
    scaling.push_back(run_scale_point(*nodes, 600.0, 4, 16));
    scaling.push_back(run_scale_point(*nodes, 2000.0, 8, 16));
    scaling.push_back(run_scale_point(*nodes, 6000.0, 8, 32));
  }

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "replay_throughput: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(4);
  out << "{\n"
      << "  \"bench\": \"replay_throughput\",\n"
      << "  \"mode\": \"gate\",\n"
      << "  \"simd_tier\": \"" << sim::simd::to_string(sim::simd::active_tier())
      << "\",\n"
      << "  \"grid\": {\n"
      << "    \"workload\": \"" << wl.name << "\",\n"
      << "    \"traces\": " << n_traces << ",\n"
      << "    \"segments_total\": " << segments << ",\n"
      << "    \"budgets\": " << n_budgets << ",\n"
      << "    \"cells\": " << cells << "\n"
      << "  },\n"
      << "  \"metrics\": {\n"
      << "    \"reference_replay_wall_s\": " << ref_replay_s << ",\n"
      << "    \"fast_replay_wall_s\": " << fast_replay_s << ",\n"
      << "    \"replay_speedup\": " << replay_speedup << ",\n"
      << "    \"reference_shifting_wall_s\": " << ref_shift_s << ",\n"
      << "    \"fast_shifting_wall_s\": " << fast_shift_s << ",\n"
      << "    \"fast_shifting_parallel_wall_s\": " << fast_shift_mt_s
      << ",\n"
      << "    \"shifting_speedup\": " << shift_speedup << ",\n"
      << "    \"paths_identical\": " << (identical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    out << "    {\"segments_per_trace\": " << p.segments
        << ", \"traces\": " << p.traces << ", \"budgets\": " << p.budgets
        << ", \"wall_s\": " << p.wall_s
        << ", \"cells_per_sec\": " << p.cells_per_sec
        << ", \"segment_solves_per_sec\": " << p.seg_solves_per_sec << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gate\": {\n"
      << "    \"name\": \"replay_warm_batched_speedup\",\n"
      << "    \"min\": " << min_speedup << ",\n"
      << "    \"actual\": " << speedup << ",\n"
      << "    \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "    \"pass\": " << (gate_pass ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  // Side record: sim/cluster counters behind this run, next to the gate
  // JSON (see docs/observability.md).
  bench::dump_global_metrics_json(json_path);

  std::printf(
      "replay_throughput --json [%s]: %zu cells (%zu segs), replay ref "
      "%.3fs vs fast %.4fs (%.1fx), shifting ref %.3fs vs fast %.4fs "
      "(%.1fx, parallel %.4fs), paths %s -> %s\n",
      sim::simd::to_string(sim::simd::active_tier()), cells, segments,
      ref_replay_s, fast_replay_s, replay_speedup, ref_shift_s, fast_shift_s,
      shift_speedup, fast_shift_mt_s,
      identical ? "identical" : "DIVERGED", json_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "replay_throughput: GATE FAILED — fast and reference runs "
                 "diverged\n");
    return 1;
  }
  if (!gate_pass) {
    std::fprintf(stderr,
                 "replay_throughput: GATE FAILED — warm batched speedup "
                 "%.2fx < required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

int run_csv_mode(const std::string& path) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const workload::Workload wl = workload::npb_bt();
  workload::TraceOptions opt;
  opt.total_units = 200.0;
  opt.segment_units = 1.0;
  opt.irregularity = 0.6;
  opt.seed = 42;
  const auto trace = workload::generate_trace(wl, opt);
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const core::ShiftingResult run =
      core::replay_with_shifting(*nodes, trace, Watts{170.0});

  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  CsvWriter csv(os, {"segment", "phase_index", "cpu_cap_w", "mem_cap_w",
                     "duration_s", "proc_power_w", "mem_power_w",
                     "rate_gunits"});
  for (std::size_t i = 0; i < run.replay.segments.size(); ++i) {
    const auto& seg = run.replay.segments[i];
    const auto& c = run.caps[i];
    csv.write_row({std::to_string(i), std::to_string(seg.phase_index),
                   g17(c.cpu_cap.value()), g17(c.mem_cap.value()),
                   g17(seg.duration.value()), g17(seg.proc_power.value()),
                   g17(seg.mem_power.value()), g17(seg.rate_gunits)});
  }
  std::cout << "wrote " << csv.rows_written() << " rows to " << path << '\n';
  return 0;
}

int run_scaling_table() {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto nodes =
      sim::make_prepared_phase_nodes(machine, workload::npb_ft());
  std::printf("%10s %7s %8s %9s %12s %18s\n", "segs/trace", "traces",
              "budgets", "wall_s", "cells/s", "segment_solves/s");
  for (const auto& [units, n_traces, n_budgets] :
       std::vector<std::tuple<double, std::size_t, std::size_t>>{
           {200.0, 4, 8}, {600.0, 4, 16}, {2000.0, 8, 16},
           {6000.0, 8, 32}}) {
    const ScalePoint p =
        run_scale_point(*nodes, units, n_traces, n_budgets);
    std::printf("%10zu %7zu %8zu %9.3f %12.0f %18.0f\n", p.segments,
                p.traces, p.budgets, p.wall_s, p.cells_per_sec,
                p.seg_solves_per_sec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options(
          {"json", "csv", "min-speedup", "reps", "smoke", "force-generic"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --json[=FILE] --csv=FILE --min-speedup=N "
                 "--reps=N --smoke --force-generic)\n";
    return 2;
  }
  if (args.has("force-generic")) {
    pbc::sim::simd::force_simd_tier(pbc::sim::simd::SimdTier::kGeneric);
  }

  if (const auto csv_path = args.value("csv")) return run_csv_mode(*csv_path);
  if (args.has("json")) {
    const std::string json_path =
        args.value("json").value_or("BENCH_replay.json");
    const double min_speedup = args.value_num("min-speedup", 12.0);
    const int reps =
        std::max(1, static_cast<int>(args.value_num("reps", 3.0)));
    return run_gate_mode(json_path, min_speedup, reps, args.has("smoke"));
  }
  return run_scaling_table();
}
