// Convergence and regret of the online closed-loop controller
// (src/ctrl) against the offline COORD oracle — the profiled split the
// controller has to discover from telemetry alone (docs/online.md).
//
// Two modes:
//   * default: a per-case convergence table (stationary + square-wave).
//   * --json[=path] (default BENCH_online.json): the CI record. On a
//     stationary set (single-phase traces over the npb_ft / npb_bt
//     phases at several budgets) it measures cumulative regret — the
//     relative wall-time lost vs replaying the same trace at the
//     offline COORD split for that phase — and gates on the mean
//     staying within --max-regret (default 5%). On two-phase
//     square-wave traces it measures, per dwell after the first two
//     learning cycles, how many segments the controller needs to get
//     back within one lattice step of the dwell's settled split, and
//     gates on the worst dwell staying within --recovery-limit
//     (default 16 segments — roughly half a dwell; at generous budgets
//     the perf surface plateaus and near-tie arms keep the split
//     drifting a few steps after the jump-to-best). Both gates are
//     behaviour gates on a fully
//     deterministic run (seeded controller RNG), so they are enforced
//     in every build configuration, sanitizers included. --smoke
//     shrinks the case set for debug/sanitizer ctest runs; --seed
//     reseeds the controller stream.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "ctrl/closed_loop.hpp"
#include "hw/platforms.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "util/cli.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/trace.hpp"

using namespace pbc;

namespace {

struct CaseResult {
  std::string label;
  double budget_w = 0.0;
  double controller_s = 0.0;
  double oracle_s = 0.0;
  double regret = 0.0;        ///< max(0, controller/oracle - 1)
  std::size_t settle_segments = 0;
  std::size_t moves = 0;
  std::size_t explorations = 0;
};

struct RecoveryResult {
  std::string label;
  double budget_w = 0.0;
  double regret = 0.0;
  std::size_t dwells_measured = 0;
  std::size_t max_recovery = 0;  ///< worst dwell, in segments
  std::size_t phase_changes = 0;
};

[[nodiscard]] workload::PhaseTrace stationary_trace(std::size_t phase,
                                                    std::size_t segments) {
  workload::PhaseTrace t;
  t.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    t.push_back(workload::TraceSegment{phase, 1.0});
  }
  return t;
}

[[nodiscard]] workload::PhaseTrace square_wave_trace(std::size_t phase_a,
                                                     std::size_t phase_b,
                                                     std::size_t dwell,
                                                     std::size_t segments) {
  workload::PhaseTrace t;
  t.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    t.push_back(workload::TraceSegment{
        (i / dwell) % 2 == 0 ? phase_a : phase_b, 1.0});
  }
  return t;
}

/// The offline COORD oracle split for one phase of `wl`: profile the
/// single-phase workload with full offline access, run Algorithm 1, and
/// clamp into the controller's feasible band so both sides play under
/// the same floors.
[[nodiscard]] sim::CapPair oracle_split(const hw::CpuMachine& machine,
                                        const workload::Workload& wl,
                                        std::size_t phase, Watts budget) {
  const sim::CpuNodeSim node(machine,
                             sim::single_phase_workload(wl, phase));
  const core::CpuCriticalPowers profile =
      core::profile_critical_powers(node);
  const core::CpuAllocation a = core::coord_cpu(profile, budget);
  const auto [cpu_min, mem_min] = ctrl::controller_floors({}, machine);
  const double cpu =
      std::min(std::max(a.cpu.value(), cpu_min.value()),
               budget.value() - mem_min.value());
  return sim::CapPair{Watts{cpu}, Watts{budget.value() - cpu}};
}

/// Index after which every segment's cpu cap stays within one lattice
/// step of the final cap. Exploration probes move exactly one step, so a
/// settled controller never trips this; jumps and climbs do.
[[nodiscard]] std::size_t settle_index(
    const std::vector<ctrl::ClosedLoopSegment>& caps, double step) {
  if (caps.empty()) return 0;
  const double final_cpu = caps.back().cpu_cap.value();
  std::size_t settle = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (std::abs(caps[i].cpu_cap.value() - final_cpu) > step + 1e-9) {
      settle = i + 1;
    }
  }
  return settle;
}

[[nodiscard]] CaseResult run_stationary_case(
    const sim::PhaseNodeSet& nodes, std::size_t phase, Watts budget,
    std::size_t segments, const ctrl::ControllerConfig& cfg) {
  CaseResult out;
  out.label = nodes.wl().name + "/" +
              nodes.wl().phases[phase].name;
  out.budget_w = budget.value();
  const workload::PhaseTrace trace = stationary_trace(phase, segments);

  const ctrl::ClosedLoopResult run =
      ctrl::run_closed_loop(nodes, trace, budget, cfg);
  const sim::CapPair oracle =
      oracle_split(nodes.machine(), nodes.wl(), phase, budget);
  const sim::TraceReplayResult ref =
      sim::replay_trace(nodes, trace, oracle.cpu_cap, oracle.mem_cap);

  out.controller_s = run.replay.total_time.value();
  out.oracle_s = ref.total_time.value();
  out.regret = out.oracle_s > 0.0
                   ? std::max(0.0, out.controller_s / out.oracle_s - 1.0)
                   : 0.0;
  out.settle_segments = settle_index(run.caps, cfg.step.value());
  out.moves = run.stats.moves;
  out.explorations = run.stats.explorations;
  return out;
}

[[nodiscard]] RecoveryResult run_square_wave_case(
    const sim::PhaseNodeSet& nodes, std::size_t phase_a, std::size_t phase_b,
    Watts budget, std::size_t dwell, std::size_t segments,
    const ctrl::ControllerConfig& cfg) {
  RecoveryResult out;
  out.label = nodes.wl().name + "/" + nodes.wl().phases[phase_a].name +
              "<->" + nodes.wl().phases[phase_b].name;
  out.budget_w = budget.value();
  const workload::PhaseTrace trace =
      square_wave_trace(phase_a, phase_b, dwell, segments);

  const ctrl::ClosedLoopResult run =
      ctrl::run_closed_loop(nodes, trace, budget, cfg);
  out.phase_changes = run.stats.phase_changes;

  // Offline dynamic oracle: each segment at its phase's COORD split.
  const sim::CapPair split_a =
      oracle_split(nodes.machine(), nodes.wl(), phase_a, budget);
  const sim::CapPair split_b =
      oracle_split(nodes.machine(), nodes.wl(), phase_b, budget);
  double oracle_s = 0.0;
  const sim::AllocationSample sample_a =
      nodes.phase(phase_a).steady_state(split_a.cpu_cap, split_a.mem_cap);
  const sim::AllocationSample sample_b =
      nodes.phase(phase_b).steady_state(split_b.cpu_cap, split_b.mem_cap);
  for (const auto& seg : trace) {
    const auto& s = seg.phase_index == phase_a ? sample_a : sample_b;
    if (s.rate_gunits > 0.0) oracle_s += seg.work_units / s.rate_gunits;
  }
  const double ctrl_s = run.replay.total_time.value();
  out.regret = oracle_s > 0.0 ? std::max(0.0, ctrl_s / oracle_s - 1.0) : 0.0;

  // Per-dwell recovery: after the first two full cycles (the controller
  // is allowed to *learn* both phases once), every re-entry must get
  // back within one step of the dwell's settled split quickly.
  const double step = cfg.step.value();
  const std::size_t skip = 4 * dwell;  // two full A/B cycles
  for (std::size_t start = skip; start + dwell <= run.caps.size();
       start += dwell) {
    const double settled = run.caps[start + dwell - 1].cpu_cap.value();
    std::size_t rec = dwell;
    for (std::size_t k = 0; k < dwell; ++k) {
      if (std::abs(run.caps[start + k].cpu_cap.value() - settled) <=
          step + 1e-9) {
        rec = k;
        break;
      }
    }
    out.max_recovery = std::max(out.max_recovery, rec);
    ++out.dwells_measured;
  }
  return out;
}

struct Suite {
  std::vector<CaseResult> stationary;
  std::vector<RecoveryResult> recovery;
};

[[nodiscard]] Suite run_suite(bool smoke, std::uint64_t seed) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  ctrl::ControllerConfig cfg;
  cfg.seed = seed;

  const std::size_t segments = smoke ? 150 : 600;
  const std::size_t dwell = smoke ? 25 : 30;
  const std::vector<Watts> budgets =
      smoke ? std::vector<Watts>{Watts{150.0}}
            : std::vector<Watts>{Watts{140.0}, Watts{170.0}, Watts{200.0}};
  const std::vector<workload::Workload> wls =
      smoke ? std::vector<workload::Workload>{workload::npb_ft()}
            : std::vector<workload::Workload>{workload::npb_ft(),
                                              workload::npb_bt()};

  Suite suite;
  for (const auto& wl : wls) {
    const sim::PhaseNodeSet nodes(machine, wl);
    const std::size_t phases = std::min<std::size_t>(wl.phases.size(), 3);
    for (std::size_t p = 0; p < phases; ++p) {
      for (const Watts b : budgets) {
        suite.stationary.push_back(
            run_stationary_case(nodes, p, b, segments, cfg));
      }
    }
    if (phases >= 2) {
      for (const Watts b : budgets) {
        suite.recovery.push_back(run_square_wave_case(
            nodes, 0, 1, b, dwell, segments, cfg));
      }
    }
  }
  return suite;
}

int run_gate_mode(const std::string& json_path, double max_regret,
                  std::size_t recovery_limit, bool smoke,
                  std::uint64_t seed) {
  const Suite suite = run_suite(smoke, seed);

  double regret_sum = 0.0;
  double regret_max = 0.0;
  double settle_sum = 0.0;
  for (const CaseResult& c : suite.stationary) {
    regret_sum += c.regret;
    regret_max = std::max(regret_max, c.regret);
    settle_sum += static_cast<double>(c.settle_segments);
  }
  const double n_stationary =
      static_cast<double>(std::max<std::size_t>(suite.stationary.size(), 1));
  const double mean_regret = regret_sum / n_stationary;
  const double mean_settle = settle_sum / n_stationary;

  std::size_t max_recovery = 0;
  double pc_regret_max = 0.0;
  for (const RecoveryResult& r : suite.recovery) {
    max_recovery = std::max(max_recovery, r.max_recovery);
    pc_regret_max = std::max(pc_regret_max, r.regret);
  }

  const bool regret_pass = mean_regret <= max_regret + 1e-12;
  const bool recovery_pass = max_recovery <= recovery_limit;
  const bool gate_pass = regret_pass && recovery_pass;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "online_regret: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"online_regret\",\n"
      << "  \"mode\": \"gate\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"stationary\": [\n";
  for (std::size_t i = 0; i < suite.stationary.size(); ++i) {
    const CaseResult& c = suite.stationary[i];
    out << "    {\"case\": \"" << c.label << "\", \"budget_w\": "
        << c.budget_w << ", \"controller_s\": " << c.controller_s
        << ", \"oracle_s\": " << c.oracle_s << ", \"regret\": " << c.regret
        << ", \"settle_segments\": " << c.settle_segments
        << ", \"moves\": " << c.moves << ", \"explorations\": "
        << c.explorations << "}"
        << (i + 1 < suite.stationary.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"phase_change\": [\n";
  for (std::size_t i = 0; i < suite.recovery.size(); ++i) {
    const RecoveryResult& r = suite.recovery[i];
    out << "    {\"case\": \"" << r.label << "\", \"budget_w\": "
        << r.budget_w << ", \"regret\": " << r.regret
        << ", \"dwells_measured\": " << r.dwells_measured
        << ", \"max_recovery_segments\": " << r.max_recovery
        << ", \"phase_changes\": " << r.phase_changes << "}"
        << (i + 1 < suite.recovery.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"metrics\": {\n"
      << "    \"stationary_cases\": " << suite.stationary.size() << ",\n"
      << "    \"mean_regret\": " << mean_regret << ",\n"
      << "    \"max_regret\": " << regret_max << ",\n"
      << "    \"mean_settle_segments\": " << mean_settle << ",\n"
      << "    \"phase_change_cases\": " << suite.recovery.size() << ",\n"
      << "    \"max_recovery_segments\": " << max_recovery << ",\n"
      << "    \"phase_change_max_regret\": " << pc_regret_max << "\n"
      << "  },\n"
      << "  \"gate\": {\n"
      << "    \"name\": \"online_regret_bound\",\n"
      << "    \"max_mean_regret\": " << max_regret << ",\n"
      << "    \"actual_mean_regret\": " << mean_regret << ",\n"
      << "    \"recovery_limit_segments\": " << recovery_limit << ",\n"
      << "    \"actual_max_recovery_segments\": " << max_recovery << ",\n"
      << "    \"pass\": " << (gate_pass ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  bench::dump_global_metrics_json(json_path);

  std::printf(
      "online_regret --json: %zu stationary cases (mean regret %.4f, max "
      "%.4f, mean settle %.1f segs), %zu square-wave cases (max recovery "
      "%zu segs) -> %s\n",
      suite.stationary.size(), mean_regret, regret_max, mean_settle,
      suite.recovery.size(), max_recovery, json_path.c_str());

  if (!regret_pass) {
    std::fprintf(stderr,
                 "online_regret: GATE FAILED — mean stationary regret "
                 "%.4f > allowed %.4f\n",
                 mean_regret, max_regret);
    return 1;
  }
  if (!recovery_pass) {
    std::fprintf(stderr,
                 "online_regret: GATE FAILED — max recovery %zu segments "
                 "> allowed %zu\n",
                 max_recovery, recovery_limit);
    return 1;
  }
  return 0;
}

int run_table(std::uint64_t seed) {
  const Suite suite = run_suite(/*smoke=*/false, seed);
  std::printf("%-28s %8s %10s %10s %8s %8s %7s\n", "stationary case",
              "budget", "ctrl_s", "oracle_s", "regret", "settle", "moves");
  for (const CaseResult& c : suite.stationary) {
    std::printf("%-28s %8.0f %10.4f %10.4f %7.2f%% %8zu %7zu\n",
                c.label.c_str(), c.budget_w, c.controller_s, c.oracle_s,
                100.0 * c.regret, c.settle_segments, c.moves);
  }
  std::printf("\n%-28s %8s %8s %9s %10s\n", "square-wave case", "budget",
              "regret", "recovery", "pchanges");
  for (const RecoveryResult& r : suite.recovery) {
    std::printf("%-28s %8.0f %7.2f%% %9zu %10zu\n", r.label.c_str(),
                r.budget_w, 100.0 * r.regret, r.max_recovery,
                r.phase_changes);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options(
          {"json", "max-regret", "recovery-limit", "smoke", "seed"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --json[=FILE] --max-regret=X "
                 "--recovery-limit=N --smoke --seed=N)\n";
    return 2;
  }
  const auto seed =
      static_cast<std::uint64_t>(args.value_num("seed", 2016.0));
  if (args.has("json")) {
    const std::string json_path =
        args.value("json").value_or("BENCH_online.json");
    const double max_regret = args.value_num("max-regret", 0.05);
    const auto recovery_limit = static_cast<std::size_t>(
        args.value_num("recovery-limit", 16.0));
    return run_gate_mode(json_path, max_regret, recovery_limit,
                         args.has("smoke"), seed);
  }
  return run_table(seed);
}
