// Shared helpers for the bench harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation: it runs the corresponding experiment on the simulated
// platforms and prints the same rows/series the paper reports, as aligned
// tables plus ASCII renderings of the figures. EXPERIMENTS.md records the
// paper-claimed vs. measured values.
#pragma once

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace pbc::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << '\n'
            << std::string(78, '=') << '\n'
            << id << " — " << title << '\n'
            << std::string(78, '=') << '\n';
}

inline void print_section(const std::string& title) {
  std::cout << '\n' << "--- " << title << " ---\n";
}

/// Best and worst performance over a split sweep.
struct Spread {
  double best = 0.0;
  double worst = 1e300;
  [[nodiscard]] double ratio() const {
    return worst > 0.0 ? best / worst : 0.0;
  }
};

inline Spread spread_of(const std::vector<sim::AllocationSample>& samples) {
  Spread s;
  for (const auto& x : samples) {
    s.best = std::max(s.best, x.perf);
    s.worst = std::min(s.worst, x.perf);
  }
  return s;
}

/// Writes the given registry's JSON snapshot next to a bench's --json
/// record (at `<json_path>.metrics.json`), so every gate run ships the
/// counters behind its numbers (sim table builds, cluster admission, svc
/// cache traffic). Failure to write is reported but never fails the run —
/// metrics are a side record, not part of the gate.
inline void dump_metrics_json(const std::string& json_path,
                              const obs::MetricsRegistry& registry) {
  const std::string path = json_path + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench: cannot write metrics snapshot " << path << '\n';
    return;
  }
  out << obs::render_json(registry.snapshot());
}

inline void dump_global_metrics_json(const std::string& json_path) {
  dump_metrics_json(json_path, obs::global_registry());
}

}  // namespace pbc::bench
