// Shared helpers for the bench harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation: it runs the corresponding experiment on the simulated
// platforms and prints the same rows/series the paper reports, as aligned
// tables plus ASCII renderings of the figures. EXPERIMENTS.md records the
// paper-claimed vs. measured values.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace pbc::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << '\n'
            << std::string(78, '=') << '\n'
            << id << " — " << title << '\n'
            << std::string(78, '=') << '\n';
}

inline void print_section(const std::string& title) {
  std::cout << '\n' << "--- " << title << " ---\n";
}

/// Best and worst performance over a split sweep.
struct Spread {
  double best = 0.0;
  double worst = 1e300;
  [[nodiscard]] double ratio() const {
    return worst > 0.0 ? best / worst : 0.0;
  }
};

inline Spread spread_of(const std::vector<sim::AllocationSample>& samples) {
  Spread s;
  for (const auto& x : samples) {
    s.best = std::max(s.best, x.perf);
    s.worst = std::min(s.worst, x.perf);
  }
  return s;
}

}  // namespace pbc::bench
