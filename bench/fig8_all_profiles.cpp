// Figure 8 — Performance profiles of all benchmarks on the experimental
// platforms: the full characterization sweep behind §6.2's "patterns common
// to all benchmarks" and "workload dependent variations".
//
// Paper findings this harness must reproduce:
//  * every CPU benchmark exhibits the same categorical structure (up to
//    six scenarios at a generous budget), every GPU benchmark at most
//    three;
//  * workload-dependent variation: per-benchmark max power demands,
//    optimal splits, spans, and performance sensitivity differ;
//  * actual power consumption stays between a lower and an upper bound.
#include "bench_common.hpp"
#include "core/categorize.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/energy.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void cpu_platform_profiles(const hw::CpuMachine& machine, double budget) {
  bench::print_section(machine.name + " at " +
                       TableWriter::num(budget, 0) + " W");
  TableWriter t({"benchmark", "metric", "perf_max", "best_cpu_W",
                 "best_mem_W", "spread", "categories", "L1c_W", "L1m_W"});
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, wl);
    sim::BudgetSweep sweep;
    sweep.budget = Watts{budget};
    sweep.samples = sim::sweep_cpu_split(
        node, Watts{budget}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    const auto sp = bench::spread_of(sweep.samples);
    const auto* best = sweep.best();
    const auto cp = core::profile_critical_powers(node);
    std::string cats;
    for (const auto c : core::categories_present(
             core::category_spans_cpu(sweep, machine))) {
      if (!cats.empty()) cats += ',';
      cats += core::to_string(c);
    }
    t.add_row({wl.name, wl.metric_name, TableWriter::num(sp.best, 2),
               TableWriter::num(best->proc_cap.value(), 0),
               TableWriter::num(best->mem_cap.value(), 0),
               TableWriter::num(sp.ratio(), 1) + "x", cats,
               TableWriter::num(cp.cpu_l1.value(), 1),
               TableWriter::num(cp.mem_l1.value(), 1)});
  }
  t.render(std::cout);
}

void gpu_platform_profiles(const hw::GpuMachine& card) {
  bench::print_section(card.name);
  TableWriter t({"benchmark", "cap_W", "perf_max", "best_mem_W", "spread",
                 "categories"});
  for (const auto& wl : workload::gpu_suite()) {
    const sim::GpuNodeSim node(card, wl);
    for (double cap : {150.0, 250.0}) {
      sim::BudgetSweep sweep;
      sweep.budget = Watts{cap};
      sweep.samples = sim::sweep_gpu_split(node, Watts{cap});
      const auto sp = bench::spread_of(sweep.samples);
      const auto* best = sweep.best();
      std::string cats;
      for (const auto c :
           core::categories_present(core::category_spans_gpu(sweep))) {
        if (!cats.empty()) cats += ',';
        cats += core::to_string(c);
      }
      t.add_row({wl.name, TableWriter::num(cap, 0),
                 TableWriter::num(sp.best, 1),
                 TableWriter::num(best->mem_cap.value(), 1),
                 TableWriter::num(100.0 * (sp.ratio() - 1.0), 1) + "%",
                 cats});
    }
  }
  t.render(std::cout);
}

}  // namespace

// §6.2 also reports how *energy efficiency* varies with the allocation:
// perf-per-watt across the split sweep, per benchmark.
void efficiency_profiles(const hw::CpuMachine& machine, double budget) {
  bench::print_section("energy efficiency, " + machine.name + " at " +
                       TableWriter::num(budget, 0) + " W");
  TableWriter t({"benchmark", "best_eff_perf_per_W", "at_mem_W",
                 "eff_at_perf_optimum", "worst_eff"});
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, wl);
    sim::BudgetSweep sweep;
    sweep.budget = Watts{budget};
    sweep.samples = sim::sweep_cpu_split(
        node, Watts{budget}, {Watts{48.0}, Watts{40.0}, Watts{4.0}});
    const auto* eff = sim::most_efficient(sweep);
    const auto* best = sweep.best();
    double worst = 1e300;
    for (const auto& s : sweep.samples) worst = std::min(worst, s.efficiency());
    t.add_row({wl.name, TableWriter::num(eff->efficiency(), 4),
               TableWriter::num(eff->mem_cap.value(), 0),
               TableWriter::num(best->efficiency(), 4),
               TableWriter::num(worst, 4)});
  }
  t.render(std::cout);
}

int main() {
  bench::print_header("Figure 8",
                      "Profiles of all 11 CPU + 6 GPU benchmarks");
  cpu_platform_profiles(hw::ivybridge_node(), 240.0);
  cpu_platform_profiles(hw::haswell_node(), 230.0);
  gpu_platform_profiles(hw::titan_xp());
  gpu_platform_profiles(hw::titan_v());
  efficiency_profiles(hw::ivybridge_node(), 240.0);
  std::cout << "\n(paper: common categorical patterns across all "
               "benchmarks; workload-specific demands, spans, and optimal "
               "splits; efficiency collapses at poorly coordinated splits)\n";
  return 0;
}
