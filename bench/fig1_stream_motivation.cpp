// Figure 1 — Performance of STREAM with (a) CPU computing and (b) GPU
// computing: perf_max vs. total power budget (left panels) and performance
// vs. cross-component power allocation at a fixed budget (right panels:
// 208 W for the CPU node, 140 W for the Titan XP).
//
// Paper findings this harness must reproduce:
//  * perf_max grows non-linearly with the budget and flattens;
//  * at 208 W the best CPU split beats the worst by ~30×, at 140 W the
//    best GPU split beats the worst by a double-digit percentage;
//  * the total consumed power stays under the budget across splits;
//  * the full budget can be burned even at terrible splits (power waste).
#include "bench_common.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void cpu_panels() {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());

  bench::print_section("(a) left: STREAM perf_max vs total budget (IvyBridge)");
  const auto budgets = sim::budget_grid(Watts{130.0}, Watts{280.0},
                                        Watts{10.0});
  const auto frontier = core::perf_frontier_cpu(node, budgets);
  TableWriter t({"budget_W", "perf_max_GBs", "best_cpu_W", "best_mem_W",
                 "consumed_W"});
  PlotSeries series{"perf_max", {}, {}};
  for (const auto& fp : frontier) {
    t.add_row({TableWriter::num(fp.budget.value(), 0),
               TableWriter::num(fp.perf_max, 1),
               TableWriter::num(fp.best_proc_cap.value(), 0),
               TableWriter::num(fp.best_mem_cap.value(), 0),
               TableWriter::num(fp.consumed.value(), 1)});
    series.x.push_back(fp.budget.value());
    series.y.push_back(fp.perf_max);
  }
  t.render(std::cout);
  PlotOptions opt;
  opt.title = "STREAM (CPU): perf_max [GB/s] vs budget [W]";
  opt.x_label = "total power budget (W)";
  std::cout << render_plot({series}, opt);

  bench::print_section("(a) right: perf vs allocation at 208 W");
  const auto samples = sim::sweep_cpu_split(
      node, Watts{208.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
  TableWriter t2({"mem_cap_W", "cpu_cap_W", "perf_GBs", "cpu_W", "mem_W",
                  "total_W", "under_budget"});
  PlotSeries perf{"perf", {}, {}};
  PlotSeries total{"total power", {}, {}};
  for (const auto& s : samples) {
    t2.add_row({TableWriter::num(s.mem_cap.value(), 0),
                TableWriter::num(s.proc_cap.value(), 0),
                TableWriter::num(s.perf, 1),
                TableWriter::num(s.proc_power.value(), 1),
                TableWriter::num(s.mem_power.value(), 1),
                TableWriter::num(s.total_power().value(), 1),
                s.total_power().value() <= 208.0 + 0.2 ? "yes" : "no*"});
    perf.x.push_back(s.mem_cap.value());
    perf.y.push_back(s.perf);
    total.x.push_back(s.mem_cap.value());
    total.y.push_back(s.total_power().value());
  }
  t2.render(std::cout);
  std::cout << "(*) caps below hardware floors cannot be enforced "
               "(paper scenarios V/VI)\n";
  PlotOptions opt2;
  opt2.title = "STREAM (CPU) at 208 W: perf [GB/s] vs memory allocation [W]";
  opt2.x_label = "memory power allocation (W)";
  std::cout << render_plot({perf}, opt2);

  const auto sp = bench::spread_of(samples);
  std::cout << "\nbest/worst at 208 W: " << TableWriter::num(sp.best, 1)
            << " / " << TableWriter::num(sp.worst, 1) << " GB/s  =>  "
            << TableWriter::num(sp.ratio(), 1)
            << "x  (paper: up to ~30x)\n";
}

void gpu_panels() {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());

  bench::print_section("(b) left: GPU-STREAM perf_max vs board cap (Titan XP)");
  const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0}, Watts{12.5});
  const auto frontier = core::perf_frontier_gpu(node, caps);
  TableWriter t({"cap_W", "perf_max_GBs", "mem_alloc_W", "consumed_W"});
  PlotSeries series{"perf_max", {}, {}};
  for (const auto& fp : frontier) {
    t.add_row({TableWriter::num(fp.budget.value(), 1),
               TableWriter::num(fp.perf_max, 1),
               TableWriter::num(fp.best_mem_cap.value(), 1),
               TableWriter::num(fp.consumed.value(), 1)});
    series.x.push_back(fp.budget.value());
    series.y.push_back(fp.perf_max);
  }
  t.render(std::cout);
  PlotOptions opt;
  opt.title = "GPU-STREAM (Titan XP): perf_max [GB/s] vs board cap [W]";
  opt.x_label = "board power cap (W)";
  std::cout << render_plot({series}, opt);

  bench::print_section("(b) right: perf vs allocation at 140 W");
  const auto samples = sim::sweep_gpu_split(node, Watts{140.0});
  TableWriter t2({"mem_clock_MHz", "est_mem_W", "perf_GBs", "sm+misc_W",
                  "mem_W", "total_W"});
  for (const auto& s : samples) {
    t2.add_row(
        {TableWriter::num(
             node.machine().gpu.mem_clocks_mhz[s.mem_clock_index], 0),
         TableWriter::num(s.mem_cap.value(), 1), TableWriter::num(s.perf, 1),
         TableWriter::num(s.proc_power.value(), 1),
         TableWriter::num(s.mem_power.value(), 1),
         TableWriter::num(s.total_power().value(), 1)});
  }
  t2.render(std::cout);
  const auto sp = bench::spread_of(samples);
  std::cout << "\nbest/worst at 140 W: " << TableWriter::num(sp.best, 1)
            << " / " << TableWriter::num(sp.worst, 1) << " GB/s  =>  +"
            << TableWriter::num(100.0 * (sp.ratio() - 1.0), 1)
            << "%  (paper: >30%; see EXPERIMENTS.md — our spread peaks at "
               "higher caps)\n";
}

}  // namespace

int main() {
  bench::print_header("Figure 1", "STREAM motivation: budgets and splits");
  cpu_panels();
  gpu_panels();
  return 0;
}
