// Ablations for the design choices DESIGN.md calls out. These are not in
// the paper; they quantify *why* the paper's phenomena look the way they do
// by switching individual mechanisms off in the simulator:
//
//  A. T-states disabled       -> the scenario-IV cliff collapses into II
//                                (duty cycling is what makes underpowering
//                                the CPU catastrophic);
//  B. small-memory node       -> the DRAM background term shrinks, and with
//                                it the STREAM best/worst spread and the
//                                "DRAM power stays near max" effect;
//  C. GPU reclaim disabled    -> per-component budgeting without automatic
//                                reclaim strands memory watts, CPU-style;
//  D. COORD regime-C variants -> the paper's proportional rule vs. the
//                                Table-1 intersection-following rule.
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/categorize.hpp"
#include "core/coord.hpp"
#include "core/interpolation.hpp"
#include "core/pack_and_cap.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void ablation_tstates() {
  bench::print_section("A: disable T-states (tstate_levels = 1)");
  auto machine = hw::ivybridge_node();
  const sim::CpuNodeSim with(machine, workload::sra());
  auto no_t = machine;
  no_t.cpu.tstate_levels = 1;  // ladder = P-states only
  const sim::CpuNodeSim without(no_t, workload::sra());

  TableWriter t({"cpu_cap_W", "perf_with_tstates", "perf_without",
                 "with_region", "without_region"});
  for (double c : {66.0, 60.0, 56.0, 52.0, 49.0}) {
    const auto a = with.steady_state(Watts{c}, Watts{150.0});
    const auto b = without.steady_state(Watts{c}, Watts{150.0});
    t.add_row({TableWriter::num(c, 0), TableWriter::num(a.perf, 3),
               TableWriter::num(b.perf, 3), to_string(a.proc_region),
               to_string(b.proc_region)});
  }
  t.render(std::cout);
  std::cout << "(without T-states the package falls straight from the "
               "lowest P-state to the floor: the IV cliff becomes a single "
               "step, and caps between L3 and L2 are simply violated)\n";
}

void ablation_small_memory() {
  bench::print_section("B: small-memory node (32 GB instead of 256 GB)");
  auto big = hw::ivybridge_node();
  auto small = big;
  small.dram.capacity_gb = 32.0;  // background: 68 W -> 8.5 W
  small.dram.floor = Watts{12.0};

  TableWriter t({"node", "bg_power_W", "stream_spread@208W",
                 "sra_mem_power_in_II_W"});
  for (const auto* m : {&big, &small}) {
    const sim::CpuNodeSim stream(*m, workload::stream_cpu());
    const auto sp = bench::spread_of(sim::sweep_cpu_split(
        stream, Watts{208.0}, {Watts{14.0}, Watts{32.0}, Watts{4.0}}));
    const sim::CpuNodeSim sra(*m, workload::sra());
    // Scenario II probe: CPU lightly constrained, memory generous.
    const auto s = sra.steady_state(Watts{85.0}, Watts{200.0});
    t.add_row({m->dram.capacity_gb == 32.0 ? "32 GB" : "256 GB",
               TableWriter::num(m->dram.background_power().value(), 1),
               TableWriter::num(sp.ratio(), 1) + "x",
               TableWriter::num(s.mem_power.value(), 1)});
  }
  t.render(std::cout);
  std::cout << "(the big node's DRAM background keeps scenario-II memory "
               "power near its max and inflates the best/worst spread)\n";
}

void ablation_gpu_reclaim() {
  bench::print_section("C: GPU automatic reclaim on/off (Titan XP, 150 W)");
  TableWriter t({"benchmark", "mem_clock", "perf_reclaim", "perf_no_reclaim",
                 "stranded_W"});
  for (const auto& wl : {workload::sgemm(), workload::minife()}) {
    const sim::GpuNodeSim node(hw::titan_xp(), wl);
    for (std::size_t clk : {std::size_t{0},
                            node.gpu_model().mem_clock_count() - 1}) {
      const auto with = node.steady_state(clk, Watts{150.0});
      const auto without = node.steady_state_no_reclaim(clk, Watts{150.0});
      const double stranded =
          without.mem_cap.value() - without.mem_power.value();
      t.add_row({wl.name,
                 TableWriter::num(
                     node.machine().gpu.mem_clocks_mhz[clk], 0) + " MHz",
                 TableWriter::num(with.perf, 1),
                 TableWriter::num(without.perf, 1),
                 TableWriter::num(stranded, 1)});
    }
  }
  t.render(std::cout);
  std::cout << "(without reclaim, memory watts reserved but not drawn are "
               "stranded — exactly the host-side waste the paper contrasts "
               "GPUs against)\n";
}

void ablation_coord_variants() {
  bench::print_section("D: COORD regime-C rule, proportional vs memory-biased");
  const auto machine = hw::ivybridge_node();
  TableWriter t({"benchmark", "budget_W", "prop/oracle", "membias/oracle"});
  double prop_sum = 0.0;
  double bias_sum = 0.0;
  int n = 0;
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, wl);
    const auto p = core::profile_critical_powers(node);
    for (double b : {150.0, 160.0, 170.0}) {
      const auto prop = core::coord_cpu(p, Watts{b});
      if (prop.status == core::CoordStatus::kBudgetTooSmall) continue;
      const auto bias =
          core::coord_cpu(p, Watts{b}, core::CpuCoordVariant::kMemoryBiased);
      sim::BudgetSweep sweep;
      sweep.budget = Watts{b};
      sweep.samples = sim::sweep_cpu_split(
          node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{2.0}});
      const double oracle = core::oracle_best(sweep).perf;
      const double pp = node.steady_state(prop.cpu, prop.mem).perf / oracle;
      const double bp = node.steady_state(bias.cpu, bias.mem).perf / oracle;
      t.add_row({wl.name, TableWriter::num(b, 0), TableWriter::num(pp, 3),
                 TableWriter::num(bp, 3)});
      prop_sum += pp;
      bias_sum += bp;
      ++n;
    }
  }
  t.render(std::cout);
  std::cout << "mean fraction of oracle at small budgets: proportional "
            << TableWriter::num(prop_sum / n, 3) << ", memory-biased "
            << TableWriter::num(bias_sum / n, 3)
            << "\n(on background-dominated DRAM, following Table 1's "
               "III|IV intersection beats Algorithm 1's proportional rule)\n";
}

void ablation_profiling_cost() {
  bench::print_section(
      "E: profiling cost vs accuracy — COORD (7 runs) vs interpolation "
      "[Sarood+ 30] vs exhaustive sweep");
  const auto machine = hw::ivybridge_node();
  TableWriter t({"benchmark", "budget_W", "coord/oracle(7 runs)",
                 "interp/oracle", "interp_runs", "sweep_runs"});
  for (const auto& wl :
       {workload::sra(), workload::dgemm(), workload::npb_mg()}) {
    const sim::CpuNodeSim node(machine, wl);
    const auto p = core::profile_critical_powers(node);
    for (double b : {190.0, 220.0}) {
      sim::BudgetSweep sweep;
      sweep.budget = Watts{b};
      sweep.samples = sim::sweep_cpu_split(
          node, Watts{b}, {Watts{48.0}, Watts{40.0}, Watts{2.0}});
      const double oracle = core::oracle_best(sweep).perf;
      const auto c = core::coord_cpu(p, Watts{b});
      const double coord = node.steady_state(c.cpu, c.mem).perf;
      const auto interp = core::interpolated_best(node, Watts{b});
      t.add_row({wl.name, TableWriter::num(b, 0),
                 TableWriter::num(coord / oracle, 3),
                 TableWriter::num(interp.achieved_perf / oracle, 3),
                 std::to_string(interp.samples_used),
                 std::to_string(sweep.samples.size())});
    }
  }
  t.render(std::cout);
  std::cout << "(COORD's seven pinned runs are budget-independent; the "
               "interpolation baseline re-profiles per budget; the sweep "
               "oracle costs two orders of magnitude more)\n";
}

void ablation_pack_and_cap() {
  bench::print_section(
      "F: thread packing (Pack & Cap [11]) vs all-cores under tight caps");
  const auto machine = hw::ivybridge_node();
  TableWriter t({"benchmark", "budget_W", "best_cores", "packed_perf",
                 "all_cores_perf", "packing_gain"});
  for (const auto& wl :
       {workload::stream_cpu(), workload::npb_mg(), workload::dgemm()}) {
    const sim::CpuNodeSim node(machine, wl);
    for (double b : {140.0, 160.0, 200.0, 260.0}) {
      const auto r = core::pack_and_cap(node, Watts{b});
      t.add_row({wl.name, TableWriter::num(b, 0),
                 std::to_string(r.best_cores), TableWriter::num(r.perf, 1),
                 TableWriter::num(r.perf_all_cores, 1),
                 TableWriter::num(r.packing_gain(), 2) + "x"});
    }
  }
  t.render(std::cout);
  std::cout << "(packing pays exactly where scenario IV lives: when the "
               "all-cores configuration is forced into duty cycling; at "
               "generous budgets all cores at a lower P-state dominate)\n";
}

}  // namespace

int main() {
  bench::print_header("Ablations", "mechanism-level what-ifs (not in paper)");
  ablation_tstates();
  ablation_small_memory();
  ablation_gpu_reclaim();
  ablation_coord_variants();
  ablation_profiling_cost();
  ablation_pack_and_cap();
  return 0;
}
