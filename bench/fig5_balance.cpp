// Figure 5 — Balanced compute and memory access for a 208 W budget:
// component capacity vs. utilization across splits for DGEMM and STREAM on
// the IvyBridge node.
//
// Paper findings this harness must reproduce:
//  * at the optimal split both compute and memory-access utilization are
//    close to 100% (balanced interaction);
//  * when processors are underpowered, compute utilization is high but
//    memory utilization is low (execution is compute-bound), and vice
//    versa;
//  * DGEMM's optimum allocates power proportionally to compute, STREAM's
//    to memory access.
#include "bench_common.hpp"
#include "core/balance.hpp"
#include "core/baselines.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

namespace {

void balance_for(const workload::Workload& wl) {
  bench::print_section(wl.name + " on IvyBridge at 208 W");
  const sim::CpuNodeSim node(hw::ivybridge_node(), wl);
  const auto points = core::balance_sweep(node, Watts{208.0}, Watts{56.0},
                                          Watts{40.0}, Watts{8.0});

  TableWriter t({"cpu_W", "mem_W", "compute_cap", "mem_cap", "actual",
                 "compute_util", "mem_util"});
  PlotSeries cu{"compute util", {}, {}};
  PlotSeries mu{"memory util", {}, {}};
  for (const auto& bp : points) {
    t.add_row({TableWriter::num(bp.proc_cap.value(), 0),
               TableWriter::num(bp.mem_cap.value(), 0),
               TableWriter::num(bp.compute_capacity, 2),
               TableWriter::num(bp.mem_capacity, 2),
               TableWriter::num(bp.actual, 2),
               TableWriter::num(100.0 * bp.compute_utilization, 1) + "%",
               TableWriter::num(100.0 * bp.mem_utilization, 1) + "%"});
    cu.x.push_back(bp.mem_cap.value());
    cu.y.push_back(bp.compute_utilization);
    mu.x.push_back(bp.mem_cap.value());
    mu.y.push_back(bp.mem_utilization);
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = wl.name + ": capacity utilization vs memory allocation (208 W)";
  opt.x_label = "memory power allocation (W)";
  std::cout << render_plot({cu, mu}, opt);

  // The optimal split balances both utilizations.
  sim::BudgetSweep sweep;
  sweep.budget = Watts{208.0};
  sweep.samples = sim::sweep_cpu_split(
      node, Watts{208.0}, {Watts{56.0}, Watts{40.0}, Watts{4.0}});
  const auto& best = core::oracle_best(sweep);
  const auto bp = core::balance_at(node, best.proc_cap, best.mem_cap);
  std::cout << "optimal split (" << TableWriter::num(best.proc_cap.value(), 0)
            << " W cpu, " << TableWriter::num(best.mem_cap.value(), 0)
            << " W mem): compute util "
            << TableWriter::num(100.0 * bp.compute_utilization, 1)
            << "%, memory util "
            << TableWriter::num(100.0 * bp.mem_utilization, 1)
            << "%  (paper: both ~100% at the optimum)\n";
}

}  // namespace

int main() {
  bench::print_header("Figure 5",
                      "Capacity/utilization balance at 208 W (DGEMM, STREAM)");
  balance_for(workload::dgemm());
  balance_for(workload::stream_cpu());
  return 0;
}
