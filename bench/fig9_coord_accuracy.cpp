// Figure 9 — Accuracy of the COORD heuristic: COORD vs. the best split
// found by exhaustive sweeping, the memory-first strategy [19] on the CPU
// platform, and the default Nvidia capping policy on the GPU platforms.
//
// Paper findings this harness must reproduce:
//  * CPU: COORD within ~5% of the sweep oracle for large (preferred) caps
//    and ~9.6% on average over all accepted caps; generally ahead of
//    memory-first at small budgets;
//  * GPU: COORD within a few percent of the oracle and up to ~33% ahead of
//    the default policy (which always runs memory at the nominal clock);
//  * occasionally COORD can beat the sweep "best" (the sweep grid does not
//    contain every allocation COORD can choose).
// With --csv=FILE the harness additionally dumps every (benchmark,
// budget) data point at full precision — the golden-file regression
// tests (tests/golden/) diff that dump against a committed snapshot.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/coord.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

/// Full-precision rendering for golden files: every digit a double can
/// round-trip, so the tolerance lives in the comparator, not the dump.
[[nodiscard]] std::string g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void cpu_accuracy(CsvWriter* csv) {
  bench::print_section("CPU: COORD vs oracle vs memory-first (IvyBridge)");
  const auto machine = hw::ivybridge_node();

  TableWriter t({"benchmark", "budget_W", "oracle", "COORD", "COORD/oracle",
                 "mem-first/oracle"});
  double gap_sum = 0.0;
  int gap_n = 0;
  double gap_large = 0.0;
  int wins_small = 0;
  int small_n = 0;
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, wl);
    const auto profile = core::profile_critical_powers(node);
    for (double b = 145.0; b <= 265.0; b += 20.0) {
      const auto alloc = core::coord_cpu(profile, Watts{b});
      if (alloc.status == core::CoordStatus::kBudgetTooSmall) {
        t.add_row({wl.name, TableWriter::num(b, 0), "-", "rejected", "-",
                   "-"});
        if (csv) {
          csv->write_row({"cpu_ivybridge", wl.name, g(b), "rejected", "0",
                          "0", "0"});
        }
        continue;
      }
      sim::BudgetSweep sweep;
      sweep.budget = Watts{b};
      sweep.samples = sim::sweep_cpu_split(
          node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{2.0}});
      const double oracle = core::oracle_best(sweep).perf;
      const double coord = node.steady_state(alloc.cpu, alloc.mem).perf;
      const auto mf = core::memory_first(profile, Watts{b});
      const double mfp = node.steady_state(mf.cpu, mf.mem).perf;
      t.add_row({wl.name, TableWriter::num(b, 0),
                 TableWriter::num(oracle, 2), TableWriter::num(coord, 2),
                 TableWriter::num(coord / oracle, 3),
                 TableWriter::num(mfp / oracle, 3)});
      if (csv) {
        csv->write_row({"cpu_ivybridge", wl.name, g(b), "accepted",
                        g(oracle), g(coord), g(mfp)});
      }
      const double gap = std::max(0.0, 1.0 - coord / oracle);
      gap_sum += gap;
      ++gap_n;
      if (b >= 200.0) gap_large = std::max(gap_large, gap);
      if (b <= 165.0) {
        ++small_n;
        if (coord >= 0.999 * mfp) ++wins_small;
      }
    }
  }
  t.render(std::cout);
  std::cout << "\nmean COORD gap over accepted budgets: "
            << TableWriter::num(100.0 * gap_sum / gap_n, 1)
            << "%  (paper: 9.6%)\n"
            << "worst gap at large caps (>=200 W): "
            << TableWriter::num(100.0 * gap_large, 1)
            << "%  (paper: <5%)\n"
            << "COORD >= memory-first at small budgets: " << wins_small << "/"
            << small_n << " cases\n";
}

void gpu_accuracy(const hw::GpuMachine& card, CsvWriter* csv) {
  bench::print_section("GPU: COORD vs oracle vs default policy (" +
                       card.name + ")");
  TableWriter t({"benchmark", "cap_W", "P_totref_W", "oracle", "COORD",
                 "COORD/oracle", "COORD/default"});
  double worst_gap = 0.0;
  double best_gain = 0.0;
  for (const auto& wl : workload::gpu_suite()) {
    const sim::GpuNodeSim node(card, wl);
    const auto p = core::profile_gpu_params(node);
    for (double cap : {125.0, 150.0, 175.0, 200.0, 250.0, 300.0}) {
      const auto samples = sim::sweep_gpu_split(node, Watts{cap});
      double oracle = 0.0;
      for (const auto& s : samples) oracle = std::max(oracle, s.perf);
      const auto a = core::coord_gpu(p, node.gpu_model(), Watts{cap});
      const double coord =
          node.steady_state(a.mem_clock_index, Watts{cap}).perf;
      const double dflt = node.default_policy(Watts{cap}).perf;
      t.add_row({wl.name, TableWriter::num(cap, 0),
                 TableWriter::num(p.tot_ref.value(), 1),
                 TableWriter::num(oracle, 1), TableWriter::num(coord, 1),
                 TableWriter::num(coord / oracle, 3),
                 TableWriter::num(coord / dflt, 3)});
      if (csv) {
        csv->write_row({"gpu_" + card.name, wl.name, g(cap), "accepted",
                        g(oracle), g(coord), g(dflt)});
      }
      worst_gap = std::max(worst_gap, 1.0 - coord / oracle);
      best_gain = std::max(best_gain, coord / dflt - 1.0);
    }
  }
  t.render(std::cout);
  std::cout << "worst COORD gap vs oracle: "
            << TableWriter::num(100.0 * worst_gap, 1)
            << "%  (paper: <2%)\n"
            << "max gain over default policy: +"
            << TableWriter::num(100.0 * best_gain, 1)
            << "%  (paper: up to 33%)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"csv"}); !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --csv=FILE)\n";
    return 2;
  }

  std::ofstream csv_out;
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = args.value("csv")) {
    csv_out.open(*path);
    if (!csv_out) {
      std::cerr << "cannot open " << *path << " for writing\n";
      return 1;
    }
    csv = std::make_unique<CsvWriter>(
        csv_out, std::vector<std::string>{"section", "benchmark", "budget_w",
                                          "status", "oracle", "coord",
                                          "baseline"});
  }

  bench::print_header("Figure 9", "COORD accuracy vs baselines");
  cpu_accuracy(csv.get());
  gpu_accuracy(hw::titan_xp(), csv.get());
  gpu_accuracy(hw::titan_v(), csv.get());
  if (csv) {
    std::cout << "\nwrote " << csv->rows_written() << " rows to "
              << *args.value("csv") << '\n';
  }
  return 0;
}
