// Table 1 — Optimal allocation and critical component vs. power budget
// (SRA on the IvyBridge node), plus the §3.4.2 shift-asymmetry example.
//
// Paper findings this harness must reproduce:
//  * with a large budget all six scenarios are valid and the optimum sits
//    inside scenario I (no critical component);
//  * as the budget shrinks, scenario I disappears and the optimum moves to
//    the II|III intersection (DRAM critical), then III|IV (CPU critical),
//    then deeper;
//  * at 224 W, shifting 24 W away from DRAM costs ~50% performance while
//    shifting 24 W away from the CPU costs ~10%.
// With --csv=FILE the harness additionally dumps every row at full
// precision for the golden-file regression tests (tests/golden/);
// multi-valued cells (the valid-scenario list) are joined with ';'.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/optimal.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

namespace {

[[nodiscard]] std::string g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"csv"}); !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --csv=FILE)\n";
    return 2;
  }
  std::ofstream csv_out;
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = args.value("csv")) {
    csv_out.open(*path);
    if (!csv_out) {
      std::cerr << "cannot open " << *path << " for writing\n";
      return 1;
    }
    csv = std::make_unique<CsvWriter>(
        csv_out,
        std::vector<std::string>{"budget_w", "valid_scenarios", "intersection",
                                 "critical", "best_cpu_w", "best_mem_w",
                                 "perf_max", "loss_mem_under",
                                 "loss_cpu_under"});
  }

  bench::print_header("Table 1",
                      "Optimal allocation & critical component vs budget "
                      "(SRA, IvyBridge)");
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());

  TableWriter t({"budget_W", "valid_scenarios", "intersection", "critical",
                 "best_cpu_W", "best_mem_W", "perf_max",
                 "loss_mem_under", "loss_cpu_under"});
  for (double b : {300.0, 260.0, 240.0, 224.0, 208.0, 192.0, 176.0, 160.0,
                   148.0}) {
    const auto row = core::optimal_allocation_row(
        node, Watts{b}, Watts{24.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    std::string valid;
    std::string valid_csv;
    for (const auto c : row.valid_scenarios) {
      if (!valid.empty()) valid += ',';
      if (!valid_csv.empty()) valid_csv += ';';
      valid += core::to_string(c);
      valid_csv += core::to_string(c);
    }
    const std::string inter =
        std::string(core::to_string(row.intersection.first)) + "|" +
        core::to_string(row.intersection.second);
    const std::string critical =
        row.critical ? hw::to_string(*row.critical) : "none";
    t.add_row({TableWriter::num(b, 0), valid, inter, critical,
               TableWriter::num(row.best_proc.value(), 0),
               TableWriter::num(row.best_mem.value(), 0),
               TableWriter::num(row.perf_max, 3),
               TableWriter::num(100.0 * row.loss_mem_underpowered, 1) + "%",
               TableWriter::num(100.0 * row.loss_proc_underpowered, 1) + "%"});
    if (csv) {
      csv->write_row({g(b), valid_csv, inter, critical,
                      g(row.best_proc.value()), g(row.best_mem.value()),
                      g(row.perf_max), g(row.loss_mem_underpowered),
                      g(row.loss_proc_underpowered)});
    }
  }
  t.render(std::cout);

  bench::print_section("§3.4.2 shift example at 224 W");
  const auto row = core::optimal_allocation_row(
      node, Watts{224.0}, Watts{24.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
  std::cout << "optimal split: (" << TableWriter::num(row.best_proc.value(), 0)
            << " W cpu, " << TableWriter::num(row.best_mem.value(), 0)
            << " W mem); paper: (108, 116)\n"
            << "shift 24 W DRAM->CPU: -"
            << TableWriter::num(100.0 * row.loss_mem_underpowered, 1)
            << "% (paper: -50%)\n"
            << "shift 24 W CPU->DRAM: -"
            << TableWriter::num(100.0 * row.loss_proc_underpowered, 1)
            << "% (paper: -10%)\n";
  if (csv) {
    std::cout << "\nwrote " << csv->rows_written() << " rows to "
              << *args.value("csv") << '\n';
  }
  return 0;
}
