// Table 1 — Optimal allocation and critical component vs. power budget
// (SRA on the IvyBridge node), plus the §3.4.2 shift-asymmetry example.
//
// Paper findings this harness must reproduce:
//  * with a large budget all six scenarios are valid and the optimum sits
//    inside scenario I (no critical component);
//  * as the budget shrinks, scenario I disappears and the optimum moves to
//    the II|III intersection (DRAM critical), then III|IV (CPU critical),
//    then deeper;
//  * at 224 W, shifting 24 W away from DRAM costs ~50% performance while
//    shifting 24 W away from the CPU costs ~10%.
#include "bench_common.hpp"
#include "core/optimal.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

int main() {
  bench::print_header("Table 1",
                      "Optimal allocation & critical component vs budget "
                      "(SRA, IvyBridge)");
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());

  TableWriter t({"budget_W", "valid_scenarios", "intersection", "critical",
                 "best_cpu_W", "best_mem_W", "perf_max",
                 "loss_mem_under", "loss_cpu_under"});
  for (double b : {300.0, 260.0, 240.0, 224.0, 208.0, 192.0, 176.0, 160.0,
                   148.0}) {
    const auto row = core::optimal_allocation_row(
        node, Watts{b}, Watts{24.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    std::string valid;
    for (const auto c : row.valid_scenarios) {
      if (!valid.empty()) valid += ',';
      valid += core::to_string(c);
    }
    const std::string inter =
        std::string(core::to_string(row.intersection.first)) + "|" +
        core::to_string(row.intersection.second);
    t.add_row({TableWriter::num(b, 0), valid, inter,
               row.critical ? hw::to_string(*row.critical) : "none",
               TableWriter::num(row.best_proc.value(), 0),
               TableWriter::num(row.best_mem.value(), 0),
               TableWriter::num(row.perf_max, 3),
               TableWriter::num(100.0 * row.loss_mem_underpowered, 1) + "%",
               TableWriter::num(100.0 * row.loss_proc_underpowered, 1) + "%"});
  }
  t.render(std::cout);

  bench::print_section("§3.4.2 shift example at 224 W");
  const auto row = core::optimal_allocation_row(
      node, Watts{224.0}, Watts{24.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
  std::cout << "optimal split: (" << TableWriter::num(row.best_proc.value(), 0)
            << " W cpu, " << TableWriter::num(row.best_mem.value(), 0)
            << " W mem); paper: (108, 116)\n"
            << "shift 24 W DRAM->CPU: -"
            << TableWriter::num(100.0 * row.loss_mem_underpowered, 1)
            << "% (paper: -50%)\n"
            << "shift 24 W CPU->DRAM: -"
            << TableWriter::num(100.0 * row.loss_proc_underpowered, 1)
            << "% (paper: -10%)\n";
  return 0;
}
