// Figure 7 — Performance trends as the memory power allocation increases,
// under various total power caps, on the Titan XP and Titan V. The x-axis
// is the memory power *estimated* from the clock setting via the card's
// empirical power model, exactly as in the paper.
//
// Paper findings this harness must reproduce (§4's three patterns):
//  * compute-intensive (SGEMM): best at minimum memory power; curves are
//    dispersed/diverging (categories I & II);
//  * memory-intensive (STREAM, MiniFE, HPCG, CUFFT): rising with memory
//    power at large caps (category III, overlapping curves), possibly
//    falling at small caps (category II);
//  * in between (Cloverleaf): interior optimum at small caps, rising
//    slowly at large caps, diverging curves;
//  * Titan V: memory-bound everywhere — performance increases with memory
//    power allocation at every cap.
#include "bench_common.hpp"
#include "core/categorize.hpp"
#include "hw/platforms.hpp"
#include "workload/gpu_suite.hpp"

using namespace pbc;

namespace {

void trends_for(const hw::GpuMachine& card, const workload::Workload& wl) {
  bench::print_section(wl.name + " on " + card.name);
  const sim::GpuNodeSim node(card, wl);

  std::vector<PlotSeries> series;
  TableWriter t({"cap_W", "perf@each_mem_clock (low->nominal)", "categories"});
  for (double cap : {125.0, 150.0, 175.0, 200.0, 250.0, 300.0}) {
    sim::BudgetSweep sweep;
    sweep.budget = Watts{cap};
    sweep.samples = sim::sweep_gpu_split(node, Watts{cap});

    std::string perfs;
    PlotSeries s{std::to_string(static_cast<int>(cap)) + "W", {}, {}};
    for (const auto& x : sweep.samples) {
      if (!perfs.empty()) perfs += "  ";
      perfs += TableWriter::num(x.perf, 0);
      s.x.push_back(x.mem_cap.value());  // estimated memory power
      s.y.push_back(x.perf);
    }
    std::string cats;
    for (const auto c :
         core::categories_present(core::category_spans_gpu(sweep))) {
      if (!cats.empty()) cats += ',';
      cats += core::to_string(c);
    }
    t.add_row({TableWriter::num(cap, 0), perfs, cats});
    series.push_back(std::move(s));
  }
  t.render(std::cout);

  PlotOptions opt;
  opt.title = wl.name + " — perf vs estimated memory power, per cap";
  opt.x_label = "estimated memory power (W)";
  std::cout << render_plot(series, opt);
}

}  // namespace

int main() {
  bench::print_header("Figure 7",
                      "GPU perf vs memory power allocation under various caps");
  for (const auto& make : {hw::titan_xp, hw::titan_v}) {
    const auto card = make();
    for (const auto& wl :
         {workload::sgemm(), workload::stream_gpu(), workload::minife(),
          workload::cloverleaf()}) {
      trends_for(card, wl);
    }
  }
  return 0;
}
