// Tests for the span tracer and slow-query log: recording via the RAII
// scope, the runtime enable switch, ring capacity bounds, and snapshot
// ordering.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace pbc::obs {
namespace {

TEST(ObsTracer, RecordAndSnapshot) {
  Tracer t(16);
  Span s;
  s.name = "test.span";
  s.descriptor_hash = 42;
  s.start_ns = 10;
  s.duration_ns = 5;
  t.record(s);

  const std::vector<Span> spans = t.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.span");
  EXPECT_EQ(spans[0].descriptor_hash, 42u);
  EXPECT_EQ(spans[0].start_ns, 10u);
  EXPECT_EQ(spans[0].duration_ns, 5u);
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(ObsTracer, SpanScopeRecordsOnDestruction) {
  Tracer t;
  {
    PBC_TRACE_SPAN(&t, "scope.outer", 7);
    PBC_TRACE_SPAN(&t, "scope.inner");
    EXPECT_TRUE(t.snapshot().empty()) << "spans record on scope exit";
  }
#if PBC_TRACING_ENABLED
  const std::vector<Span> spans = t.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto find = [&](const char* name) -> const Span* {
    for (const Span& s : spans) {
      if (std::string(s.name) == name) return &s;
    }
    return nullptr;
  };
  const Span* outer = find("scope.outer");
  const Span* inner = find("scope.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->descriptor_hash, 7u);
  EXPECT_EQ(inner->descriptor_hash, 0u);
  // The outer scope opens no later and encloses the inner one.
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_GE(outer->duration_ns, inner->duration_ns);
#else
  EXPECT_TRUE(t.snapshot().empty());
#endif
}

#if PBC_TRACING_ENABLED
TEST(ObsTracer, NullTracerScopeIsNoop) {
  // Must not crash; PBC_TRACE_SPAN(nullptr, ...) is legal.
  PBC_TRACE_SPAN(static_cast<Tracer*>(nullptr), "scope.null");
  SUCCEED();
}
#endif

TEST(ObsTracer, DisabledTracerDropsScopes) {
  Tracer t;
  t.set_enabled(false);
  EXPECT_FALSE(t.enabled());
  {
    PBC_TRACE_SPAN(&t, "scope.dropped");
  }
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.recorded(), 0u);

  t.set_enabled(true);
  {
    PBC_TRACE_SPAN(&t, "scope.kept");
  }
#if PBC_TRACING_ENABLED
  EXPECT_EQ(t.snapshot().size(), 1u);
#endif
}

TEST(ObsTracer, CapacityBoundsRetainedSpans) {
  constexpr std::size_t kCapacity = 32;
  Tracer t(kCapacity);
  constexpr std::uint64_t kTotal = 500;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    Span s;
    s.name = "bulk";
    s.start_ns = i;
    t.record(s);
  }
  EXPECT_EQ(t.recorded(), kTotal);
  const std::vector<Span> spans = t.snapshot();
  // Bounded by capacity plus at most one unflushed per-thread batch.
  EXPECT_LE(spans.size(), kCapacity + 64);
  EXPECT_FALSE(spans.empty());
  // The ring drops oldest-first: the newest span must survive.
  const bool has_newest =
      std::any_of(spans.begin(), spans.end(),
                  [&](const Span& s) { return s.start_ns == kTotal - 1; });
  EXPECT_TRUE(has_newest);
}

TEST(ObsTracer, SnapshotIsOldestFirst) {
  Tracer t(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Span s;
    s.name = "ordered";
    s.start_ns = i;
    t.record(s);
  }
  const std::vector<Span> spans = t.snapshot();
  ASSERT_EQ(spans.size(), 10u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
}

TEST(ObsTracer, NowNsIsMonotone) {
  Tracer t;
  const std::uint64_t a = t.now_ns();
  const std::uint64_t b = t.now_ns();
  EXPECT_LE(a, b);
}

TEST(ObsSlowQueryLog, RecordAndSnapshot) {
  SlowQueryLog log(8);
  log.record(0xabcd, "query_cpu", 12345.0,
             {{"single_flight", 11000.0}, {"compute", 1300.0}});
  const std::vector<SlowQuery> q = log.snapshot();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].descriptor_hash, 0xabcdu);
  EXPECT_STREQ(q[0].kind, "query_cpu");
  EXPECT_EQ(q[0].total_us, 12345.0);
  ASSERT_EQ(q[0].stages.size(), 2u);
  EXPECT_STREQ(q[0].stages[0].name, "single_flight");
  EXPECT_EQ(q[0].stages[0].us, 11000.0);
  EXPECT_EQ(log.total(), 1u);
}

TEST(ObsSlowQueryLog, CapacityKeepsMostRecent) {
  SlowQueryLog log(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.record(i, "replay", static_cast<double>(i), {});
  }
  EXPECT_EQ(log.total(), 10u);
  const std::vector<SlowQuery> q = log.snapshot();
  ASSERT_EQ(q.size(), 4u);
  // Oldest entries dropped: the survivors are 6..9 in order.
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i].descriptor_hash, 6u + i);
  }
}

TEST(ObsSlowQueryLog, EmptySnapshot) {
  SlowQueryLog log;
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(log.total(), 0u);
}

}  // namespace
}  // namespace pbc::obs
