// Golden-text tests for the Prometheus and JSON exposition: exact output
// for a small registry (family ordering, HELP/TYPE headers, label
// escaping, cumulative buckets) plus structural checks on larger ones.
#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace pbc::obs {
namespace {

TEST(ObsExposition, GoldenPrometheusText) {
  MetricsRegistry r;
  r.counter("pbc_events_total", "Total events").add(3);
  r.counter("pbc_hits_total", "Hits by cache", {{"cache", "frontier"}})
      .add(2);
  r.counter("pbc_hits_total", "Hits by cache", {{"cache", "profile"}}).add(9);
  r.gauge("pbc_entries", "Current entries").set(4);
  Histogram& h = r.histogram("pbc_latency_us", "Latency", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.5);
  h.observe(100.0);

  const std::string expected =
      "# HELP pbc_entries Current entries\n"
      "# TYPE pbc_entries gauge\n"
      "pbc_entries 4\n"
      "# HELP pbc_events_total Total events\n"
      "# TYPE pbc_events_total counter\n"
      "pbc_events_total 3\n"
      "# HELP pbc_hits_total Hits by cache\n"
      "# TYPE pbc_hits_total counter\n"
      "pbc_hits_total{cache=\"frontier\"} 2\n"
      "pbc_hits_total{cache=\"profile\"} 9\n"
      "# HELP pbc_latency_us Latency\n"
      "# TYPE pbc_latency_us histogram\n"
      "pbc_latency_us_bucket{le=\"1\"} 1\n"
      "pbc_latency_us_bucket{le=\"2\"} 3\n"
      "pbc_latency_us_bucket{le=\"4\"} 3\n"
      "pbc_latency_us_bucket{le=\"+Inf\"} 4\n"
      "pbc_latency_us_sum 103.5\n"
      "pbc_latency_us_count 4\n";
  EXPECT_EQ(render_prometheus(r.snapshot()), expected);
}

TEST(ObsExposition, HelpAndLabelEscaping) {
  MetricsRegistry r;
  r.counter("pbc_esc_total", "line1\nline2 back\\slash",
            {{"path", "a\\b \"quoted\"\nnl"}})
      .add(1);
  const std::string text = render_prometheus(r.snapshot());
  // HELP escapes backslash and newline (quotes stay literal).
  EXPECT_NE(text.find("# HELP pbc_esc_total line1\\nline2 back\\\\slash\n"),
            std::string::npos);
  // Label values escape backslash, double quote, and newline.
  EXPECT_NE(
      text.find("pbc_esc_total{path=\"a\\\\b \\\"quoted\\\"\\nnl\"} 1\n"),
      std::string::npos);
}

TEST(ObsExposition, HelpTypeHeaderOncePerFamily) {
  MetricsRegistry r;
  for (const char* kind : {"a", "b", "c"}) {
    r.counter("pbc_family_total", "One family", {{"kind", kind}}).add(1);
  }
  const std::string text = render_prometheus(r.snapshot());
  std::size_t headers = 0;
  for (std::size_t pos = text.find("# HELP pbc_family_total");
       pos != std::string::npos;
       pos = text.find("# HELP pbc_family_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
}

TEST(ObsExposition, HistogramBucketsAreCumulativeAndEndAtCount) {
  MetricsRegistry r;
  Histogram& h =
      r.histogram("pbc_cum_us", "c", Histogram::exponential_bounds(1, 2, 6));
  for (int i = 1; i <= 50; ++i) h.observe(static_cast<double>(i));
  const MetricsSnapshot snap = r.snapshot();
  const auto* m = snap.find("pbc_cum_us");
  ASSERT_NE(m, nullptr);

  // Bucket lines in the rendered text must be non-decreasing, and the
  // +Inf bucket must equal _count.
  const std::string text = render_prometheus(snap);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < m->hist.bounds.size(); ++i) {
    const std::uint64_t cum = m->hist.cumulative(i);
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_NE(text.find("pbc_cum_us_bucket{le=\"+Inf\"} 50\n"),
            std::string::npos);
  EXPECT_NE(text.find("pbc_cum_us_count 50\n"), std::string::npos);
}

TEST(ObsExposition, GaugeFormatting) {
  MetricsRegistry r;
  r.gauge("pbc_int_gauge", "i").set(1234.0);
  r.gauge("pbc_frac_gauge", "f").set(0.125);
  const std::string text = render_prometheus(r.snapshot());
  EXPECT_NE(text.find("pbc_int_gauge 1234\n"), std::string::npos);
  EXPECT_NE(text.find("pbc_frac_gauge 0.125\n"), std::string::npos);
}

TEST(ObsExposition, EmptySnapshotRendersEmpty) {
  MetricsRegistry r;
  EXPECT_EQ(render_prometheus(r.snapshot()), "");
  EXPECT_EQ(render_json(r.snapshot()),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(ObsExposition, GoldenJson) {
  MetricsRegistry r;
  r.counter("pbc_c_total", "c").add(5);
  r.counter("pbc_l_total", "l", {{"cache", "profile"}}).add(2);
  r.gauge("pbc_g", "g").set(1.5);
  Histogram& h = r.histogram("pbc_h_us", "h", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"pbc_c_total\": 5,\n"
      "    \"pbc_l_total{cache=\\\"profile\\\"}\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"pbc_g\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"pbc_h_us\": {\"count\": 2, \"sum\": 3.5, \"max\": 3, "
      "\"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(render_json(r.snapshot()), expected);
}

}  // namespace
}  // namespace pbc::obs
