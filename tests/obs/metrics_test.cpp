// Unit tests for the metrics registry: counter/gauge/histogram behavior,
// bucket-bound validation, the recorded-samples-only percentile contract,
// snapshot merging, and registry identity/ordering rules.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace pbc::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.set(7.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(ObsHistogram, ExponentialBounds) {
  const auto b = Histogram::exponential_bounds(0.5, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0.5);
  EXPECT_EQ(b[1], 1.0);
  EXPECT_EQ(b[2], 2.0);
  EXPECT_EQ(b[3], 4.0);
  EXPECT_TRUE(validate_bucket_bounds(b).ok());
}

TEST(ObsHistogram, ValidateBucketBounds) {
  EXPECT_TRUE(validate_bucket_bounds(std::vector<double>{1.0}).ok());
  EXPECT_TRUE(validate_bucket_bounds(std::vector<double>{0.5, 1.0, 8.0}).ok());

  const Status empty = validate_bucket_bounds(std::vector<double>{});
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), ErrorCode::kInvalidArgument);

  EXPECT_FALSE(validate_bucket_bounds(std::vector<double>{0.0, 1.0}).ok());
  EXPECT_FALSE(validate_bucket_bounds(std::vector<double>{-1.0}).ok());
  EXPECT_FALSE(validate_bucket_bounds(std::vector<double>{1.0, 1.0}).ok());
  EXPECT_FALSE(validate_bucket_bounds(std::vector<double>{2.0, 1.0}).ok());
  EXPECT_FALSE(validate_bucket_bounds(
                   std::vector<double>{1.0,
                                       std::numeric_limits<double>::infinity()})
                   .ok());
  EXPECT_FALSE(
      validate_bucket_bounds(
          std::vector<double>{std::numeric_limits<double>::quiet_NaN()})
          .ok());
}

TEST(ObsHistogram, ObserveFillsCorrectBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(1.0);   // bucket 0 (le is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow bucket

  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 107.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 107.0 / 5.0);

  // Cumulative counts follow Prometheus `le` semantics.
  EXPECT_EQ(s.cumulative(0), 2u);
  EXPECT_EQ(s.cumulative(1), 3u);
  EXPECT_EQ(s.cumulative(2), 4u);
  EXPECT_EQ(s.cumulative(3), 5u);
}

TEST(ObsHistogram, EmptyPercentileIsZero) {
  Histogram h({1.0, 2.0});
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  // Recorded-samples-only contract: an empty histogram never synthesizes
  // a value from its (empty) buckets.
  EXPECT_EQ(s.percentile(50.0), 0.0);
  EXPECT_EQ(s.percentile(99.0), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(ObsHistogram, PercentileSingleSample) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.5);
  const HistogramSnapshot s = h.snapshot();
  // Every percentile of one sample lands in its bucket, clamped to the
  // exact max.
  EXPECT_GT(s.percentile(0.0), 0.0);
  EXPECT_LE(s.percentile(0.0), 1.5);
  EXPECT_LE(s.percentile(50.0), 1.5);
  EXPECT_LE(s.percentile(100.0), 1.5);
}

TEST(ObsHistogram, PercentileMonotoneAndClampedToMax) {
  Histogram h(Histogram::exponential_bounds(0.5, 2.0, 12));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = s.percentile(p);
    EXPECT_GE(v, prev) << "percentile must be monotone in p (p=" << p << ")";
    EXPECT_LE(v, s.max) << "percentile must never exceed the exact max";
    prev = v;
  }
  // The top percentile reaches the overflow/last occupied bucket and is
  // clamped to the exact max.
  EXPECT_EQ(s.percentile(100.0), 100.0);
  // A mid percentile must land within a factor-2 bucket of the true value
  // (50 for this uniform ladder).
  const double p50 = s.percentile(50.0);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
}

TEST(ObsHistogram, PercentileOutOfRangePIsClamped) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(-10.0), s.percentile(0.0));
  EXPECT_EQ(s.percentile(500.0), s.percentile(100.0));
}

TEST(ObsHistogram, MergeAccumulates) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(1.5);
  b.observe(9.0);

  HistogramSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.sum, 16.0);
  EXPECT_EQ(m.max, 9.0);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[1], 1u);
  EXPECT_EQ(m.buckets[2], 2u);
}

TEST(ObsHistogram, MergeIntoEmptyAdoptsOther) {
  Histogram b({1.0, 2.0});
  b.observe(1.5);
  HistogramSnapshot m;  // default: no bounds
  m.merge(b.snapshot());
  EXPECT_EQ(m.count, 1u);
  ASSERT_EQ(m.bounds.size(), 2u);
  EXPECT_EQ(m.buckets[1], 1u);
}

TEST(ObsHistogram, MergeEmptyOtherIsNoop) {
  Histogram a({1.0});
  a.observe(0.5);
  Histogram empty({4.0});  // different bounds, but count 0 → ignored
  HistogramSnapshot m = a.snapshot();
  m.merge(empty.snapshot());
  EXPECT_EQ(m.count, 1u);
  EXPECT_EQ(m.bounds.size(), 1u);
}

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry r;
  Counter& c1 = r.counter("pbc_test_total", "help");
  Counter& c2 = r.counter("pbc_test_total", "other help ignored");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  EXPECT_EQ(r.size(), 1u);

  Gauge& g1 = r.gauge("pbc_test_gauge", "help");
  Gauge& g2 = r.gauge("pbc_test_gauge", "help");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = r.histogram("pbc_test_us", "help", {1.0, 2.0});
  Histogram& h2 = r.histogram("pbc_test_us", "help", {8.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  EXPECT_EQ(r.size(), 3u);
}

TEST(ObsRegistry, LabelsDistinguishMetrics) {
  MetricsRegistry r;
  Counter& a = r.counter("pbc_hits_total", "h", {{"cache", "profile"}});
  Counter& b = r.counter("pbc_hits_total", "h", {{"cache", "frontier"}});
  EXPECT_NE(&a, &b);
  a.add(2);
  b.add(5);
  EXPECT_EQ(r.size(), 2u);

  const MetricsSnapshot s = r.snapshot();
  EXPECT_EQ(s.counter("pbc_hits_total", {{"cache", "profile"}}), 2u);
  EXPECT_EQ(s.counter("pbc_hits_total", {{"cache", "frontier"}}), 5u);
  EXPECT_EQ(s.counter("pbc_hits_total", {{"cache", "nope"}}), 0u);
  EXPECT_EQ(s.counter("pbc_absent_total"), 0u);
}

TEST(ObsRegistry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry r;
  // Registered deliberately out of order.
  (void)r.counter("pbc_z_total", "z");
  (void)r.gauge("pbc_a_gauge", "a");
  (void)r.counter("pbc_m_total", "m", {{"kind", "b"}});
  (void)r.counter("pbc_m_total", "m", {{"kind", "a"}});

  const MetricsSnapshot s = r.snapshot();
  ASSERT_EQ(s.metrics.size(), 4u);
  EXPECT_EQ(s.metrics[0].name, "pbc_a_gauge");
  EXPECT_EQ(s.metrics[1].name, "pbc_m_total");
  EXPECT_EQ(s.metrics[1].labels, (Labels{{"kind", "a"}}));
  EXPECT_EQ(s.metrics[2].name, "pbc_m_total");
  EXPECT_EQ(s.metrics[2].labels, (Labels{{"kind", "b"}}));
  EXPECT_EQ(s.metrics[3].name, "pbc_z_total");
}

TEST(ObsRegistry, SnapshotCarriesValuesAndTypes) {
  MetricsRegistry r;
  r.counter("pbc_c_total", "c").add(7);
  r.gauge("pbc_g", "g").set(1.25);
  r.histogram("pbc_h_us", "h", {1.0, 2.0}).observe(1.5);

  const MetricsSnapshot s = r.snapshot();
  const auto* c = s.find("pbc_c_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->type, MetricType::kCounter);
  EXPECT_EQ(c->counter_value, 7u);

  const auto* g = s.find("pbc_g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->type, MetricType::kGauge);
  EXPECT_EQ(g->gauge_value, 1.25);
  EXPECT_EQ(s.gauge("pbc_g"), 1.25);

  const auto* h = s.find("pbc_h_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->type, MetricType::kHistogram);
  EXPECT_EQ(h->hist.count, 1u);
  EXPECT_EQ(h->hist.buckets[1], 1u);
}

TEST(ObsRegistry, DefaultLatencyBoundsAreValid) {
  const auto& b = default_latency_bounds_us();
  EXPECT_TRUE(validate_bucket_bounds(b).ok());
  EXPECT_EQ(b.size(), 22u);
  EXPECT_EQ(b.front(), 0.5);
  EXPECT_GT(b.back(), 1e6);  // ladder reaches ~1 s (in microseconds)
}

TEST(ObsRegistry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

}  // namespace
}  // namespace pbc::obs
