// Concurrency hammer for the observability layer, written to run under
// TSan (the tsan preset's ctest filter matches the Obs prefix): writer
// threads pound counters, gauges, histograms, the tracer, and the
// slow-query log while reader threads snapshot and render continuously.
// Final counts are exact — relaxed atomics lose no increments.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "../support/test_env.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pbc::obs {
namespace {

TEST(ObsConcurrency, RegistryHammerWithConcurrentSnapshots) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  // PBC_TEST_ITERS caps the per-writer count on slow boxes; the exact-
  // count assertions below are computed from the runtime value.
  const int iters_per_writer = test::iters(20000);

  Counter& counter = reg.counter("pbc_hammer_total", "hammered counter");
  Gauge& gauge = reg.gauge("pbc_hammer_gauge", "hammered gauge");
  Histogram& hist = reg.histogram("pbc_hammer_us", "hammered histogram",
                                  Histogram::exponential_bounds(1.0, 2.0, 10));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < iters_per_writer; ++i) {
        counter.add(1);
        gauge.add(1.0);
        hist.observe(static_cast<double>((w * 7 + i) % 600));
        // Writers also register: get-or-create must be safe against
        // concurrent registration and snapshotting.
        reg.counter("pbc_hammer_labeled_total", "per-writer",
                    {{"writer", w % 2 == 0 ? "even" : "odd"}})
            .add(1);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const MetricsSnapshot snap = reg.snapshot();
        // Reading while writers run must see internally consistent
        // histograms: cumulative counts never exceed the total count by
        // more than in-flight skew would allow; rendering must not race.
        const std::string text = render_prometheus(snap);
        EXPECT_FALSE(text.empty());
        (void)render_json(snap);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  const std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWriters) *
      static_cast<std::uint64_t>(iters_per_writer);
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(gauge.value(), static_cast<double>(kTotal));
  const HistogramSnapshot hs = hist.snapshot();
  EXPECT_EQ(hs.count, kTotal);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : hs.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kTotal);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("pbc_hammer_labeled_total", {{"writer", "even"}}) +
                snap.counter("pbc_hammer_labeled_total", {{"writer", "odd"}}),
            kTotal);
}

TEST(ObsConcurrency, TracerHammerWithConcurrentSnapshots) {
  Tracer tracer(256);
  SlowQueryLog slow_log(64);
  constexpr int kWriters = 4;
  const int iters_per_writer = test::iters(10000);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < iters_per_writer; ++i) {
        {
          PBC_TRACE_SPAN(&tracer, "hammer.span",
                         static_cast<std::uint64_t>(w));
        }
        if (i % 100 == 0) {
          slow_log.record(static_cast<std::uint64_t>(i), "hammer",
                          static_cast<double>(i), {{"stage", 1.0}});
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tracer.snapshot();
      (void)slow_log.snapshot();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

#if PBC_TRACING_ENABLED
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kWriters) *
                static_cast<std::uint64_t>(iters_per_writer));
#endif
  EXPECT_EQ(slow_log.total(),
            static_cast<std::uint64_t>(kWriters) *
                static_cast<std::uint64_t>(iters_per_writer / 100));
  EXPECT_LE(slow_log.snapshot().size(), 64u);
}

}  // namespace
}  // namespace pbc::obs
