// Differential and property coverage for the SIMD batch kernels and the
// SolveArena scratch layer.
//
// Exactness contract (docs/solver.md): batch_max_index_within must be
// bit-identical to the scalar ResponseCurve query — and hence the linear
// first-fit walk — on every tier, for every curve/threshold, including
// boundary-exact thresholds, empty/single-cell curves, and NaN. lane_sum
// is the one ULP-waived kernel; its property test pins the documented
// bound instead.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"
#include "sim/solver_table.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "../support/test_env.hpp"

namespace pbc::sim {
namespace {

using simd::SimdTier;

// Every kernel implementation compiled into this binary that the machine
// can actually run, as (name, fn) pairs exercised against the oracle.
struct TierKernel {
  const char* name;
  void (*batch)(const double*, std::size_t, const double*, std::size_t,
                std::int32_t*) noexcept;
  double (*sum)(const double*, std::size_t) noexcept;
};

std::vector<TierKernel> runnable_kernels() {
  std::vector<TierKernel> out;
  out.push_back({"generic", simd::detail::batch_max_index_generic,
                 simd::detail::lane_sum_generic});
#if defined(PBC_SIMD_X86)
  if (simd::max_supported_tier() >= SimdTier::kAvx2) {
    out.push_back({"avx2", simd::detail::batch_max_index_avx2,
                   simd::detail::lane_sum_avx2});
  }
  if (simd::max_supported_tier() >= SimdTier::kAvx512) {
    out.push_back({"avx512", simd::detail::batch_max_index_avx512,
                   simd::detail::lane_sum_avx512});
  }
#endif
  return out;
}

int linear_walk(const std::vector<double>& power, double thr) {
  for (std::size_t i = power.size(); i-- > 0;) {
    if (power[i] <= thr) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> random_monotone_curve(Xoshiro256& rng, std::size_t n) {
  std::vector<double> curve(n);
  double acc = rng.uniform(0.0, 50.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Frequent zero-width steps create runs of equal values, the tie
    // cases the downward-closed <= predicate must handle.
    acc += rng.below(3) == 0 ? 0.0 : rng.uniform(0.0, 8.0);
    curve[i] = acc;
  }
  return curve;
}

TEST(SimdKernels, AllTiersMatchLinearWalkOnRandomizedCurves) {
  Xoshiro256 rng(0x51D0, 1);
  const auto kernels = runnable_kernels();
  ASSERT_FALSE(kernels.empty());
  const int curves = pbc::test::iters(1200);
  for (int c = 0; c < curves; ++c) {
    const std::size_t n = rng.below(40);  // includes empty curves
    const std::vector<double> curve = random_monotone_curve(rng, n);
    const std::size_t m = 1 + rng.below(21);  // odd sizes hit vector tails
    std::vector<double> thr(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (n > 0 && rng.below(3) == 0) {
        // Threshold exactly on a cell boundary: <= must include it.
        thr[j] = curve[rng.below(n)];
      } else {
        thr[j] = rng.uniform(-10.0, curve.empty() ? 10.0 : curve.back() + 10.0);
      }
    }
    std::vector<std::int32_t> out(m);
    for (const TierKernel& k : kernels) {
      std::fill(out.begin(), out.end(), -7);
      k.batch(curve.data(), n, thr.data(), m, out.data());
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(out[j], linear_walk(curve, thr[j]))
            << k.name << " curve " << c << " lane " << j << " thr "
            << thr[j];
      }
    }
  }
}

TEST(SimdKernels, EdgeCurvesAndNanThresholds) {
  const auto kernels = runnable_kernels();
  const std::vector<double> empty;
  const std::vector<double> single{42.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // 8 lanes so even the AVX-512 full-vector path runs (no tail).
  const std::vector<double> thr{41.999999, 42.0, 42.000001, nan,
                                -1e300,    1e300, 42.0,     nan};
  for (const TierKernel& k : kernels) {
    std::vector<std::int32_t> out(thr.size(), -7);
    k.batch(empty.data(), 0, thr.data(), thr.size(), out.data());
    for (std::size_t j = 0; j < thr.size(); ++j) {
      EXPECT_EQ(out[j], -1) << k.name << " empty curve lane " << j;
    }
    k.batch(single.data(), 1, thr.data(), thr.size(), out.data());
    const std::vector<std::int32_t> want{-1, 0, 0, -1, -1, 0, 0, -1};
    for (std::size_t j = 0; j < thr.size(); ++j) {
      // NaN never satisfies <= (ordered compare), matching the scalar
      // bisection, so NaN thresholds yield -1 on every tier.
      EXPECT_EQ(out[j], want[j]) << k.name << " single-cell lane " << j;
    }
  }
}

TEST(SimdKernels, BatchViewFallsBackExactlyOnNonMonotoneCurves) {
  Xoshiro256 rng(0x51D0, 2);
  const int curves = pbc::test::iters(300);
  for (int c = 0; c < curves; ++c) {
    const std::size_t n = 2 + rng.below(30);
    std::vector<double> power = random_monotone_curve(rng, n);
    // Break monotonicity deliberately: one random interior dip forces the
    // sorted-order + prefix-max fallback.
    power[1 + rng.below(n - 1)] = -rng.uniform(1.0, 5.0);
    const ResponseCurve curve(power);
    ASSERT_FALSE(curve.monotone());
    const ResponseCurveBatch batch(curve);
    const std::size_t m = 1 + rng.below(17);
    std::vector<double> thr(m);
    for (std::size_t j = 0; j < m; ++j) {
      thr[j] = rng.below(2) == 0 ? power[rng.below(n)]
                                 : rng.uniform(-5.0, 105.0);
    }
    std::vector<std::int32_t> out(m);
    batch.max_index_within(thr, out);
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(out[j], linear_walk(power, thr[j]))
          << "curve " << c << " lane " << j;
    }
  }
}

TEST(SimdKernels, ForcedTiersAgreeThroughPublicDispatch) {
  Xoshiro256 rng(0x51D0, 3);
  const std::vector<double> curve = random_monotone_curve(rng, 24);
  std::vector<double> thr(37);
  for (auto& t : thr) t = rng.uniform(-5.0, curve.back() + 5.0);
  std::vector<std::int32_t> want(thr.size());
  simd::force_simd_tier(SimdTier::kGeneric);
  EXPECT_EQ(simd::active_tier(), SimdTier::kGeneric);
  simd::batch_max_index_within(curve, thr, want);
  for (const SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    simd::force_simd_tier(tier);
    // Forcing clamps to what this machine supports; whatever tier that
    // resolves to must agree with the generic answers bit for bit.
    EXPECT_LE(simd::active_tier(), simd::max_supported_tier());
    std::vector<std::int32_t> got(thr.size(), -7);
    simd::batch_max_index_within(curve, thr, got);
    EXPECT_EQ(got, want) << "tier " << simd::to_string(tier);
  }
  simd::reset_simd_tier();
}

TEST(SimdKernels, LaneSumHonoursDocumentedUlpBound) {
  Xoshiro256 rng(0x51D0, 4);
  const auto kernels = runnable_kernels();
  const int cases = pbc::test::iters(500);
  for (int c = 0; c < cases; ++c) {
    const std::size_t n = rng.below(200);
    std::vector<double> x(n);
    double abs_sum = 0.0;
    double seq = 0.0;
    for (auto& v : x) {
      v = rng.uniform(-1e6, 1e6);
      abs_sum += std::abs(v);
    }
    for (const double v : x) seq += v;
    // |lane_sum - sequential| <= n * eps * sum|x_i|, eps = 2^-52 — the
    // bound docs/solver.md grants the one reassociating kernel.
    const double bound =
        static_cast<double>(n) * std::ldexp(1.0, -52) * abs_sum;
    for (const TierKernel& k : kernels) {
      const double got = k.sum(x.data(), n);
      ASSERT_LE(std::abs(got - seq), bound)
          << k.name << " n=" << n << " got " << got << " want " << seq;
    }
  }
  EXPECT_EQ(simd::lane_sum({}), 0.0);
}

TEST(SolveArenaTest, ScopedReuseRecyclesBlocksDeterministically) {
  SolveArena arena;
  double* first = nullptr;
  {
    const auto scope = arena.scope();
    const auto a = arena.get<double>(64);
    first = a.data();
    std::fill(a.begin(), a.end(), 1.0);
    {
      const auto inner = arena.scope();
      const auto b = arena.get<double>(16);
      // Nested scopes carve fresh blocks — never the outer span's.
      EXPECT_NE(b.data(), a.data());
      std::fill(b.begin(), b.end(), 2.0);
    }
    // Inner scope rewound: the next carve reuses the inner block.
    const auto c = arena.get<double>(16);
    std::fill(c.begin(), c.end(), 3.0);
    for (const double v : a) EXPECT_EQ(v, 1.0);
  }
  // Outer scope rewound: same request returns the same storage.
  const auto scope = arena.scope();
  const auto again = arena.get<double>(64);
  EXPECT_EQ(again.data(), first);
}

TEST(SolveArenaTest, BatchSolverIsDeterministicAcrossArenaReuse) {
  // Dirty arena blocks must never leak into results: the same batch run
  // repeatedly through one warm arena — interleaved with different-sized
  // carves — always yields the first answer.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  Xoshiro256 rng(0x51D0, 5);
  std::vector<CapPair> caps;
  for (int i = 0; i < 64; ++i) {
    caps.push_back(
        CapPair{Watts{rng.uniform(20.0, 320.0)}, Watts{rng.uniform(10.0, 220.0)}});
  }
  SolveArena arena;
  std::vector<AllocationSample> want(caps.size());
  {
    const auto scope = arena.scope();
    node.steady_state_batch(caps, want, arena);
  }
  const int reps = pbc::test::iters(20);
  for (int r = 0; r < reps; ++r) {
    {
      // Poison the pools with a differently shaped carve.
      const auto scope = arena.scope();
      const auto junk = arena.get<double>(17 + 31 * r);
      std::fill(junk.begin(), junk.end(), -1e300);
    }
    const auto scope = arena.scope();
    std::vector<AllocationSample> got(caps.size());
    node.steady_state_batch(caps, got, arena);
    for (std::size_t i = 0; i < caps.size(); ++i) {
      ASSERT_TRUE(got[i] == want[i]) << "rep " << r << " cap " << i;
    }
  }
}

TEST(SolveArenaTest, ReplayAndSweepReuseThreadArenaDeterministically) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const workload::Workload wl = workload::npb_mg();
  const PhaseNodeSet nodes(machine, wl);
  workload::PhaseTrace trace;
  for (std::size_t i = 0; i < 24; ++i) {
    trace.push_back({i % wl.phases.size(), 40.0 + static_cast<double>(i)});
  }
  const auto first = replay_trace(nodes, trace, Watts{150.0}, Watts{70.0});
  const CpuNodeSim node(machine, wl);
  const auto best_first = sweep_cpu_split_best(node, Watts{210.0}, {});
  const int reps = pbc::test::iters(10);
  for (int r = 0; r < reps; ++r) {
    // Interleaving replays and sweeps shares one thread arena between
    // differently shaped scopes; results must not drift.
    const auto replay = replay_trace(nodes, trace, Watts{150.0}, Watts{70.0});
    ASSERT_TRUE(replay.aggregate == first.aggregate) << "rep " << r;
    ASSERT_EQ(replay.segments.size(), first.segments.size());
    const auto best = sweep_cpu_split_best(node, Watts{210.0}, {});
    ASSERT_EQ(best.has_value(), best_first.has_value());
    ASSERT_TRUE(*best == *best_first) << "rep " << r;
  }
}

TEST(SweepStatsTest, MatchesSequentialAggregationWithinUlpBound) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  const auto samples = sweep_cpu_split(node, Watts{220.0}, {});
  ASSERT_FALSE(samples.empty());
  const SweepStats st = sweep_stats(samples);
  EXPECT_EQ(st.count, samples.size());
  double seq_perf = 0.0, seq_pow = 0.0, max_perf = 0.0, abs_perf = 0.0,
         abs_pow = 0.0;
  for (const auto& s : samples) {
    seq_perf += s.perf;
    seq_pow += s.proc_power.value() + s.mem_power.value();
    abs_perf += std::abs(s.perf);
    abs_pow += std::abs(s.proc_power.value() + s.mem_power.value());
    max_perf = std::max(max_perf, s.perf);
  }
  const double eps = std::ldexp(1.0, -52) * static_cast<double>(st.count);
  EXPECT_NEAR(st.total_perf, seq_perf, eps * abs_perf);
  EXPECT_NEAR(st.total_power_w, seq_pow, eps * abs_pow);
  EXPECT_EQ(st.max_perf, max_perf);
  EXPECT_EQ(sweep_stats({}).count, 0u);
}

}  // namespace
}  // namespace pbc::sim
