// Differential and property coverage for the SIMD batch kernels and the
// SolveArena scratch layer.
//
// Exactness contract (docs/solver.md): batch_max_index_within must be
// bit-identical to the scalar ResponseCurve query — and hence the linear
// first-fit walk — on every tier, for every curve/threshold, including
// boundary-exact thresholds, empty/single-cell curves, and NaN. lane_sum
// is the one ULP-waived kernel; its property test pins the documented
// bound instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/frontier.hpp"
#include "core/interpolation.hpp"
#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"
#include "sim/solver_table.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"
#include "../support/test_env.hpp"

namespace pbc::sim {
namespace {

using simd::SimdTier;

// Every kernel implementation compiled into this binary that the machine
// can actually run, as (name, fn) pairs exercised against the oracle.
struct TierKernel {
  const char* name;
  void (*batch)(const double*, std::size_t, const double*, std::size_t,
                std::int32_t*) noexcept;
  double (*sum)(const double*, std::size_t) noexcept;
};

std::vector<TierKernel> runnable_kernels() {
  std::vector<TierKernel> out;
  out.push_back({"generic", simd::detail::batch_max_index_generic,
                 simd::detail::lane_sum_generic});
#if defined(PBC_SIMD_X86)
  if (simd::max_supported_tier() >= SimdTier::kAvx2) {
    out.push_back({"avx2", simd::detail::batch_max_index_avx2,
                   simd::detail::lane_sum_avx2});
  }
  if (simd::max_supported_tier() >= SimdTier::kAvx512) {
    out.push_back({"avx512", simd::detail::batch_max_index_avx512,
                   simd::detail::lane_sum_avx512});
  }
#endif
  return out;
}

int linear_walk(const std::vector<double>& power, double thr) {
  for (std::size_t i = power.size(); i-- > 0;) {
    if (power[i] <= thr) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> random_monotone_curve(Xoshiro256& rng, std::size_t n) {
  std::vector<double> curve(n);
  double acc = rng.uniform(0.0, 50.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Frequent zero-width steps create runs of equal values, the tie
    // cases the downward-closed <= predicate must handle.
    acc += rng.below(3) == 0 ? 0.0 : rng.uniform(0.0, 8.0);
    curve[i] = acc;
  }
  return curve;
}

TEST(SimdKernels, AllTiersMatchLinearWalkOnRandomizedCurves) {
  Xoshiro256 rng(0x51D0, 1);
  const auto kernels = runnable_kernels();
  ASSERT_FALSE(kernels.empty());
  const int curves = pbc::test::iters(1200);
  for (int c = 0; c < curves; ++c) {
    const std::size_t n = rng.below(40);  // includes empty curves
    const std::vector<double> curve = random_monotone_curve(rng, n);
    const std::size_t m = 1 + rng.below(21);  // odd sizes hit vector tails
    std::vector<double> thr(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (n > 0 && rng.below(3) == 0) {
        // Threshold exactly on a cell boundary: <= must include it.
        thr[j] = curve[rng.below(n)];
      } else {
        thr[j] = rng.uniform(-10.0, curve.empty() ? 10.0 : curve.back() + 10.0);
      }
    }
    std::vector<std::int32_t> out(m);
    for (const TierKernel& k : kernels) {
      std::fill(out.begin(), out.end(), -7);
      k.batch(curve.data(), n, thr.data(), m, out.data());
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(out[j], linear_walk(curve, thr[j]))
            << k.name << " curve " << c << " lane " << j << " thr "
            << thr[j];
      }
    }
  }
}

TEST(SimdKernels, EdgeCurvesAndNanThresholds) {
  const auto kernels = runnable_kernels();
  const std::vector<double> empty;
  const std::vector<double> single{42.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // 8 lanes so even the AVX-512 full-vector path runs (no tail).
  const std::vector<double> thr{41.999999, 42.0, 42.000001, nan,
                                -1e300,    1e300, 42.0,     nan};
  for (const TierKernel& k : kernels) {
    std::vector<std::int32_t> out(thr.size(), -7);
    k.batch(empty.data(), 0, thr.data(), thr.size(), out.data());
    for (std::size_t j = 0; j < thr.size(); ++j) {
      EXPECT_EQ(out[j], -1) << k.name << " empty curve lane " << j;
    }
    k.batch(single.data(), 1, thr.data(), thr.size(), out.data());
    const std::vector<std::int32_t> want{-1, 0, 0, -1, -1, 0, 0, -1};
    for (std::size_t j = 0; j < thr.size(); ++j) {
      // NaN never satisfies <= (ordered compare), matching the scalar
      // bisection, so NaN thresholds yield -1 on every tier.
      EXPECT_EQ(out[j], want[j]) << k.name << " single-cell lane " << j;
    }
  }
}

TEST(SimdKernels, BatchViewFallsBackExactlyOnNonMonotoneCurves) {
  Xoshiro256 rng(0x51D0, 2);
  const int curves = pbc::test::iters(300);
  for (int c = 0; c < curves; ++c) {
    const std::size_t n = 2 + rng.below(30);
    std::vector<double> power = random_monotone_curve(rng, n);
    // Break monotonicity deliberately: one random interior dip forces the
    // sorted-order + prefix-max fallback.
    power[1 + rng.below(n - 1)] = -rng.uniform(1.0, 5.0);
    const ResponseCurve curve(power);
    ASSERT_FALSE(curve.monotone());
    const ResponseCurveBatch batch(curve);
    const std::size_t m = 1 + rng.below(17);
    std::vector<double> thr(m);
    for (std::size_t j = 0; j < m; ++j) {
      thr[j] = rng.below(2) == 0 ? power[rng.below(n)]
                                 : rng.uniform(-5.0, 105.0);
    }
    std::vector<std::int32_t> out(m);
    batch.max_index_within(thr, out);
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(out[j], linear_walk(power, thr[j]))
          << "curve " << c << " lane " << j;
    }
  }
}

TEST(SimdKernels, ForcedTiersAgreeThroughPublicDispatch) {
  Xoshiro256 rng(0x51D0, 3);
  const std::vector<double> curve = random_monotone_curve(rng, 24);
  std::vector<double> thr(37);
  for (auto& t : thr) t = rng.uniform(-5.0, curve.back() + 5.0);
  std::vector<std::int32_t> want(thr.size());
  simd::force_simd_tier(SimdTier::kGeneric);
  EXPECT_EQ(simd::active_tier(), SimdTier::kGeneric);
  simd::batch_max_index_within(curve, thr, want);
  for (const SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    simd::force_simd_tier(tier);
    // Forcing clamps to what this machine supports; whatever tier that
    // resolves to must agree with the generic answers bit for bit.
    EXPECT_LE(simd::active_tier(), simd::max_supported_tier());
    std::vector<std::int32_t> got(thr.size(), -7);
    simd::batch_max_index_within(curve, thr, got);
    EXPECT_EQ(got, want) << "tier " << simd::to_string(tier);
  }
  simd::reset_simd_tier();
}

TEST(SimdKernels, LaneSumHonoursDocumentedUlpBound) {
  Xoshiro256 rng(0x51D0, 4);
  const auto kernels = runnable_kernels();
  const int cases = pbc::test::iters(500);
  for (int c = 0; c < cases; ++c) {
    const std::size_t n = rng.below(200);
    std::vector<double> x(n);
    double abs_sum = 0.0;
    double seq = 0.0;
    for (auto& v : x) {
      v = rng.uniform(-1e6, 1e6);
      abs_sum += std::abs(v);
    }
    for (const double v : x) seq += v;
    // |lane_sum - sequential| <= n * eps * sum|x_i|, eps = 2^-52 — the
    // bound docs/solver.md grants the one reassociating kernel.
    const double bound =
        static_cast<double>(n) * std::ldexp(1.0, -52) * abs_sum;
    for (const TierKernel& k : kernels) {
      const double got = k.sum(x.data(), n);
      ASSERT_LE(std::abs(got - seq), bound)
          << k.name << " n=" << n << " got " << got << " want " << seq;
    }
  }
  EXPECT_EQ(simd::lane_sum({}), 0.0);
}

// ---------------------------------------------------------------------------
// GatherKernels: the indirect kernels behind the blocked sweep — the
// non-monotone prefix-max gather, the grouped indexed scan, and the
// fixed-point confirm pass. All must be bit-identical to the scalar
// evaluation on every tier.
// ---------------------------------------------------------------------------

struct GatherTierKernel {
  const char* name;
  void (*prefix)(const double*, const std::int32_t*, std::size_t,
                 const double*, std::size_t, std::int32_t*) noexcept;
  void (*indexed)(const double*, std::size_t, const double*,
                  const std::int32_t*, std::size_t, std::int32_t*) noexcept;
  std::size_t (*confirm)(const double*, std::size_t, const std::int32_t*,
                         const std::int32_t*, const double*, std::size_t,
                         const std::int32_t*, std::int32_t,
                         std::int32_t*) noexcept;  // null: tier has none
};

std::vector<GatherTierKernel> runnable_gather_kernels() {
  std::vector<GatherTierKernel> out;
  out.push_back({"generic", simd::detail::batch_max_index_prefix_generic,
                 simd::detail::batch_max_index_indexed_generic,
                 simd::detail::batch_confirm_generic});
#if defined(PBC_SIMD_X86)
  if (simd::max_supported_tier() >= SimdTier::kAvx2) {
    out.push_back({"avx2", simd::detail::batch_max_index_prefix_avx2,
                   simd::detail::batch_max_index_indexed_avx2, nullptr});
  }
  if (simd::max_supported_tier() >= SimdTier::kAvx512) {
    out.push_back({"avx512", simd::detail::batch_max_index_prefix_avx512,
                   simd::detail::batch_max_index_indexed_avx512,
                   simd::detail::batch_confirm_avx512});
  }
#endif
  return out;
}

TEST(GatherKernels, PrefixMaxMatchesLinearWalkOnRandomizedCurves) {
  Xoshiro256 rng(0x51D0, 10);
  const auto kernels = runnable_gather_kernels();
  ASSERT_FALSE(kernels.empty());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const int curves = pbc::test::iters(600);
  for (int c = 0; c < curves; ++c) {
    // Random non-monotone curve with frequent duplicate powers: monotone
    // base, then one guaranteed interior dip plus optional extra dips.
    const std::size_t n = 2 + rng.below(38);
    std::vector<double> power = random_monotone_curve(rng, n);
    if (rng.below(2) == 0) power[1 + rng.below(n - 1)] = power[0];
    // The dip goes last so no other mutation can restore monotonicity
    // (the base curve never goes negative).
    power[1 + rng.below(n - 1)] = -rng.uniform(1.0, 5.0);
    const ResponseCurve curve(power);
    ASSERT_FALSE(curve.monotone());
    const auto sorted = curve.sorted_powers();
    const auto pmax = curve.prefix_max();
    ASSERT_EQ(sorted.size(), n);

    const std::size_t m = 1 + rng.below(21);  // odd sizes hit vector tails
    std::vector<double> thr(m);
    for (std::size_t j = 0; j < m; ++j) {
      const auto r = rng.below(8);
      if (r == 0) {
        thr[j] = nan;
      } else if (r <= 2) {
        // Exactly on a stored power: the upper bound must include it.
        thr[j] = power[rng.below(n)];
      } else {
        thr[j] = rng.uniform(-10.0, 110.0);
      }
    }
    std::vector<std::int32_t> out(m);
    for (const GatherTierKernel& k : kernels) {
      std::fill(out.begin(), out.end(), -7);
      k.prefix(sorted.data(), pmax.data(), n, thr.data(), m, out.data());
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(out[j], linear_walk(power, thr[j]))
            << k.name << " curve " << c << " lane " << j << " thr "
            << thr[j];
      }
    }
  }
}

TEST(GatherKernels, PrefixMaxEdgeCurvesAndNanThresholds) {
  const auto kernels = runnable_gather_kernels();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // 8 lanes so even the AVX-512 full-vector path runs (no tail).
  const std::vector<double> thr{41.999999, 42.0, 42.000001, nan,
                                -1e300,    1e300, 42.0,     nan};
  const std::vector<double> empty_pow;
  const std::vector<std::int32_t> empty_idx;
  const std::vector<double> single_pow{42.0};
  const std::vector<std::int32_t> single_idx{0};
  // Duplicate-power curve: three equal entries mapping to original
  // indices 2, 0, 1 in sorted order — prefix max must resolve ties to
  // the largest original index at or below the bound.
  const std::vector<double> dup_pow{42.0, 42.0, 42.0};
  const std::vector<std::int32_t> dup_idx{2, 2, 2};
  for (const GatherTierKernel& k : kernels) {
    std::vector<std::int32_t> out(thr.size(), -7);
    k.prefix(empty_pow.data(), empty_idx.data(), 0, thr.data(), thr.size(),
             out.data());
    for (std::size_t j = 0; j < thr.size(); ++j) {
      EXPECT_EQ(out[j], -1) << k.name << " empty curve lane " << j;
    }
    k.prefix(single_pow.data(), single_idx.data(), 1, thr.data(),
             thr.size(), out.data());
    const std::vector<std::int32_t> want{-1, 0, 0, -1, -1, 0, 0, -1};
    for (std::size_t j = 0; j < thr.size(); ++j) {
      EXPECT_EQ(out[j], want[j]) << k.name << " single-cell lane " << j;
    }
    k.prefix(dup_pow.data(), dup_idx.data(), dup_pow.size(), thr.data(),
             thr.size(), out.data());
    const std::vector<std::int32_t> want_dup{-1, 2, 2, -1, -1, 2, 2, -1};
    for (std::size_t j = 0; j < thr.size(); ++j) {
      EXPECT_EQ(out[j], want_dup[j]) << k.name << " dup-power lane " << j;
    }
  }
}

TEST(GatherKernels, IndexedMatchesScalarScanOnScatteredSlots) {
  Xoshiro256 rng(0x51D0, 11);
  const auto kernels = runnable_gather_kernels();
  const int cases = pbc::test::iters(400);
  for (int c = 0; c < cases; ++c) {
    const std::size_t n = rng.below(30);  // includes empty curves
    const std::vector<double> curve = random_monotone_curve(rng, n);
    const std::size_t slots = 1 + rng.below(48);
    std::vector<double> thr_base(slots);
    for (auto& t : thr_base) {
      t = rng.uniform(-10.0, curve.empty() ? 10.0 : curve.back() + 10.0);
    }
    // A shuffled subset of the slots: no duplicates, scattered order.
    std::vector<std::int32_t> all(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      all[i] = static_cast<std::int32_t>(i);
    }
    for (std::size_t i = slots; i-- > 1;) {
      std::swap(all[i], all[rng.below(i + 1)]);
    }
    const std::size_t m = rng.below(slots + 1);
    std::vector<std::int32_t> out_base(slots, -7);
    for (const GatherTierKernel& k : kernels) {
      std::fill(out_base.begin(), out_base.end(), -7);
      k.indexed(curve.data(), n, thr_base.data(), all.data(), m,
                out_base.data());
      std::vector<bool> touched(slots, false);
      for (std::size_t j = 0; j < m; ++j) {
        const auto cell = static_cast<std::size_t>(all[j]);
        touched[cell] = true;
        ASSERT_EQ(out_base[cell], linear_walk(curve, thr_base[cell]))
            << k.name << " case " << c << " slot " << cell;
      }
      for (std::size_t i = 0; i < slots; ++i) {
        if (!touched[i]) {
          ASSERT_EQ(out_base[i], -7)
              << k.name << " case " << c << " untouched slot " << i;
        }
      }
    }
  }
}

TEST(GatherKernels, ConfirmAgreesWithFullRescanOnMonotoneRows) {
  Xoshiro256 rng(0x51D0, 12);
  const auto kernels = runnable_gather_kernels();
  const int cases = pbc::test::iters(400);
  for (int c = 0; c < cases; ++c) {
    const std::size_t stride = 1 + rng.below(12);
    const std::size_t nrows = 1 + rng.below(6);
    std::vector<double> soa;
    soa.reserve(stride * nrows);
    for (std::size_t r = 0; r < nrows; ++r) {
      const auto row = random_monotone_curve(rng, stride);
      soa.insert(soa.end(), row.begin(), row.end());
    }
    const auto sleep_state = static_cast<std::int32_t>(stride);
    const bool with_fallback = rng.below(2) == 0;
    const std::size_t n = 1 + rng.below(40);
    std::vector<std::int32_t> key(n), val(n), fallback(n);
    std::vector<double> thr(n);
    // The answer-with-fallback mapping a real rescan applies.
    const auto mapped = [&](std::size_t i, double t) {
      std::vector<double> row(soa.begin() + key[i] * stride,
                              soa.begin() + (key[i] + 1) * stride);
      const int ans = linear_walk(row, t);
      if (ans >= 0) return static_cast<std::int32_t>(ans);
      return with_fallback ? fallback[i] : std::int32_t{0};
    };
    for (std::size_t i = 0; i < n; ++i) {
      key[i] = static_cast<std::int32_t>(rng.below(nrows));
      fallback[i] = rng.below(2) == 0 ? sleep_state : 0;
      // val is a previous governor answer: the mapped result of some
      // earlier threshold (often the same one, so most cells confirm).
      const double prev = rng.uniform(-5.0, 105.0);
      thr[i] = rng.below(2) == 0 ? prev : rng.uniform(-5.0, 105.0);
      val[i] = mapped(i, prev);
    }
    std::vector<std::int32_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      if (mapped(i, thr[i]) != val[i]) {
        want.push_back(static_cast<std::int32_t>(i));
      }
    }
    for (const GatherTierKernel& k : kernels) {
      if (k.confirm == nullptr) continue;
      std::vector<std::int32_t> unconf(n, -7);
      const std::size_t u = k.confirm(
          soa.data(), stride, key.data(), val.data(), thr.data(), n,
          with_fallback ? fallback.data() : nullptr, sleep_state,
          unconf.data());
      ASSERT_EQ(u, want.size()) << k.name << " case " << c;
      for (std::size_t j = 0; j < u; ++j) {
        ASSERT_EQ(unconf[j], want[j]) << k.name << " case " << c;
      }
    }
  }
}

TEST(GatherKernels, ForcedTiersAgreeThroughPublicDispatch) {
  Xoshiro256 rng(0x51D0, 13);
  // Non-monotone curve for the prefix kernel.
  std::vector<double> power = random_monotone_curve(rng, 24);
  power[7] = -2.5;
  const ResponseCurve curve(power);
  ASSERT_FALSE(curve.monotone());
  std::vector<double> thr(37);
  for (auto& t : thr) t = rng.uniform(-5.0, 105.0);
  // Grouped-scan inputs over a monotone curve.
  const std::vector<double> mono = random_monotone_curve(rng, 16);
  std::vector<std::int32_t> idx(thr.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::int32_t>(i);
  }
  // Confirm inputs: val from the dispatch-independent scalar answer.
  std::vector<std::int32_t> key(thr.size(), 0), val(thr.size());
  for (std::size_t i = 0; i < thr.size(); ++i) {
    const int ans = linear_walk(mono, thr[i]);
    val[i] = ans < 0 ? 0 : ans;
    if (rng.below(4) == 0) val[i] = static_cast<std::int32_t>(rng.below(16));
  }

  simd::force_simd_tier(SimdTier::kGeneric);
  std::vector<std::int32_t> want_prefix(thr.size());
  simd::batch_max_index_prefix(curve.sorted_powers(), curve.prefix_max(),
                               thr, want_prefix);
  std::vector<std::int32_t> want_indexed(thr.size(), -7);
  simd::batch_max_index_indexed(mono, thr.data(), idx, want_indexed.data());
  std::vector<std::int32_t> want_unconf(thr.size(), -7);
  const std::size_t want_u = simd::batch_confirm(
      mono.data(), mono.size(), key.data(), val.data(), thr.data(),
      thr.size(), nullptr, static_cast<std::int32_t>(mono.size()),
      want_unconf.data());

  for (const SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    simd::force_simd_tier(tier);
    EXPECT_LE(simd::active_tier(), simd::max_supported_tier());
    std::vector<std::int32_t> got(thr.size(), -7);
    simd::batch_max_index_prefix(curve.sorted_powers(), curve.prefix_max(),
                                 thr, got);
    EXPECT_EQ(got, want_prefix) << "prefix tier " << simd::to_string(tier);
    std::fill(got.begin(), got.end(), -7);
    simd::batch_max_index_indexed(mono, thr.data(), idx, got.data());
    EXPECT_EQ(got, want_indexed) << "indexed tier " << simd::to_string(tier);
    std::vector<std::int32_t> unconf(thr.size(), -7);
    const std::size_t u = simd::batch_confirm(
        mono.data(), mono.size(), key.data(), val.data(), thr.data(),
        thr.size(), nullptr, static_cast<std::int32_t>(mono.size()),
        unconf.data());
    EXPECT_EQ(u, want_u) << "confirm tier " << simd::to_string(tier);
    for (std::size_t j = 0; j < u; ++j) {
      EXPECT_EQ(unconf[j], want_unconf[j])
          << "confirm tier " << simd::to_string(tier) << " slot " << j;
    }
  }
  simd::reset_simd_tier();
}

// ---------------------------------------------------------------------------
// BlockedSweep: the cache-blocked (budget x split) drivers and the
// best-segment engines they ride on. Tiling and batching are scheduling
// choices only — results must be bit-identical to the per-budget path
// for every block size, pool size, and SIMD tier.
// ---------------------------------------------------------------------------

TEST(BlockedSweep, TileSizeAndPoolInvarianceBitIdentical) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  const auto budgets =
      budget_grid(Watts{140.0}, Watts{280.0}, Watts{12.0});
  // Per-budget reference reduction.
  std::vector<std::optional<AllocationSample>> want(budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    want[i] = sweep_cpu_split_best(node, budgets[i], {});
  }
  for (const std::size_t block : {std::size_t{1}, std::size_t{4},
                                  std::size_t{64}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{7}}) {
      ThreadPool pool(threads);
      CpuSweepOptions opt;
      opt.budget_block = block;
      const auto got = sweep_cpu_budgets_best(node, budgets, opt, &pool);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].has_value(), want[i].has_value())
            << "block " << block << " threads " << threads << " budget "
            << i;
        if (got[i]) {
          ASSERT_TRUE(*got[i] == *want[i])
              << "block " << block << " threads " << threads << " budget "
              << i;
        }
      }
    }
  }
}

TEST(BlockedSweep, FullSweepTilingMatchesPerBudgetSamples) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_ft());
  const auto budgets =
      budget_grid(Watts{150.0}, Watts{270.0}, Watts{20.0});
  std::vector<std::vector<AllocationSample>> want(budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    want[i] = sweep_cpu_split(node, budgets[i], {});
  }
  ThreadPool pool(2);
  for (const std::size_t block : {std::size_t{1}, std::size_t{4},
                                  std::size_t{64}}) {
    CpuSweepOptions opt;
    opt.budget_block = block;
    const auto sweeps = sweep_cpu_budgets(node, budgets, opt, &pool);
    ASSERT_EQ(sweeps.size(), budgets.size());
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      ASSERT_EQ(sweeps[i].samples.size(), want[i].size())
          << "block " << block << " budget " << i;
      for (std::size_t j = 0; j < want[i].size(); ++j) {
        ASSERT_TRUE(sweeps[i].samples[j] == want[i][j])
            << "block " << block << " budget " << i << " split " << j;
      }
    }
  }
}

TEST(BlockedSweep, BatchBestMatchesScalarSolvesOnRandomizedSegments) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  node.prepare();
  Xoshiro256 rng(0x51D0, 14);
  SolveArena arena;
  const int grids = pbc::test::iters(512);
  for (int g = 0; g < grids; ++g) {
    const std::size_t nseg = 1 + rng.below(6);
    std::vector<std::int32_t> bounds(nseg + 1, 0);
    std::vector<CapPair> caps;
    for (std::size_t b = 0; b < nseg; ++b) {
      const std::size_t len = rng.below(9);  // includes empty segments
      for (std::size_t j = 0; j < len; ++j) {
        caps.push_back(CapPair{Watts{rng.uniform(15.0, 330.0)},
                               Watts{rng.uniform(10.0, 230.0)}});
      }
      bounds[b + 1] = static_cast<std::int32_t>(caps.size());
    }
    std::vector<AllocationSample> best(nseg);
    {
      const auto scope = arena.scope();
      node.steady_state_batch_best(caps, bounds, best, arena);
    }
    for (std::size_t b = 0; b < nseg; ++b) {
      std::optional<AllocationSample> want;
      for (std::int32_t i = bounds[b]; i < bounds[b + 1]; ++i) {
        const auto s = node.steady_state(caps[static_cast<std::size_t>(i)].cpu_cap,
                                         caps[static_cast<std::size_t>(i)].mem_cap);
        if (!want || s.perf > want->perf) want = s;
      }
      if (want) {
        ASSERT_TRUE(best[b] == *want) << "grid " << g << " segment " << b;
      } else {
        ASSERT_TRUE(best[b] == AllocationSample{})
            << "grid " << g << " empty segment " << b;
      }
    }
  }
}

TEST(BlockedSweep, GpuBatchBestMatchesClockSweepReduction) {
  const GpuNodeSim node(hw::titan_xp(), workload::minife());
  node.prepare();
  Xoshiro256 rng(0x51D0, 15);
  std::vector<Watts> caps;
  for (int i = 0; i < 64; ++i) {
    // Includes caps outside the driver range: the clamp must match.
    caps.push_back(Watts{rng.uniform(50.0, 400.0)});
  }
  SolveArena arena;
  std::vector<AllocationSample> best(caps.size());
  {
    const auto scope = arena.scope();
    node.steady_state_batch_best(caps, best, arena);
  }
  const std::size_t clocks = node.gpu_model().mem_clock_count();
  for (std::size_t i = 0; i < caps.size(); ++i) {
    AllocationSample want = node.steady_state(0, caps[i]);
    for (std::size_t c = 1; c < clocks; ++c) {
      const auto s = node.steady_state(c, caps[i]);
      if (s.perf > want.perf) want = s;
    }
    ASSERT_TRUE(best[i] == want) << "cap " << i;
  }
  // And through the sweep driver + frontier, against BudgetSweep::best.
  const auto sweeps = sweep_gpu_budgets(node, caps);
  const auto via_driver = sweep_gpu_budgets_best(node, caps);
  const auto frontier = core::perf_frontier_gpu(node, caps);
  ASSERT_EQ(via_driver.size(), caps.size());
  ASSERT_EQ(frontier.size(), caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const AllocationSample* want = sweeps[i].best();
    ASSERT_NE(want, nullptr);
    ASSERT_TRUE(via_driver[i].has_value());
    ASSERT_TRUE(*via_driver[i] == *want) << "cap " << i;
    ASSERT_EQ(frontier[i].perf_max, want->perf) << "cap " << i;
  }
}

TEST(BlockedSweep, ResultsIndependentOfSimdTier) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::sra());
  const auto budgets =
      budget_grid(Watts{150.0}, Watts{260.0}, Watts{16.0});
  ThreadPool pool(2);
  const auto native = sweep_cpu_budgets_best(node, budgets, {}, &pool);
  simd::force_simd_tier(SimdTier::kGeneric);
  const auto generic = sweep_cpu_budgets_best(node, budgets, {}, &pool);
  simd::reset_simd_tier();
  ASSERT_EQ(native.size(), generic.size());
  for (std::size_t i = 0; i < native.size(); ++i) {
    ASSERT_EQ(native[i].has_value(), generic[i].has_value()) << i;
    if (native[i]) {
      ASSERT_TRUE(*native[i] == *generic[i]) << i;
    }
  }
}

TEST(BlockedSweep, FrontierAndInterpolationRouteThroughBatchExactly) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  const auto budgets =
      budget_grid(Watts{140.0}, Watts{260.0}, Watts{24.0});
  ThreadPool pool(2);
  const auto frontier = core::perf_frontier_cpu(node, budgets, {}, &pool);
  ASSERT_EQ(frontier.size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto want = sweep_cpu_split_best(node, budgets[i], {});
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(frontier[i].perf_max, want->perf) << i;
    EXPECT_EQ(frontier[i].best_mem_cap.value(), want->mem_cap.value()) << i;
  }
  // The multi-budget interpolation batch must agree with the per-budget
  // entry point field for field.
  const auto batch = core::interpolated_best_batch(node, budgets);
  ASSERT_EQ(batch.size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto one = core::interpolated_best(node, budgets[i]);
    EXPECT_EQ(batch[i].best_proc_cap.value(), one.best_proc_cap.value());
    EXPECT_EQ(batch[i].best_mem_cap.value(), one.best_mem_cap.value());
    EXPECT_EQ(batch[i].predicted_perf, one.predicted_perf);
    EXPECT_EQ(batch[i].achieved_perf, one.achieved_perf);
    EXPECT_EQ(batch[i].samples_used, one.samples_used);
  }
}

TEST(SolveArenaTest, ScopedReuseRecyclesBlocksDeterministically) {
  SolveArena arena;
  double* first = nullptr;
  {
    const auto scope = arena.scope();
    const auto a = arena.get<double>(64);
    first = a.data();
    std::fill(a.begin(), a.end(), 1.0);
    {
      const auto inner = arena.scope();
      const auto b = arena.get<double>(16);
      // Nested scopes carve fresh blocks — never the outer span's.
      EXPECT_NE(b.data(), a.data());
      std::fill(b.begin(), b.end(), 2.0);
    }
    // Inner scope rewound: the next carve reuses the inner block.
    const auto c = arena.get<double>(16);
    std::fill(c.begin(), c.end(), 3.0);
    for (const double v : a) EXPECT_EQ(v, 1.0);
  }
  // Outer scope rewound: same request returns the same storage.
  const auto scope = arena.scope();
  const auto again = arena.get<double>(64);
  EXPECT_EQ(again.data(), first);
}

TEST(SolveArenaTest, BatchSolverIsDeterministicAcrossArenaReuse) {
  // Dirty arena blocks must never leak into results: the same batch run
  // repeatedly through one warm arena — interleaved with different-sized
  // carves — always yields the first answer.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  Xoshiro256 rng(0x51D0, 5);
  std::vector<CapPair> caps;
  for (int i = 0; i < 64; ++i) {
    caps.push_back(
        CapPair{Watts{rng.uniform(20.0, 320.0)}, Watts{rng.uniform(10.0, 220.0)}});
  }
  SolveArena arena;
  std::vector<AllocationSample> want(caps.size());
  {
    const auto scope = arena.scope();
    node.steady_state_batch(caps, want, arena);
  }
  const int reps = pbc::test::iters(20);
  for (int r = 0; r < reps; ++r) {
    {
      // Poison the pools with a differently shaped carve.
      const auto scope = arena.scope();
      const auto junk = arena.get<double>(17 + 31 * r);
      std::fill(junk.begin(), junk.end(), -1e300);
    }
    const auto scope = arena.scope();
    std::vector<AllocationSample> got(caps.size());
    node.steady_state_batch(caps, got, arena);
    for (std::size_t i = 0; i < caps.size(); ++i) {
      ASSERT_TRUE(got[i] == want[i]) << "rep " << r << " cap " << i;
    }
  }
}

TEST(SolveArenaTest, ReplayAndSweepReuseThreadArenaDeterministically) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const workload::Workload wl = workload::npb_mg();
  const PhaseNodeSet nodes(machine, wl);
  workload::PhaseTrace trace;
  for (std::size_t i = 0; i < 24; ++i) {
    trace.push_back({i % wl.phases.size(), 40.0 + static_cast<double>(i)});
  }
  const auto first = replay_trace(nodes, trace, Watts{150.0}, Watts{70.0});
  const CpuNodeSim node(machine, wl);
  const auto best_first = sweep_cpu_split_best(node, Watts{210.0}, {});
  const int reps = pbc::test::iters(10);
  for (int r = 0; r < reps; ++r) {
    // Interleaving replays and sweeps shares one thread arena between
    // differently shaped scopes; results must not drift.
    const auto replay = replay_trace(nodes, trace, Watts{150.0}, Watts{70.0});
    ASSERT_TRUE(replay.aggregate == first.aggregate) << "rep " << r;
    ASSERT_EQ(replay.segments.size(), first.segments.size());
    const auto best = sweep_cpu_split_best(node, Watts{210.0}, {});
    ASSERT_EQ(best.has_value(), best_first.has_value());
    ASSERT_TRUE(*best == *best_first) << "rep " << r;
  }
}

TEST(SweepStatsTest, MatchesSequentialAggregationWithinUlpBound) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  const auto samples = sweep_cpu_split(node, Watts{220.0}, {});
  ASSERT_FALSE(samples.empty());
  const SweepStats st = sweep_stats(samples);
  EXPECT_EQ(st.count, samples.size());
  double seq_perf = 0.0, seq_pow = 0.0, max_perf = 0.0, abs_perf = 0.0,
         abs_pow = 0.0;
  for (const auto& s : samples) {
    seq_perf += s.perf;
    seq_pow += s.proc_power.value() + s.mem_power.value();
    abs_perf += std::abs(s.perf);
    abs_pow += std::abs(s.proc_power.value() + s.mem_power.value());
    max_perf = std::max(max_perf, s.perf);
  }
  const double eps = std::ldexp(1.0, -52) * static_cast<double>(st.count);
  EXPECT_NEAR(st.total_perf, seq_perf, eps * abs_perf);
  EXPECT_NEAR(st.total_power_w, seq_pow, eps * abs_pow);
  EXPECT_EQ(st.max_perf, max_perf);
  EXPECT_EQ(sweep_stats({}).count, 0u);
}

}  // namespace
}  // namespace pbc::sim
