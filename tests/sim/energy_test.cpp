#include "sim/energy.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::sim {
namespace {

BudgetSweep stream_sweep(double budget) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  BudgetSweep sweep;
  sweep.budget = Watts{budget};
  sweep.samples = sweep_cpu_split(node, Watts{budget},
                                  {Watts{48.0}, Watts{40.0}, Watts{8.0}});
  return sweep;
}

TEST(Energy, ReportFollowsPowerAndRate) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto s = node.steady_state(Watts{150.0}, Watts{90.0});
  const auto r = energy_to_solution(s, 1000.0);
  EXPECT_NEAR(r.duration.value(), 1000.0 / s.rate_gunits, 1e-9);
  EXPECT_NEAR(r.total_energy().value(),
              s.total_power().value() * r.duration.value(), 1e-6);
  EXPECT_NEAR(r.energy_per_gunit, r.total_energy().value() / 1000.0, 1e-9);
  EXPECT_NEAR(r.edp, r.total_energy().value() * r.duration.value(), 1e-6);
}

TEST(Energy, ZeroWorkOrRateYieldsEmptyReport) {
  AllocationSample s;
  s.rate_gunits = 0.0;
  EXPECT_EQ(energy_to_solution(s, 100.0).total_energy().value(), 0.0);
  s.rate_gunits = 5.0;
  EXPECT_EQ(energy_to_solution(s, 0.0).duration.value(), 0.0);
}

TEST(Energy, BetterSplitUsesLessEnergyForSameWork) {
  // Paper finding 4 (Fig. 1): poor splits burn the budget for little
  // performance — energy-to-solution explodes.
  const auto sweep = stream_sweep(208.0);
  const auto& best = *sweep.best();
  double worst_perf = 1e300;
  const AllocationSample* worst = nullptr;
  for (const auto& s : sweep.samples) {
    if (s.perf < worst_perf) {
      worst_perf = s.perf;
      worst = &s;
    }
  }
  ASSERT_NE(worst, nullptr);
  const auto e_best = energy_to_solution(best, 100.0);
  const auto e_worst = energy_to_solution(*worst, 100.0);
  EXPECT_GT(e_worst.energy_per_gunit, 5.0 * e_best.energy_per_gunit);
}

TEST(Energy, EfficiencyCurveShapeMatchesSweep) {
  const auto sweep = stream_sweep(208.0);
  const auto curve = efficiency_curve(sweep);
  ASSERT_EQ(curve.size(), sweep.samples.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].mem_cap, sweep.samples[i].mem_cap);
    EXPECT_EQ(curve[i].perf, sweep.samples[i].perf);
    EXPECT_GE(curve[i].perf_per_watt, curve[i].perf_per_budget_watt - 1e-12);
  }
}

TEST(Energy, MostEfficientBeatsEveryOtherSample) {
  const auto sweep = stream_sweep(208.0);
  const AllocationSample* eff = most_efficient(sweep);
  ASSERT_NE(eff, nullptr);
  for (const auto& s : sweep.samples) {
    EXPECT_GE(eff->efficiency(), s.efficiency());
  }
}

TEST(Energy, MostEfficientOfEmptySweepIsNull) {
  BudgetSweep empty;
  EXPECT_EQ(most_efficient(empty), nullptr);
}

TEST(Energy, EfficiencyOptimumNearPerformanceOptimum) {
  // With actual power tracking perf loosely, the efficiency optimum sits
  // at or near the performance optimum for memory-bound codes (both avoid
  // the wasteful scenarios).
  const auto sweep = stream_sweep(208.0);
  const AllocationSample* eff = most_efficient(sweep);
  const AllocationSample* best = sweep.best();
  ASSERT_NE(eff, nullptr);
  ASSERT_NE(best, nullptr);
  EXPECT_GT(eff->perf, 0.5 * best->perf);
}

}  // namespace
}  // namespace pbc::sim
