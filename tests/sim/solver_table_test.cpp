// Unit tests for the fast-solver support layer: ResponseCurve's exact
// max-index-under-threshold query (bisection, gallop hints, non-monotone
// fallback) and the operating-point tables' shape invariants.
#include "sim/solver_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/platforms.hpp"
#include "rapl/ladder.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::sim {
namespace {

/// The ground truth every query must reproduce: a literal top-down
/// first-fit walk.
int brute_force(const std::vector<double>& power, double thr) {
  for (std::size_t i = power.size(); i-- > 0;) {
    if (power[i] <= thr) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> probe_thresholds(const std::vector<double>& power) {
  std::vector<double> t{-1e9, 0.0, 1e9};
  for (const double p : power) {
    t.push_back(p);
    t.push_back(p - 1e-9);
    t.push_back(p + 1e-9);
  }
  return t;
}

TEST(ResponseCurve, MonotoneMatchesBruteForceEverywhere) {
  const std::vector<double> power{10.0, 12.5, 12.5, 14.0, 21.0, 36.5};
  const ResponseCurve curve{std::vector<double>(power)};
  EXPECT_TRUE(curve.monotone());
  for (const double thr : probe_thresholds(power)) {
    EXPECT_EQ(curve.max_index_within(thr), brute_force(power, thr))
        << "threshold " << thr;
  }
}

TEST(ResponseCurve, HintNeverChangesTheAnswer) {
  const std::vector<double> power{1.0, 2.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0};
  const ResponseCurve curve{std::vector<double>(power)};
  for (const double thr : probe_thresholds(power)) {
    const int expect = curve.max_index_within(thr);
    for (int hint = -3; hint <= static_cast<int>(power.size()) + 2; ++hint) {
      EXPECT_EQ(curve.max_index_within(thr, hint), expect)
          << "threshold " << thr << " hint " << hint;
    }
  }
}

TEST(ResponseCurve, NonMonotoneFallbackIsExact) {
  // A dip (index 3) and a spike (index 5): the prefix-max fallback must
  // still return exactly what the top-down walk returns.
  const std::vector<double> power{5.0, 9.0, 12.0, 7.0, 13.0, 30.0, 14.0};
  const ResponseCurve curve{std::vector<double>(power)};
  EXPECT_FALSE(curve.monotone());
  for (const double thr : probe_thresholds(power)) {
    EXPECT_EQ(curve.max_index_within(thr), brute_force(power, thr))
        << "threshold " << thr;
    // Hints fall back to the unhinted query on non-monotone curves.
    EXPECT_EQ(curve.max_index_within(thr, 2), curve.max_index_within(thr));
  }
}

TEST(ResponseCurve, RandomizedCurvesAgainstBruteForce) {
  Xoshiro256 rng(0xC0FFEE, 7);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(40));
    const bool shuffle = rng.below(4) == 0;
    std::vector<double> power(n);
    double acc = rng.uniform(0.0, 5.0);
    for (std::size_t i = 0; i < n; ++i) {
      acc += rng.uniform(0.0, 3.0);
      power[i] = acc;
    }
    if (shuffle && n > 2) {
      // Swap a random pair to (usually) break monotonicity.
      const std::size_t a = static_cast<std::size_t>(rng.below(n));
      const std::size_t b = static_cast<std::size_t>(rng.below(n));
      std::swap(power[a], power[b]);
    }
    const ResponseCurve curve{std::vector<double>(power)};
    for (int probe = 0; probe < 16; ++probe) {
      const double thr = rng.uniform(-2.0, acc + 2.0);
      const int expect = brute_force(power, thr);
      EXPECT_EQ(curve.max_index_within(thr), expect);
      const int hint = static_cast<int>(rng.below(n + 2)) - 1;
      EXPECT_EQ(curve.max_index_within(thr, hint), expect);
    }
  }
}

TEST(ResponseCurve, EmptyCurveAnswersNone) {
  const ResponseCurve curve{std::vector<double>{}};
  EXPECT_EQ(curve.max_index_within(100.0), -1);
  EXPECT_EQ(curve.max_index_within(100.0, 3), -1);
}

TEST(CpuOpTable, ShapeMatchesMachineAndBandwidthsMatchGovernor) {
  const hw::CpuMachine m = hw::ivybridge_node();
  const CpuNodeSim node(m, workload::stream_cpu());
  const CpuOpTable& t = node.prepare();
  const rapl::NotchLadder ladder(m.cpu);
  EXPECT_EQ(t.ladder_states(), ladder.count());
  EXPECT_EQ(t.level_count(),
            static_cast<std::size_t>(m.dram.throttle_levels));
  EXPECT_EQ(t.cell_count(), (ladder.count() + 1) * t.level_count());
  // Level 0 is exactly min_bw and the top level exactly the governor's
  // lo + (L-1)*step — the values the reference walk compares against.
  EXPECT_EQ(t.level_bw(0), m.dram.min_bw.value());
  const double step = (m.dram.peak_bw.value() - m.dram.min_bw.value()) /
                      static_cast<double>(m.dram.throttle_levels - 1);
  EXPECT_EQ(t.level_bw(t.level_count() - 1),
            m.dram.min_bw.value() +
                static_cast<double>(m.dram.throttle_levels - 1) * step);
  // The sleep row really is asleep.
  EXPECT_EQ(t.sample(t.sleep_state(), 0).proc_region,
            ProcRegion::kSleepFloor);
  // Physical power models give monotone escalation curves.
  EXPECT_TRUE(t.fully_monotone());
  // prepare() is idempotent and returns the same table object.
  EXPECT_EQ(&t, &node.prepare());
}

TEST(GpuOpTable, ShapeMatchesCard) {
  const GpuNodeSim node(hw::titan_xp(), workload::minife());
  const GpuOpTable& t = node.prepare();
  EXPECT_EQ(t.step_count(), node.gpu_model().sm_step_count());
  EXPECT_EQ(t.clock_count(), node.gpu_model().mem_clock_count());
  for (std::size_t c = 0; c < t.clock_count(); ++c) {
    EXPECT_EQ(t.est_mem(c).value(),
              node.gpu_model().estimated_mem_power(c).value());
  }
  EXPECT_TRUE(t.fully_monotone());
}

}  // namespace
}  // namespace pbc::sim
