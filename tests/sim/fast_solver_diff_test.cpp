// Differential coverage for the fast table-driven solver: over randomized
// (machine, workload, caps) cases, the fast path must reproduce the
// retained reference solver bit for bit — every AllocationSample field,
// single solves, packed variants, warm-started batches, and multi-threaded
// sweeps alike. (Debug builds additionally self-check every fast solve
// inside the solver; this test holds the contract on release builds too.)
#include <gtest/gtest.h>

#include <vector>

#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "sim/sweep.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "../svc/svc_test_util.hpp"

namespace pbc::sim {
namespace {

using svc_test::random_cpu_machine;
using svc_test::random_cpu_workload;
using svc_test::random_gpu_machine;
using svc_test::random_gpu_workload;

Watts random_cpu_cap(Xoshiro256& rng) {
  // Spans every scenario category: far below the package floor up to
  // effectively uncapped.
  return Watts{rng.uniform(20.0, 320.0)};
}

Watts random_mem_cap(Xoshiro256& rng) {
  return Watts{rng.uniform(10.0, 220.0)};
}

TEST(FastSolverDiff, CpuBitIdenticalOnRandomizedCases) {
  Xoshiro256 rng(0xF457, 1);
  int cases = 0;
  for (int pair = 0; pair < 50; ++pair) {
    const hw::CpuMachine machine = random_cpu_machine(rng);
    const workload::Workload wl = random_cpu_workload(rng, pair);
    const CpuNodeSim node(machine, wl);
    for (int probe = 0; probe < 25; ++probe) {
      const Watts cpu_cap = random_cpu_cap(rng);
      const Watts mem_cap = random_mem_cap(rng);
      const AllocationSample fast = node.steady_state(cpu_cap, mem_cap);
      const AllocationSample ref =
          node.reference_steady_state(cpu_cap, mem_cap);
      ASSERT_TRUE(fast == ref)
          << wl.name << " cpu_cap=" << cpu_cap << " mem_cap=" << mem_cap
          << " perf " << fast.perf << " vs " << ref.perf;
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);
}

TEST(FastSolverDiff, CpuPackedBitIdentical) {
  Xoshiro256 rng(0xF457, 2);
  for (int pair = 0; pair < 20; ++pair) {
    const hw::CpuMachine machine = random_cpu_machine(rng);
    const workload::Workload wl = random_cpu_workload(rng, pair);
    const CpuNodeSim node(machine, wl);
    const int total = machine.cpu.total_cores();
    for (int probe = 0; probe < 10; ++probe) {
      // Deliberately includes out-of-range core counts (0 and total+2):
      // both paths clamp identically.
      const int cores = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(total) + 3));
      const Watts cpu_cap = random_cpu_cap(rng);
      const Watts mem_cap = random_mem_cap(rng);
      ASSERT_TRUE(node.steady_state_packed(cores, cpu_cap, mem_cap) ==
                  node.reference_steady_state_packed(cores, cpu_cap, mem_cap))
          << wl.name << " cores=" << cores;
    }
  }
}

TEST(FastSolverDiff, BatchMatchesSinglesRegardlessOfOrder) {
  Xoshiro256 rng(0xF457, 3);
  const hw::CpuMachine machine = random_cpu_machine(rng);
  const workload::Workload wl = random_cpu_workload(rng, 99);
  const CpuNodeSim node(machine, wl);

  std::vector<CapPair> caps;
  for (int i = 0; i < 300; ++i) {
    caps.push_back(CapPair{random_cpu_cap(rng), random_mem_cap(rng)});
  }
  const auto batch = node.steady_state_batch(caps);
  ASSERT_EQ(batch.size(), caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    // The warm-start hint carried between batch entries must never change
    // an answer: every element equals its standalone solve.
    ASSERT_TRUE(batch[i] ==
                node.steady_state(caps[i].cpu_cap, caps[i].mem_cap))
        << "batch index " << i;
  }

  // A different visiting order produces the same per-cap answers.
  std::vector<CapPair> reversed(caps.rbegin(), caps.rend());
  const auto rev_batch = node.steady_state_batch(reversed);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    ASSERT_TRUE(rev_batch[caps.size() - 1 - i] == batch[i]);
  }
}

TEST(FastSolverDiff, PackedBatchMatchesSingles) {
  Xoshiro256 rng(0xF457, 4);
  const hw::CpuMachine machine = random_cpu_machine(rng);
  const workload::Workload wl = random_cpu_workload(rng, 5);
  const CpuNodeSim node(machine, wl);
  const int cores = machine.cpu.total_cores() / 2;

  std::vector<CapPair> caps;
  for (int i = 0; i < 100; ++i) {
    caps.push_back(CapPair{random_cpu_cap(rng), random_mem_cap(rng)});
  }
  const auto batch = node.steady_state_packed_batch(cores, caps);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    ASSERT_TRUE(batch[i] == node.steady_state_packed(
                                cores, caps[i].cpu_cap, caps[i].mem_cap));
  }
}

TEST(FastSolverDiff, ParallelFastSweepMatchesSerialReferenceSweep) {
  Xoshiro256 rng(0xF457, 5);
  const hw::CpuMachine machine = random_cpu_machine(rng);
  const workload::Workload wl = random_cpu_workload(rng, 11);
  const CpuNodeSim node(machine, wl);
  const auto budgets =
      budget_grid(Watts{140.0}, Watts{280.0}, Watts{8.0});

  ThreadPool pool(4);
  CpuSweepOptions fast_opt;
  fast_opt.path = SolverPath::kFast;
  const auto fast = sweep_cpu_budgets(node, budgets, fast_opt, &pool);

  CpuSweepOptions ref_opt;
  ref_opt.path = SolverPath::kReference;
  ASSERT_EQ(fast.size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto ref = sweep_cpu_split(node, budgets[i], ref_opt);
    ASSERT_EQ(fast[i].samples.size(), ref.size()) << "budget " << budgets[i];
    for (std::size_t j = 0; j < ref.size(); ++j) {
      ASSERT_TRUE(fast[i].samples[j] == ref[j])
          << "budget " << budgets[i] << " split " << j;
    }
  }
}

TEST(FastSolverDiff, SweepBestMatchesFullSweepBest) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const CpuNodeSim node(machine, workload::npb_mg());
  for (double b = 150.0; b <= 270.0; b += 12.0) {
    BudgetSweep sweep;
    sweep.budget = Watts{b};
    sweep.samples = sweep_cpu_split(node, Watts{b}, {});
    const auto best = sweep_cpu_split_best(node, Watts{b}, {});
    ASSERT_EQ(best.has_value(), sweep.best() != nullptr);
    if (best) {
      ASSERT_TRUE(*best == *sweep.best()) << "budget " << b;
    }
  }
}

TEST(FastSolverDiff, GpuBitIdenticalOnRandomizedCases) {
  Xoshiro256 rng(0xF457, 6);
  for (int pair = 0; pair < 20; ++pair) {
    const hw::GpuMachine machine = random_gpu_machine(rng);
    const workload::Workload wl = random_gpu_workload(rng, pair);
    const GpuNodeSim node(machine, wl);
    const std::size_t clocks = node.gpu_model().mem_clock_count();
    for (int probe = 0; probe < 25; ++probe) {
      const std::size_t clk =
          static_cast<std::size_t>(rng.below(clocks + 1));  // incl. clamped
      const Watts cap{rng.uniform(80.0, 320.0)};  // spans the clamp range
      ASSERT_TRUE(node.steady_state(clk, cap) ==
                  node.reference_steady_state(clk, cap))
          << wl.name << " clk=" << clk << " cap=" << cap;
      ASSERT_TRUE(node.steady_state_no_reclaim(clk, cap) ==
                  node.reference_steady_state_no_reclaim(clk, cap))
          << wl.name << " clk=" << clk << " cap=" << cap << " (no reclaim)";
    }
  }
}

TEST(FastSolverDiff, GpuBatchMatchesSingles) {
  Xoshiro256 rng(0xF457, 7);
  const hw::GpuMachine machine = random_gpu_machine(rng);
  const workload::Workload wl = random_gpu_workload(rng, 3);
  const GpuNodeSim node(machine, wl);

  std::vector<Watts> caps;
  for (int i = 0; i < 200; ++i) caps.push_back(Watts{rng.uniform(80.0, 320.0)});
  for (std::size_t clk = 0; clk < node.gpu_model().mem_clock_count(); ++clk) {
    const auto batch = node.steady_state_batch(clk, caps);
    ASSERT_EQ(batch.size(), caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i) {
      ASSERT_TRUE(batch[i] == node.steady_state(clk, caps[i]))
          << "clk " << clk << " cap " << caps[i];
    }
  }
}

}  // namespace
}  // namespace pbc::sim
