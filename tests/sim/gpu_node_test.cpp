#include "sim/gpu_node.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::sim {
namespace {

GpuNodeSim xp(const workload::Workload& w) {
  return GpuNodeSim(hw::titan_xp(), w);
}

TEST(GpuNode, BoardCapIsHonoured) {
  const auto node = xp(workload::sgemm());
  for (double cap : {125.0, 150.0, 200.0, 250.0, 300.0}) {
    for (std::size_t clk = 0; clk < node.gpu_model().mem_clock_count();
         ++clk) {
      const auto s = node.steady_state(clk, Watts{cap});
      EXPECT_LE(s.total_power().value(), cap + 0.1)
          << "cap " << cap << " clk " << clk;
    }
  }
}

TEST(GpuNode, CapIsClampedToDriverRange) {
  const auto node = xp(workload::sgemm());
  const auto below = node.steady_state(0, Watts{10.0});
  const auto at_min = node.steady_state(0, node.machine().gpu.board_min_cap);
  EXPECT_EQ(below.sm_step, at_min.sm_step);
  const auto above = node.steady_state(0, Watts{9999.0});
  const auto at_max = node.steady_state(0, node.machine().gpu.board_max_cap);
  EXPECT_EQ(above.sm_step, at_max.sm_step);
}

TEST(GpuNode, UnusedMemoryBudgetFlowsToSms) {
  // Paper §4: GPU capping automatically reclaims unused memory budget. At a
  // fixed board cap, a lower memory clock leaves more power for the SMs, so
  // the chosen SM step must not decrease.
  const auto node = xp(workload::sgemm());
  const auto low_clk = node.steady_state(0, Watts{160.0});
  const auto high_clk = node.steady_state(
      node.gpu_model().mem_clock_count() - 1, Watts{160.0});
  EXPECT_GE(low_clk.sm_step, high_clk.sm_step);
  EXPECT_GT(low_clk.perf, high_clk.perf);  // SGEMM is compute intensive
}

TEST(GpuNode, TotalPowerTracksCapUnlessDemandBelowIt) {
  // Paper §4: "the actual total power consumption always matches the set
  // power cap, unless the cap exceeds the application's demand."
  const auto node = xp(workload::minife());
  const double demand = node.uncapped_board_power().value();
  const auto constrained = node.steady_state(
      node.gpu_model().mem_clock_count() - 1, Watts{150.0});
  EXPECT_GT(constrained.total_power().value(), 150.0 - 18.0);
  const auto plentiful = node.steady_state(
      node.gpu_model().mem_clock_count() - 1, Watts{300.0});
  EXPECT_LT(plentiful.total_power().value(), 300.0 - 10.0);
  EXPECT_NEAR(plentiful.total_power().value(), demand, 1.0);
}

TEST(GpuNode, DefaultPolicyUsesNominalClock) {
  const auto node = xp(workload::stream_gpu());
  const auto s = node.default_policy(Watts{200.0});
  EXPECT_EQ(s.mem_clock_index, node.gpu_model().mem_clock_count() - 1);
}

TEST(GpuNode, PerfMonotoneInBoardCap) {
  for (const auto& w : workload::gpu_suite()) {
    const auto node = xp(w);
    double prev = 0.0;
    for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
      const double perf = node.default_policy(Watts{cap}).perf;
      EXPECT_GE(perf, prev - 1e-9) << w.name << " cap " << cap;
      prev = perf;
    }
  }
}

TEST(GpuNode, MemCapFieldsReportImpliedAllocation) {
  const auto node = xp(workload::minife());
  const auto s = node.steady_state(1, Watts{200.0});
  EXPECT_EQ(s.mem_cap, node.gpu_model().estimated_mem_power(1));
  EXPECT_NEAR(s.proc_cap.value(), 200.0 - s.mem_cap.value(), 1e-9);
}

TEST(GpuNode, ComponentPowersSumToBoardPower) {
  const auto node = xp(workload::cloverleaf());
  const auto s = node.steady_state(2, Watts{220.0});
  // proc_power includes SM + board overhead; mem_power the memory domain.
  EXPECT_GT(s.proc_power.value(),
            node.machine().gpu.other_power.value());
  EXPECT_GT(s.mem_power.value(), 0.0);
}

TEST(GpuNode, PinnedReportsRequestedState) {
  const auto node = xp(workload::sgemm());
  const auto s = node.pinned(3, 1);
  EXPECT_EQ(s.sm_step, 3u);
  EXPECT_EQ(s.mem_clock_index, 1u);
}

TEST(GpuNode, UncappedPowerIsMaxOverStates) {
  const auto node = xp(workload::sgemm());
  const double uncapped = node.uncapped_board_power().value();
  for (std::size_t clk = 0; clk < node.gpu_model().mem_clock_count(); ++clk) {
    EXPECT_GE(uncapped + 1e-9,
              node.steady_state(clk, Watts{300.0}).total_power().value() -
                  35.0);
  }
}

TEST(GpuNode, SgemmOnXpDemandsMoreThanMaxCap) {
  // Paper Fig. 6: SGEMM's performance keeps growing through the entire
  // supported cap range on the Titan XP — demand exceeds 300 W.
  const auto node = xp(workload::sgemm());
  EXPECT_GT(node.uncapped_board_power().value(), 300.0);
  EXPECT_GT(node.default_policy(Watts{300.0}).perf,
            node.default_policy(Watts{260.0}).perf);
}

TEST(GpuNode, SgemmOnTitanVFlattensNear180) {
  const GpuNodeSim node(hw::titan_v(), workload::sgemm());
  const double at180 = node.default_policy(Watts{185.0}).perf;
  const double at300 = node.default_policy(Watts{300.0}).perf;
  EXPECT_NEAR(at180, at300, 0.02 * at300);
  EXPECT_LT(node.default_policy(Watts{150.0}).perf, 0.99 * at300);
}

TEST(GpuNode, MiniFeFlatInTitanVStudyRange) {
  // Paper Fig. 6: MiniFE's bound does not change over the studied range on
  // the Titan V.
  const GpuNodeSim node(hw::titan_v(), workload::minife());
  const double lo = node.default_policy(Watts{125.0}).perf;
  const double hi = node.default_policy(Watts{300.0}).perf;
  EXPECT_NEAR(lo, hi, 0.02 * hi);
}

TEST(GpuNode, DeterministicSteadyState) {
  const auto node = xp(workload::hpcg());
  const auto a = node.steady_state(2, Watts{170.0});
  const auto b = node.steady_state(2, Watts{170.0});
  EXPECT_EQ(a.perf, b.perf);
  EXPECT_EQ(a.sm_step, b.sm_step);
}

}  // namespace
}  // namespace pbc::sim
