#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::sim {
namespace {

EngineConfig fast_config() {
  EngineConfig cfg;
  cfg.duration = Seconds{0.8};
  cfg.warmup = Seconds{0.2};
  return cfg;
}

TEST(Engine, ConvergesToClosedFormSteadyState) {
  // The time-stepped control loop and the fixed-point solver must agree on
  // long-run power and performance. This is the core cross-validation of
  // the two simulation paths.
  const auto machine = hw::ivybridge_node();
  for (const char* name : {"SRA", "STREAM", "DGEMM", "MG"}) {
    const auto wl = workload::cpu_benchmark(name).value();
    const CpuNodeSim node(machine, wl);
    const RaplEngine engine(machine, wl, fast_config());
    for (const auto& caps : std::vector<std::pair<double, double>>{
             {300.0, 300.0}, {100.0, 100.0}, {80.0, 110.0}, {130.0, 85.0}}) {
      const auto exact =
          node.steady_state(Watts{caps.first}, Watts{caps.second});
      const auto timed = engine.run(Watts{caps.first}, Watts{caps.second});
      // The feedback loop dithers between adjacent discrete states, so its
      // long-run average can sit slightly above the conservative quantized
      // fixed point (real RAPL behaves the same way).
      EXPECT_NEAR(timed.aggregate.perf, exact.perf,
                  std::max(0.16 * exact.perf, 1e-3))
          << name << " caps " << caps.first << "/" << caps.second;
      EXPECT_NEAR(timed.aggregate.proc_power.value(),
                  exact.proc_power.value(), 8.0)
          << name;
      EXPECT_NEAR(timed.aggregate.mem_power.value(), exact.mem_power.value(),
                  8.0)
          << name;
    }
  }
}

TEST(Engine, RunningAverageRespectsCaps) {
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::sra(), fast_config());
  const auto run = engine.run(Watts{100.0}, Watts{100.0});
  EXPECT_LT(run.cpu_overshoot_frac, 0.05);
  EXPECT_LT(run.mem_overshoot_frac, 0.05);
  EXPECT_LE(run.aggregate.proc_power.value(), 101.5);
  EXPECT_LE(run.aggregate.mem_power.value(), 101.5);
}

TEST(Engine, UncappedRunsAtTopState) {
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::dgemm(), fast_config());
  const auto run = engine.run(Watts{1000.0}, Watts{1000.0});
  EXPECT_EQ(run.aggregate.pstate_index, machine.cpu.pstates.size() - 1);
  EXPECT_DOUBLE_EQ(run.aggregate.duty, 1.0);
  EXPECT_EQ(run.aggregate.mem_region, MemRegion::kUnthrottled);
}

TEST(Engine, RecordsDecimatedTimeline) {
  auto cfg = fast_config();
  cfg.record_timeline = true;
  cfg.timeline_stride = 10;
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::stream_cpu(), cfg);
  const auto run = engine.run(Watts{120.0}, Watts{100.0});
  ASSERT_FALSE(run.timeline.empty());
  // Post-warmup ticks / stride, within one.
  const auto expected =
      static_cast<std::size_t>((0.8 - 0.2) / 0.001 / 10.0);
  EXPECT_NEAR(static_cast<double>(run.timeline.size()),
              static_cast<double>(expected), 2.0);
  // Timeline is time-ordered.
  for (std::size_t i = 1; i < run.timeline.size(); ++i) {
    EXPECT_GT(run.timeline[i].t.value(), run.timeline[i - 1].t.value());
  }
}

TEST(Engine, NoTimelineByDefault) {
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::stream_cpu(), fast_config());
  EXPECT_TRUE(engine.run(Watts{120.0}, Watts{100.0}).timeline.empty());
}

TEST(Engine, MultiPhaseWorkloadConverges) {
  // BT has two phases with different memory behaviour; the controller must
  // still keep average power under the caps.
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::npb_bt(), fast_config());
  const auto run = engine.run(Watts{110.0}, Watts{85.0});
  EXPECT_LE(run.aggregate.proc_power.value(), 112.0);
  EXPECT_LE(run.aggregate.mem_power.value(), 87.0);
  EXPECT_GT(run.aggregate.perf, 0.0);
}

TEST(Engine, CapBelowFloorReportsViolation) {
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::sra(), fast_config());
  const auto run = engine.run(Watts{30.0}, Watts{30.0});
  EXPECT_FALSE(run.aggregate.proc_cap_respected);
  EXPECT_FALSE(run.aggregate.mem_cap_respected);
}

TEST(Engine, EnergyCountersMatchAveragePower) {
  // The MSR-metered energy must equal mean power × measured duration,
  // up to counter quantization (1/2^16 J — far below tolerance).
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::npb_cg(), fast_config());
  const auto run = engine.run(Watts{110.0}, Watts{95.0});
  const double measured_s = 0.8 - 0.2;
  EXPECT_NEAR(run.cpu_energy.value(),
              run.aggregate.proc_power.value() * measured_s,
              0.02 * run.cpu_energy.value() + 0.1);
  EXPECT_NEAR(run.mem_energy.value(),
              run.aggregate.mem_power.value() * measured_s,
              0.02 * run.mem_energy.value() + 0.1);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto machine = hw::ivybridge_node();
  const RaplEngine engine(machine, workload::npb_ft(), fast_config());
  const auto a = engine.run(Watts{105.0}, Watts{95.0});
  const auto b = engine.run(Watts{105.0}, Watts{95.0});
  EXPECT_EQ(a.aggregate.perf, b.aggregate.perf);
  EXPECT_EQ(a.aggregate.proc_power.value(), b.aggregate.proc_power.value());
}

}  // namespace
}  // namespace pbc::sim
