#include "sim/gpu_engine.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "sim/gpu_node.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::sim {
namespace {

GpuEngineConfig fast_config() {
  GpuEngineConfig cfg;
  cfg.duration = Seconds{0.8};
  cfg.warmup = Seconds{0.2};
  return cfg;
}

TEST(GpuEngine, ConvergesToSteadyStateSolver) {
  const auto card = hw::titan_xp();
  for (const char* name : {"SGEMM", "MiniFE", "Cloverleaf"}) {
    const auto wl = workload::gpu_benchmark(name).value();
    const GpuNodeSim node(card, wl);
    const GpuBoardEngine engine(card, wl, fast_config());
    for (double cap : {140.0, 200.0, 300.0}) {
      for (std::size_t clk : {std::size_t{0}, std::size_t{4}}) {
        const auto exact = node.steady_state(clk, Watts{cap});
        const auto timed = engine.run(clk, Watts{cap});
        EXPECT_NEAR(timed.aggregate.perf, exact.perf, 0.12 * exact.perf)
            << name << " cap " << cap << " clk " << clk;
        // The capper dithers between adjacent DVFS steps and averages up
        // to the cap, while the fixed point conservatively picks the step
        // below it — allow one step's worth of board power.
        EXPECT_NEAR(timed.aggregate.total_power().value(),
                    exact.total_power().value(), 16.0)
            << name << " cap " << cap << " clk " << clk;
      }
    }
  }
}

TEST(GpuEngine, RunningAverageRespectsCap) {
  const auto card = hw::titan_xp();
  const GpuBoardEngine engine(card, workload::sgemm(), fast_config());
  const auto run = engine.run(0, Watts{160.0});
  EXPECT_LT(run.overshoot_frac, 0.05);
  EXPECT_LE(run.aggregate.total_power().value(), 163.0);
}

TEST(GpuEngine, UncappedRunsNearTopStep) {
  const auto card = hw::titan_v();
  const GpuBoardEngine engine(card, workload::minife(), fast_config());
  const auto run = engine.run(card.gpu.mem_clocks_mhz.size() - 1,
                              Watts{300.0});
  // MiniFE's demand on the Titan V is ~110 W: no throttling at 300 W.
  EXPECT_GE(run.aggregate.sm_step, card.gpu.sm_steps - 2);
  EXPECT_LE(run.sm_transitions, 2u);
}

TEST(GpuEngine, TightCapCausesDithering) {
  // At a cap between two DVFS steps, the capper oscillates — that
  // dithering is what real boards show on power traces.
  const auto card = hw::titan_xp();
  const GpuBoardEngine engine(card, workload::sgemm(), fast_config());
  const auto run = engine.run(0, Watts{170.0});
  EXPECT_GT(run.sm_transitions, 0u);
}

TEST(GpuEngine, CapClampedToDriverRange) {
  const auto card = hw::titan_xp();
  const GpuBoardEngine engine(card, workload::hpcg(), fast_config());
  const auto below = engine.run(2, Watts{50.0});
  const auto at_min = engine.run(2, card.gpu.board_min_cap);
  EXPECT_NEAR(below.aggregate.perf, at_min.aggregate.perf,
              0.03 * at_min.aggregate.perf);
}

TEST(GpuEngine, Deterministic) {
  const auto card = hw::titan_xp();
  const GpuBoardEngine engine(card, workload::cufft(), fast_config());
  const auto a = engine.run(1, Watts{180.0});
  const auto b = engine.run(1, Watts{180.0});
  EXPECT_EQ(a.aggregate.perf, b.aggregate.perf);
  EXPECT_EQ(a.sm_transitions, b.sm_transitions);
}

}  // namespace
}  // namespace pbc::sim
