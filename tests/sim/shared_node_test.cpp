#include "sim/shared_node.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::sim {
namespace {

TEST(MaxMinFair, SatisfiesAllWhenCapacitySuffices) {
  const auto share = max_min_fair_share({10.0, 20.0, 5.0}, 100.0);
  EXPECT_DOUBLE_EQ(share[0], 10.0);
  EXPECT_DOUBLE_EQ(share[1], 20.0);
  EXPECT_DOUBLE_EQ(share[2], 5.0);
}

TEST(MaxMinFair, EqualSplitWhenAllDemandMore) {
  const auto share = max_min_fair_share({50.0, 60.0, 70.0}, 30.0);
  EXPECT_DOUBLE_EQ(share[0], 10.0);
  EXPECT_DOUBLE_EQ(share[1], 10.0);
  EXPECT_DOUBLE_EQ(share[2], 10.0);
}

TEST(MaxMinFair, SmallDemandReleasesSurplus) {
  // Demands {2, 40, 40}, capacity 42: tenant 0 takes 2, the rest split 40.
  const auto share = max_min_fair_share({2.0, 40.0, 40.0}, 42.0);
  EXPECT_DOUBLE_EQ(share[0], 2.0);
  EXPECT_DOUBLE_EQ(share[1], 20.0);
  EXPECT_DOUBLE_EQ(share[2], 20.0);
}

TEST(MaxMinFair, NeverExceedsCapacityOrDemand) {
  const auto share = max_min_fair_share({7.0, 13.0, 29.0, 3.0}, 25.0);
  double total = 0.0;
  const std::vector<double> demands{7.0, 13.0, 29.0, 3.0};
  for (std::size_t i = 0; i < share.size(); ++i) {
    EXPECT_LE(share[i], demands[i] + 1e-12);
    total += share[i];
  }
  EXPECT_LE(total, 25.0 + 1e-9);
}

TEST(MaxMinFair, ZeroCapacity) {
  for (double s : max_min_fair_share({5.0, 5.0}, 0.0)) EXPECT_EQ(s, 0.0);
}

SharedCpuNodeSim dgemm_stream_node(int dgemm_cores) {
  const auto machine = hw::ivybridge_node();
  return SharedCpuNodeSim(
      machine, {{workload::dgemm(), dgemm_cores},
                {workload::stream_cpu(), 20 - dgemm_cores}});
}

TEST(SharedNode, CapsAreRespected) {
  const auto node = dgemm_stream_node(10);
  for (double c : {90.0, 120.0, 150.0}) {
    for (double m : {80.0, 100.0, 120.0}) {
      const auto s = node.steady_state(Watts{c}, Watts{m});
      EXPECT_LE(s.proc_power.value(), c + 0.1) << c << "/" << m;
      EXPECT_LE(s.mem_power.value(), m + 0.1) << c << "/" << m;
    }
  }
}

TEST(SharedNode, BothTenantsMakeProgress) {
  const auto node = dgemm_stream_node(10);
  const auto s = node.steady_state(Watts{140.0}, Watts{110.0});
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_GT(s.tenants[0].perf, 0.0);
  EXPECT_GT(s.tenants[1].perf, 0.0);
}

TEST(SharedNode, MoreCoresMoreComputePerf) {
  const auto few = dgemm_stream_node(6).steady_state(Watts{300.0},
                                                     Watts{300.0});
  const auto many = dgemm_stream_node(14).steady_state(Watts{300.0},
                                                       Watts{300.0});
  EXPECT_GT(many.tenants[0].perf, few.tenants[0].perf);  // DGEMM scales
  EXPECT_LE(many.tenants[1].perf, few.tenants[1].perf + 1e-9);
}

TEST(SharedNode, TenantPerfBoundedBySoloRun) {
  // A tenant sharing the node can never beat the whole machine to itself
  // under the same caps.
  const auto machine = hw::ivybridge_node();
  const CpuNodeSim solo(machine, workload::stream_cpu());
  const auto shared = dgemm_stream_node(10);
  const auto s = shared.steady_state(Watts{150.0}, Watts{116.0});
  const auto alone = solo.steady_state(Watts{150.0}, Watts{116.0});
  EXPECT_LE(s.tenants[1].perf, alone.perf * 1.01);
}

TEST(SharedNode, BandwidthSharesRespectTotal) {
  const auto node = dgemm_stream_node(8);
  const auto s = node.steady_state(Watts{130.0}, Watts{100.0});
  double total_granted = 0.0;
  for (const auto& t : s.tenants) total_granted += t.granted_bw.value();
  EXPECT_LE(total_granted, s.total_bw.value() + 1e-9);
}

TEST(SharedNode, MemoryHogYieldsToLightTenant) {
  // EP barely touches memory; sharing with STREAM, EP's tiny demand is
  // fully satisfied while STREAM absorbs the rest.
  const auto machine = hw::ivybridge_node();
  const SharedCpuNodeSim node(
      machine, {{workload::npb_ep(), 10}, {workload::stream_cpu(), 10}});
  const auto s = node.steady_state(Watts{300.0}, Watts{300.0});
  EXPECT_NEAR(s.tenants[0].granted_bw.value(),
              s.tenants[0].achieved_bw.value(), 1.0);
  EXPECT_GT(s.tenants[1].granted_bw.value(),
            10.0 * s.tenants[0].granted_bw.value());
}

TEST(SharedNode, PackageThrottlesUnderTightCap) {
  const auto node = dgemm_stream_node(10);
  const auto tight = node.steady_state(Watts{80.0}, Watts{120.0});
  const auto loose = node.steady_state(Watts{200.0}, Watts{120.0});
  EXPECT_LT(tight.pstate_index, loose.pstate_index);
  EXPECT_LT(tight.tenants[0].perf, loose.tenants[0].perf);
}

// ------------------------------------------------ per-core DVFS ------

SharedCpuNodeSim haswell_pair(bool per_core) {
  auto machine = hw::haswell_node();
  machine.cpu.per_core_dvfs = per_core;
  return SharedCpuNodeSim(
      machine,
      {{workload::dgemm(), 12}, {workload::stream_cpu(), 12}});
}

TEST(SharedNodePerCore, CapStillRespected) {
  const auto node = haswell_pair(true);
  for (double c : {90.0, 110.0, 130.0}) {
    const auto s = node.steady_state(Watts{c}, Watts{100.0});
    EXPECT_LE(s.proc_power.value(), c + 0.1) << c;
    EXPECT_LE(s.mem_power.value(), 100.1) << c;
  }
}

TEST(SharedNodePerCore, TenantsGetDifferentClocksUnderTightCap) {
  // The greedy parks the bandwidth-bound tenant's cores (whose perf barely
  // depends on clock) and keeps the compute tenant fast.
  const auto s = haswell_pair(true).steady_state(Watts{100.0}, Watts{100.0});
  ASSERT_EQ(s.tenant_pstates.size(), 2u);
  EXPECT_GT(s.tenant_pstates[0], s.tenant_pstates[1]);  // DGEMM > STREAM
}

TEST(SharedNodePerCore, BeatsPackageWideDvfsForMixedTenants) {
  const auto per_core =
      haswell_pair(true).steady_state(Watts{100.0}, Watts{100.0});
  const auto pkg_wide =
      haswell_pair(false).steady_state(Watts{100.0}, Watts{100.0});
  // The compute tenant gains materially; the memory tenant loses (almost)
  // nothing.
  EXPECT_GT(per_core.tenants[0].perf, 1.08 * pkg_wide.tenants[0].perf);
  EXPECT_GT(per_core.tenants[1].perf, 0.95 * pkg_wide.tenants[1].perf);
}

TEST(SharedNodePerCore, MatchesPackageWideWhenUnconstrained) {
  const auto per_core =
      haswell_pair(true).steady_state(Watts{300.0}, Watts{300.0});
  const auto pkg_wide =
      haswell_pair(false).steady_state(Watts{300.0}, Watts{300.0});
  EXPECT_NEAR(per_core.tenants[0].perf, pkg_wide.tenants[0].perf,
              0.01 * pkg_wide.tenants[0].perf);
  EXPECT_NEAR(per_core.tenants[1].perf, pkg_wide.tenants[1].perf,
              0.01 * pkg_wide.tenants[1].perf);
}

TEST(SharedNodePerCore, PackageWidePathKeepsUniformStates) {
  const auto s = haswell_pair(false).steady_state(Watts{110.0}, Watts{100.0});
  ASSERT_EQ(s.tenant_pstates.size(), 2u);
  EXPECT_EQ(s.tenant_pstates[0], s.tenant_pstates[1]);
}

TEST(SharedNodePerCore, IvyBridgeStaysPackageWide) {
  // Paper Table 2: IvyBridge has per-processor DVFS only.
  const auto machine = hw::ivybridge_node();
  EXPECT_FALSE(machine.cpu.per_core_dvfs);
  const SharedCpuNodeSim node(
      machine, {{workload::dgemm(), 10}, {workload::stream_cpu(), 10}});
  const auto s = node.steady_state(Watts{100.0}, Watts{100.0});
  EXPECT_EQ(s.tenant_pstates[0], s.tenant_pstates[1]);
}

TEST(SharedNode, Deterministic) {
  const auto node = dgemm_stream_node(12);
  const auto a = node.steady_state(Watts{140.0}, Watts{100.0});
  const auto b = node.steady_state(Watts{140.0}, Watts{100.0});
  EXPECT_EQ(a.tenants[0].perf, b.tenants[0].perf);
  EXPECT_EQ(a.tenants[1].perf, b.tenants[1].perf);
}

}  // namespace
}  // namespace pbc::sim
