#include "sim/trace_replay.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::sim {
namespace {

TEST(TraceReplay, LongTraceConvergesToMixedSteadyState) {
  const auto wl = workload::npb_ft();
  const CpuNodeSim node(hw::ivybridge_node(), wl);
  workload::TraceOptions opt;
  opt.total_units = 2000.0;
  opt.irregularity = 0.3;
  const auto trace = workload::generate_trace(wl, opt);
  const auto replay = replay_trace(node, trace, Watts{120.0}, Watts{95.0});
  const auto exact = node.steady_state(Watts{120.0}, Watts{95.0});
  // Per-phase capping differs slightly from mixed-phase capping (the
  // governor re-settles per phase), but aggregates must be close.
  EXPECT_NEAR(replay.aggregate.perf, exact.perf, 0.15 * exact.perf);
  EXPECT_NEAR(replay.aggregate.proc_power.value(), exact.proc_power.value(),
              10.0);
  EXPECT_NEAR(replay.aggregate.mem_power.value(), exact.mem_power.value(),
              10.0);
}

TEST(TraceReplay, RespectsCapsPerSegment) {
  const auto wl = workload::npb_bt();
  const CpuNodeSim node(hw::ivybridge_node(), wl);
  const auto trace = workload::generate_trace(wl, {300.0, 2.0, 0.7, 11});
  const auto replay = replay_trace(node, trace, Watts{110.0}, Watts{90.0});
  for (const auto& seg : replay.segments) {
    EXPECT_LE(seg.proc_power.value(), 110.1);
    EXPECT_LE(seg.mem_power.value(), 90.1);
  }
  EXPECT_TRUE(replay.aggregate.proc_cap_respected);
  EXPECT_TRUE(replay.aggregate.mem_cap_respected);
}

TEST(TraceReplay, EnergyIsPowerTimesTime) {
  const auto wl = workload::npb_lu();
  const CpuNodeSim node(hw::ivybridge_node(), wl);
  const auto trace = workload::generate_trace(wl, {100.0, 1.0, 0.5, 5});
  const auto replay = replay_trace(node, trace, Watts{130.0}, Watts{100.0});
  double expected_proc = 0.0;
  for (const auto& seg : replay.segments) {
    expected_proc += seg.proc_power.value() * seg.duration.value();
  }
  EXPECT_NEAR(replay.proc_energy.value(), expected_proc, 1e-6);
  EXPECT_GT(replay.total_energy().value(), 0.0);
}

TEST(TraceReplay, SegmentRatesDifferAcrossPhases) {
  // The per-phase variability the paper's §6.2 attributes irregular curves
  // to: BT's solve and exchange phases run at different rates under the
  // same caps.
  const auto wl = workload::npb_bt();
  const CpuNodeSim node(hw::ivybridge_node(), wl);
  const auto trace = workload::generate_trace(wl, {50.0, 1.0, 0.0, 1});
  const auto replay = replay_trace(node, trace, Watts{110.0}, Watts{85.0});
  double rate0 = 0.0;
  double rate1 = 0.0;
  for (const auto& seg : replay.segments) {
    (seg.phase_index == 0 ? rate0 : rate1) = seg.rate_gunits;
  }
  ASSERT_GT(rate0, 0.0);
  ASSERT_GT(rate1, 0.0);
  EXPECT_GT(std::abs(rate0 - rate1) / std::max(rate0, rate1), 0.1);
}

TEST(TraceReplay, TighterCapsSlowTheTrace) {
  const auto wl = workload::npb_sp();
  const CpuNodeSim node(hw::ivybridge_node(), wl);
  const auto trace = workload::generate_trace(wl, {200.0, 1.0, 0.4, 9});
  const auto fast = replay_trace(node, trace, Watts{150.0}, Watts{110.0});
  const auto slow = replay_trace(node, trace, Watts{80.0}, Watts{80.0});
  EXPECT_LT(fast.total_time.value(), slow.total_time.value());
  EXPECT_GT(fast.aggregate.perf, slow.aggregate.perf);
}

TEST(TraceReplay, EmptyTraceYieldsEmptyResult) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto replay = replay_trace(node, {}, Watts{150.0}, Watts{100.0});
  EXPECT_TRUE(replay.segments.empty());
  EXPECT_EQ(replay.total_time.value(), 0.0);
  EXPECT_EQ(replay.aggregate.perf, 0.0);
}

TEST(TraceReplay, OutOfRangePhaseIndicesSkipped) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const workload::PhaseTrace bogus{{5, 10.0}, {0, 10.0}};
  const auto replay = replay_trace(node, bogus, Watts{150.0}, Watts{100.0});
  EXPECT_EQ(replay.segments.size(), 1u);
}

}  // namespace
}  // namespace pbc::sim
