#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::sim {
namespace {

TEST(Sweep, CpuSplitGridShapeAndOrder) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const CpuSweepOptions opt{Watts{40.0}, Watts{32.0}, Watts{8.0}};
  const auto samples = sweep_cpu_split(node, Watts{200.0}, opt);
  ASSERT_FALSE(samples.empty());
  // mem caps 40, 48, ..., 168 => 17 points.
  EXPECT_EQ(samples.size(), 17u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].mem_cap.value(),
                     40.0 + 8.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(samples[i].total_cap().value(), 200.0);
  }
}

TEST(Sweep, GpuSplitCoversAllMemClocks) {
  const GpuNodeSim node(hw::titan_xp(), workload::minife());
  const auto samples = sweep_gpu_split(node, Watts{200.0});
  EXPECT_EQ(samples.size(), node.gpu_model().mem_clock_count());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].mem_clock_index, i);
  }
  // Ascending estimated memory power.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].mem_cap, samples[i - 1].mem_cap);
  }
}

TEST(Sweep, BestReturnsMaxPerf) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  BudgetSweep sweep;
  sweep.budget = Watts{208.0};
  sweep.samples = sweep_cpu_split(node, Watts{208.0}, {});
  const AllocationSample* best = sweep.best();
  ASSERT_NE(best, nullptr);
  for (const auto& s : sweep.samples) {
    EXPECT_LE(s.perf, best->perf);
  }
}

TEST(Sweep, BestOfEmptyIsNull) {
  BudgetSweep sweep;
  EXPECT_EQ(sweep.best(), nullptr);
}

TEST(Sweep, ParallelBudgetsMatchSerial) {
  const CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const auto budgets = budget_grid(Watts{150.0}, Watts{240.0}, Watts{30.0});
  ThreadPool pool(4);
  const auto parallel = sweep_cpu_budgets(node, budgets, {}, &pool);
  ASSERT_EQ(parallel.size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto serial = sweep_cpu_split(node, budgets[i], {});
    ASSERT_EQ(parallel[i].samples.size(), serial.size());
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(parallel[i].samples[j].perf, serial[j].perf);
    }
  }
}

TEST(Sweep, GpuBudgetsParallel) {
  const GpuNodeSim node(hw::titan_v(), workload::stream_gpu());
  const auto caps = budget_grid(Watts{125.0}, Watts{250.0}, Watts{25.0});
  const auto sweeps = sweep_gpu_budgets(node, caps);
  ASSERT_EQ(sweeps.size(), caps.size());
  for (const auto& sw : sweeps) {
    EXPECT_EQ(sw.samples.size(), node.gpu_model().mem_clock_count());
  }
}

TEST(Sweep, BudgetGridInclusiveOfEndpointOnGrid) {
  const auto grid = budget_grid(Watts{100.0}, Watts{120.0}, Watts{10.0});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[0].value(), 100.0);
  EXPECT_DOUBLE_EQ(grid[2].value(), 120.0);
}

TEST(Sweep, BudgetGridIncludesOffGridEndpoint) {
  const auto grid = budget_grid(Watts{100.0}, Watts{125.0}, Watts{10.0});
  ASSERT_EQ(grid.size(), 4u);  // 100, 110, 120, 125
  EXPECT_DOUBLE_EQ(grid[2].value(), 120.0);
  EXPECT_DOUBLE_EQ(grid[3].value(), 125.0);
}

TEST(Sweep, BudgetGridRejectsNonPositiveStep) {
  EXPECT_TRUE(budget_grid(Watts{100.0}, Watts{120.0}, Watts{0.0}).empty());
  EXPECT_TRUE(budget_grid(Watts{100.0}, Watts{120.0}, Watts{-5.0}).empty());
}

TEST(Sweep, BudgetGridRejectsReversedRange) {
  EXPECT_TRUE(budget_grid(Watts{120.0}, Watts{100.0}, Watts{10.0}).empty());
}

TEST(Sweep, BudgetGridSinglePointWhenLoEqualsHi) {
  const auto grid = budget_grid(Watts{150.0}, Watts{150.0}, Watts{10.0});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0].value(), 150.0);
}

TEST(Sweep, BudgetGridOffGridEndpointNotDuplicatedWithinTolerance) {
  // hi within 1e-9 of the last grid point must not be appended twice.
  const auto grid = budget_grid(Watts{100.0}, Watts{120.0 + 1e-10},
                                Watts{10.0});
  EXPECT_EQ(grid.size(), 3u);
}

}  // namespace
}  // namespace pbc::sim
