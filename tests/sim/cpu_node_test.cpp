#include "sim/cpu_node.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::sim {
namespace {

CpuNodeSim sra_node() {
  return CpuNodeSim(hw::ivybridge_node(), workload::sra());
}

TEST(CpuNode, UncappedMatchesPaperSraPowers) {
  // Paper (scenario I discussion): SRA draws ~112 W on processors and
  // ~116 W on memory when unconstrained.
  const auto s = sra_node().uncapped();
  EXPECT_NEAR(s.proc_power.value(), 112.0, 8.0);
  EXPECT_NEAR(s.mem_power.value(), 116.0, 8.0);
  EXPECT_TRUE(s.proc_cap_respected);
  EXPECT_TRUE(s.mem_cap_respected);
  EXPECT_EQ(s.proc_region, ProcRegion::kPState);
  EXPECT_EQ(s.mem_region, MemRegion::kUnthrottled);
}

TEST(CpuNode, UncappedRunsAtTopPstate) {
  const auto node = sra_node();
  const auto s = node.uncapped();
  EXPECT_EQ(s.pstate_index, node.machine().cpu.pstates.size() - 1);
  EXPECT_DOUBLE_EQ(s.duty, 1.0);
}

TEST(CpuNode, CapsAreRespectedInValidRange) {
  // Memory caps start at 75 W: the minimum achievable DRAM power for SRA
  // (background + deepest-throttle traffic at 2× energy/byte) is ~71 W, so
  // caps below that are legitimately unmeetable.
  const auto node = sra_node();
  for (double c : {70.0, 90.0, 110.0, 150.0}) {
    for (double m : {75.0, 90.0, 110.0, 130.0}) {
      const auto s = node.steady_state(Watts{c}, Watts{m});
      EXPECT_LE(s.proc_power.value(), c + 0.1)
          << "cpu cap " << c << " mem cap " << m;
      EXPECT_LE(s.mem_power.value(), m + 0.1)
          << "cpu cap " << c << " mem cap " << m;
      EXPECT_TRUE(s.proc_cap_respected);
      EXPECT_TRUE(s.mem_cap_respected);
    }
  }
}

TEST(CpuNode, CapBelowFloorIsViolatedAndFlagged) {
  const auto node = sra_node();
  const double floor = node.machine().cpu.floor.value();
  const auto s = node.steady_state(Watts{floor - 10.0}, Watts{200.0});
  EXPECT_FALSE(s.proc_cap_respected);
  EXPECT_NEAR(s.proc_power.value(), floor, 0.5);
  EXPECT_EQ(s.proc_region, ProcRegion::kSleepFloor);
}

TEST(CpuNode, MemCapBelowFloorDrawsFloor) {
  const auto node = sra_node();
  const double floor = node.machine().dram.floor.value();
  const auto s = node.steady_state(Watts{200.0}, Watts{floor - 20.0});
  EXPECT_GE(s.mem_power.value(), floor - 0.5);
  EXPECT_FALSE(s.mem_cap_respected);
  EXPECT_EQ(s.mem_region, MemRegion::kFloor);
}

TEST(CpuNode, PerfMonotoneInCpuCap) {
  const auto node = sra_node();
  double prev = 0.0;
  for (double c = 50.0; c <= 160.0; c += 10.0) {
    const double perf = node.steady_state(Watts{c}, Watts{300.0}).perf;
    EXPECT_GE(perf, prev - 1e-9) << "cap " << c;
    prev = perf;
  }
}

TEST(CpuNode, PerfMonotoneInMemCap) {
  const auto node = sra_node();
  double prev = 0.0;
  for (double m = 60.0; m <= 130.0; m += 5.0) {
    const double perf = node.steady_state(Watts{300.0}, Watts{m}).perf;
    EXPECT_GE(perf, prev - 1e-9) << "cap " << m;
    prev = perf;
  }
}

TEST(CpuNode, TightCpuCapEngagesDvfsThenThrottling) {
  const auto node = sra_node();
  // Light constraint: still a P-state, below the top one.
  const auto light = node.steady_state(Watts{85.0}, Watts{300.0});
  EXPECT_EQ(light.proc_region, ProcRegion::kPState);
  EXPECT_LT(light.pstate_index, node.machine().cpu.pstates.size() - 1);
  // Serious constraint: clock throttling.
  const auto heavy = node.steady_state(Watts{55.0}, Watts{300.0});
  EXPECT_EQ(heavy.proc_region, ProcRegion::kTState);
  EXPECT_LT(heavy.duty, 1.0);
  EXPECT_LT(heavy.perf, light.perf);
}

TEST(CpuNode, TightMemCapEngagesThrottling) {
  const auto node = sra_node();
  const auto s = node.steady_state(Watts{300.0}, Watts{90.0});
  EXPECT_EQ(s.mem_region, MemRegion::kThrottled);
  EXPECT_LT(s.avail_bw, node.machine().dram.peak_bw);
}

TEST(CpuNode, ScenarioIVMemoryUnderusesItsAllocation) {
  // Paper scenario IV: with the CPU seriously constrained, memory consumes
  // much less than its (generous) allocation because the CPU makes fewer
  // requests.
  const auto node = sra_node();
  const auto s = node.steady_state(Watts{52.0}, Watts{130.0});
  EXPECT_EQ(s.proc_region, ProcRegion::kTState);
  EXPECT_LT(s.mem_power.value(), 100.0);
}

TEST(CpuNode, SteadyStateIsDeterministic) {
  const auto node = sra_node();
  const auto a = node.steady_state(Watts{97.0}, Watts{103.0});
  const auto b = node.steady_state(Watts{97.0}, Watts{103.0});
  EXPECT_EQ(a.perf, b.perf);
  EXPECT_EQ(a.proc_power.value(), b.proc_power.value());
  EXPECT_EQ(a.pstate_index, b.pstate_index);
}

TEST(CpuNode, PinnedReportsRequestedState) {
  const auto node = sra_node();
  const hw::CpuOperatingPoint op{3, 1.0, false};
  const auto s = node.pinned(op, GBps{40.0});
  EXPECT_EQ(s.pstate_index, 3u);
  EXPECT_DOUBLE_EQ(s.duty, 1.0);
  EXPECT_DOUBLE_EQ(s.avail_bw.value(), 40.0);
  EXPECT_EQ(s.proc_cap, s.proc_power);
}

TEST(CpuNode, PinnedPowerOrderedByState) {
  const auto node = sra_node();
  const auto hi = node.pinned({13, 1.0, false}, node.machine().dram.peak_bw);
  const auto lo = node.pinned({0, 1.0, false}, node.machine().dram.peak_bw);
  EXPECT_GT(hi.proc_power, lo.proc_power);
  EXPECT_GT(hi.perf, lo.perf);
}

TEST(CpuNode, WorksForEveryBenchmarkInSuite) {
  const auto machine = hw::ivybridge_node();
  for (const auto& w : workload::cpu_suite()) {
    const CpuNodeSim node(machine, w);
    const auto s = node.steady_state(Watts{120.0}, Watts{90.0});
    EXPECT_GT(s.perf, 0.0) << w.name;
    EXPECT_LE(s.proc_power.value(), 120.1) << w.name;
    EXPECT_LE(s.mem_power.value(), 90.1) << w.name;
  }
}

TEST(CpuNode, HaswellOutperformsIvyBridgeAtSmallBudgetForStream) {
  // Paper Fig. 2: the Haswell/DDR4 node delivers better performance at
  // small total budgets.
  const CpuNodeSim ivy(hw::ivybridge_node(), workload::stream_cpu());
  const CpuNodeSim has(hw::haswell_node(), workload::stream_cpu());
  const double b = 140.0;
  double best_ivy = 0.0;
  double best_has = 0.0;
  for (double m = 40.0; m <= b - 40.0; m += 4.0) {
    best_ivy = std::max(best_ivy,
                        ivy.steady_state(Watts{b - m}, Watts{m}).perf);
    best_has = std::max(best_has,
                        has.steady_state(Watts{b - m}, Watts{m}).perf);
  }
  EXPECT_GT(best_has, best_ivy);
}

}  // namespace
}  // namespace pbc::sim
