#include "nvml/smi.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::nvml {
namespace {

class SmiTest : public ::testing::Test {
 protected:
  NvmlDevice device_{hw::titan_xp()};
  SmiCli cli_{&device_};
};

TEST_F(SmiTest, PowerQueryReportsConstraints) {
  const auto r = cli_.run("nvidia-smi -q -d POWER");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Power Limit                 : 250"),
            std::string::npos);
  EXPECT_NE(r.output.find("Min Power Limit             : 125"),
            std::string::npos);
  EXPECT_NE(r.output.find("Max Power Limit             : 300"),
            std::string::npos);
  EXPECT_NE(r.output.find("Memory                      : 5705"),
            std::string::npos);
}

TEST_F(SmiTest, SetPowerLimitSucceeds) {
  const auto r = cli_.run("nvidia-smi -pl 200");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_DOUBLE_EQ(device_.power_limit().value(), 200.0);
  EXPECT_NE(r.output.find("was set to 200"), std::string::npos);
}

TEST_F(SmiTest, SetPowerLimitOutOfRangeFails) {
  const auto r = cli_.run("nvidia-smi -pl 400");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("not a valid power limit"), std::string::npos);
  EXPECT_DOUBLE_EQ(device_.power_limit().value(), 250.0);  // unchanged
}

TEST_F(SmiTest, SetPowerLimitRejectsGarbage) {
  EXPECT_EQ(cli_.run("nvidia-smi -pl lots").exit_code, 1);
  EXPECT_EQ(cli_.run("nvidia-smi -pl").exit_code, 1);
}

TEST_F(SmiTest, MemoryOffsetSelectsClock) {
  // Nominal is 5705 MHz; an offset of -1699 targets 4006 -> snaps to 4006.
  const auto r = cli_.run(
      "nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-1699");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_DOUBLE_EQ(device_.mem_clock_mhz(), 4006.0);
}

TEST_F(SmiTest, MemoryOffsetSnapsDownBetweenClocks) {
  const auto r = cli_.run(
      "nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-300");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_DOUBLE_EQ(device_.mem_clock_mhz(), 5005.0);  // 5405 snaps to 5005
}

TEST_F(SmiTest, MemoryOffsetBelowRangeFails) {
  const auto r = cli_.run(
      "nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-5000");
  EXPECT_EQ(r.exit_code, 1);
}

TEST_F(SmiTest, UnknownCommandsFail) {
  EXPECT_EQ(cli_.run("").exit_code, 1);
  EXPECT_EQ(cli_.run("rocm-smi -q").exit_code, 1);
  EXPECT_EQ(cli_.run("nvidia-smi --frobnicate").exit_code, 1);
  EXPECT_EQ(cli_.run("nvidia-settings -a [gpu:0]/FanSpeed=50").exit_code, 1);
}

TEST(SplitArgs, SplitsOnWhitespace) {
  const auto args = split_args("  nvidia-smi   -pl  200 ");
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], "nvidia-smi");
  EXPECT_EQ(args[2], "200");
  EXPECT_TRUE(split_args("").empty());
}

TEST(SmiScript, PaperExperimentScriptRunsVerbatim) {
  // The exact command pair the paper's methodology uses per data point.
  NvmlDevice device(hw::titan_xp());
  SmiCli cli(&device);
  EXPECT_EQ(cli.run("nvidia-smi -pl 140").exit_code, 0);
  EXPECT_EQ(
      cli.run("nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-700")
          .exit_code,
      0);
  const auto s = device.run(workload::gpu_benchmark("STREAM").value());
  EXPECT_LE(s.total_power().value(), 140.1);
  EXPECT_EQ(s.mem_clock_index, 2u);  // 5005 MHz
}

}  // namespace
}  // namespace pbc::nvml
