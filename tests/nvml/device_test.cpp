#include "nvml/device.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::nvml {
namespace {

TEST(NvmlDevice, DefaultsToDriverDefaults) {
  const NvmlDevice dev(hw::titan_xp());
  EXPECT_EQ(dev.power_limit(), dev.machine().gpu.board_default_cap);
  EXPECT_DOUBLE_EQ(dev.mem_clock_mhz(), 5705.0);  // nominal
}

TEST(NvmlDevice, PowerConstraintsMatchSpec) {
  const NvmlDevice dev(hw::titan_xp());
  const auto c = dev.power_constraints();
  EXPECT_DOUBLE_EQ(c.min_limit.value(), 125.0);
  EXPECT_DOUBLE_EQ(c.default_limit.value(), 250.0);
  EXPECT_DOUBLE_EQ(c.max_limit.value(), 300.0);
}

TEST(NvmlDevice, SetPowerLimitWithinRange) {
  NvmlDevice dev(hw::titan_xp());
  EXPECT_TRUE(dev.set_power_limit(Watts{180.0}).ok());
  EXPECT_DOUBLE_EQ(dev.power_limit().value(), 180.0);
}

TEST(NvmlDevice, RejectsOutOfRangeLimits) {
  NvmlDevice dev(hw::titan_xp());
  EXPECT_FALSE(dev.set_power_limit(Watts{100.0}).ok());
  EXPECT_FALSE(dev.set_power_limit(Watts{350.0}).ok());
  // Limit unchanged after rejections.
  EXPECT_DOUBLE_EQ(dev.power_limit().value(), 250.0);
}

TEST(NvmlDevice, SetMemClockSnapsDown) {
  NvmlDevice dev(hw::titan_xp());
  EXPECT_TRUE(dev.set_mem_clock(5100.0).ok());
  EXPECT_DOUBLE_EQ(dev.mem_clock_mhz(), 5005.0);
  EXPECT_EQ(dev.mem_clock_index(), 2u);
}

TEST(NvmlDevice, SetMemClockExactMatch) {
  NvmlDevice dev(hw::titan_xp());
  EXPECT_TRUE(dev.set_mem_clock(4513.0).ok());
  EXPECT_DOUBLE_EQ(dev.mem_clock_mhz(), 4513.0);
}

TEST(NvmlDevice, RejectsClockBelowMinimum) {
  NvmlDevice dev(hw::titan_xp());
  EXPECT_FALSE(dev.set_mem_clock(1000.0).ok());
}

TEST(NvmlDevice, ResetRestoresNominalClock) {
  NvmlDevice dev(hw::titan_xp());
  ASSERT_TRUE(dev.set_mem_clock(4006.0).ok());
  dev.reset_mem_clock();
  EXPECT_DOUBLE_EQ(dev.mem_clock_mhz(), 5705.0);
}

TEST(NvmlDevice, EstimatedMemPowerTracksClock) {
  NvmlDevice dev(hw::titan_xp());
  const double nominal = dev.estimated_mem_power().value();
  ASSERT_TRUE(dev.set_mem_clock(4006.0).ok());
  EXPECT_LT(dev.estimated_mem_power().value(), nominal);
}

TEST(NvmlDevice, RunHonoursCurrentSettings) {
  NvmlDevice dev(hw::titan_xp());
  ASSERT_TRUE(dev.set_power_limit(Watts{160.0}).ok());
  ASSERT_TRUE(dev.set_mem_clock(4513.0).ok());
  const auto s = dev.run(workload::minife());
  EXPECT_EQ(s.mem_clock_index, 1u);
  EXPECT_LE(s.total_power().value(), 160.1);
}

TEST(NvmlDevice, LowerCapLowersPerformance) {
  NvmlDevice dev(hw::titan_xp());
  ASSERT_TRUE(dev.set_power_limit(Watts{130.0}).ok());
  const double capped = dev.run(workload::sgemm()).perf;
  ASSERT_TRUE(dev.set_power_limit(Watts{300.0}).ok());
  const double open = dev.run(workload::sgemm()).perf;
  EXPECT_LT(capped, open);
}

TEST(NvmlDevice, UncappedPowerMatchesNodeSim) {
  const NvmlDevice dev(hw::titan_v());
  const sim::GpuNodeSim node(hw::titan_v(), workload::cloverleaf());
  EXPECT_DOUBLE_EQ(dev.uncapped_power(workload::cloverleaf()).value(),
                   node.uncapped_board_power().value());
}

}  // namespace
}  // namespace pbc::nvml
