// csv_compare GOLDEN ACTUAL [RTOL] — golden-file comparator for the
// bench CSV dumps. Cells that parse as numbers are compared with a
// relative tolerance (plus a matching absolute floor for values near
// zero); everything else must match exactly. Exit 0 on match, 1 with a
// cell-level report otherwise, 2 on usage/IO errors.
//
// The dumps are written at %.17g, so RTOL only has to absorb legitimate
// floating-point drift (compiler/flag differences), not formatting.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using Table = std::vector<std::vector<std::string>>;

bool read_csv(const std::string& path, Table* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line);
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    out->push_back(std::move(cells));
  }
  return true;
}

bool as_number(const std::string& s, double* v) {
  if (s.empty()) return false;
  char* end = nullptr;
  *v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool cells_match(const std::string& golden, const std::string& actual,
                 double rtol) {
  double g = 0.0;
  double a = 0.0;
  if (as_number(golden, &g) && as_number(actual, &a)) {
    const double scale = std::max(std::abs(g), std::abs(a));
    return std::abs(g - a) <= rtol * std::max(scale, 1.0);
  }
  return golden == actual;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: csv_compare GOLDEN ACTUAL [RTOL]\n";
    return 2;
  }
  const double rtol = argc == 4 ? std::atof(argv[3]) : 1e-6;

  Table golden;
  Table actual;
  if (!read_csv(argv[1], &golden)) {
    std::cerr << "cannot read golden file " << argv[1] << '\n';
    return 2;
  }
  if (!read_csv(argv[2], &actual)) {
    std::cerr << "cannot read actual file " << argv[2] << '\n';
    return 2;
  }

  int mismatches = 0;
  if (golden.size() != actual.size()) {
    std::cerr << "row count differs: golden " << golden.size() << ", actual "
              << actual.size() << '\n';
    ++mismatches;
  }
  const std::size_t rows = std::min(golden.size(), actual.size());
  for (std::size_t r = 0; r < rows; ++r) {
    if (golden[r].size() != actual[r].size()) {
      std::cerr << "row " << r + 1 << ": column count differs (golden "
                << golden[r].size() << ", actual " << actual[r].size()
                << ")\n";
      ++mismatches;
      continue;
    }
    for (std::size_t c = 0; c < golden[r].size(); ++c) {
      if (!cells_match(golden[r][c], actual[r][c], rtol)) {
        std::cerr << "row " << r + 1 << " col " << c + 1 << ": golden '"
                  << golden[r][c] << "' vs actual '" << actual[r][c]
                  << "' (rtol " << rtol << ")\n";
        ++mismatches;
      }
    }
  }
  if (mismatches != 0) {
    std::cerr << mismatches << " mismatch(es); to re-baseline, regenerate "
              << "the golden with the bench's --csv option and commit it\n";
    return 1;
  }
  std::cout << "ok: " << rows << " rows match within rtol " << rtol << '\n';
  return 0;
}
