# Runs a bench harness with --csv=OUT and diffs the dump against the
# committed golden via csv_compare. Invoked by the golden_* ctest entries
# (see bench/CMakeLists.txt):
#   cmake -DBENCH=... -DCOMPARE=... -DGOLDEN=... -DOUT=... -DRTOL=...
#         -P tests/golden/run_golden.cmake
foreach(var BENCH COMPARE GOLDEN OUT RTOL)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${BENCH} --csv=${OUT}
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} failed with exit code ${bench_rc}")
endif()

execute_process(
  COMMAND ${COMPARE} ${GOLDEN} ${OUT} ${RTOL}
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
          "golden mismatch for ${BENCH} (exit ${compare_rc}); regenerate "
          "with --csv= and commit if the change is intended")
endif()
