// The engine's sample paths route through a cached, table-prepared
// simulator; they must be bit-identical to constructing the node directly
// and running the retained reference solver, and the sim cache must behave
// like the other engine caches (counted hits/misses, single-flight builds,
// stable shared_ptr identity, clear()). Suite name matches the TSan preset
// filter so the whole file runs under the race detector too.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/frontier.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "svc_test_util.hpp"

namespace pbc {
namespace {

TEST(EngineSample, CpuSamplesBitIdenticalToReferenceSolver) {
  Xoshiro256 rng(20260805, 1);
  svc::QueryEngine engine;
  for (int i = 0; i < 10; ++i) {
    const auto machine = svc_test::random_cpu_machine(rng);
    const auto wl = svc_test::random_cpu_workload(rng, i);
    const sim::CpuNodeSim direct(machine, wl);
    for (int probe = 0; probe < 12; ++probe) {
      const Watts cpu_cap{rng.uniform(30.0, 300.0)};
      const Watts mem_cap{rng.uniform(15.0, 200.0)};
      ASSERT_TRUE(engine.sample_cpu(machine, wl, cpu_cap, mem_cap) ==
                  direct.reference_steady_state(cpu_cap, mem_cap))
          << wl.name << " cpu_cap=" << cpu_cap << " mem_cap=" << mem_cap;
    }
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.queries, 10u * 12u);
}

TEST(EngineSample, CpuBatchMatchesScalarAndCountsEveryCap) {
  Xoshiro256 rng(20260805, 2);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  std::vector<sim::CapPair> caps;
  for (int i = 0; i < 64; ++i) {
    caps.push_back(sim::CapPair{Watts{rng.uniform(30.0, 300.0)},
                                Watts{rng.uniform(15.0, 200.0)}});
  }
  svc::QueryEngine engine;
  const auto batch = engine.sample_cpu_batch(machine, wl, caps);
  ASSERT_EQ(batch.size(), caps.size());

  const sim::CpuNodeSim direct(machine, wl);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    ASSERT_TRUE(batch[i] ==
                direct.steady_state(caps[i].cpu_cap, caps[i].mem_cap))
        << "batch index " << i;
  }
  // Every cap in the batch counts as a query; the whole batch costs one
  // sim-cache miss and subsequent traffic for the same pair is a hit.
  auto s = engine.stats();
  EXPECT_EQ(s.queries, caps.size());
  EXPECT_EQ(s.sim_misses, 1u);
  EXPECT_EQ(s.sim_hits, 0u);
  EXPECT_EQ(s.sim_cache_size, 1u);
  (void)engine.sample_cpu(machine, wl, Watts{120.0}, Watts{80.0});
  s = engine.stats();
  EXPECT_EQ(s.sim_misses, 1u);
  EXPECT_EQ(s.sim_hits, 1u);
}

TEST(EngineSample, GpuBatchMatchesDirectNode) {
  Xoshiro256 rng(20260805, 3);
  svc::QueryEngine engine;
  for (int i = 0; i < 4; ++i) {
    const auto machine = svc_test::random_gpu_machine(rng);
    const auto wl = svc_test::random_gpu_workload(rng, i);
    const sim::GpuNodeSim direct(machine, wl);
    std::vector<Watts> caps;
    for (int c = 0; c < 24; ++c) caps.push_back(Watts{rng.uniform(100.0, 300.0)});
    const std::size_t clk =
        static_cast<std::size_t>(rng.below(direct.gpu_model().mem_clock_count()));
    const auto batch = engine.sample_gpu_batch(machine, wl, clk, caps);
    ASSERT_EQ(batch.size(), caps.size());
    for (std::size_t c = 0; c < caps.size(); ++c) {
      ASSERT_TRUE(batch[c] == direct.reference_steady_state(clk, caps[c]))
          << wl.name << " clk=" << clk << " cap=" << caps[c];
    }
  }
}

TEST(EngineSample, SimCacheSharesOnePreparedNodePerDescriptor) {
  Xoshiro256 rng(20260805, 4);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);
  svc::QueryEngine engine;

  const auto a = engine.cpu_sim(machine, wl);
  const auto b = engine.cpu_sim(machine, wl);
  EXPECT_EQ(a.get(), b.get());  // same cached instance, not a rebuild

  // A different workload is a different entry.
  const auto other = engine.cpu_sim(machine, svc_test::random_cpu_workload(rng, 1));
  EXPECT_NE(a.get(), other.get());

  auto s = engine.stats();
  EXPECT_EQ(s.sim_misses, 2u);
  EXPECT_EQ(s.sim_hits, 1u);
  EXPECT_EQ(s.sim_cache_size, 2u);

  // clear() drops the entries; the next lookup rebuilds.
  engine.clear();
  s = engine.stats();
  EXPECT_EQ(s.sim_cache_size, 0u);
  const auto rebuilt = engine.cpu_sim(machine, wl);
  EXPECT_TRUE(rebuilt->steady_state(Watts{150.0}, Watts{90.0}) ==
              a->steady_state(Watts{150.0}, Watts{90.0}));
  EXPECT_EQ(engine.stats().sim_misses, 3u);
}

TEST(EngineSample, FrontierRoutedThroughCachedSimMatchesDirectSweep) {
  Xoshiro256 rng(20260805, 5);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);
  const auto grid = sim::budget_grid(Watts{140.0}, Watts{260.0}, Watts{24.0});

  const sim::CpuNodeSim direct(machine, wl);
  const auto want = core::perf_frontier_cpu(direct, grid);

  svc::QueryEngine engine;
  for (int pass = 0; pass < 2; ++pass) {  // miss, then frontier-cache hit
    const auto got = engine.cpu_frontier(machine, wl, grid);
    ASSERT_EQ(got->size(), want.size());
    for (std::size_t p = 0; p < want.size(); ++p) {
      EXPECT_EQ((*got)[p].perf_max, want[p].perf_max);
      EXPECT_EQ((*got)[p].best_proc_cap.value(), want[p].best_proc_cap.value());
      EXPECT_EQ((*got)[p].best_mem_cap.value(), want[p].best_mem_cap.value());
      EXPECT_EQ((*got)[p].consumed.value(), want[p].consumed.value());
    }
  }
  // The frontier sweep ran through the cached simulator entry.
  EXPECT_EQ(engine.stats().sim_cache_size, 1u);
}

// Concurrent sample traffic on one shared engine: answers must match the
// serial reference and the node must be built exactly once per descriptor.
// Plain std::threads, not the engine pool — batch entry points must not be
// called from the pool they fan out on.
TEST(EngineSample, ConcurrentBatchesMatchSerialAnswers) {
  Xoshiro256 rng(20260805, 6);
  struct Case {
    hw::CpuMachine machine;
    workload::Workload wl;
    std::vector<sim::CapPair> caps;
    std::vector<sim::AllocationSample> want;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 6; ++i) {
    Case c{svc_test::random_cpu_machine(rng),
           svc_test::random_cpu_workload(rng, i), {}, {}};
    for (int p = 0; p < 16; ++p) {
      c.caps.push_back(sim::CapPair{Watts{rng.uniform(30.0, 300.0)},
                                    Watts{rng.uniform(15.0, 200.0)}});
    }
    const sim::CpuNodeSim direct(c.machine, c.wl);
    for (const auto& cp : c.caps) {
      c.want.push_back(direct.reference_steady_state(cp.cpu_cap, cp.mem_cap));
    }
    cases.push_back(std::move(c));
  }

  svc::QueryEngine engine;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 order(11, static_cast<std::uint64_t>(t));
      for (int rep = 0; rep < 20; ++rep) {
        const auto& c = cases[static_cast<std::size_t>(order.below(cases.size()))];
        const auto got = engine.sample_cpu_batch(c.machine, c.wl, c.caps);
        if (got.size() != c.want.size()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (!(got[i] == c.want[i])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto s = engine.stats();
  // Every batch probes the sim cache exactly once. Concurrent misses for a
  // descriptor coalesce onto one single-flight build (each waiter still
  // counts a miss), so the cache holds exactly one node per descriptor.
  EXPECT_EQ(s.sim_hits + s.sim_misses, 8u * 20u);
  EXPECT_GE(s.sim_misses, cases.size());
  EXPECT_EQ(s.sim_cache_size, cases.size());
  EXPECT_EQ(s.queries, 8u * 20u * 16u);
}

}  // namespace
}  // namespace pbc
