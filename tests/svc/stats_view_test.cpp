// Tests for the EngineStats compatibility view over the metrics registry,
// the LatencyRecorder partial-window regression, engine-level Prometheus
// exposition, registry sharing/isolation, and the deprecated
// validate_trace wrapper's equivalence to check_trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_hier.hpp"
#include "core/cluster_sim.hpp"
#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "sim/cpu_node.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_replay.hpp"
#include "svc/engine.hpp"
#include "svc/stats.hpp"
#include "svc_test_util.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc {
namespace {

// Regression: a partially filled window must compute percentiles over the
// recorded samples only, never diluting them with the ring's
// zero-initialized tail (3 samples in a window of 8 used to read 5 zeros
// and report p50 == 0).
TEST(ObsLatencyRecorder, PartialWindowUsesRecordedSamplesOnly) {
  svc::LatencyRecorder rec(8);
  rec.record(1000);  // 1 us
  rec.record(2000);  // 2 us
  rec.record(3000);  // 3 us

  svc::EngineStats s;
  rec.snapshot_into(s);
  EXPECT_EQ(s.latency_samples, 3u);
  // pbc::percentile interpolates between order statistics: the median of
  // {1, 2, 3} us is exactly 2.
  EXPECT_DOUBLE_EQ(s.p50_us, 2.0);
  EXPECT_DOUBLE_EQ(s.max_us, 3.0);
  EXPECT_GT(s.p99_us, 2.0);
  EXPECT_LE(s.p99_us, 3.0);
}

TEST(ObsLatencyRecorder, EmptyWindowReportsZero) {
  svc::LatencyRecorder rec(16);
  svc::EngineStats s;
  s.p50_us = s.p99_us = s.max_us = 99.0;  // must be overwritten
  rec.snapshot_into(s);
  EXPECT_EQ(s.latency_samples, 0u);
  EXPECT_EQ(s.p50_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(ObsLatencyRecorder, WrappedWindowKeepsNewestSamples) {
  svc::LatencyRecorder rec(4);
  for (std::uint64_t v = 1; v <= 8; ++v) rec.record(v * 1000);
  svc::EngineStats s;
  rec.snapshot_into(s);
  // Window caps the sample count; the survivors are the newest four.
  EXPECT_EQ(s.latency_samples, 4u);
  EXPECT_DOUBLE_EQ(s.max_us, 8.0);
  EXPECT_GE(s.p50_us, 5.0);
}

// The recorded-samples-only contract ported to the histogram snapshot:
// engine latency percentiles come from real observations.
TEST(ObsStatsView, WarmedEngineCountersMatchHistoricalSemantics) {
  Xoshiro256 rng(2024, 0);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine engine;
  (void)engine.query_cpu(machine, wl, Watts{200.0});  // cold: miss+compute
  (void)engine.query_cpu(machine, wl, Watts{200.0});  // warm: hit

  const svc::EngineStats s = engine.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.computes, 1u);
  EXPECT_EQ(s.coalesced, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.profile_cache_size, 1u);
  EXPECT_EQ(s.latency_samples, 2u);
  EXPECT_GT(s.max_us, 0.0);
  EXPECT_GE(s.p99_us, s.p50_us);
  EXPECT_LE(s.p99_us, s.max_us);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ObsStatsView, PerKindLatencyHistogramsSplitTraffic) {
  Xoshiro256 rng(2024, 1);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine engine;
  (void)engine.query_cpu(machine, wl, Watts{200.0});
  (void)engine.sample_cpu(machine, wl, Watts{60.0}, Watts{30.0});
  (void)engine.sample_cpu(machine, wl, Watts{70.0}, Watts{35.0});

  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  const auto* cpu = snap.find("pbc_svc_query_latency_us",
                              {{"kind", "query_cpu"}});
  const auto* sample = snap.find("pbc_svc_query_latency_us",
                                 {{"kind", "sample"}});
  const auto* gpu = snap.find("pbc_svc_query_latency_us",
                              {{"kind", "query_gpu"}});
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(sample, nullptr);
  ASSERT_NE(gpu, nullptr);
  EXPECT_EQ(cpu->hist.count, 1u);
  EXPECT_EQ(sample->hist.count, 2u);
  EXPECT_EQ(gpu->hist.count, 0u);

  // The flat view merges every kind.
  EXPECT_EQ(engine.stats().latency_samples, 3u);
}

// Acceptance: rendering a warmed engine's snapshot yields counters,
// gauges, and per-kind histogram series a Prometheus scraper would accept.
TEST(ObsStatsView, WarmedEnginePrometheusExposition) {
  Xoshiro256 rng(2024, 2);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine engine;
  (void)engine.query_cpu(machine, wl, Watts{180.0});
  (void)engine.query_cpu(machine, wl, Watts{180.0});

  const std::string text =
      obs::render_prometheus(engine.metrics_snapshot());
  EXPECT_NE(text.find("# TYPE pbc_svc_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("pbc_svc_queries_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("pbc_svc_cache_hits_total{cache=\"profile\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pbc_svc_cache_misses_total{cache=\"profile\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pbc_svc_cache_entries{cache=\"profile\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pbc_svc_query_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("pbc_svc_query_latency_us_bucket{kind=\"query_cpu\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("pbc_svc_query_latency_us_count{kind=\"query_cpu\"} 2\n"),
            std::string::npos);

  const std::string json = obs::render_json(engine.metrics_snapshot());
  EXPECT_NE(json.find("\"pbc_svc_queries_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// Engines default to private registries: one engine's traffic must not
// leak into another's stats.
TEST(ObsStatsView, PrivateRegistriesIsolateEngines) {
  Xoshiro256 rng(2024, 3);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine a;
  svc::QueryEngine b;
  (void)a.query_cpu(machine, wl, Watts{200.0});
  EXPECT_EQ(a.stats().queries, 1u);
  EXPECT_EQ(b.stats().queries, 0u);
  EXPECT_NE(&a.metrics(), &b.metrics());
}

// EngineOptions::registry points several engines at one registry; the
// shared counters aggregate.
TEST(ObsStatsView, SharedRegistryAggregates) {
  Xoshiro256 rng(2024, 4);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  obs::MetricsRegistry shared;
  svc::EngineOptions opt;
  opt.registry = &shared;
  svc::QueryEngine a(opt);
  svc::QueryEngine b(opt);
  EXPECT_EQ(&a.metrics(), &shared);
  EXPECT_EQ(&b.metrics(), &shared);

  (void)a.query_cpu(machine, wl, Watts{200.0});
  (void)b.query_cpu(machine, wl, Watts{210.0});
  // Both engines publish into the same counters (each engine has its own
  // caches, so the second engine's first query is its own miss).
  EXPECT_EQ(a.stats().queries, 2u);
  EXPECT_EQ(b.stats().queries, 2u);
  EXPECT_EQ(shared.snapshot().counter("pbc_svc_queries_total"), 2u);
}

TEST(ObsStatsView, SlowQueryLogCapturesEverythingAtZeroishThreshold) {
  Xoshiro256 rng(2024, 5);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::EngineOptions opt;
  opt.slow_query_us = 1e-9;  // everything is "slow"
  svc::QueryEngine engine(opt);
  (void)engine.query_cpu(machine, wl, Watts{200.0});
  EXPECT_EQ(engine.slow_queries().total(), 1u);
  const auto slow = engine.slow_queries().snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_STREQ(slow[0].kind, "query_cpu");
  EXPECT_GT(slow[0].total_us, 0.0);

  svc::EngineOptions off;
  off.slow_query_us = 0.0;  // disabled
  svc::QueryEngine quiet(off);
  (void)quiet.query_cpu(machine, wl, Watts{200.0});
  EXPECT_EQ(quiet.slow_queries().total(), 0u);
}

TEST(ObsStatsView, TracerCapturesMissPathSpans) {
  Xoshiro256 rng(2024, 6);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine engine;
  (void)engine.query_cpu(machine, wl, Watts{200.0});
#if PBC_TRACING_ENABLED
  const auto spans = engine.tracer().snapshot();
  bool saw_compute = false;
  for (const auto& s : spans) {
    if (std::string(s.name) == "svc.profile_compute") saw_compute = true;
  }
  EXPECT_TRUE(saw_compute);
#endif

  // Runtime off-switch: a second engine with tracing disabled records
  // nothing, warm or cold.
  svc::EngineOptions opt;
  opt.tracing = false;
  svc::QueryEngine silent(opt);
  (void)silent.query_cpu(machine, wl, Watts{200.0});
  EXPECT_TRUE(silent.tracer().snapshot().empty());
}

// The deprecated optional<Error> wrapper must agree with check_trace on
// every input class: ok, out-of-range phase, non-positive work.
TEST(ObsStatsView, DeprecatedValidateTraceMatchesCheckTrace) {
  const workload::PhaseTrace good = {{0, 1.0}, {1, 2.5}};
  const workload::PhaseTrace bad_phase = {{0, 1.0}, {7, 1.0}};
  const workload::PhaseTrace bad_work = {{0, 0.0}};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto diff = [](const workload::PhaseTrace& trace,
                       std::size_t phases) {
    const Status s = sim::check_trace(trace, phases);
    const std::optional<Error> legacy = sim::validate_trace(trace, phases);
    EXPECT_EQ(s.ok(), !legacy.has_value());
    if (!s.ok() && legacy.has_value()) {
      EXPECT_EQ(s.error().code, legacy->code);
      EXPECT_EQ(s.error().message, legacy->message);
    }
    return s;
  };
#pragma GCC diagnostic pop

  EXPECT_TRUE(diff(good, 2).ok());
  EXPECT_EQ(diff(bad_phase, 2).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(diff(bad_work, 2).code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(diff({}, 0).ok());  // empty trace is trivially valid
}

// Sim-layer instrumentation publishes to the global registry: preparing a
// fresh simulator through the engine bumps the cpu table-build counter.
TEST(ObsStatsView, SimTableBuildsReachGlobalRegistry) {
  Xoshiro256 rng(2024, 7);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  const obs::Labels cpu_label = {{"component", "cpu"}};
  const std::uint64_t before = obs::global_registry().snapshot().counter(
      "pbc_sim_table_builds_total", cpu_label);

  svc::QueryEngine engine;
  (void)engine.sample_cpu(machine, wl, Watts{60.0}, Watts{30.0});

  const obs::MetricsSnapshot after = obs::global_registry().snapshot();
  EXPECT_GE(after.counter("pbc_sim_table_builds_total", cpu_label),
            before + 1);
  const auto* build_us =
      after.find("pbc_sim_table_build_us", cpu_label);
  ASSERT_NE(build_us, nullptr);
  EXPECT_GE(build_us->hist.count, 1u);
}

// The frontier drivers publish build counters, the sampled build-latency
// histogram, and the blocked-sweep tile counter to the global registry.
TEST(ObsStatsView, FrontierBuildsAndBlockedTilesReachGlobalRegistry) {
  const obs::Labels cpu_label = {{"component", "cpu"}};
  const obs::MetricsSnapshot before = obs::global_registry().snapshot();
  const std::uint64_t builds_before =
      before.counter("pbc_sim_frontier_builds_total", cpu_label);
  const std::uint64_t tiles_before =
      before.counter("pbc_sim_blocked_sweep_tiles_total");

  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const auto budgets =
      sim::budget_grid(Watts{150.0}, Watts{250.0}, Watts{20.0});
  const auto frontier = core::perf_frontier_cpu(node, budgets);
  ASSERT_EQ(frontier.size(), budgets.size());

  const obs::MetricsSnapshot after = obs::global_registry().snapshot();
  EXPECT_GE(after.counter("pbc_sim_frontier_builds_total", cpu_label),
            builds_before + 1);
  // One frontier over 6 budgets relaxes at least one blocked tile.
  EXPECT_GE(after.counter("pbc_sim_blocked_sweep_tiles_total"),
            tiles_before + 1);
  const auto* build_us = after.find("pbc_sim_frontier_build_us", cpu_label);
  ASSERT_NE(build_us, nullptr);
  EXPECT_GE(build_us->hist.count, 1u);
}

// The event-driven cluster engine publishes its pbc_cluster_* series to
// the global registry, and running through the service engine routes
// profiling through the sim-node cache without changing that.
TEST(ObsStatsView, ClusterEventMetricsReachGlobalRegistry) {
  const obs::MetricsSnapshot before = obs::global_registry().snapshot();
  const std::uint64_t events_before =
      before.counter("pbc_cluster_events_total");
  const std::uint64_t resolves_before =
      before.counter("pbc_cluster_subtree_resolves_total");
  const std::uint64_t preempted_before =
      before.counter("pbc_cluster_jobs_preempted_total");
  const std::uint64_t shed_before =
      before.counter("pbc_cluster_emergency_shed_regrant_events_total");
  const std::uint64_t rack_grants_before = before.counter(
      "pbc_cluster_level_grants_total", {{"level", "dc"}});

  std::vector<core::SimJob> jobs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back({"d" + std::to_string(j), workload::dgemm(),
                    Seconds{static_cast<double>(j)}, 30000.0});
  }
  core::ClusterSimConfig config;
  config.nodes = 3;
  config.global_budget = Watts{600.0};
  config.path = core::ClusterPath::kEvent;
  const core::ClusterScenario scenario = core::make_emergency_scenario(
      Watts{600.0}, Seconds{30.0}, 0.5, Seconds{60.0});
  config.scenario = &scenario;

  svc::QueryEngine engine;
  const core::ClusterRun run =
      engine.simulate_cluster(hw::ivybridge_node(), jobs, config);
  ASSERT_EQ(run.jobs.size(), 3u);
  ASSERT_GT(run.event_stats.events, 0u);
  ASSERT_GE(run.event_stats.emergency_sheds, 1u);

  const obs::MetricsSnapshot after = obs::global_registry().snapshot();
  EXPECT_GE(after.counter("pbc_cluster_events_total"),
            events_before + run.event_stats.events);
  EXPECT_GE(after.counter("pbc_cluster_subtree_resolves_total"),
            resolves_before + run.event_stats.subtree_resolves);
  EXPECT_GE(after.counter("pbc_cluster_jobs_preempted_total"),
            preempted_before + run.event_stats.jobs_preempted);
  EXPECT_GE(
      after.counter("pbc_cluster_emergency_shed_regrant_events_total"),
      shed_before + run.event_stats.emergency_sheds +
          run.event_stats.emergency_regrants);
  // Every start flows through the (flat) tree's single "dc"-level rack.
  EXPECT_GE(after.counter("pbc_cluster_level_grants_total",
                          {{"level", "dc"}}),
            rack_grants_before + 3);
  // The redistribution gauge and the event-latency histogram exist even
  // when this run moved no watts between racks.
  EXPECT_NE(after.find("pbc_cluster_watts_redistributed"), nullptr);
  const auto* latency = after.find("pbc_cluster_event_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->hist.count, 1u);
}

}  // namespace
}  // namespace pbc
