// Engine replay/shifting queries: bit-identical to the direct sim/core
// calls, cached (replay_hits/replay_misses counters), batch == singles,
// clear() drops the cached results, and concurrent identical queries
// coalesce onto one compute.
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic.hpp"
#include "ctrl/closed_loop.hpp"
#include "hw/platforms.hpp"
#include "obs/trace.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "svc/engine.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/trace.hpp"

namespace pbc::svc {
namespace {

workload::PhaseTrace ft_trace(std::uint64_t seed) {
  return workload::generate_trace(workload::npb_ft(), {40.0, 1.0, 0.6, seed});
}

TEST(EngineReplay, SingleQueriesMatchDirectCalls) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto trace = ft_trace(3);

  const auto via_engine =
      engine.replay_trace(machine, wl, trace, Watts{95.0}, Watts{75.0});
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto direct = sim::replay_trace(*nodes, trace, Watts{95.0},
                                        Watts{75.0});
  EXPECT_EQ(via_engine.aggregate, direct.aggregate);
  EXPECT_EQ(via_engine.total_time.value(), direct.total_time.value());
  ASSERT_EQ(via_engine.segments.size(), direct.segments.size());

  const auto shift_engine =
      engine.replay_with_shifting(machine, wl, trace, Watts{170.0});
  const auto shift_direct =
      core::replay_with_shifting(*nodes, trace, Watts{170.0});
  EXPECT_EQ(shift_engine.shifts, shift_direct.shifts);
  EXPECT_EQ(shift_engine.replay.aggregate, shift_direct.replay.aggregate);
  ASSERT_EQ(shift_engine.caps.size(), shift_direct.caps.size());
  for (std::size_t i = 0; i < shift_engine.caps.size(); ++i) {
    EXPECT_EQ(shift_engine.caps[i].cpu_cap.value(),
              shift_direct.caps[i].cpu_cap.value());
    EXPECT_EQ(shift_engine.caps[i].mem_cap.value(),
              shift_direct.caps[i].mem_cap.value());
  }
}

TEST(EngineReplay, RepeatQueriesHitTheCache) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_bt();
  const auto trace =
      workload::generate_trace(wl, {30.0, 1.0, 0.5, 8});

  const auto a =
      engine.replay_with_shifting(machine, wl, trace, Watts{180.0});
  const auto s1 = engine.stats();
  EXPECT_EQ(s1.replay_misses, 1u);
  EXPECT_EQ(s1.replay_hits, 0u);

  const auto b =
      engine.replay_with_shifting(machine, wl, trace, Watts{180.0});
  const auto s2 = engine.stats();
  EXPECT_EQ(s2.replay_misses, 1u);
  EXPECT_EQ(s2.replay_hits, 1u);
  EXPECT_EQ(a.replay.aggregate, b.replay.aggregate);
  EXPECT_GT(s2.replay_cache_size, 0u);

  // A different budget is a different key.
  (void)engine.replay_with_shifting(machine, wl, trace, Watts{200.0});
  EXPECT_EQ(engine.stats().replay_misses, 2u);

  // The config's engine selection must NOT split the cache: both paths
  // are bit-identical by contract, so kReference hits the kFast entry.
  core::ShiftingConfig ref_cfg;
  ref_cfg.path = sim::ReplayPath::kReference;
  (void)engine.replay_with_shifting(machine, wl, trace, Watts{180.0},
                                    ref_cfg);
  EXPECT_EQ(engine.stats().replay_misses, 2u);
}

TEST(EngineReplay, BatchMatchesSinglesAndCountsQueries) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const std::vector<workload::PhaseTrace> traces = {ft_trace(1), ft_trace(2)};
  const std::vector<Watts> budgets = {Watts{150.0}, Watts{180.0},
                                      Watts{210.0}};
  const std::vector<sim::CapPair> caps = {{Watts{90.0}, Watts{70.0}},
                                          {Watts{110.0}, Watts{80.0}}};

  const auto shift_batch =
      engine.shifting_batch(machine, wl, traces, budgets);
  ASSERT_EQ(shift_batch.size(), traces.size() * budgets.size());
  const auto replay_batch =
      engine.replay_trace_batch(machine, wl, traces, caps);
  ASSERT_EQ(replay_batch.size(), traces.size() * caps.size());

  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto single = engine.replay_with_shifting(machine, wl, traces[t],
                                                      budgets[b]);
      EXPECT_EQ(shift_batch[t * budgets.size() + b].replay.aggregate,
                single.replay.aggregate);
    }
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const auto single = engine.replay_trace(machine, wl, traces[t],
                                              caps[c].cpu_cap,
                                              caps[c].mem_cap);
      EXPECT_EQ(replay_batch[t * caps.size() + c].aggregate,
                single.aggregate);
    }
  }
  // The batch entries were all cache misses; the single re-asks hit.
  const auto s = engine.stats();
  EXPECT_EQ(s.replay_misses, shift_batch.size() + replay_batch.size());
  EXPECT_EQ(s.replay_hits, shift_batch.size() + replay_batch.size());
  EXPECT_GE(s.queries, shift_batch.size() + replay_batch.size());
}

TEST(EngineReplay, OnlineQueriesMatchDirectCallsAndCache) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto trace = ft_trace(21);

  const auto via_engine =
      engine.run_online(machine, wl, trace, Watts{170.0});
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto direct =
      ctrl::run_closed_loop(*nodes, trace, Watts{170.0});
  EXPECT_EQ(via_engine.replay.aggregate, direct.replay.aggregate);
  EXPECT_EQ(via_engine.stats.moves, direct.stats.moves);
  ASSERT_EQ(via_engine.caps.size(), direct.caps.size());
  for (std::size_t i = 0; i < via_engine.caps.size(); ++i) {
    EXPECT_EQ(via_engine.caps[i].cpu_cap.value(),
              direct.caps[i].cpu_cap.value());
  }

  // Online results fold into the replay hit/miss accounting.
  const auto s1 = engine.stats();
  EXPECT_EQ(s1.replay_misses, 1u);
  EXPECT_EQ(s1.replay_hits, 0u);
  const auto again = engine.run_online(machine, wl, trace, Watts{170.0});
  EXPECT_EQ(again.replay.aggregate, via_engine.replay.aggregate);
  const auto s2 = engine.stats();
  EXPECT_EQ(s2.replay_misses, 1u);
  EXPECT_EQ(s2.replay_hits, 1u);
  EXPECT_GT(s2.replay_cache_size, 0u);

  // A different controller seed is a different key (different
  // exploration sequence, different result).
  ctrl::ControllerConfig seeded;
  seeded.seed = 7;
  (void)engine.run_online(machine, wl, trace, Watts{170.0}, seeded);
  EXPECT_EQ(engine.stats().replay_misses, 2u);

  // The config's observability sinks are NOT part of the key: a tracer
  // attached to an identical query still hits.
  obs::Tracer tracer;
  ctrl::ControllerConfig traced;
  traced.tracer = &tracer;
  (void)engine.run_online(machine, wl, trace, Watts{170.0}, traced);
  EXPECT_EQ(engine.stats().replay_misses, 2u);
  EXPECT_EQ(engine.stats().replay_hits, 2u);

  // clear() drops online entries with the rest of the replay tier.
  engine.clear();
  (void)engine.run_online(machine, wl, trace, Watts{170.0});
  EXPECT_EQ(engine.stats().replay_misses, 3u);
}

TEST(EngineReplay, ClearDropsCachedResults) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto trace = ft_trace(6);
  (void)engine.replay_trace(machine, wl, trace, Watts{90.0}, Watts{80.0});
  EXPECT_GT(engine.stats().replay_cache_size, 0u);
  engine.clear();
  EXPECT_EQ(engine.stats().replay_cache_size, 0u);
  (void)engine.replay_trace(machine, wl, trace, Watts{90.0}, Watts{80.0});
  EXPECT_EQ(engine.stats().replay_misses, 2u);
}

TEST(EngineReplay, ConcurrentIdenticalQueriesAgree) {
  QueryEngine engine;
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_bt();
  const auto trace = workload::generate_trace(wl, {30.0, 1.0, 0.5, 14});

  constexpr std::size_t kThreads = 4;
  std::vector<core::ShiftingResult> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        results[i] =
            engine.replay_with_shifting(machine, wl, trace, Watts{180.0});
      });
    }
    for (auto& t : threads) t.join();
  }
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].replay.aggregate, results[0].replay.aggregate);
    EXPECT_EQ(results[i].shifts, results[0].shifts);
  }
  // Every caller either hit the cache or registered a (possibly
  // coalesced) miss; misses that raced the first compute joined its
  // single-flight rather than recomputing.
  const auto s = engine.stats();
  EXPECT_EQ(s.replay_hits + s.replay_misses, kThreads);
  EXPECT_GE(s.replay_misses, 1u);
}

}  // namespace
}  // namespace pbc::svc
