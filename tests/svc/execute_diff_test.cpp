// execute() differential: the unified Request surface must be an exact
// drop-in for the per-kind methods — bit-for-bit, across every kind,
// every CallOptions path selection, on separate engines (so neither
// side's cache state can mask a routing or options-mapping bug). The
// equality witness is the binary wire encoding: two responses are
// bit-identical iff their encodings are byte-identical, which spares a
// hand-written comparator per result struct and simultaneously pins the
// codec to the live result values.
//
// 512+ randomized cases total, weighted toward the cheap closed-form
// kinds; the sweep/replay/cluster kinds get enough coverage to exercise
// every CallOptions knob they consume.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster_sim.hpp"
#include "core/dynamic.hpp"
#include "ctrl/closed_loop.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "util/rng.hpp"

#include "../net/net_test_util.hpp"

namespace pbc {
namespace {

using net_test::random_request;
using net_test::response_bytes;

class ExecuteDiff : public ::testing::Test {
 protected:
  /// Runs req through execute() on one engine and through the direct
  /// per-kind call on another; returns true when byte-identical.
  void expect_identical(const svc::Request& req, const char* ctx) {
    const auto via_execute = exec_engine_.execute(req);
    ASSERT_TRUE(via_execute.ok())
        << ctx << ": " << via_execute.error().to_string();
    const svc::Response direct{req.id, direct_dispatch(req)};
    EXPECT_EQ(response_bytes(via_execute.value()), response_bytes(direct))
        << ctx;
    ++cases_;
  }

  /// The pre-redesign call pattern: per-kind method + hand-assembled
  /// config structs. Mirrors what execute() promises to be identical to.
  [[nodiscard]] svc::ResponseOp direct_dispatch(const svc::Request& req) {
    const svc::CallOptions& o = req.options;
    svc::QueryEngine& e = direct_engine_;
    if (const auto* op = std::get_if<svc::QueryCpuOp>(&req.op)) {
      return e.query_cpu(op->machine, op->wl, op->budget, op->variant);
    }
    if (const auto* op = std::get_if<svc::QueryGpuOp>(&req.op)) {
      return e.query_gpu(op->machine, op->wl, op->budget, op->gamma);
    }
    if (const auto* op = std::get_if<svc::SampleOp>(&req.op)) {
      return e.sample_cpu(op->machine, op->wl, op->cpu_cap, op->mem_cap);
    }
    if (const auto* op = std::get_if<svc::FrontierOp>(&req.op)) {
      const sim::CpuSweepOptions sweep{op->mem_lo, op->proc_lo, op->step,
                                       o.solver_path, o.budget_block};
      return *e.cpu_frontier(op->machine, op->wl, op->budgets, sweep);
    }
    if (const auto* op = std::get_if<svc::ReplayOp>(&req.op)) {
      return e.replay_trace(op->machine, op->wl, op->trace, op->cpu_cap,
                            op->mem_cap);
    }
    if (const auto* op = std::get_if<svc::ShiftOp>(&req.op)) {
      core::ShiftingConfig cfg;
      cfg.step = op->step;
      cfg.max_steps_per_segment = op->max_steps_per_segment;
      cfg.cpu_min = op->cpu_min;
      cfg.mem_min = op->mem_min;
      cfg.path = o.replay_path;
      return e.replay_with_shifting(op->machine, op->wl, op->trace,
                                    op->total_budget, cfg);
    }
    if (const auto* op = std::get_if<svc::ClusterOp>(&req.op)) {
      core::ClusterSimConfig cfg;
      cfg.nodes = op->nodes;
      cfg.gpu_nodes = op->gpu_nodes;
      cfg.global_budget = op->global_budget;
      cfg.policy = op->policy;
      cfg.queue_policy = op->queue_policy;
      cfg.admission_control = op->admission_control;
      cfg.min_grant = op->min_grant;
      cfg.path = o.cluster_path;
      if (op->gpu_type.has_value()) {
        return e.simulate_cluster(op->node_type, *op->gpu_type, op->jobs,
                                  cfg);
      }
      return e.simulate_cluster(op->node_type, op->jobs, cfg);
    }
    const auto& op = std::get<svc::OnlineOp>(req.op);
    ctrl::ControllerConfig cfg;
    cfg.step = op.step;
    cfg.cpu_min = op.cpu_min;
    cfg.mem_min = op.mem_min;
    cfg.explore_rate = op.explore_rate;
    cfg.explore_decay = op.explore_decay;
    cfg.explore_floor = op.explore_floor;
    cfg.ema_alpha = op.ema_alpha;
    cfg.hysteresis_margin = op.hysteresis_margin;
    cfg.seed = o.seed;
    return e.run_online(op.machine, op.wl, op.trace, op.total_budget, cfg);
  }

  svc::QueryEngine exec_engine_;
  svc::QueryEngine direct_engine_;
  int cases_ = 0;
};

// 256 closed-form cases (176 CPU + 80 GPU), every case also re-asked so
// the cached answer is held to the same identity.
TEST_F(ExecuteDiff, ClosedFormKinds) {
  Xoshiro256 rng(81416, 1);
  for (int i = 0; i < 176; ++i) {
    const auto req = random_request(svc::QueryKind::kQueryCpu, rng, i);
    expect_identical(req, "query_cpu");
    if (i % 8 == 0) expect_identical(req, "query_cpu (cached)");
  }
  for (int i = 0; i < 80; ++i) {
    const auto req = random_request(svc::QueryKind::kQueryGpu, rng, i);
    expect_identical(req, "query_gpu");
  }
  EXPECT_GE(cases_, 256 + 22);
}

TEST_F(ExecuteDiff, SampleKind) {
  Xoshiro256 rng(81416, 2);
  for (int i = 0; i < 64; ++i) {
    expect_identical(random_request(svc::QueryKind::kSample, rng, i),
                     "sample");
  }
  EXPECT_EQ(cases_, 64);
}

// Frontier: exercises solver_path and budget_block from CallOptions.
TEST_F(ExecuteDiff, FrontierKind) {
  Xoshiro256 rng(81416, 3);
  for (int i = 0; i < 24; ++i) {
    expect_identical(random_request(svc::QueryKind::kFrontier, rng, i),
                     "frontier");
  }
  EXPECT_EQ(cases_, 24);
}

// Replay + shift: exercises replay_path and the shifting config mapping.
TEST_F(ExecuteDiff, ReplayAndShiftKinds) {
  Xoshiro256 rng(81416, 4);
  for (int i = 0; i < 64; ++i) {
    expect_identical(random_request(svc::QueryKind::kReplay, rng, i),
                     "replay");
  }
  for (int i = 0; i < 48; ++i) {
    expect_identical(random_request(svc::QueryKind::kShift, rng, i),
                     "shift");
  }
  EXPECT_EQ(cases_, 112);
}

// Cluster: exercises cluster_path (fast / reference / event), both
// policies, both queue disciplines, CPU-only and CPU+GPU fleets.
TEST_F(ExecuteDiff, ClusterKind) {
  Xoshiro256 rng(81416, 5);
  for (int i = 0; i < 24; ++i) {
    expect_identical(random_request(svc::QueryKind::kCluster, rng, i),
                     "cluster");
  }
  EXPECT_EQ(cases_, 24);
}

// Online: exercises CallOptions::seed threading into the controller.
TEST_F(ExecuteDiff, OnlineKind) {
  Xoshiro256 rng(81416, 6);
  for (int i = 0; i < 32; ++i) {
    expect_identical(random_request(svc::QueryKind::kOnline, rng, i),
                     "online");
  }
  EXPECT_EQ(cases_, 32);
}

// Validation failures surface as errors from execute(), not crashes or
// silent best-effort results.
TEST_F(ExecuteDiff, InvalidRequestsAreRejected) {
  Xoshiro256 rng(81416, 7);
  auto req = random_request(svc::QueryKind::kFrontier, rng, 0);
  std::get<svc::FrontierOp>(req.op).budgets.clear();
  const auto r = exec_engine_.execute(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);

  auto bad_trace = random_request(svc::QueryKind::kReplay, rng, 1);
  auto& replay = std::get<svc::ReplayOp>(bad_trace.op);
  ASSERT_FALSE(replay.trace.empty());
  replay.trace[0].phase_index = replay.wl.phases.size() + 7;
  const auto r2 = exec_engine_.execute(bad_trace);
  ASSERT_FALSE(r2.ok());
  // Index-out-of-table violations use the library's kOutOfRange bucket
  // (docs/api.md), not kInvalidArgument.
  EXPECT_EQ(r2.error().code, ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace pbc
