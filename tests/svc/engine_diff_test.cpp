// Differential tests: svc::QueryEngine must be an *exact* drop-in for
// the direct core:: call chain — profile + coord, or frontier sweep —
// bit-for-bit, cached or not, from one thread or many. The engine adds a
// cache and a hash in front of deterministic pure functions, so there is
// no tolerance to grant: any difference is a bug in the key (two
// descriptors collided) or in the cache (a stale or torn value).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "core/frontier.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "svc_test_util.hpp"

namespace pbc {
namespace {

void expect_same(const core::CpuAllocation& got,
                 const core::CpuAllocation& want, const std::string& ctx) {
  EXPECT_EQ(got.cpu.value(), want.cpu.value()) << ctx;
  EXPECT_EQ(got.mem.value(), want.mem.value()) << ctx;
  EXPECT_EQ(got.status, want.status) << ctx;
  EXPECT_EQ(got.surplus.value(), want.surplus.value()) << ctx;
}

void expect_same(const core::GpuAllocation& got,
                 const core::GpuAllocation& want, const std::string& ctx) {
  EXPECT_EQ(got.sm.value(), want.sm.value()) << ctx;
  EXPECT_EQ(got.mem.value(), want.mem.value()) << ctx;
  EXPECT_EQ(got.status, want.status) << ctx;
  EXPECT_EQ(got.surplus.value(), want.surplus.value()) << ctx;
  EXPECT_EQ(got.mem_clock_index, want.mem_clock_index) << ctx;
}

// >= 1000 randomized CPU cases: 250 distinct (machine, workload)
// descriptors x 5 budgets, both regime-C variants, each asked twice (the
// second answer comes from the cache and must not drift).
TEST(EngineDiff, CpuAnswersBitIdenticalToDirectPath) {
  Xoshiro256 rng(20160814, 1);
  svc::QueryEngine engine;
  int cases = 0;
  for (int i = 0; i < 250; ++i) {
    const auto machine = svc_test::random_cpu_machine(rng);
    const auto wl = svc_test::random_cpu_workload(rng, i);
    const sim::CpuNodeSim node(machine, wl);
    const auto profile = core::profile_critical_powers(node);
    for (int b = 0; b < 5; ++b) {
      const Watts budget{rng.uniform(100.0, 310.0)};
      const auto variant = (b % 2 == 0)
                               ? core::CpuCoordVariant::kProportional
                               : core::CpuCoordVariant::kMemoryBiased;
      const auto want = core::coord_cpu(profile, budget, variant);
      const std::string ctx =
          wl.name + " on " + machine.name + " @ " +
          std::to_string(budget.value());
      expect_same(engine.query_cpu(machine, wl, budget, variant), want, ctx);
      expect_same(engine.query_cpu(machine, wl, budget, variant), want,
                  ctx + " (cached)");
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);
  const auto s = engine.stats();
  EXPECT_EQ(s.queries, 2u * static_cast<std::uint64_t>(cases));
  EXPECT_EQ(s.computes, 250u);  // one profiling run per descriptor
}

TEST(EngineDiff, GpuAnswersBitIdenticalToDirectPath) {
  Xoshiro256 rng(20160814, 2);
  svc::QueryEngine engine;
  for (int i = 0; i < 60; ++i) {
    const auto machine = svc_test::random_gpu_machine(rng);
    const auto wl = svc_test::random_gpu_workload(rng, i);
    const sim::GpuNodeSim node(machine, wl);
    const auto params = core::profile_gpu_params(node);
    for (int b = 0; b < 4; ++b) {
      const Watts cap{rng.uniform(120.0, 300.0)};
      const double gamma = (b % 2 == 0) ? 0.5 : rng.uniform(0.2, 0.8);
      const auto want = core::coord_gpu(params, node.gpu_model(), cap, gamma);
      const std::string ctx = wl.name + " on " + machine.name + " @ " +
                              std::to_string(cap.value());
      expect_same(engine.query_gpu(machine, wl, cap, gamma), want, ctx);
      expect_same(engine.query_gpu(machine, wl, cap, gamma), want,
                  ctx + " (cached)");
    }
  }
}

// The batch API must agree with the scalar API entry by entry, including
// batches whose descriptors repeat (batch-local dedup must not reorder or
// cross-wire answers).
TEST(EngineDiff, BatchMatchesScalarAnswers) {
  Xoshiro256 rng(20160814, 3);
  std::vector<svc::CpuQuery> batch;
  for (int i = 0; i < 40; ++i) {
    const auto machine = svc_test::random_cpu_machine(rng);
    const auto wl = svc_test::random_cpu_workload(rng, i);
    for (int b = 0; b < 3; ++b) {
      batch.push_back({machine, wl, Watts{rng.uniform(110.0, 300.0)},
                       (b % 2 == 0) ? core::CpuCoordVariant::kProportional
                                    : core::CpuCoordVariant::kMemoryBiased});
    }
  }
  // Shuffle-ish: interleave duplicates of earlier entries.
  const std::size_t original = batch.size();
  for (int d = 0; d < 30; ++d) {
    batch.push_back(batch[static_cast<std::size_t>(rng.below(original))]);
  }

  svc::QueryEngine engine;
  const auto answers = engine.query_cpu_batch(batch);
  ASSERT_EQ(answers.size(), batch.size());

  svc::QueryEngine scalar;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& q = batch[i];
    expect_same(answers[i],
                scalar.query_cpu(q.machine, q.wl, q.budget, q.variant),
                "batch index " + std::to_string(i));
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.queries, batch.size());
  EXPECT_EQ(s.hits + s.misses, s.queries);
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
}

// Cached frontiers must be the exact vector perf_frontier_cpu returns.
TEST(EngineDiff, FrontierBitIdenticalToDirectSweep) {
  Xoshiro256 rng(20160814, 4);
  svc::QueryEngine engine;
  const auto grid = sim::budget_grid(Watts{140.0}, Watts{260.0}, Watts{40.0});
  for (int i = 0; i < 3; ++i) {
    const auto machine = svc_test::random_cpu_machine(rng);
    const auto wl = svc_test::random_cpu_workload(rng, i);
    const sim::CpuNodeSim node(machine, wl);
    const auto want = core::perf_frontier_cpu(node, grid);
    for (int pass = 0; pass < 2; ++pass) {  // miss, then hit
      const auto got = engine.cpu_frontier(machine, wl, grid);
      ASSERT_EQ(got->size(), want.size()) << wl.name;
      for (std::size_t p = 0; p < want.size(); ++p) {
        EXPECT_EQ((*got)[p].budget.value(), want[p].budget.value());
        EXPECT_EQ((*got)[p].perf_max, want[p].perf_max) << wl.name;
        EXPECT_EQ((*got)[p].best_proc_cap.value(),
                  want[p].best_proc_cap.value());
        EXPECT_EQ((*got)[p].best_mem_cap.value(),
                  want[p].best_mem_cap.value());
        EXPECT_EQ((*got)[p].consumed.value(), want[p].consumed.value());
      }
    }
  }
  // Different sweep options must be a different cache entry, not a stale
  // hit on the same (machine, workload).
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 99);
  const auto coarse = engine.cpu_frontier(machine, wl, grid,
                                          {Watts{40.0}, Watts{32.0},
                                           Watts{8.0}});
  const auto fine = engine.cpu_frontier(machine, wl, grid,
                                        {Watts{40.0}, Watts{32.0},
                                         Watts{2.0}});
  EXPECT_NE(coarse.get(), fine.get());
}

// Many threads hammer one shared engine with a fixed query set; every
// thread must see exactly the single-threaded answers. This is the "no
// torn or cross-wired cache entries under concurrency" contract.
TEST(EngineDiff, ConcurrentAnswersMatchSerialAnswers) {
  Xoshiro256 rng(20160814, 5);
  std::vector<svc::CpuQuery> queries;
  std::vector<core::CpuAllocation> want;
  for (int i = 0; i < 30; ++i) {
    const auto machine = svc_test::random_cpu_machine(rng);
    const auto wl = svc_test::random_cpu_workload(rng, i);
    const sim::CpuNodeSim node(machine, wl);
    const auto profile = core::profile_critical_powers(node);
    for (int b = 0; b < 3; ++b) {
      const Watts budget{rng.uniform(110.0, 300.0)};
      queries.push_back({machine, wl, budget,
                         core::CpuCoordVariant::kProportional});
      want.push_back(core::coord_cpu(profile, budget,
                                     core::CpuCoordVariant::kProportional));
    }
  }

  svc::QueryEngine engine;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 order(7, static_cast<std::uint64_t>(t));
      for (int rep = 0; rep < 200; ++rep) {
        const auto i = static_cast<std::size_t>(order.below(queries.size()));
        const auto& q = queries[i];
        const auto got =
            engine.query_cpu(q.machine, q.wl, q.budget, q.variant);
        if (got.cpu.value() != want[i].cpu.value() ||
            got.mem.value() != want[i].mem.value() ||
            got.status != want[i].status ||
            got.surplus.value() != want[i].surplus.value()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto s = engine.stats();
  EXPECT_EQ(s.queries, 8u * 200u);
  EXPECT_EQ(s.hits + s.misses, s.queries);
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
  EXPECT_LE(s.computes, 30u);  // one per distinct descriptor at most
}

}  // namespace
}  // namespace pbc
