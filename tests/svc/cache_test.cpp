// Unit tests for the svc building blocks: the sharded LRU cache, the
// single-flight table, and the canonical 128-bit descriptor keys.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "svc/cache.hpp"
#include "svc/key.hpp"
#include "svc/single_flight.hpp"
#include "svc_test_util.hpp"
#include "util/hash.hpp"

namespace pbc {
namespace {

using svc::CacheKey;

[[nodiscard]] CacheKey key_at(std::uint64_t hi, std::uint64_t lo) {
  return CacheKey{hi, lo};
}

[[nodiscard]] std::shared_ptr<const int> boxed(int v) {
  return std::make_shared<const int>(v);
}

// ------------------------------------------------- ShardedLruCache ------

TEST(ShardedLruCache, PutGetAndLruEvictionOrder) {
  svc::ShardedLruCache<int> cache(/*capacity=*/2, /*shard_count=*/1);
  cache.put(key_at(1, 0), boxed(10));
  cache.put(key_at(2, 0), boxed(20));
  ASSERT_NE(cache.get(key_at(1, 0)), nullptr);  // 1 is now most-recent
  cache.put(key_at(3, 0), boxed(30));           // evicts 2, not 1
  EXPECT_NE(cache.get(key_at(1, 0)), nullptr);
  EXPECT_EQ(cache.get(key_at(2, 0)), nullptr);
  EXPECT_NE(cache.get(key_at(3, 0)), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCache, PutSameKeyRefreshesInsteadOfGrowing) {
  svc::ShardedLruCache<int> cache(4, 1);
  cache.put(key_at(7, 7), boxed(1));
  cache.put(key_at(7, 7), boxed(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(key_at(7, 7)), 2);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardedLruCache, HeldValueSurvivesEviction) {
  svc::ShardedLruCache<int> cache(1, 1);
  cache.put(key_at(1, 1), boxed(41));
  const auto held = cache.get(key_at(1, 1));
  cache.put(key_at(2, 2), boxed(42));  // evicts key 1
  EXPECT_EQ(cache.get(key_at(1, 1)), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 41);  // shared_ptr keeps the evicted value alive
}

TEST(ShardedLruCache, ShardCountClampedToCapacity) {
  svc::ShardedLruCache<int> cache(/*capacity=*/3, /*shard_count=*/16);
  EXPECT_LE(cache.shard_count(), 3u);
  EXPECT_GE(cache.capacity(), 3u);
  // Keys landing on every shard still fit and are retrievable.
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.put(key_at(i, i), boxed(static_cast<int>(i)));
  }
  std::size_t found = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    if (cache.get(key_at(i, i)) != nullptr) ++found;
  }
  EXPECT_GE(found, 1u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ShardedLruCache, SizeStaysBoundedUnderConcurrentChurn) {
  svc::ShardedLruCache<int> cache(8, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(3, static_cast<std::uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        const auto k = key_at(rng.below(64), rng.below(4));
        if (auto v = cache.get(k)) {
          EXPECT_GE(*v, 0);
        } else {
          cache.put(k, boxed(static_cast<int>(k.hi)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), cache.capacity());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ----------------------------------------------------- SingleFlight ------

TEST(SingleFlight, ConcurrentCallersShareOneComputation) {
  svc::SingleFlight<int> flight;
  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> leaders{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      const auto out = flight.run(key_at(5, 5), [&] {
        computes.fetch_add(1);
        // Widen the in-flight window so followers actually coalesce.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_shared<const int>(99);
      });
      if (out.led) leaders.fetch_add(1);
      EXPECT_EQ(*out.value, 99);
    });
  }
  while (ready.load() < 8) {
  }
  go.store(true);
  for (auto& th : threads) th.join();
  // Every caller that arrived during the 20 ms window coalesced; callers
  // arriving after completion would lead again, so >= 1 compute and every
  // compute had a leader.
  EXPECT_GE(computes.load(), 1);
  EXPECT_EQ(computes.load(), leaders.load());
}

TEST(SingleFlight, LeaderExceptionPropagatesAndTableRecovers) {
  svc::SingleFlight<int> flight;
  EXPECT_THROW(
      (void)flight.run(key_at(1, 2),
                       []() -> std::shared_ptr<const int> {
                         throw std::runtime_error("profiling failed");
                       }),
      std::runtime_error);
  // The failed slot must be gone: the next caller runs fresh.
  const auto out = flight.run(key_at(1, 2), [] { return boxed(7); });
  EXPECT_TRUE(out.led);
  EXPECT_EQ(*out.value, 7);
}

// ------------------------------------------------------------ keys ------

TEST(CacheKeys, DeterministicAcrossCallsAndSensitiveToEveryDescriptor) {
  Xoshiro256 rng(77, 0);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  const auto k1 = svc::cpu_profile_key(machine, wl);
  const auto k2 = svc::cpu_profile_key(machine, wl);
  EXPECT_EQ(k1, k2);

  auto wl2 = wl;
  wl2.phases[0].bytes_per_unit *= 1.0 + 1e-12;  // tiniest numeric change
  EXPECT_FALSE(k1 == svc::cpu_profile_key(machine, wl2));

  auto machine2 = machine;
  machine2.dram.peak_bw = GBps{machine2.dram.peak_bw.value() + 1e-9};
  EXPECT_FALSE(k1 == svc::cpu_profile_key(machine2, wl));

  auto renamed = wl;
  renamed.name += "x";
  EXPECT_FALSE(k1 == svc::cpu_profile_key(machine, renamed));
}

TEST(CacheKeys, FrontierKeyCoversGridAndSweepOptions) {
  Xoshiro256 rng(77, 1);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);
  const std::vector<Watts> grid{Watts{150.0}, Watts{200.0}, Watts{250.0}};
  const sim::CpuSweepOptions opt{};

  const auto base = svc::cpu_frontier_key(machine, wl, grid, opt);
  EXPECT_EQ(base, svc::cpu_frontier_key(machine, wl, grid, opt));

  std::vector<Watts> grid2 = grid;
  grid2.back() = Watts{251.0};
  EXPECT_FALSE(base == svc::cpu_frontier_key(machine, wl, grid2, opt));

  sim::CpuSweepOptions opt2 = opt;
  opt2.step = Watts{opt.step.value() * 2.0};
  EXPECT_FALSE(base == svc::cpu_frontier_key(machine, wl, grid, opt2));

  // Profile and frontier keys for the same descriptor never collide
  // (distinct record tags).
  EXPECT_FALSE(base == svc::cpu_profile_key(machine, wl));
}

TEST(CacheKeys, CanonicalFloatEncodingFoldsSignedZero) {
  Fnv1a64 a;
  Fnv1a64 b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_EQ(a.digest(), b.digest());

  Fnv1a64 c;
  Fnv1a64 d;
  c.f64(1.0);
  d.f64(-1.0);
  EXPECT_NE(c.digest(), d.digest());
}

TEST(CacheKeys, SeededStreamsAreIndependent) {
  Fnv1a64 s0(0);
  Fnv1a64 s1(1);
  s0.str("same input");
  s1.str("same input");
  EXPECT_NE(s0.digest(), s1.digest());
}

}  // namespace
}  // namespace pbc
