// Shared randomized-descriptor helpers for the svc differential and
// stress tests. Every generator is a pure function of the RNG, so a test
// seeded with Xoshiro256(seed, stream) replays the exact same machines
// and workloads on every run and platform.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "hw/platforms.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"
#include "workload/workload.hpp"

namespace pbc::svc_test {

/// A suite workload with every phase's numeric knobs nudged by a few
/// percent — a distinct application profile (hence a distinct cache key)
/// that still satisfies Workload::validate().
[[nodiscard]] inline workload::Workload perturb_workload(
    const workload::Workload& base, Xoshiro256& rng, int tag) {
  workload::Workload w = base;
  w.name += "@" + std::to_string(tag);
  for (auto& ph : w.phases) {
    ph.flops_per_unit *= rng.uniform(0.85, 1.15);
    ph.bytes_per_unit *= rng.uniform(0.85, 1.15);
    ph.compute_eff = std::clamp(ph.compute_eff * rng.uniform(0.9, 1.1),
                                0.05, 1.0);
    ph.overlap = std::clamp(ph.overlap * rng.uniform(0.9, 1.1), 0.0, 1.0);
    ph.max_bw_frac = std::clamp(ph.max_bw_frac * rng.uniform(0.9, 1.1),
                                0.1, 1.0);
    ph.activity = std::clamp(ph.activity * rng.uniform(0.9, 1.1), 0.1, 1.0);
    ph.mem_energy_scale = std::max(1.0, ph.mem_energy_scale *
                                            rng.uniform(1.0, 1.1));
  }
  return w;
}

[[nodiscard]] inline workload::Workload random_cpu_workload(Xoshiro256& rng,
                                                            int tag) {
  static const std::vector<workload::Workload> suite = workload::cpu_suite();
  const auto& base = suite[static_cast<std::size_t>(rng.below(suite.size()))];
  return perturb_workload(base, rng, tag);
}

[[nodiscard]] inline workload::Workload random_gpu_workload(Xoshiro256& rng,
                                                            int tag) {
  static const std::vector<workload::Workload> suite = workload::gpu_suite();
  const auto& base = suite[static_cast<std::size_t>(rng.below(suite.size()))];
  return perturb_workload(base, rng, tag);
}

/// One of the two paper platforms with mild calibration drift applied to
/// the power-model coefficients — enough to change every critical power
/// value (and the cache key) without leaving the model's valid range.
[[nodiscard]] inline hw::CpuMachine random_cpu_machine(Xoshiro256& rng) {
  hw::CpuMachine m =
      rng.below(2) == 0 ? hw::ivybridge_node() : hw::haswell_node();
  m.cpu.dyn_coeff_w_per_ghz_v2 *= rng.uniform(0.95, 1.05);
  m.cpu.uncore_power = Watts{m.cpu.uncore_power.value() *
                             rng.uniform(0.95, 1.05)};
  m.dram.dyn_w_per_gbps *= rng.uniform(0.95, 1.05);
  m.dram.peak_bw = GBps{m.dram.peak_bw.value() * rng.uniform(0.95, 1.05)};
  return m;
}

[[nodiscard]] inline hw::GpuMachine random_gpu_machine(Xoshiro256& rng) {
  return rng.below(2) == 0 ? hw::titan_xp() : hw::titan_v();
}

}  // namespace pbc::svc_test
