// Concurrency and capacity stress for svc::QueryEngine: single-flight
// coalescing under a synchronized miss storm, LRU invariants under
// eviction pressure, and counter bookkeeping that has to stay consistent
// no matter how the races resolve. Run under the `tsan` preset these are
// also the data-race probes for the whole svc layer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../support/test_env.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "sim/cpu_node.hpp"
#include "svc/engine.hpp"
#include "svc_test_util.hpp"

namespace pbc {
namespace {

// All threads released at once onto the same cold keys: the engine must
// profile each descriptor exactly once, however the storm interleaves.
TEST(EngineStress, MissStormComputesEachDescriptorOnce) {
  Xoshiro256 rng(1701, 0);
  constexpr int kDescriptors = 4;
  constexpr int kThreads = 8;
  std::vector<hw::CpuMachine> machines;
  std::vector<workload::Workload> wls;
  for (int i = 0; i < kDescriptors; ++i) {
    machines.push_back(svc_test::random_cpu_machine(rng));
    wls.push_back(svc_test::random_cpu_workload(rng, i));
  }

  svc::QueryEngine engine;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      for (int i = 0; i < kDescriptors; ++i) {
        const auto a = engine.query_cpu(machines[static_cast<std::size_t>(i)],
                                        wls[static_cast<std::size_t>(i)],
                                        Watts{200.0});
        EXPECT_GT(a.total().value(), 0.0);
      }
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true);
  for (auto& th : threads) th.join();

  const auto s = engine.stats();
  EXPECT_EQ(s.queries, static_cast<std::uint64_t>(kThreads * kDescriptors));
  EXPECT_EQ(s.computes, static_cast<std::uint64_t>(kDescriptors));
  EXPECT_EQ(s.hits + s.misses, s.queries);
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.profile_cache_size, static_cast<std::size_t>(kDescriptors));
}

// A cache far smaller than the key universe: size stays bounded,
// evictions are counted, and — because profiling is deterministic —
// recomputed entries answer exactly like the evicted ones did.
TEST(EngineStress, EvictionKeepsSizeBoundedAndAnswersExact) {
  svc::EngineOptions opt;
  opt.profile_cache_capacity = 8;
  opt.shards = 2;
  svc::QueryEngine engine(opt);

  Xoshiro256 rng(1701, 1);
  std::vector<hw::CpuMachine> machines;
  std::vector<workload::Workload> wls;
  std::vector<core::CpuAllocation> want;
  constexpr int kDescriptors = 64;
  for (int i = 0; i < kDescriptors; ++i) {
    machines.push_back(svc_test::random_cpu_machine(rng));
    wls.push_back(svc_test::random_cpu_workload(rng, i));
    const sim::CpuNodeSim node(machines.back(), wls.back());
    want.push_back(core::coord_cpu(core::profile_critical_powers(node),
                                   Watts{210.0}));
  }

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kDescriptors; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto got =
          engine.query_cpu(machines[idx], wls[idx], Watts{210.0});
      EXPECT_EQ(got.cpu.value(), want[idx].cpu.value()) << i;
      EXPECT_EQ(got.mem.value(), want[idx].mem.value()) << i;
      const auto s = engine.stats();
      EXPECT_LE(s.profile_cache_size, opt.profile_cache_capacity);
    }
  }
  const auto s = engine.stats();
  // 64 distinct keys through an 8-entry cache, three rounds: nearly every
  // access recomputes, and every recompute past the first fill evicts.
  EXPECT_GE(s.evictions, static_cast<std::uint64_t>(
                             3 * kDescriptors - opt.profile_cache_capacity));
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
  EXPECT_EQ(s.hits + s.misses, s.queries);
}

// Threads race over an overlapping key set while eviction is active.
// Exact compute counts are timing-dependent here; the bookkeeping
// invariants and the size bound are not.
TEST(EngineStress, ContentionWithEvictionKeepsInvariants) {
  svc::EngineOptions opt;
  opt.profile_cache_capacity = 6;
  opt.shards = 3;
  svc::QueryEngine engine(opt);

  Xoshiro256 seed_rng(1701, 2);
  constexpr int kDescriptors = 18;
  std::vector<hw::CpuMachine> machines;
  std::vector<workload::Workload> wls;
  for (int i = 0; i < kDescriptors; ++i) {
    machines.push_back(svc_test::random_cpu_machine(seed_rng));
    wls.push_back(svc_test::random_cpu_workload(seed_rng, i));
  }

  // PBC_TEST_ITERS caps the per-thread query count on slow boxes; the
  // exact-count assertion below is computed from the runtime value.
  const int per_thread = test::iters(300);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(9, static_cast<std::uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        const auto d = static_cast<std::size_t>(rng.below(kDescriptors));
        const auto a = engine.query_cpu(machines[d], wls[d],
                                        Watts{rng.uniform(140.0, 280.0)});
        EXPECT_GE(a.total().value(), 0.0);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = engine.stats();
  EXPECT_EQ(s.queries, 6u * static_cast<std::uint64_t>(per_thread));
  EXPECT_EQ(s.hits + s.misses, s.queries);
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
  EXPECT_LE(s.profile_cache_size, opt.profile_cache_capacity);
  EXPECT_GT(s.hits, 0u);
  const double rate = s.hit_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

// clear() drops entries (forcing recomputes) but keeps history counters.
TEST(EngineStress, ClearDropsEntriesKeepsCounters) {
  Xoshiro256 rng(1701, 3);
  const auto machine = svc_test::random_cpu_machine(rng);
  const auto wl = svc_test::random_cpu_workload(rng, 0);

  svc::QueryEngine engine;
  const auto first = engine.query_cpu(machine, wl, Watts{220.0});
  EXPECT_EQ(engine.stats().computes, 1u);
  engine.clear();
  EXPECT_EQ(engine.stats().profile_cache_size, 0u);
  EXPECT_EQ(engine.stats().queries, 1u);  // history survives clear()

  const auto again = engine.query_cpu(machine, wl, Watts{220.0});
  EXPECT_EQ(again.cpu.value(), first.cpu.value());
  EXPECT_EQ(engine.stats().computes, 2u);  // recomputed after the drop
}

// Batch submission under a tiny pool-fanned miss set, interleaved with
// scalar queries from other threads on the same engine.
TEST(EngineStress, BatchAndScalarInterleaveSafely) {
  Xoshiro256 rng(1701, 4);
  std::vector<svc::CpuQuery> batch;
  for (int i = 0; i < 24; ++i) {
    batch.push_back({svc_test::random_cpu_machine(rng),
                     svc_test::random_cpu_workload(rng, i),
                     Watts{rng.uniform(130.0, 290.0)},
                     core::CpuCoordVariant::kProportional});
  }

  svc::QueryEngine engine;
  const int scalar_iters = test::iters(400);
  std::thread scalar([&] {
    Xoshiro256 pick(11, 0);
    for (int i = 0; i < scalar_iters; ++i) {
      const auto& q = batch[static_cast<std::size_t>(
          pick.below(batch.size()))];
      (void)engine.query_cpu(q.machine, q.wl, q.budget, q.variant);
    }
  });
  std::vector<core::CpuAllocation> answers;
  for (int rep = 0; rep < 3; ++rep) {
    answers = engine.query_cpu_batch(batch);
  }
  scalar.join();

  ASSERT_EQ(answers.size(), batch.size());
  svc::QueryEngine reference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& q = batch[i];
    const auto want =
        reference.query_cpu(q.machine, q.wl, q.budget, q.variant);
    EXPECT_EQ(answers[i].cpu.value(), want.cpu.value()) << i;
    EXPECT_EQ(answers[i].mem.value(), want.mem.value()) << i;
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.queries,
            static_cast<std::uint64_t>(scalar_iters) + 3u * batch.size());
  EXPECT_EQ(s.misses, s.computes + s.coalesced);
  EXPECT_LE(s.computes, batch.size());
}

}  // namespace
}  // namespace pbc
