// Environment knobs shared by the heavier test binaries.
//
// The concurrency hammers, stress loops, and fuzz sweeps run with fixed
// default iteration counts chosen for CI; locally (or under a slow
// sanitizer box) PBC_TEST_ITERS caps them without editing the tests:
//
//   PBC_TEST_ITERS=500 ctest --preset tsan -R Obs
//
// The override only ever *lowers* a loop count — defaults are the
// contract the suites are tuned for, so an oversized value cannot turn a
// bounded test into a multi-minute one by accident.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>

namespace pbc::test {

/// `def` capped by the PBC_TEST_ITERS environment variable when it is set
/// to a positive integer; `def` unchanged otherwise (unset, empty, junk).
[[nodiscard]] inline int iters(int def) {
  const char* env = std::getenv("PBC_TEST_ITERS");
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return def;
  return std::min(def, static_cast<int>(std::min<long>(v, 1 << 30)));
}

}  // namespace pbc::test
