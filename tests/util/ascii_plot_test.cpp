#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace pbc {
namespace {

TEST(AsciiPlot, RendersTitleAxesAndLegend) {
  PlotSeries s{"perf", {0.0, 1.0, 2.0}, {0.0, 5.0, 10.0}};
  PlotOptions opt;
  opt.title = "perf vs budget";
  opt.x_label = "budget (W)";
  const std::string out = render_plot({s}, opt);
  EXPECT_NE(out.find("perf vs budget"), std::string::npos);
  EXPECT_NE(out.find("budget (W)"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("[*] perf"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesUseDistinctGlyphs) {
  PlotSeries a{"a", {0.0, 1.0}, {0.0, 1.0}};
  PlotSeries b{"b", {0.0, 1.0}, {1.0, 0.0}};
  const std::string out = render_plot({a, b}, {});
  EXPECT_NE(out.find("[*] a"), std::string::npos);
  EXPECT_NE(out.find("[+] b"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, HandlesEmptySeries) {
  PlotSeries s{"empty", {}, {}};
  EXPECT_NO_FATAL_FAILURE(render_plot({s}, {}));
}

TEST(AsciiPlot, HandlesSinglePoint) {
  PlotSeries s{"pt", {5.0}, {3.0}};
  const std::string out = render_plot({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, HandlesConstantSeries) {
  PlotSeries s{"flat", {0.0, 1.0, 2.0}, {4.0, 4.0, 4.0}};
  EXPECT_NO_FATAL_FAILURE(render_plot({s}, {}));
}

TEST(AsciiPlot, SkipsNonFiniteValues) {
  PlotSeries s{"nan",
               {0.0, 1.0, 2.0},
               {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0}};
  EXPECT_NO_FATAL_FAILURE(render_plot({s}, {}));
}

TEST(AsciiPlot, RespectsCanvasSizeFloor) {
  PlotSeries s{"s", {0.0, 1.0}, {0.0, 1.0}};
  PlotOptions opt;
  opt.width = 1;   // clamped up to 16
  opt.height = 1;  // clamped up to 6
  const std::string out = render_plot({s}, opt);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiPlot, ScatterModeWhenNotConnected) {
  PlotSeries s{"s", {0.0, 10.0}, {0.0, 10.0}};
  PlotOptions opt;
  opt.connect = false;
  const std::string out = render_plot({s}, opt);
  // Two isolated points, no line in between: count glyphs.
  const auto stars = std::count(out.begin(), out.end(), '*');
  EXPECT_GE(stars, 2);
  EXPECT_LE(stars, 3);  // legend shows one more
}

}  // namespace
}  // namespace pbc
