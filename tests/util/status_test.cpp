#include "util/status.hpp"

#include <gtest/gtest.h>

namespace pbc {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = invalid_argument("bad input");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "bad input");
}

TEST(Result, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = not_found("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, MovableValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, MutableValueAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(Result, CodeMatchesOutcome) {
  Result<int> ok = 3;
  Result<int> err = out_of_range("x");
  EXPECT_EQ(ok.code(), ErrorCode::kOk);
  EXPECT_EQ(err.code(), ErrorCode::kOutOfRange);
}

TEST(Result, StatusDropsTheValue) {
  Result<int> ok = 3;
  Result<int> err = unavailable("rapl not present");
  EXPECT_TRUE(ok.status().ok());
  const Status s = err.status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(s.error().message, "rapl not present");
}

TEST(Status, DefaultConstructedIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ImplicitErrorConversion) {
  // `return invalid_argument(...)` in a Status-returning function.
  const auto fail = []() -> Status { return invalid_argument("nope"); };
  const Status s = fail();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.error().message, "nope");
  EXPECT_EQ(s.to_string(), "invalid_argument: nope");
}

TEST(Status, UsableInIfInitializer) {
  const auto check = [](bool good) -> Status {
    if (!good) return failed_precondition("bad state");
    return Status{};
  };
  if (Status s = check(false); !s.ok()) {
    EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  } else {
    FAIL() << "expected failure path";
  }
  EXPECT_TRUE(check(true).ok());
}

TEST(ErrorFactories, ProduceMatchingCodes) {
  EXPECT_EQ(invalid_argument("m").code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(out_of_range("m").code, ErrorCode::kOutOfRange);
  EXPECT_EQ(failed_precondition("m").code, ErrorCode::kFailedPrecondition);
  EXPECT_EQ(not_found("m").code, ErrorCode::kNotFound);
  EXPECT_EQ(unavailable("m").code, ErrorCode::kUnavailable);
}

TEST(ErrorToString, IncludesCodeAndMessage) {
  const Error e = out_of_range("power limit 500 W");
  EXPECT_EQ(e.to_string(), "out_of_range: power limit 500 W");
}

TEST(ErrorCodeToString, CoversAllCodes) {
  EXPECT_STREQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(ErrorCode::kOutOfRange), "out_of_range");
  EXPECT_STREQ(to_string(ErrorCode::kFailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(to_string(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(to_string(ErrorCode::kUnavailable), "unavailable");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
}

}  // namespace
}  // namespace pbc
