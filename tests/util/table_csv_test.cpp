#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace pbc {
namespace {

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter t({"name", "watts"});
  t.add_row({"cpu", "112"});
  t.add_row({"memory", "116"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name    watts"), std::string::npos);
  EXPECT_NE(out.find("------  -----"), std::string::npos);
  EXPECT_NE(out.find("cpu     112"), std::string::npos);
  EXPECT_NE(out.find("memory  116"), std::string::npos);
}

TEST(TableWriter, PadsShortRows) {
  TableWriter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TableWriter, ColumnWidthFollowsWidestCell) {
  TableWriter t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find(std::string(17, '-')), std::string::npos);
}

TEST(TableWriter, NumFormatsFixed) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(3.0, 0), "3");
  EXPECT_EQ(TableWriter::num(-1.5, 1), "-1.5");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream ss;
  CsvWriter csv(ss, {"budget", "perf"});
  EXPECT_TRUE(csv.write_row({"208", "79.8"}));
  EXPECT_EQ(ss.str(), "budget,perf\n208,79.8\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, RejectsArityMismatch) {
  std::ostringstream ss;
  CsvWriter csv(ss, {"a", "b"});
  EXPECT_FALSE(csv.write_row({"1"}));
  EXPECT_FALSE(csv.write_row({"1", "2", "3"}));
  EXPECT_EQ(csv.rows_written(), 0u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, EscapedCellsRoundTripThroughRow) {
  std::ostringstream ss;
  CsvWriter csv(ss, {"x"});
  EXPECT_TRUE(csv.write_row({"a,b"}));
  EXPECT_EQ(ss.str(), "x\n\"a,b\"\n");
}

}  // namespace
}  // namespace pbc
