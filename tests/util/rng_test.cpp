#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pbc {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, StreamsAreIndependent) {
  Xoshiro256 a(7, 0);
  Xoshiro256 b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Xoshiro, UniformMeanNearCenter) {
  Xoshiro256 rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, BelowCoversSmallRange) {
  Xoshiro256 rng(9);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.below(4)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Xoshiro, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(123);
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro, NormalScaledMoments) {
  Xoshiro256 rng(123);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace pbc
