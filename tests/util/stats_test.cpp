#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace pbc {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::array<double, 6> xs{2.0, 4.0, 4.0, 4.0, 5.0, 7.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), 26.0 / 6.0, 1e-12);
  // Sample variance with n-1 denominator.
  double m = 26.0 / 6.0;
  double v = 0.0;
  for (double x : xs) v += (x - m) * (x - m);
  v /= 5.0;
  EXPECT_NEAR(s.variance(), v, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Stats, MeanAndExtremes) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 6.0);
}

TEST(Stats, EmptySpansAreZero) {
  std::span<const double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(stddev(empty), 0.0);
  EXPECT_EQ(min_of(empty), 0.0);
  EXPECT_EQ(max_of(empty), 0.0);
  EXPECT_EQ(geomean(empty), 0.0);
}

TEST(Stats, Geomean) {
  const std::array<double, 3> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-10);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 5> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 62.5), 35.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::array<double, 5> xs{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
}

TEST(Stats, Argmax) {
  const std::array<double, 4> xs{3.0, 9.0, 1.0, 9.0};
  EXPECT_EQ(argmax(xs), 1u);  // first maximum
}

TEST(Stats, SlopeOfLine) {
  const std::array<double, 4> x{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> y{3.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(slope(x, y), 2.0, 1e-12);
}

TEST(Stats, SlopeDegenerateX) {
  const std::array<double, 3> x{2.0, 2.0, 2.0};
  const std::array<double, 3> y{1.0, 5.0, 9.0};
  EXPECT_EQ(slope(x, y), 0.0);
}

}  // namespace
}  // namespace pbc
