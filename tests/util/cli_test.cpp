#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace pbc {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  auto r = CliArgs::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(r.ok());
  return r.value();
}

TEST(Cli, ProgramNameAndEmptyRest) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.positional_count(), 0u);
}

TEST(Cli, PositionalArgumentsInOrder) {
  const auto args = parse({"prog", "SRA", "ivybridge", "240"});
  ASSERT_EQ(args.positional_count(), 3u);
  EXPECT_EQ(args.positional(0), "SRA");
  EXPECT_EQ(args.positional(1), "ivybridge");
  EXPECT_DOUBLE_EQ(args.positional_num(2, 0.0), 240.0);
}

TEST(Cli, PositionalFallbacks) {
  const auto args = parse({"prog", "x"});
  EXPECT_EQ(args.positional(5, "default"), "default");
  EXPECT_DOUBLE_EQ(args.positional_num(5, 7.5), 7.5);
  EXPECT_DOUBLE_EQ(args.positional_num(0, 7.5), 7.5);  // non-numeric
}

TEST(Cli, FlagsAndValues) {
  const auto args = parse({"prog", "--verbose", "--csv=out.csv",
                           "--budget=208.5"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.value("verbose").has_value());
  EXPECT_EQ(args.value("csv").value(), "out.csv");
  EXPECT_DOUBLE_EQ(args.value_num("budget", 0.0), 208.5);
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.value_num("missing", 3.0), 3.0);
}

TEST(Cli, MixedPositionalAndOptions) {
  const auto args = parse({"prog", "SRA", "--step=4", "haswell"});
  ASSERT_EQ(args.positional_count(), 2u);
  EXPECT_EQ(args.positional(0), "SRA");
  EXPECT_EQ(args.positional(1), "haswell");
  EXPECT_DOUBLE_EQ(args.value_num("step", 0.0), 4.0);
}

TEST(Cli, DoubleDashEndsOptions) {
  const auto args = parse({"prog", "--flag", "--", "--not-a-flag"});
  EXPECT_TRUE(args.has("flag"));
  ASSERT_EQ(args.positional_count(), 1u);
  EXPECT_EQ(args.positional(0), "--not-a-flag");
}

TEST(Cli, LastOccurrenceWins) {
  const auto args = parse({"prog", "--n=1", "--n=2"});
  EXPECT_DOUBLE_EQ(args.value_num("n", 0.0), 2.0);
}

TEST(Cli, UnknownOptionDetection) {
  const auto args = parse({"prog", "--csv=x", "--oops", "--csv=y"});
  const auto unknown = args.unknown_options({"csv"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "oops");
  EXPECT_TRUE(args.unknown_options({"csv", "oops"}).empty());
}

TEST(Cli, RejectsMalformedOptions) {
  const char* argv1[] = {"prog", "--=value"};
  EXPECT_FALSE(CliArgs::parse(2, argv1).ok());
}

TEST(Cli, RejectsEmptyArgv) {
  EXPECT_FALSE(CliArgs::parse(0, nullptr).ok());
}

TEST(Cli, NonNumericOptionValueFallsBack) {
  const auto args = parse({"prog", "--budget=lots"});
  EXPECT_DOUBLE_EQ(args.value_num("budget", 42.0), 42.0);
}

}  // namespace
}  // namespace pbc
