#include "util/units.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace pbc {
namespace {

TEST(Units, DefaultConstructedIsZero) {
  Watts w;
  EXPECT_EQ(w.value(), 0.0);
}

TEST(Units, LiteralsProduceExpectedValues) {
  EXPECT_DOUBLE_EQ((208_W).value(), 208.0);
  EXPECT_DOUBLE_EQ((2.5_GHz).value(), 2.5);
  EXPECT_DOUBLE_EQ((80_GBps).value(), 80.0);
  EXPECT_DOUBLE_EQ((1.5_s).value(), 1.5);
}

TEST(Units, AdditionAndSubtraction) {
  EXPECT_DOUBLE_EQ((100_W + 40_W).value(), 140.0);
  EXPECT_DOUBLE_EQ((100_W - 40_W).value(), 60.0);
  EXPECT_DOUBLE_EQ((-(40_W)).value(), -40.0);
}

TEST(Units, CompoundAssignment) {
  Watts w{100.0};
  w += 20_W;
  EXPECT_DOUBLE_EQ(w.value(), 120.0);
  w -= 60_W;
  EXPECT_DOUBLE_EQ(w.value(), 60.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 120.0);
  w /= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 30.0);
}

TEST(Units, ScalarMultiplicationBothSides) {
  EXPECT_DOUBLE_EQ((0.5 * 100_W).value(), 50.0);
  EXPECT_DOUBLE_EQ((100_W * 0.5).value(), 50.0);
  EXPECT_DOUBLE_EQ((100_W / 4.0).value(), 25.0);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double ratio = 150_W / 300_W;
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(100_W, 200_W);
  EXPECT_GT(200_W, 100_W);
  EXPECT_EQ(100_W, 100_W);
  EXPECT_LE(100_W, 100_W);
}

TEST(Units, EnergyFromPowerAndTime) {
  const Joules e = 100_W * 2_s;
  EXPECT_DOUBLE_EQ(e.value(), 200.0);
  const Joules e2 = 2_s * 100_W;
  EXPECT_DOUBLE_EQ(e2.value(), 200.0);
}

TEST(Units, PowerFromEnergyOverTime) {
  const Watts p = Joules{500.0} / 10_s;
  EXPECT_DOUBLE_EQ(p.value(), 50.0);
}

TEST(Units, ClampWithinBounds) {
  EXPECT_EQ(clamp(150_W, 100_W, 200_W), 150_W);
  EXPECT_EQ(clamp(50_W, 100_W, 200_W), 100_W);
  EXPECT_EQ(clamp(250_W, 100_W, 200_W), 200_W);
}

TEST(Units, NearWithTolerance) {
  EXPECT_TRUE(near(100_W, 100.5_W, 1.0));
  EXPECT_FALSE(near(100_W, 102_W, 1.0));
  EXPECT_TRUE(near(100_W, 100_W, 0.0));
}

TEST(Units, StreamOutput) {
  std::ostringstream ss;
  ss << 42_W;
  EXPECT_EQ(ss.str(), "42");
}

TEST(Units, Hashable) {
  std::unordered_set<Watts> set;
  set.insert(100_W);
  set.insert(100_W);
  set.insert(200_W);
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace pbc
