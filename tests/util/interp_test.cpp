#include "util/interp.hpp"

#include <gtest/gtest.h>

namespace pbc {
namespace {

PiecewiseLinear make(std::vector<std::pair<double, double>> pts) {
  auto r = PiecewiseLinear::from_points(std::move(pts));
  EXPECT_TRUE(r.ok());
  return r.value();
}

TEST(PiecewiseLinear, RejectsEmpty) {
  EXPECT_FALSE(PiecewiseLinear::from_points({}).ok());
}

TEST(PiecewiseLinear, RejectsDuplicateX) {
  EXPECT_FALSE(
      PiecewiseLinear::from_points({{1.0, 2.0}, {1.0, 3.0}}).ok());
}

TEST(PiecewiseLinear, SortsKnots) {
  const auto f = make({{3.0, 30.0}, {1.0, 10.0}, {2.0, 20.0}});
  EXPECT_DOUBLE_EQ(f.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 3.0);
  EXPECT_DOUBLE_EQ(f(1.5), 15.0);
}

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  const auto f = make({{0.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(f(5.0), 50.0);
  EXPECT_DOUBLE_EQ(f(2.5), 25.0);
}

TEST(PiecewiseLinear, FlatExtrapolation) {
  const auto f = make({{1.0, 5.0}, {2.0, 9.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(100.0), 9.0);
}

TEST(PiecewiseLinear, EvaluatesExactlyAtKnots) {
  const auto f = make({{1.0, 5.0}, {2.0, 9.0}, {4.0, 1.0}});
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(2.0), 9.0);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
}

TEST(PiecewiseLinear, SlopeAt) {
  const auto f = make({{0.0, 0.0}, {1.0, 2.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(f.slope_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.slope_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(f.slope_at(-1.0), 0.0);  // outside domain
}

TEST(PiecewiseLinear, EmptyDefault) {
  PiecewiseLinear f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f(3.0), 0.0);
}

TEST(PlateauOnset, FindsFlatteningPoint) {
  // Rises to 100 at x=200 and stays flat after.
  const auto f = make({{0.0, 0.0},
                       {100.0, 50.0},
                       {200.0, 100.0},
                       {240.0, 100.0},
                       {300.0, 100.0}});
  EXPECT_DOUBLE_EQ(plateau_onset(f, 0.02), 200.0);
}

TEST(PlateauOnset, WholeCurveFlat) {
  const auto f = make({{0.0, 7.0}, {1.0, 7.0}, {2.0, 7.0}});
  EXPECT_DOUBLE_EQ(plateau_onset(f), 0.0);
}

TEST(PlateauOnset, NeverFlattens) {
  const auto f = make({{0.0, 0.0}, {1.0, 10.0}, {2.0, 20.0}});
  EXPECT_DOUBLE_EQ(plateau_onset(f), 2.0);
}

TEST(SlopeBreaks, DetectsKnee) {
  // Steep then flat: one break at x=1.
  const auto f = make({{0.0, 0.0}, {1.0, 10.0}, {2.0, 10.5}, {3.0, 11.0}});
  const auto breaks = slope_breaks(f);
  ASSERT_EQ(breaks.size(), 1u);
  EXPECT_DOUBLE_EQ(breaks[0], 1.0);
}

TEST(SlopeBreaks, NoBreaksOnStraightLine) {
  const auto f = make({{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
  EXPECT_TRUE(slope_breaks(f).empty());
}

}  // namespace
}  // namespace pbc
