#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace pbc {
namespace {

TEST(ThreadPool, CreatesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_index(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for_index(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for_index(3, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForSingleIndex) {
  ThreadPool pool(4);
  std::atomic<int> seen{-1};
  pool.parallel_for_index(1, [&](std::size_t i) {
    seen.store(static_cast<int>(i));
  });
  EXPECT_EQ(seen.load(), 0);
}

TEST(ThreadPool, ParallelForSmallerThanThreadCountCoversEachIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_index(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PoolUsableAfterZeroLengthParallelFor) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [&](std::size_t) {});
  std::atomic<int> counter{0};
  pool.parallel_for_index(5, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPool, ParallelForRunsConcurrently) {
  ThreadPool pool(4);
  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for_index(8, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Serial execution would take ≥200 ms; four workers need ~50 ms. Allow
  // generous scheduling slack but require clear overlap.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            160);
}

TEST(ThreadPool, SequentialParallelForCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for_index(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for_index(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  EXPECT_NO_FATAL_FAILURE(pool.wait_idle());
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

}  // namespace
}  // namespace pbc
