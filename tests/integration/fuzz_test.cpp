// Deterministic fuzzing: random (but valid) workloads and caps must never
// violate the simulator's contracts. Catches interactions the hand-picked
// suites miss — extreme operational intensities, near-degenerate overlaps,
// pathological phase mixes.
#include <gtest/gtest.h>

#include "core/categorize.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "util/rng.hpp"
#include "workload/serialize.hpp"

namespace pbc {
namespace {

workload::Workload random_workload(std::uint64_t seed) {
  Xoshiro256 rng(seed, 0xf00d);
  workload::Workload w;
  w.name = "fuzz-" + std::to_string(seed);
  w.description = "generated";
  w.metric_name = "Gop/s";
  w.metric_per_gunit = rng.uniform(0.5, 100.0);
  const std::size_t phases = 1 + rng.below(3);
  for (std::size_t i = 0; i < phases; ++i) {
    workload::Phase p;
    p.name = "p" + std::to_string(i);
    p.weight = rng.uniform(0.1, 3.0);
    p.flops_per_unit = rng.uniform(0.5, 50.0);
    p.bytes_per_unit = rng.uniform(0.01, 64.0);
    p.compute_eff = rng.uniform(0.1, 1.0);
    p.overlap = rng.uniform(0.0, 1.0);
    p.max_bw_frac = rng.uniform(0.3, 1.0);
    p.freq_scaling = rng.uniform(0.0, 0.8);
    p.activity = rng.uniform(0.3, 1.0);
    p.mem_energy_scale = rng.uniform(1.0, 2.5);
    w.phases.push_back(p);
  }
  return w;
}

TEST(Fuzz, RandomWorkloadsRespectCapsAndInvariants) {
  const auto machine = hw::ivybridge_node();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto wl = random_workload(seed);
    ASSERT_TRUE(wl.validate().ok()) << seed;
    const sim::CpuNodeSim node(machine, wl);
    Xoshiro256 rng(seed, 0xcaf3);
    for (int i = 0; i < 6; ++i) {
      const double c = rng.uniform(machine.cpu.floor.value() + 5.0, 200.0);
      const double m = rng.uniform(machine.dram.floor.value() + 3.0, 160.0);
      const auto s = node.steady_state(Watts{c}, Watts{m});
      EXPECT_LE(s.proc_power.value(), c + 0.1) << seed << " " << c;
      EXPECT_LE(s.mem_power.value(), m + 0.1) << seed << " " << m;
      EXPECT_GE(s.perf, 0.0) << seed;
      EXPECT_TRUE(std::isfinite(s.perf)) << seed;
      EXPECT_GE(s.compute_util, 0.0);
      EXPECT_LE(s.compute_util, 1.0 + 1e-9);
    }
  }
}

TEST(Fuzz, RandomWorkloadsHaveOrderedCriticalPowers) {
  const auto machine = hw::ivybridge_node();
  for (std::uint64_t seed = 50; seed <= 80; ++seed) {
    const auto wl = random_workload(seed);
    const sim::CpuNodeSim node(machine, wl);
    const auto cp = core::profile_critical_powers(node);
    EXPECT_GT(cp.cpu_l1.value(), cp.cpu_l2.value()) << seed;
    EXPECT_GT(cp.cpu_l2.value(), cp.cpu_l3.value()) << seed;
    EXPECT_GE(cp.mem_l1.value(), cp.mem_l2.value()) << seed;
    EXPECT_LT(cp.productive_threshold().value(), cp.max_demand().value())
        << seed;
  }
}

TEST(Fuzz, CoordNeverOverspendsOnRandomWorkloads) {
  const auto machine = hw::ivybridge_node();
  for (std::uint64_t seed = 100; seed <= 130; ++seed) {
    const auto wl = random_workload(seed);
    const sim::CpuNodeSim node(machine, wl);
    const auto cp = core::profile_critical_powers(node);
    Xoshiro256 rng(seed, 0xb00);
    for (int i = 0; i < 4; ++i) {
      const Watts b{rng.uniform(120.0, 280.0)};
      const auto a = core::coord_cpu(cp, b);
      if (a.status == core::CoordStatus::kBudgetTooSmall) continue;
      EXPECT_LE(a.total().value(), b.value() + 1e-9) << seed;
      const auto s = node.steady_state(a.cpu, a.mem);
      EXPECT_LE(s.total_power().value(), b.value() + 0.2) << seed;
    }
  }
}

TEST(Fuzz, CategorizerCoversEveryRandomSweep) {
  const auto machine = hw::ivybridge_node();
  for (std::uint64_t seed = 200; seed <= 215; ++seed) {
    const auto wl = random_workload(seed);
    const sim::CpuNodeSim node(machine, wl);
    sim::BudgetSweep sweep;
    sweep.budget = Watts{220.0};
    sweep.samples = sim::sweep_cpu_split(node, Watts{220.0}, {});
    const auto spans = core::category_spans_cpu(sweep, machine);
    std::size_t covered = 0;
    for (const auto& sp : spans) covered += sp.last - sp.first + 1;
    EXPECT_EQ(covered, sweep.samples.size()) << seed;
  }
}

TEST(Fuzz, SerializationRoundTripsRandomWorkloads) {
  for (std::uint64_t seed = 300; seed <= 340; ++seed) {
    const auto wl = random_workload(seed);
    const auto back = workload::from_text(workload::to_text(wl));
    ASSERT_TRUE(back.ok()) << seed << ": " << back.error().to_string();
    EXPECT_EQ(back.value().name, wl.name);
    ASSERT_EQ(back.value().phases.size(), wl.phases.size());
    for (std::size_t i = 0; i < wl.phases.size(); ++i) {
      EXPECT_NEAR(back.value().phases[i].bytes_per_unit,
                  wl.phases[i].bytes_per_unit,
                  1e-4 * wl.phases[i].bytes_per_unit)
          << seed;
    }
  }
}

}  // namespace
}  // namespace pbc
