// Property-based sweeps: invariants that must hold for EVERY benchmark on
// EVERY platform, exercised via parameterized suites. These are the
// contracts the analysis layer (categorization, COORD, frontiers) builds
// on; a calibration change that breaks one of them silently breaks the
// reproduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/categorize.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc {
namespace {

// ------------------------------------------------------------ CPU ------

struct CpuCase {
  const char* platform;
  workload::Workload wl;
};

class CpuProperty : public ::testing::TestWithParam<CpuCase> {
 protected:
  [[nodiscard]] hw::CpuMachine machine() const {
    return std::string(GetParam().platform) == "ivy" ? hw::ivybridge_node()
                                                     : hw::haswell_node();
  }
};

TEST_P(CpuProperty, CapsRespectedAboveFloors) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  const auto& m = node.machine();
  for (double c : {m.cpu.floor.value() + 15.0, 100.0, 140.0}) {
    for (double mcap : {m.dram.floor.value() + 10.0, 100.0, 120.0}) {
      const auto s = node.steady_state(Watts{c}, Watts{mcap});
      EXPECT_LE(s.proc_power.value(), c + 0.1)
          << GetParam().wl.name << " " << c << "/" << mcap;
      EXPECT_LE(s.mem_power.value(), mcap + 0.1)
          << GetParam().wl.name << " " << c << "/" << mcap;
    }
  }
}

TEST_P(CpuProperty, PerfMonotoneInEachCap) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  double prev = 0.0;
  for (double c = 52.0; c <= 170.0; c += 6.0) {
    const double p = node.steady_state(Watts{c}, Watts{400.0}).perf;
    EXPECT_GE(p, prev - 1e-9) << GetParam().wl.name << " cpu cap " << c;
    prev = p;
  }
  prev = 0.0;
  for (double m = 70.0; m <= 130.0; m += 4.0) {
    const double p = node.steady_state(Watts{400.0}, Watts{m}).perf;
    EXPECT_GE(p, prev - 1e-9) << GetParam().wl.name << " mem cap " << m;
    prev = p;
  }
}

TEST_P(CpuProperty, CriticalPowersOrderedAndWithinHardwareRange) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  const auto cp = core::profile_critical_powers(node);
  EXPECT_GT(cp.cpu_l1, cp.cpu_l2) << GetParam().wl.name;
  EXPECT_GT(cp.cpu_l2, cp.cpu_l3) << GetParam().wl.name;
  EXPECT_GE(cp.cpu_l3, cp.cpu_l4) << GetParam().wl.name;
  EXPECT_GE(cp.mem_l1, cp.mem_l2) << GetParam().wl.name;
  EXPECT_GE(cp.mem_l2, cp.mem_l3) << GetParam().wl.name;
  // Demands cannot exceed what the hardware model can draw.
  const hw::CpuModel cm(node.machine().cpu);
  const hw::DramModel dm(node.machine().dram);
  EXPECT_LE(cp.cpu_l1.value(), cm.max_power(1.0).value() + 0.1);
  EXPECT_LE(cp.mem_l1.value(), dm.max_power().value() + 0.1);
}

TEST_P(CpuProperty, CoordNeverExceedsBudgetAndRespectsProfileBounds) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  const auto cp = core::profile_critical_powers(node);
  for (double b = 130.0; b <= 300.0; b += 10.0) {
    for (const auto variant : {core::CpuCoordVariant::kProportional,
                               core::CpuCoordVariant::kMemoryBiased}) {
      const auto a = core::coord_cpu(cp, Watts{b}, variant);
      if (a.status == core::CoordStatus::kBudgetTooSmall) continue;
      EXPECT_LE(a.total().value(), b + 1e-9) << GetParam().wl.name;
      EXPECT_GE(a.cpu, cp.cpu_l2) << GetParam().wl.name;
      EXPECT_GE(a.mem, cp.mem_l2) << GetParam().wl.name;
      EXPECT_LE(a.cpu.value(), cp.cpu_l1.value() + 1e-9)
          << GetParam().wl.name << " budget " << b;
    }
  }
}

TEST_P(CpuProperty, CategorizerAssignsEverySampleALegalCategory) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  sim::BudgetSweep sweep;
  sweep.budget = Watts{230.0};
  sweep.samples = sim::sweep_cpu_split(node, Watts{230.0}, {});
  const auto spans = core::category_spans_cpu(sweep, node.machine());
  std::size_t covered = 0;
  for (const auto& sp : spans) covered += sp.last - sp.first + 1;
  EXPECT_EQ(covered, sweep.samples.size()) << GetParam().wl.name;
}

TEST_P(CpuProperty, BestSplitIsNeverAtAFloorViolation) {
  const sim::CpuNodeSim node(machine(), GetParam().wl);
  for (double b : {180.0, 220.0, 260.0}) {
    sim::BudgetSweep sweep;
    sweep.budget = Watts{b};
    sweep.samples = sim::sweep_cpu_split(node, Watts{b}, {});
    const auto* best = sweep.best();
    ASSERT_NE(best, nullptr);
    EXPECT_TRUE(best->proc_cap_respected) << GetParam().wl.name << " " << b;
  }
}

// COORD accuracy vs the exhaustive sweep oracle, aggregated over every
// benchmark on this platform (the Fig. 9 methodology). The paper reports
// a 9.6% mean gap on real hardware; this reproduction measures 13.5%
// over accepted budgets (the extra gap sits in the narrow regime-C band
// — see EXPERIMENTS.md), with a 7.2% worst case at large (>= 200 W)
// caps. The bounds below are those measured values plus margin, so a
// calibration change that degrades COORD accuracy fails here. The
// allocations are served through svc::QueryEngine, which the diff tests
// pin to the direct core:: path — so this doubles as an end-to-end check
// of the service layer against the oracle.
TEST_P(CpuProperty, CoordServedByEngineTracksSweepOracle) {
  const auto m = machine();
  const auto& wl = GetParam().wl;
  const sim::CpuNodeSim node(m, wl);
  svc::QueryEngine engine;

  const auto budgets =
      sim::budget_grid(Watts{145.0}, Watts{265.0}, Watts{20.0});
  const auto sweeps = sim::sweep_cpu_budgets(
      node, budgets, {Watts{40.0}, Watts{32.0}, Watts{2.0}});

  double gap_sum = 0.0;
  int accepted = 0;
  double gap_large = 0.0;
  for (const auto& sweep : sweeps) {
    const auto alloc = engine.query_cpu(m, wl, sweep.budget);
    if (alloc.status == core::CoordStatus::kBudgetTooSmall) continue;
    const auto* best = sweep.best();
    ASSERT_NE(best, nullptr) << wl.name;
    const double coord = node.steady_state(alloc.cpu, alloc.mem).perf;
    const double gap = std::max(0.0, 1.0 - coord / best->perf);
    gap_sum += gap;
    ++accepted;
    if (sweep.budget.value() >= 200.0) gap_large = std::max(gap_large, gap);
  }
  ASSERT_GT(accepted, 0) << wl.name;
  // Worst per-benchmark mean across the suite measures ~0.30 (FT on
  // haswell, regime-C dominated); the suite-wide mean assertion below
  // carries the 13.5% headline. Per-benchmark we bound the tail.
  EXPECT_LE(gap_sum / accepted, 0.35) << wl.name;
  EXPECT_LE(gap_large, 0.15) << wl.name << " at large caps";
}

// The suite-wide mean — the paper's actual 9.6% headline (measured here:
// 13.5% on IvyBridge over accepted budgets 145-265 W).
TEST(CoordAccuracyAggregate, MeanGapOverSuiteWithinMeasuredBound) {
  for (const auto& m : {hw::ivybridge_node(), hw::haswell_node()}) {
    svc::QueryEngine engine;
    double gap_sum = 0.0;
    int accepted = 0;
    for (const auto& wl : workload::cpu_suite()) {
      const sim::CpuNodeSim node(m, wl);
      const auto budgets =
          sim::budget_grid(Watts{145.0}, Watts{265.0}, Watts{20.0});
      const auto sweeps = sim::sweep_cpu_budgets(
          node, budgets, {Watts{40.0}, Watts{32.0}, Watts{2.0}});
      for (const auto& sweep : sweeps) {
        const auto alloc = engine.query_cpu(m, wl, sweep.budget);
        if (alloc.status == core::CoordStatus::kBudgetTooSmall) continue;
        const auto* best = sweep.best();
        ASSERT_NE(best, nullptr);
        const double coord = node.steady_state(alloc.cpu, alloc.mem).perf;
        gap_sum += std::max(0.0, 1.0 - coord / best->perf);
        ++accepted;
      }
    }
    ASSERT_GT(accepted, 0);
    EXPECT_LE(gap_sum / accepted, 0.16) << m.name;
  }
}

// In the regime-C band just above the productive threshold, the
// memory-biased variant must keep its measured edge over the paper's
// proportional rule (0.926 vs 0.638 of oracle at 150-170 W — the
// DESIGN.md ablation this repo ships as CpuCoordVariant::kMemoryBiased).
TEST(CoordAccuracyAggregate, MemoryBiasedBeatsProportionalInRegimeC) {
  const auto m = hw::ivybridge_node();
  svc::QueryEngine engine;
  double prop_ratio_sum = 0.0;
  double biased_ratio_sum = 0.0;
  int n = 0;
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(m, wl);
    for (const double b : {150.0, 160.0, 170.0}) {
      const auto prop = engine.query_cpu(m, wl, Watts{b},
                                         core::CpuCoordVariant::kProportional);
      if (prop.status == core::CoordStatus::kBudgetTooSmall) continue;
      const auto biased = engine.query_cpu(
          m, wl, Watts{b}, core::CpuCoordVariant::kMemoryBiased);
      sim::BudgetSweep sweep;
      sweep.budget = Watts{b};
      sweep.samples = sim::sweep_cpu_split(
          node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{2.0}});
      const auto* best = sweep.best();
      ASSERT_NE(best, nullptr);
      prop_ratio_sum +=
          node.steady_state(prop.cpu, prop.mem).perf / best->perf;
      biased_ratio_sum +=
          node.steady_state(biased.cpu, biased.mem).perf / best->perf;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GE(biased_ratio_sum / n, prop_ratio_sum / n);
  EXPECT_GE(biased_ratio_sum / n, 0.85);  // measured 0.926
}

std::string cpu_name(const ::testing::TestParamInfo<CpuCase>& info) {
  return std::string(info.param.platform) + "_" + info.param.wl.name;
}

std::vector<CpuCase> cpu_cases() {
  std::vector<CpuCase> cases;
  for (const char* platform : {"ivy", "haswell"}) {
    for (const auto& wl : workload::cpu_suite()) {
      cases.push_back(CpuCase{platform, wl});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPlatformsAllBenchmarks, CpuProperty,
                         ::testing::ValuesIn(cpu_cases()), cpu_name);

// ------------------------------------------------------------ GPU ------

struct GpuCase {
  const char* card;
  workload::Workload wl;
};

class GpuProperty : public ::testing::TestWithParam<GpuCase> {
 protected:
  [[nodiscard]] hw::GpuMachine machine() const {
    return std::string(GetParam().card) == "xp" ? hw::titan_xp()
                                                : hw::titan_v();
  }
};

TEST_P(GpuProperty, BoardCapAlwaysHonoured) {
  const sim::GpuNodeSim node(machine(), GetParam().wl);
  for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
    for (std::size_t clk = 0; clk < node.gpu_model().mem_clock_count();
         ++clk) {
      EXPECT_LE(node.steady_state(clk, Watts{cap}).total_power().value(),
                cap + 0.1)
          << GetParam().wl.name << " cap " << cap << " clk " << clk;
    }
  }
}

TEST_P(GpuProperty, PerfMonotoneInCapAtFixedClock) {
  const sim::GpuNodeSim node(machine(), GetParam().wl);
  for (std::size_t clk : {std::size_t{0}, std::size_t{2}}) {
    double prev = 0.0;
    for (double cap = 125.0; cap <= 300.0; cap += 12.5) {
      const double p = node.steady_state(clk, Watts{cap}).perf;
      EXPECT_GE(p, prev - 1e-9)
          << GetParam().wl.name << " clk " << clk << " cap " << cap;
      prev = p;
    }
  }
}

TEST_P(GpuProperty, OnlyBenignCategoriesAppear) {
  const sim::GpuNodeSim node(machine(), GetParam().wl);
  for (double cap : {125.0, 175.0, 250.0}) {
    sim::BudgetSweep sweep;
    sweep.budget = Watts{cap};
    sweep.samples = sim::sweep_gpu_split(node, Watts{cap});
    for (const auto c :
         core::categories_present(core::category_spans_gpu(sweep))) {
      EXPECT_TRUE(c == core::Category::kI || c == core::Category::kII ||
                  c == core::Category::kIII)
          << GetParam().wl.name << " cap " << cap;
    }
  }
}

TEST_P(GpuProperty, CoordWithinTenPercentOfSweepOracle) {
  const sim::GpuNodeSim node(machine(), GetParam().wl);
  const auto p = core::profile_gpu_params(node);
  for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
    const auto samples = sim::sweep_gpu_split(node, Watts{cap});
    double oracle = 0.0;
    for (const auto& s : samples) oracle = std::max(oracle, s.perf);
    const auto a = core::coord_gpu(p, node.gpu_model(), Watts{cap});
    const double coord =
        node.steady_state(a.mem_clock_index, Watts{cap}).perf;
    EXPECT_GT(coord, 0.89 * oracle)
        << GetParam().wl.name << " cap " << cap;
  }
}

TEST_P(GpuProperty, ReclaimNeverHurts) {
  // Automatic reclaim dominates independent budgeting pointwise.
  const sim::GpuNodeSim node(machine(), GetParam().wl);
  for (double cap : {140.0, 200.0, 280.0}) {
    for (std::size_t clk = 0; clk < node.gpu_model().mem_clock_count();
         ++clk) {
      const double with = node.steady_state(clk, Watts{cap}).perf;
      const double without =
          node.steady_state_no_reclaim(clk, Watts{cap}).perf;
      EXPECT_GE(with, without - 1e-9)
          << GetParam().wl.name << " cap " << cap << " clk " << clk;
    }
  }
}

std::string gpu_name(const ::testing::TestParamInfo<GpuCase>& info) {
  return std::string(info.param.card) + "_" + info.param.wl.name;
}

std::vector<GpuCase> gpu_cases() {
  std::vector<GpuCase> cases;
  for (const char* card : {"xp", "v"}) {
    for (const auto& wl : workload::gpu_suite()) {
      cases.push_back(GpuCase{card, wl});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCardsAllBenchmarks, GpuProperty,
                         ::testing::ValuesIn(gpu_cases()), gpu_name);

}  // namespace
}  // namespace pbc
