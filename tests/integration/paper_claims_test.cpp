// End-to-end reproduction checks of the paper's headline claims, run
// against the full stack (workload models × hardware models × governors ×
// analysis × heuristics). EXPERIMENTS.md records the measured values next
// to the paper's.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/categorize.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc {
namespace {

// Fig. 1(a) right: at a 208 W budget, STREAM's best split beats the worst
// by well over an order of magnitude (paper: up to ~30x).
TEST(PaperClaims, CpuStreamSpreadAt208WIsHuge) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto samples =
      sim::sweep_cpu_split(node, Watts{208.0},
                           {Watts{40.0}, Watts{32.0}, Watts{4.0}});
  double best = 0.0;
  double worst = 1e300;
  for (const auto& s : samples) {
    best = std::max(best, s.perf);
    worst = std::min(worst, s.perf);
  }
  EXPECT_GT(best / worst, 20.0);
}

// Fig. 1: component power capping keeps total power within the budget for
// every split whose caps are above the hardware floors.
TEST(PaperClaims, TotalPowerStaysUnderBudget) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto machine = node.machine();
  for (const auto& s : sim::sweep_cpu_split(node, Watts{208.0}, {})) {
    if (s.proc_cap >= machine.cpu.floor && s.mem_cap >= machine.dram.floor &&
        s.mem_power.value() >
            machine.dram.background_power().value() + 4.0) {
      EXPECT_LE(s.total_power().value(), 208.0 + 0.2)
          << "mem cap " << s.mem_cap.value();
    }
  }
}

// Fig. 1(b): at a 140 W GPU cap the best allocation beats the worst by a
// double-digit percentage; at larger caps the spread reaches 25-35%.
TEST(PaperClaims, GpuStreamAllocationSpread) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  auto spread = [&](double cap) {
    const auto samples = sim::sweep_gpu_split(node, Watts{cap});
    double best = 0.0;
    double worst = 1e300;
    for (const auto& s : samples) {
      best = std::max(best, s.perf);
      worst = std::min(worst, s.perf);
    }
    return best / worst;
  };
  EXPECT_GT(spread(140.0), 1.06);
  EXPECT_GT(spread(220.0), 1.25);
}

// §1 contribution 1: cross-component coordination improves GPU performance
// by ~35% for some applications/budgets.
TEST(PaperClaims, GpuCoordinationGainReaches25Percent) {
  double max_spread = 0.0;
  for (const auto& w : workload::gpu_suite()) {
    const sim::GpuNodeSim node(hw::titan_xp(), w);
    for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
      const auto samples = sim::sweep_gpu_split(node, Watts{cap});
      double best = 0.0;
      double worst = 1e300;
      for (const auto& s : samples) {
        best = std::max(best, s.perf);
        worst = std::min(worst, s.perf);
      }
      max_spread = std::max(max_spread, best / worst);
    }
  }
  EXPECT_GT(max_spread, 1.25);
}

// §6.3: COORD within ~5% of the sweep oracle for large caps and ~10% on
// average over all accepted caps on the CPU platform.
TEST(PaperClaims, CoordAccuracyCpu) {
  const auto machine = hw::ivybridge_node();
  double gap_sum = 0.0;
  int gap_count = 0;
  double large_cap_worst = 0.0;
  for (const auto& w : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, w);
    const auto profile = core::profile_critical_powers(node);
    for (double b = 145.0; b <= 265.0; b += 15.0) {
      const auto alloc = core::coord_cpu(profile, Watts{b});
      if (alloc.status == core::CoordStatus::kBudgetTooSmall) continue;
      sim::BudgetSweep sweep;
      sweep.budget = Watts{b};
      sweep.samples = sim::sweep_cpu_split(
          node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{2.0}});
      const double oracle = core::oracle_best(sweep).perf;
      const double coord =
          node.steady_state(alloc.cpu, alloc.mem).perf;
      const double gap = std::max(0.0, 1.0 - coord / oracle);
      gap_sum += gap;
      ++gap_count;
      if (b >= 200.0) large_cap_worst = std::max(large_cap_worst, gap);
    }
  }
  ASSERT_GT(gap_count, 50);
  EXPECT_LT(gap_sum / gap_count, 0.15);  // paper: 9.6% average
  EXPECT_LT(large_cap_worst, 0.08);      // paper: <5% for large caps
}

// §6.3: COORD generally outperforms the memory-first strategy [19] at
// small budgets.
TEST(PaperClaims, CoordBeatsMemoryFirstAtSmallBudgets) {
  const auto machine = hw::ivybridge_node();
  int coord_wins = 0;
  int total = 0;
  for (const auto& w : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, w);
    const auto profile = core::profile_critical_powers(node);
    for (double b : {145.0, 155.0, 165.0}) {
      const auto c = core::coord_cpu(profile, Watts{b});
      if (c.status == core::CoordStatus::kBudgetTooSmall) continue;
      const auto m = core::memory_first(profile, Watts{b});
      const double pc = node.steady_state(c.cpu, c.mem).perf;
      const double pm = node.steady_state(m.cpu, m.mem).perf;
      ++total;
      if (pc >= pm * 0.999) ++coord_wins;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(coord_wins) / total, 0.6);
}

// §6.3: on GPUs COORD lands within a few percent of the oracle.
TEST(PaperClaims, CoordAccuracyGpu) {
  for (const auto& make : {hw::titan_xp, hw::titan_v}) {
    const auto card = make();
    for (const auto& w : workload::gpu_suite()) {
      const sim::GpuNodeSim node(card, w);
      const auto p = core::profile_gpu_params(node);
      for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
        const auto samples = sim::sweep_gpu_split(node, Watts{cap});
        double oracle = 0.0;
        for (const auto& s : samples) oracle = std::max(oracle, s.perf);
        const auto a = core::coord_gpu(p, node.gpu_model(), Watts{cap});
        const double coord =
            node.steady_state(a.mem_clock_index, Watts{cap}).perf;
        EXPECT_GT(coord, 0.89 * oracle)
            << w.name << " on " << card.name << " cap " << cap;
      }
    }
  }
}

// §6.3: COORD outperforms the default Nvidia capping policy by up to ~33%.
TEST(PaperClaims, CoordBeatsDefaultGpuPolicy) {
  double max_gain = 0.0;
  for (const auto& w : workload::gpu_suite()) {
    const sim::GpuNodeSim node(hw::titan_xp(), w);
    const auto p = core::profile_gpu_params(node);
    for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
      const auto a = core::coord_gpu(p, node.gpu_model(), Watts{cap});
      const double coord =
          node.steady_state(a.mem_clock_index, Watts{cap}).perf;
      const double dflt = node.default_policy(Watts{cap}).perf;
      // COORD may lose a few percent on "in between" apps near P_totref
      // (the γ-balance slightly misallocates there); the paper's claim is
      // the headline gain, not strict dominance.
      EXPECT_GT(coord, 0.95 * dflt) << w.name << " cap " << cap;
      max_gain = std::max(max_gain, coord / dflt - 1.0);
    }
  }
  EXPECT_GT(max_gain, 0.20);
  EXPECT_LT(max_gain, 0.50);
}

// §3.1: perf_max grows with the budget and flattens; both CPU platforms
// consume similar power at their maxima, but Haswell wins at small budgets.
TEST(PaperClaims, FrontierShapeAcrossPlatforms) {
  const workload::Workload wl = workload::dgemm();
  const sim::CpuNodeSim ivy(hw::ivybridge_node(), wl);
  const sim::CpuNodeSim has(hw::haswell_node(), wl);
  auto best_at = [](const sim::CpuNodeSim& node, double b) {
    const auto samples = sim::sweep_cpu_split(node, Watts{b}, {});
    double best = 0.0;
    for (const auto& s : samples) best = std::max(best, s.perf);
    return best;
  };
  EXPECT_GT(best_at(has, 140.0), best_at(ivy, 140.0));
  // Flattening: last 40 W of budget adds (almost) nothing.
  EXPECT_NEAR(best_at(ivy, 280.0), best_at(ivy, 240.0),
              0.02 * best_at(ivy, 280.0));
}

// Full-stack determinism: identical runs give identical results.
TEST(PaperClaims, EndToEndDeterminism) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_lu());
  const auto a = sim::sweep_cpu_split(node, Watts{200.0}, {});
  const auto b = sim::sweep_cpu_split(node, Watts{200.0}, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].perf, b[i].perf);
    EXPECT_EQ(a[i].proc_power.value(), b[i].proc_power.value());
  }
}

}  // namespace
}  // namespace pbc
