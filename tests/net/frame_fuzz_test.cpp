// Hostile-input suite for the wire layer: the frame parser and both
// payload decoders must turn ANY byte string into either a parsed value
// or a clean pbc::Status — never a crash, never an overflow, never an
// unbounded allocation. The asan preset runs this suite with
// AddressSanitizer watching every access; the seeds are fixed so a
// failure replays exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "net/json.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

#include "../support/test_env.hpp"
#include "net_test_util.hpp"

namespace pbc {
namespace {

using net_test::random_request;

[[nodiscard]] std::vector<std::uint8_t> random_bytes(Xoshiro256& rng,
                                                     std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// Pure garbage through the frame decoder, fed in random chunk sizes.
// Garbage essentially never spells the "PBCF" magic, so the decoder
// must poison itself on the first header and stay poisoned.
TEST(FrameFuzz, GarbageStreamsFailCleanly) {
  Xoshiro256 rng(96, 1);
  const int iters = test::iters(200);
  for (int i = 0; i < iters; ++i) {
    net::FrameDecoder decoder;
    const auto junk = random_bytes(rng, 16 + rng.below(512));
    std::size_t off = 0;
    bool errored = false;
    while (off < junk.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(64), junk.size() - off);
      decoder.feed(std::span<const std::uint8_t>(junk.data() + off, chunk));
      off += chunk;
      const auto next = decoder.next();
      if (!next.ok()) {
        errored = true;
        break;
      }
    }
    ASSERT_TRUE(errored) << "iteration " << i;
    // Poisoned for good: more bytes cannot resurrect the stream.
    decoder.feed(junk);
    EXPECT_FALSE(decoder.next().ok());
  }
}

// Truncated valid frames are "need more bytes", not errors — byte by
// byte up to the full message, which must then parse.
TEST(FrameFuzz, TruncatedFramesNeverError) {
  Xoshiro256 rng(96, 2);
  const auto req = random_request(svc::QueryKind::kSample, rng, 0);
  const auto framed = net::frame_request(req, net::Codec::kBinary);
  net::FrameDecoder decoder;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    decoder.feed(std::span<const std::uint8_t>(&framed[i], 1));
    const auto next = decoder.next();
    ASSERT_TRUE(next.ok()) << "byte " << i << ": "
                           << next.error().to_string();
    if (i + 1 < framed.size()) {
      EXPECT_FALSE(next.value().has_value()) << "byte " << i;
    } else {
      EXPECT_TRUE(next.value().has_value());
    }
  }
}

// Each way a header can be corrupt: bad magic, bad version, unknown
// codec, reserved flags, oversized length. All reject without reading
// the (absent) payload.
TEST(FrameFuzz, CorruptHeadersRejected) {
  Xoshiro256 rng(96, 3);
  const auto req = random_request(svc::QueryKind::kQueryCpu, rng, 0);
  const auto good = net::frame_request(req, net::Codec::kBinary);

  const auto expect_rejected = [](std::vector<std::uint8_t> frame,
                                  const char* what) {
    net::FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_FALSE(decoder.next().ok()) << what;
  };

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  expect_rejected(std::move(bad_magic), "magic");

  auto bad_version = good;
  bad_version[4] = 0x7f;
  expect_rejected(std::move(bad_version), "version");

  auto bad_codec = good;
  bad_codec[5] = 0x3;
  expect_rejected(std::move(bad_codec), "codec");

  auto bad_flags = good;
  bad_flags[6] = 0x1;
  expect_rejected(std::move(bad_flags), "flags");

  auto oversized = good;
  const std::uint32_t huge = net::kMaxFramePayload + 1;
  std::memcpy(oversized.data() + 8, &huge, sizeof(huge));
  expect_rejected(std::move(oversized), "length");
}

// An oversized-length header must be rejected from the 12 header bytes
// alone — no buffering gigabytes waiting for a payload that will never
// come.
TEST(FrameFuzz, OversizedLengthRejectedFromHeaderAlone) {
  std::vector<std::uint8_t> header;
  net::append_frame_header(header, net::Codec::kBinary, 0xffffffffu);
  net::FrameDecoder decoder;
  decoder.feed(header);
  EXPECT_FALSE(decoder.next().ok());
}

// Random garbage as a binary payload: decode_request / decode_response
// must fail cleanly (or, astronomically unlikely, succeed) on every
// input, under ASan.
TEST(FrameFuzz, BinaryDecodersSurviveGarbage) {
  Xoshiro256 rng(96, 4);
  const int iters = test::iters(2000);
  for (int i = 0; i < iters; ++i) {
    const auto junk = random_bytes(rng, rng.below(300));
    (void)net::decode_request(junk, net::Codec::kBinary);
    (void)net::decode_response(junk, net::Codec::kBinary);
  }
}

// Truncations of a valid payload: every strict prefix must decode to a
// clean error (the reader hits end-of-payload, never past it).
TEST(FrameFuzz, BinaryTruncationsFailCleanly) {
  Xoshiro256 rng(96, 5);
  for (const auto kind :
       {svc::QueryKind::kQueryCpu, svc::QueryKind::kCluster,
        svc::QueryKind::kShift}) {
    const auto req = random_request(kind, rng, 7);
    std::vector<std::uint8_t> payload;
    net::encode_request(req, net::Codec::kBinary, payload);
    // Step 7 keeps the loop fast on the multi-KB cluster payloads while
    // still probing every alignment class.
    for (std::size_t cut = 0; cut < payload.size();
         cut += 1 + rng.below(7)) {
      const auto r = net::decode_request(
          std::span<const std::uint8_t>(payload.data(), cut),
          net::Codec::kBinary);
      EXPECT_FALSE(r.ok()) << to_string(kind) << " cut " << cut;
    }
    // Trailing bytes are rejected too: a payload is exactly one value.
    auto padded = payload;
    padded.push_back(0);
    EXPECT_FALSE(net::decode_request(padded, net::Codec::kBinary).ok());
  }
}

// Single-byte mutations of a valid payload: must never crash; when they
// decode, re-encoding must not grow the payload unboundedly (sanity on
// the length-checked readers).
TEST(FrameFuzz, BinaryMutationsNeverCrash) {
  Xoshiro256 rng(96, 6);
  const auto req = random_request(svc::QueryKind::kReplay, rng, 3);
  std::vector<std::uint8_t> payload;
  net::encode_request(req, net::Codec::kBinary, payload);
  const int iters = test::iters(2000);
  for (int i = 0; i < iters; ++i) {
    auto mutated = payload;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    (void)net::decode_request(mutated, net::Codec::kBinary);
  }
}

// Garbage and pathological documents through the JSON parser and the
// JSON request decoder.
TEST(FrameFuzz, JsonParserSurvivesGarbage) {
  Xoshiro256 rng(96, 7);
  const int iters = test::iters(2000);
  for (int i = 0; i < iters; ++i) {
    const auto junk = random_bytes(rng, rng.below(200));
    const std::string_view text(reinterpret_cast<const char*>(junk.data()),
                                junk.size());
    (void)net::json::parse(text);
    (void)net::decode_request(junk, net::Codec::kJson);
  }
}

// Nesting past the parser's depth cap fails with kInvalidArgument
// instead of exhausting the stack.
TEST(FrameFuzz, JsonDeepNestingRejected) {
  std::string deep(100, '[');
  const auto r = net::json::parse(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);

  std::string deep_obj;
  for (int i = 0; i < 100; ++i) deep_obj += "{\"k\":";
  const auto r2 = net::json::parse(deep_obj);
  EXPECT_FALSE(r2.ok());
}

// Interleaving valid frames with a corrupt one: frames before the
// corruption parse, everything after is dead (connection-drop
// semantics).
TEST(FrameFuzz, CorruptionPoisonsOnlyAfterValidFrames) {
  Xoshiro256 rng(96, 8);
  const auto a = random_request(svc::QueryKind::kQueryCpu, rng, 0);
  const auto b = random_request(svc::QueryKind::kQueryGpu, rng, 1);
  auto stream = net::frame_request(a, net::Codec::kBinary);
  const auto second = net::frame_request(b, net::Codec::kJson);
  stream.insert(stream.end(), second.begin(), second.end());
  stream.push_back(0xde);  // corrupt third header begins
  stream.push_back(0xad);

  net::FrameDecoder decoder;
  decoder.feed(stream);
  auto f1 = decoder.next();
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f1.value().has_value());
  EXPECT_EQ(f1.value()->header.codec, net::Codec::kBinary);
  auto f2 = decoder.next();
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f2.value().has_value());
  EXPECT_EQ(f2.value()->header.codec, net::Codec::kJson);
  // Two junk bytes are not yet a full header; feeding the rest of a
  // fake header surfaces the corruption.
  decoder.feed(std::vector<std::uint8_t>(10, 0xbe));
  EXPECT_FALSE(decoder.next().ok());
}

}  // namespace
}  // namespace pbc
