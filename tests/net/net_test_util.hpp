// Shared randomized-request helpers for the net codec / daemon / diff
// suites: a deterministic generator of svc::Request values across all
// eight query kinds (pure functions of the RNG, so a seeded test replays
// the same requests everywhere), plus the binary-encoding equality
// witness used to compare Responses bit-for-bit without writing a
// field-by-field comparator per result type.
#pragma once

#include <cstdint>
#include <vector>

#include "net/codec.hpp"
#include "svc/request.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

#include "../svc/svc_test_util.hpp"

namespace pbc::net_test {

/// Exact-equality witness: two Responses are bit-identical iff their
/// binary encodings are byte-identical (the codec is injective — every
/// field rides the wire, doubles bit-cast).
[[nodiscard]] inline std::vector<std::uint8_t> response_bytes(
    const svc::Response& resp) {
  std::vector<std::uint8_t> out;
  net::encode_response(resp, net::Codec::kBinary, out);
  return out;
}

[[nodiscard]] inline std::vector<std::uint8_t> request_bytes(
    const svc::Request& req, net::Codec codec) {
  std::vector<std::uint8_t> out;
  net::encode_request(req, codec, out);
  return out;
}

[[nodiscard]] inline svc::CallOptions random_options(Xoshiro256& rng) {
  svc::CallOptions o;
  o.solver_path = rng.below(2) == 0 ? sim::SolverPath::kFast
                                    : sim::SolverPath::kReference;
  o.replay_path = rng.below(2) == 0 ? sim::ReplayPath::kFast
                                    : sim::ReplayPath::kReference;
  switch (rng.below(3)) {
    case 0: o.cluster_path = core::ClusterPath::kFast; break;
    case 1: o.cluster_path = core::ClusterPath::kReference; break;
    default: o.cluster_path = core::ClusterPath::kEvent; break;
  }
  o.seed = rng();
  o.deadline_us = 0;
  o.budget_block = static_cast<std::uint32_t>(8u << rng.below(4));
  return o;
}

[[nodiscard]] inline workload::PhaseTrace short_trace(
    const workload::Workload& wl, Xoshiro256& rng) {
  workload::TraceOptions opt;
  opt.total_units = rng.uniform(4.0, 10.0);
  opt.segment_units = 1.0;
  opt.irregularity = rng.uniform(0.0, 1.0);
  opt.seed = rng();
  return workload::generate_trace(wl, opt);
}

[[nodiscard]] inline svc::QueryCpuOp random_query_cpu_op(Xoshiro256& rng,
                                                         int tag) {
  svc::QueryCpuOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  op.budget = Watts{rng.uniform(90.0, 300.0)};
  op.variant = rng.below(2) == 0 ? core::CpuCoordVariant::kProportional
                                 : core::CpuCoordVariant::kMemoryBiased;
  return op;
}

[[nodiscard]] inline svc::QueryGpuOp random_query_gpu_op(Xoshiro256& rng,
                                                         int tag) {
  svc::QueryGpuOp op;
  op.machine = svc_test::random_gpu_machine(rng);
  op.wl = svc_test::random_gpu_workload(rng, tag);
  op.budget = Watts{rng.uniform(80.0, 260.0)};
  op.gamma = rng.uniform(0.1, 0.9);
  return op;
}

[[nodiscard]] inline svc::SampleOp random_sample_op(Xoshiro256& rng,
                                                    int tag) {
  svc::SampleOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  op.cpu_cap = Watts{rng.uniform(40.0, 160.0)};
  op.mem_cap = Watts{rng.uniform(40.0, 160.0)};
  return op;
}

[[nodiscard]] inline svc::FrontierOp random_frontier_op(Xoshiro256& rng,
                                                        int tag) {
  svc::FrontierOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  const double lo = rng.uniform(110.0, 140.0);
  const std::size_t n = 3 + rng.below(3);
  for (std::size_t i = 0; i < n; ++i) {
    op.budgets.push_back(Watts{lo + 30.0 * static_cast<double>(i)});
  }
  return op;
}

[[nodiscard]] inline svc::ReplayOp random_replay_op(Xoshiro256& rng,
                                                    int tag) {
  svc::ReplayOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  op.trace = short_trace(op.wl, rng);
  op.cpu_cap = Watts{rng.uniform(50.0, 160.0)};
  op.mem_cap = Watts{rng.uniform(50.0, 160.0)};
  return op;
}

[[nodiscard]] inline svc::ShiftOp random_shift_op(Xoshiro256& rng, int tag) {
  svc::ShiftOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  op.trace = short_trace(op.wl, rng);
  op.total_budget = Watts{rng.uniform(130.0, 280.0)};
  op.step = Watts{rng.uniform(2.0, 8.0)};
  op.max_steps_per_segment = static_cast<int>(2 + rng.below(6));
  if (rng.below(3) == 0) op.cpu_min = Watts{rng.uniform(25.0, 45.0)};
  if (rng.below(3) == 0) op.mem_min = Watts{rng.uniform(25.0, 45.0)};
  return op;
}

[[nodiscard]] inline svc::ClusterOp random_cluster_op(Xoshiro256& rng,
                                                      int tag) {
  svc::ClusterOp op;
  op.node_type = svc_test::random_cpu_machine(rng);
  op.nodes = 2 + rng.below(2);
  if (rng.below(2) == 0) {
    op.gpu_type = svc_test::random_gpu_machine(rng);
    op.gpu_nodes = 1;
  }
  const std::size_t jobs = 2 + rng.below(2);
  for (std::size_t j = 0; j < jobs; ++j) {
    core::SimJob job;
    job.name = "job" + std::to_string(tag) + "_" + std::to_string(j);
    job.wl = svc_test::random_cpu_workload(
        rng, tag * 16 + static_cast<int>(j));
    job.arrival = Seconds{rng.uniform(0.0, 2.0)};
    job.work_gunits = rng.uniform(0.5, 2.0);
    op.jobs.push_back(std::move(job));
  }
  op.global_budget = Watts{rng.uniform(350.0, 900.0)};
  op.policy = rng.below(2) == 0 ? core::SplitPolicy::kCoord
                                : core::SplitPolicy::kEvenSplit;
  op.queue_policy = rng.below(2) == 0 ? core::QueuePolicy::kFifo
                                      : core::QueuePolicy::kBackfill;
  op.admission_control = rng.below(2) == 0;
  op.min_grant = Watts{rng.uniform(80.0, 120.0)};
  return op;
}

[[nodiscard]] inline svc::OnlineOp random_online_op(Xoshiro256& rng,
                                                    int tag) {
  svc::OnlineOp op;
  op.machine = svc_test::random_cpu_machine(rng);
  op.wl = svc_test::random_cpu_workload(rng, tag);
  op.trace = short_trace(op.wl, rng);
  op.total_budget = Watts{rng.uniform(130.0, 280.0)};
  op.step = Watts{rng.uniform(2.0, 8.0)};
  op.explore_rate = rng.uniform(0.05, 0.5);
  op.explore_decay = rng.uniform(8.0, 48.0);
  op.explore_floor = rng.uniform(0.0, 0.05);
  op.ema_alpha = rng.uniform(0.1, 0.7);
  op.hysteresis_margin = rng.uniform(0.0, 0.08);
  return op;
}

/// One random request of the given kind (variant index = kind index).
[[nodiscard]] inline svc::Request random_request(svc::QueryKind kind,
                                                 Xoshiro256& rng, int tag) {
  svc::Request req;
  req.id = rng();
  req.options = random_options(rng);
  switch (kind) {
    case svc::QueryKind::kQueryCpu: req.op = random_query_cpu_op(rng, tag); break;
    case svc::QueryKind::kQueryGpu: req.op = random_query_gpu_op(rng, tag); break;
    case svc::QueryKind::kSample: req.op = random_sample_op(rng, tag); break;
    case svc::QueryKind::kFrontier: req.op = random_frontier_op(rng, tag); break;
    case svc::QueryKind::kReplay: req.op = random_replay_op(rng, tag); break;
    case svc::QueryKind::kShift: req.op = random_shift_op(rng, tag); break;
    case svc::QueryKind::kCluster: req.op = random_cluster_op(rng, tag); break;
    default: req.op = random_online_op(rng, tag); break;
  }
  return req;
}

}  // namespace pbc::net_test
