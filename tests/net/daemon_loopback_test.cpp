// End-to-end daemon suite over real loopback TCP: every query kind
// through the full stack (client -> frame -> codec -> admission ->
// router -> QueryEngine::execute -> response), wire answers bit-identical
// to in-process execution, shard-routed identical to single-shard, both
// serving modes, deadline rejection for queued-past-budget requests,
// admission shedding, the /metrics scrape, and connection resilience
// after an error response.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "svc/engine.hpp"
#include "util/rng.hpp"

#include "net_test_util.hpp"

namespace pbc {
namespace {

using net_test::random_request;
using net_test::response_bytes;

constexpr svc::QueryKind kAllKinds[svc::kQueryKindCount] = {
    svc::QueryKind::kQueryCpu, svc::QueryKind::kQueryGpu,
    svc::QueryKind::kSample,   svc::QueryKind::kFrontier,
    svc::QueryKind::kReplay,   svc::QueryKind::kShift,
    svc::QueryKind::kCluster,  svc::QueryKind::kOnline,
};

[[nodiscard]] net::Daemon& started(net::Daemon& d) {
  const auto st = d.start();
  EXPECT_TRUE(st.ok()) << st.to_string();
  return d;
}

// All eight kinds over TCP: the wire answer must be byte-identical to
// executing the same Request on a local engine.
TEST(Daemon, AllKindsOverTcpMatchInProcessExecution) {
  net::Daemon daemon;
  started(daemon);
  auto client = net::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  svc::QueryEngine local;
  Xoshiro256 rng(20260810, 1);
  for (const auto kind : kAllKinds) {
    const auto req = random_request(kind, rng, 0);
    const auto over_wire = client.value().call(req);
    ASSERT_TRUE(over_wire.ok())
        << to_string(kind) << ": " << over_wire.error().to_string();
    const auto in_process = local.execute(req);
    ASSERT_TRUE(in_process.ok());
    EXPECT_EQ(response_bytes(over_wire.value()),
              response_bytes(in_process.value()))
        << to_string(kind);
    EXPECT_EQ(over_wire.value().id, req.id);
  }
}

// The same request set against a 3-shard daemon and a 1-shard daemon:
// consistent-hash routing must be invisible in the answers.
TEST(Daemon, ShardedReproducesSingleShardResults) {
  net::DaemonOptions sharded_opt;
  sharded_opt.shards = 3;
  net::Daemon sharded(sharded_opt);
  net::Daemon single;
  started(sharded);
  started(single);
  auto c_sharded = net::Client::connect("127.0.0.1", sharded.port());
  auto c_single = net::Client::connect("127.0.0.1", single.port());
  ASSERT_TRUE(c_sharded.ok());
  ASSERT_TRUE(c_single.ok());

  Xoshiro256 rng(20260810, 2);
  std::vector<svc::Request> requests;
  for (const auto kind : kAllKinds) {
    requests.push_back(random_request(kind, rng, 1));
  }
  // Repeat a few: the second pass hits shard caches on both daemons.
  requests.push_back(requests[0]);
  requests.push_back(requests[3]);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto a = c_sharded.value().call(requests[i]);
    const auto b = c_single.value().call(requests[i]);
    ASSERT_TRUE(a.ok()) << i << ": " << a.error().to_string();
    ASSERT_TRUE(b.ok()) << i << ": " << b.error().to_string();
    EXPECT_EQ(response_bytes(a.value()), response_bytes(b.value()))
        << "request " << i;
  }
}

// JSON debug codec returns the same values as binary.
TEST(Daemon, JsonCodecMatchesBinary) {
  net::Daemon daemon;
  started(daemon);
  auto bin = net::Client::connect("127.0.0.1", daemon.port(),
                                  net::Codec::kBinary);
  auto json = net::Client::connect("127.0.0.1", daemon.port(),
                                   net::Codec::kJson);
  ASSERT_TRUE(bin.ok());
  ASSERT_TRUE(json.ok());
  Xoshiro256 rng(20260810, 3);
  for (const auto kind :
       {svc::QueryKind::kQueryCpu, svc::QueryKind::kSample,
        svc::QueryKind::kOnline}) {
    const auto req = random_request(kind, rng, 2);
    const auto a = bin.value().call(req);
    const auto b = json.value().call(req);
    ASSERT_TRUE(a.ok()) << a.error().to_string();
    ASSERT_TRUE(b.ok()) << b.error().to_string();
    EXPECT_EQ(response_bytes(a.value()), response_bytes(b.value()))
        << to_string(kind);
  }
}

// Thread-per-connection fallback serves the same protocol.
TEST(Daemon, ThreadPerConnectionModeServes) {
  net::DaemonOptions opt;
  opt.use_epoll = false;
  net::Daemon daemon(opt);
  started(daemon);
  auto client = net::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  svc::QueryEngine local;
  Xoshiro256 rng(20260810, 4);
  const auto req = random_request(svc::QueryKind::kQueryCpu, rng, 5);
  const auto got = client.value().call(req);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  const auto want = local.execute(req);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(response_bytes(got.value()), response_bytes(want.value()));
}

// Deadline semantics: the budget clock starts when the frame's bytes
// arrive. Two requests written in ONE TCP send share an arrival
// timestamp; the first (a cold frontier sweep, milliseconds of compute)
// eats the second's 1us budget in the queue, so the second must be
// rejected with kDeadlineExceeded before compute.
TEST(Daemon, DeadlineExpiredInQueueIsRejected) {
  net::Daemon daemon;
  started(daemon);

  Xoshiro256 rng(20260810, 5);
  auto slow = random_request(svc::QueryKind::kFrontier, rng, 6);
  // Widen the sweep so the cold compute is comfortably slower than the
  // second request's budget.
  auto& frontier = std::get<svc::FrontierOp>(slow.op);
  frontier.budgets.clear();
  for (int i = 0; i < 24; ++i) {
    frontier.budgets.push_back(Watts{110.0 + 6.0 * i});
  }
  slow.id = 1;
  auto quick = random_request(svc::QueryKind::kQueryCpu, rng, 7);
  quick.id = 2;
  quick.options.deadline_us = 1;

  auto batch = net::frame_request(slow, net::Codec::kBinary);
  const auto second = net::frame_request(quick, net::Codec::kBinary);
  batch.insert(batch.end(), second.begin(), second.end());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, batch.data(), batch.size(), 0),
            static_cast<ssize_t>(batch.size()));

  net::FrameDecoder decoder;
  std::vector<net::Frame> frames;
  std::uint8_t buf[65536];
  while (frames.size() < 2) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.feed(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    while (true) {
      auto next = decoder.next();
      ASSERT_TRUE(next.ok()) << next.error().to_string();
      if (!next.value().has_value()) break;
      frames.push_back(std::move(*next.value()));
    }
  }
  ::close(fd);

  const auto first =
      net::decode_response(frames[0].payload, frames[0].header.codec);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_EQ(first.value().id, 1u);

  std::uint64_t error_id = 0;
  const auto rejected = net::decode_response(
      frames[1].payload, frames[1].header.codec, &error_id);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(error_id, 2u);

  // The rejection is observable in the daemon's counters too.
  const auto metrics = daemon.metrics_payload();
  EXPECT_NE(metrics.find("pbc_net_deadline_rejected_total 1"),
            std::string::npos);
}

// A generous deadline on an idle connection is NOT rejected.
TEST(Daemon, GenerousDeadlinePasses) {
  net::Daemon daemon;
  started(daemon);
  auto client = net::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  Xoshiro256 rng(20260810, 6);
  auto req = random_request(svc::QueryKind::kQueryCpu, rng, 8);
  req.options.deadline_us = 30'000'000;
  const auto resp = client.value().call(req);
  EXPECT_TRUE(resp.ok()) << resp.error().to_string();
}

// With the admission ceiling turned down to a few req/s, a burst is
// shed with kUnavailable — and every client still gets its fair first
// token (new clients start with a full burst).
TEST(Daemon, AdmissionShedsBurstsFairly) {
  net::DaemonOptions opt;
  opt.admission.max_rate = 5.0;
  opt.admission.min_rate = 1.0;
  net::Daemon daemon(opt);
  started(daemon);

  Xoshiro256 rng(20260810, 7);
  const auto req = random_request(svc::QueryKind::kQueryCpu, rng, 9);
  int accepted[2] = {0, 0};
  int shed[2] = {0, 0};
  net::Client clients[2];
  for (int c = 0; c < 2; ++c) {
    auto conn = net::Client::connect("127.0.0.1", daemon.port());
    ASSERT_TRUE(conn.ok());
    clients[c] = std::move(conn.value());
  }
  for (int i = 0; i < 20; ++i) {
    for (int c = 0; c < 2; ++c) {
      const auto resp = clients[c].call(req);
      if (resp.ok()) {
        ++accepted[c];
      } else {
        ASSERT_EQ(resp.error().code, ErrorCode::kUnavailable)
            << resp.error().to_string();
        ++shed[c];
      }
    }
  }
  for (int c = 0; c < 2; ++c) {
    EXPECT_GE(accepted[c], 1) << "client " << c;
    EXPECT_GE(shed[c], 10) << "client " << c;
  }
  const auto metrics = daemon.metrics_payload();
  EXPECT_NE(metrics.find("pbc_net_shed_total"), std::string::npos);
}

// /metrics over plain HTTP: engine and daemon metric families are both
// in the payload a Prometheus collector would scrape.
TEST(Daemon, MetricsEndpointServesPrometheus) {
  net::Daemon daemon;
  started(daemon);
  auto client = net::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  Xoshiro256 rng(20260810, 8);
  const auto resp =
      client.value().call(random_request(svc::QueryKind::kQueryCpu, rng, 10));
  ASSERT_TRUE(resp.ok());

  const auto body = net::scrape_metrics("127.0.0.1", daemon.port());
  ASSERT_TRUE(body.ok()) << body.error().to_string();
  EXPECT_NE(body.value().find("pbc_net_requests_total 1"),
            std::string::npos);
  EXPECT_NE(body.value().find("pbc_net_responses_total 1"),
            std::string::npos);
  EXPECT_NE(body.value().find("pbc_svc_query_latency_us"),
            std::string::npos);
  EXPECT_NE(body.value().find("# TYPE pbc_net_admission_rate gauge"),
            std::string::npos);
}

// An invalid request draws a clean error response and leaves the
// connection usable for the next request.
TEST(Daemon, ValidationErrorDoesNotPoisonConnection) {
  net::Daemon daemon;
  started(daemon);
  auto client = net::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());

  Xoshiro256 rng(20260810, 9);
  auto bad = random_request(svc::QueryKind::kFrontier, rng, 11);
  std::get<svc::FrontierOp>(bad.op).budgets.clear();
  const auto rejected = client.value().call(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kInvalidArgument);

  const auto good =
      client.value().call(random_request(svc::QueryKind::kQueryCpu, rng, 12));
  EXPECT_TRUE(good.ok()) << good.error().to_string();
}

}  // namespace
}  // namespace pbc
