// Unit suites for the daemon's two policy components: the
// consistent-hash shard router (stability, coverage, low disruption on
// resize) and the admission controller (AIMD stepping, per-client
// fairness on a synthetic clock, idle expiry) plus the windowed-p99
// tracker that feeds it.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <vector>

#include "net/admission.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace pbc {
namespace {

using namespace std::chrono_literals;

TEST(NetRouter, SameKeyAlwaysSameShard) {
  net::ShardRouter router(4);
  Xoshiro256 rng(1, 1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng();
    const std::size_t shard = router.route(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(router.route(key), shard);
  }
}

TEST(NetRouter, EveryShardGetsTraffic) {
  const std::size_t shards = 8;
  net::ShardRouter router(shards);
  std::vector<std::size_t> hits(shards, 0);
  Xoshiro256 rng(2, 1);
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) ++hits[router.route(rng())];
  for (std::size_t s = 0; s < shards; ++s) {
    // With 64 vnodes/shard the load imbalance is modest; the hard
    // requirement is coverage, the soft one a sane spread.
    EXPECT_GT(hits[s], static_cast<std::size_t>(keys) / shards / 4)
        << "shard " << s;
  }
}

TEST(NetRouter, SingleShardRoutesEverythingToZero) {
  net::ShardRouter router(1);
  Xoshiro256 rng(3, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(router.route(rng()), 0u);
}

// Consistent hashing's point: growing the fleet remaps only ~1/(n+1) of
// the keyspace. A modulo router would remap ~n/(n+1).
TEST(NetRouter, ResizeMovesFewKeys) {
  net::ShardRouter before(4);
  net::ShardRouter after(5);
  Xoshiro256 rng(4, 1);
  const int keys = 20000;
  int moved = 0;
  for (int i = 0; i < keys; ++i) {
    const std::uint64_t key = rng();
    if (before.route(key) != after.route(key)) ++moved;
  }
  EXPECT_LT(static_cast<double>(moved) / keys, 0.40);
  EXPECT_GT(moved, 0);
}

TEST(NetAdmission, AimdStepsRateDownOnBreachUpWhenHealthy) {
  net::AdmissionOptions opt;
  opt.target_p99_us = 1000.0;
  opt.max_rate = 1000.0;
  opt.min_rate = 10.0;
  opt.decrease = 0.5;
  opt.increase_frac = 0.1;
  net::AdmissionController ctl(opt);
  EXPECT_DOUBLE_EQ(ctl.rate(), 1000.0);

  ctl.report_p99(5000.0);  // breach: halve
  EXPECT_DOUBLE_EQ(ctl.rate(), 500.0);
  ctl.report_p99(5000.0);
  EXPECT_DOUBLE_EQ(ctl.rate(), 250.0);
  for (int i = 0; i < 20; ++i) ctl.report_p99(5000.0);
  EXPECT_DOUBLE_EQ(ctl.rate(), 10.0);  // clamped at the floor

  ctl.report_p99(100.0);  // healthy: +10% of max
  EXPECT_DOUBLE_EQ(ctl.rate(), 110.0);
  for (int i = 0; i < 200; ++i) ctl.report_p99(100.0);
  EXPECT_DOUBLE_EQ(ctl.rate(), 1000.0);  // clamped at the ceiling
}

// Two clients offering wildly asymmetric load on a synthetic clock get
// accept counts within 10% of each other — the fair-split contract.
TEST(NetAdmission, FairSplitUnderAsymmetricOverload) {
  net::AdmissionOptions opt;
  opt.max_rate = 100.0;  // rate starts here: 50/s per client
  opt.burst_s = 0.05;
  net::AdmissionController ctl(opt);

  const auto t0 = net::AdmissionController::Clock::time_point{} + 1h;
  int accepted_a = 0;
  int accepted_b = 0;
  // 10 simulated seconds in 1ms ticks. A offers 10 requests per tick
  // (10k/s), B offers 1 per tick (1k/s) — both far over their 50/s fair
  // share, A 10x more aggressive.
  for (int ms = 0; ms < 10000; ++ms) {
    const auto now = t0 + std::chrono::milliseconds(ms);
    for (int k = 0; k < 10; ++k) {
      if (ctl.try_admit(1, now)) ++accepted_a;
    }
    if (ctl.try_admit(2, now)) ++accepted_b;
  }
  ASSERT_GT(accepted_a, 0);
  ASSERT_GT(accepted_b, 0);
  const double ratio = std::abs(accepted_a - accepted_b) /
                       static_cast<double>(std::max(accepted_a, accepted_b));
  EXPECT_LT(ratio, 0.10) << "A=" << accepted_a << " B=" << accepted_b;
  // And both are near the 50/s fair share over 10s = ~500.
  EXPECT_NEAR(accepted_a, 500, 100);
  EXPECT_NEAR(accepted_b, 500, 100);
}

TEST(NetAdmission, IdleClientStopsCountingTowardTheSplit) {
  net::AdmissionOptions opt;
  opt.max_rate = 100.0;
  opt.client_expiry_s = 1.0;
  net::AdmissionController ctl(opt);

  const auto t0 = net::AdmissionController::Clock::time_point{} + 1h;
  // Both clients active: fair share is 50/s each.
  (void)ctl.try_admit(1, t0);
  (void)ctl.try_admit(2, t0);
  // Client 2 goes silent; client 1 keeps asking. After the expiry window
  // client 1's refill rate doubles to the full 100/s.
  int accepted_before = 0;
  for (int ms = 1; ms <= 1000; ++ms) {
    if (ctl.try_admit(1, t0 + std::chrono::milliseconds(ms))) {
      ++accepted_before;
    }
  }
  int accepted_after = 0;
  for (int ms = 2001; ms <= 3000; ++ms) {
    if (ctl.try_admit(1, t0 + std::chrono::milliseconds(ms))) {
      ++accepted_after;
    }
  }
  // ~50 accepts in the shared second vs ~100 once client 2 expired.
  EXPECT_GT(accepted_after, accepted_before + 20);
}

TEST(NetAdmission, ForgetClientFreesItsShare) {
  net::AdmissionOptions opt;
  opt.max_rate = 100.0;
  net::AdmissionController ctl(opt);
  const auto t0 = net::AdmissionController::Clock::time_point{} + 1h;
  (void)ctl.try_admit(1, t0);
  (void)ctl.try_admit(2, t0);
  ctl.forget_client(2);
  int accepted = 0;
  for (int ms = 1; ms <= 1000; ++ms) {
    if (ctl.try_admit(1, t0 + std::chrono::milliseconds(ms))) ++accepted;
  }
  EXPECT_GT(accepted, 70);  // full rate, not the half share
}

TEST(NetDeltaP99, TracksWindowNotAllTime) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram(
      "pbc_svc_query_latency_us", "test latencies",
      {10.0, 100.0, 1000.0, 10000.0}, {{"kind", "query_cpu"}});
  net::DeltaP99Tracker tracker;

  // Window 1: all observations fast (<=10us bucket).
  for (int i = 0; i < 1000; ++i) h.observe(5.0);
  const double p1 = tracker.update(registry.snapshot());
  EXPECT_LE(p1, 10.0);
  EXPECT_GT(p1, 0.0);

  // Window 2: all slow. The all-time p99 would still sit in a fast
  // bucket (1000 fast vs 100 slow); the windowed p99 must not.
  for (int i = 0; i < 100; ++i) h.observe(5000.0);
  const double p2 = tracker.update(registry.snapshot());
  EXPECT_GT(p2, 1000.0);

  // Window 3: no traffic at all -> 0 (no stale signal).
  EXPECT_EQ(tracker.update(registry.snapshot()), 0.0);
}

TEST(NetDeltaP99, IgnoresOtherMetrics) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("pbc_other_latency_us", "unrelated",
                               {10.0, 100.0}, {});
  for (int i = 0; i < 50; ++i) h.observe(90.0);
  net::DeltaP99Tracker tracker;
  EXPECT_EQ(tracker.update(registry.snapshot()), 0.0);
}

}  // namespace
}  // namespace pbc
