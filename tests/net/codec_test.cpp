// Codec round-trip suite: every query kind, both codecs, requests and
// responses. The binary codec must be byte-stable (encode(decode(x)) ==
// x's bytes) and the JSON debug codec must be value-exact (a request
// that round-trips through JSON re-encodes to the same binary bytes as
// the original — %.17g doubles and u64-as-string make that lossless).
// Golden structural checks pin the wire layout so accidental format
// drift fails loudly instead of silently breaking cross-version peers.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "net/codec.hpp"
#include "net/json.hpp"
#include "net/wire.hpp"
#include "svc/engine.hpp"
#include "util/rng.hpp"

#include "net_test_util.hpp"

namespace pbc {
namespace {

using net_test::random_request;
using net_test::request_bytes;
using net_test::response_bytes;

constexpr svc::QueryKind kAllKinds[svc::kQueryKindCount] = {
    svc::QueryKind::kQueryCpu, svc::QueryKind::kQueryGpu,
    svc::QueryKind::kSample,   svc::QueryKind::kFrontier,
    svc::QueryKind::kReplay,   svc::QueryKind::kShift,
    svc::QueryKind::kCluster,  svc::QueryKind::kOnline,
};

// Binary request round-trip, all kinds: decode(encode(req)) re-encodes
// to the identical byte string, several randomized instances per kind.
TEST(CodecRoundTrip, BinaryRequestsAllKinds) {
  Xoshiro256 rng(20260809, 1);
  for (const auto kind : kAllKinds) {
    for (int i = 0; i < 8; ++i) {
      const auto req = random_request(kind, rng, i);
      const auto bytes = request_bytes(req, net::Codec::kBinary);
      const auto decoded = net::decode_request(bytes, net::Codec::kBinary);
      ASSERT_TRUE(decoded.ok())
          << to_string(kind) << ": " << decoded.error().to_string();
      EXPECT_EQ(request_kind(decoded.value()), kind);
      EXPECT_EQ(request_bytes(decoded.value(), net::Codec::kBinary), bytes)
          << to_string(kind) << " case " << i;
    }
  }
}

// JSON request round-trip, all kinds: the JSON text must decode back to
// a request whose *binary* encoding matches the original's — i.e. the
// debug codec loses nothing, doubles and u64s included.
TEST(CodecRoundTrip, JsonRequestsAllKinds) {
  Xoshiro256 rng(20260809, 2);
  for (const auto kind : kAllKinds) {
    for (int i = 0; i < 8; ++i) {
      const auto req = random_request(kind, rng, i);
      const auto text = request_bytes(req, net::Codec::kJson);
      const auto decoded = net::decode_request(text, net::Codec::kJson);
      ASSERT_TRUE(decoded.ok())
          << to_string(kind) << ": " << decoded.error().to_string();
      EXPECT_EQ(request_bytes(decoded.value(), net::Codec::kBinary),
                request_bytes(req, net::Codec::kBinary))
          << to_string(kind) << " case " << i;
    }
  }
}

// Response round-trip, all kinds, both codecs. Responses come from real
// engine executions so every result struct is exercised with live field
// values (including the doubles that interpolation produces).
TEST(CodecRoundTrip, ResponsesAllKindsBothCodecs) {
  Xoshiro256 rng(20260809, 3);
  svc::QueryEngine engine;
  for (const auto kind : kAllKinds) {
    const auto req = random_request(kind, rng, 99);
    const auto executed = engine.execute(req);
    ASSERT_TRUE(executed.ok())
        << to_string(kind) << ": " << executed.error().to_string();
    const svc::Response& resp = executed.value();
    EXPECT_EQ(response_kind(resp), kind);

    const auto bin = response_bytes(resp);
    const auto bin_decoded = net::decode_response(bin, net::Codec::kBinary);
    ASSERT_TRUE(bin_decoded.ok()) << bin_decoded.error().to_string();
    EXPECT_EQ(response_bytes(bin_decoded.value()), bin) << to_string(kind);
    EXPECT_EQ(bin_decoded.value().id, req.id);

    std::vector<std::uint8_t> text;
    net::encode_response(resp, net::Codec::kJson, text);
    const auto json_decoded = net::decode_response(text, net::Codec::kJson);
    ASSERT_TRUE(json_decoded.ok()) << json_decoded.error().to_string();
    EXPECT_EQ(response_bytes(json_decoded.value()), bin) << to_string(kind);
  }
}

// Error responses carry (id, code, message) through both codecs and
// surface as the carried Error on decode.
TEST(CodecRoundTrip, ErrorResponsesBothCodecs) {
  const Error err = deadline_exceeded("queued 7ms past a 5ms budget");
  for (const auto codec : {net::Codec::kBinary, net::Codec::kJson}) {
    std::vector<std::uint8_t> out;
    net::encode_error_response(42, err, codec, out);
    std::uint64_t id = 0;
    const auto decoded = net::decode_response(out, codec, &id);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(id, 42u);
    EXPECT_EQ(decoded.error().code, ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(decoded.error().message, "queued 7ms past a 5ms budget");
  }
}

// Golden binary layout: the request payload opens with the id (u64 LE)
// followed by CallOptions in canonical order (solver u8, replay u8,
// cluster u8, seed u64, deadline u64, budget_block u32) and the kind
// tag. Pinning the prefix catches accidental field reordering.
TEST(CodecGolden, BinaryRequestPrefixLayout) {
  svc::Request req;
  req.id = 0x1122334455667788ULL;
  req.options.solver_path = sim::SolverPath::kReference;
  req.options.replay_path = sim::ReplayPath::kFast;
  req.options.cluster_path = core::ClusterPath::kEvent;
  req.options.seed = 7;
  req.options.deadline_us = 5000;
  req.options.budget_block = 32;
  req.op = svc::QueryCpuOp{hw::ivybridge_node(),
                           workload::cpu_suite().front(), Watts{208.0},
                           core::CpuCoordVariant::kProportional};
  const auto bytes = request_bytes(req, net::Codec::kBinary);
  ASSERT_GE(bytes.size(), 32u);
  const std::vector<std::uint8_t> want_prefix = {
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // id LE
      0x01,                                            // solver: reference
      0x00,                                            // replay: fast
      0x02,                                            // cluster: event
      0x07, 0, 0, 0, 0, 0, 0, 0,                       // seed
      0x88, 0x13, 0, 0, 0, 0, 0, 0,                    // deadline 5000
      0x20, 0, 0, 0,                                   // budget_block 32
      0x00,                                            // kind: query_cpu
  };
  EXPECT_EQ(std::vector<std::uint8_t>(
                bytes.begin(),
                bytes.begin() + static_cast<long>(want_prefix.size())),
            want_prefix);
}

// Golden JSON shape: field names, enum spellings, and the
// u64-as-decimal-string convention are part of the wire contract.
TEST(CodecGolden, JsonRequestShape) {
  svc::Request req;
  req.id = 18446744073709551615ULL;  // 2^64-1 must survive as a string
  req.options.seed = 9007199254740993ULL;  // 2^53+1: not double-exact
  req.op = svc::QueryCpuOp{hw::ivybridge_node(),
                           workload::cpu_suite().front(), Watts{208.0},
                           core::CpuCoordVariant::kProportional};
  const auto text = request_bytes(req, net::Codec::kJson);
  const auto parsed = net::json::parse(std::string_view(
      reinterpret_cast<const char*>(text.data()), text.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const net::json::Value& root = parsed.value();

  const auto* id = root.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->as_string(), "18446744073709551615");

  const auto* kind = root.find("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->as_string(), "query_cpu");

  const auto* options = root.find("options");
  ASSERT_NE(options, nullptr);
  // Nested enums ride as their numeric byte; only the top-level kind and
  // error code are spelled as names.
  EXPECT_EQ(options->find("solver_path")->as_number(), 0.0);
  EXPECT_EQ(options->find("seed")->as_string(), "9007199254740993");

  const auto* op = root.find("op");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->find("budget")->as_number(), 208.0);
  ASSERT_NE(op->find("machine"), nullptr);
  ASSERT_NE(op->find("wl"), nullptr);
}

// Non-finite doubles ride JSON as strings and return bit-exact.
TEST(CodecRoundTrip, JsonNonFiniteDoubles) {
  svc::Request req;
  req.id = 1;
  svc::QueryCpuOp op;
  op.machine = hw::ivybridge_node();
  op.wl = workload::cpu_suite().front();
  op.budget = Watts{std::numeric_limits<double>::infinity()};
  op.variant = core::CpuCoordVariant::kProportional;
  req.op = op;
  const auto text = request_bytes(req, net::Codec::kJson);
  const auto decoded = net::decode_request(text, net::Codec::kJson);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(request_bytes(decoded.value(), net::Codec::kBinary),
            request_bytes(req, net::Codec::kBinary));
}

// A frame wraps the payload verbatim: frame_request == header + payload,
// and the decoder returns exactly the payload bytes.
TEST(CodecRoundTrip, FramedRequestCarriesPayloadVerbatim) {
  Xoshiro256 rng(20260809, 4);
  const auto req = random_request(svc::QueryKind::kQueryGpu, rng, 0);
  const auto framed = net::frame_request(req, net::Codec::kBinary);
  const auto payload = request_bytes(req, net::Codec::kBinary);
  ASSERT_EQ(framed.size(), net::kFrameHeaderSize + payload.size());

  net::FrameDecoder decoder;
  decoder.feed(framed);
  auto next = decoder.next();
  ASSERT_TRUE(next.ok()) << next.error().to_string();
  ASSERT_TRUE(next.value().has_value());
  EXPECT_EQ(next.value()->header.codec, net::Codec::kBinary);
  EXPECT_EQ(next.value()->payload, payload);
  auto drained = decoder.next();
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained.value().has_value());
}

}  // namespace
}  // namespace pbc
