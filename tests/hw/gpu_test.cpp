#include "hw/gpu.hpp"

#include <gtest/gtest.h>

namespace pbc::hw {
namespace {

GpuSpec small_spec() {
  GpuSpec spec;
  spec.name = "test-gpu";
  spec.sm_min_mhz = 600.0;
  spec.sm_max_mhz = 1800.0;
  spec.sm_steps = 7;
  spec.sm_idle = Watts{10.0};
  spec.sm_max_dyn = Watts{100.0};
  spec.peak_gflops = 6000.0;
  spec.mem_clocks_mhz = {2000.0, 3000.0, 4000.0};
  spec.bw_per_mhz = 0.1;
  spec.mem_idle = Watts{5.0};
  spec.mem_w_per_mhz = 0.005;
  spec.mem_dyn_w_per_gbps = 0.05;
  spec.other_power = Watts{8.0};
  spec.board_min_cap = Watts{80.0};
  spec.board_default_cap = Watts{150.0};
  spec.board_max_cap = Watts{200.0};
  return spec;
}

TEST(GpuSpec, ValidatesGoodSpec) { EXPECT_TRUE(small_spec().validate().ok()); }

TEST(GpuSpec, RejectsBadSmRange) {
  auto spec = small_spec();
  spec.sm_max_mhz = spec.sm_min_mhz;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(GpuSpec, RejectsSingleMemClock) {
  auto spec = small_spec();
  spec.mem_clocks_mhz = {2000.0};
  EXPECT_FALSE(spec.validate().ok());
}

TEST(GpuSpec, RejectsNonAscendingMemClocks) {
  auto spec = small_spec();
  spec.mem_clocks_mhz = {3000.0, 2000.0, 4000.0};
  EXPECT_FALSE(spec.validate().ok());
}

TEST(GpuSpec, RejectsInconsistentCapRange) {
  auto spec = small_spec();
  spec.board_default_cap = Watts{500.0};
  EXPECT_FALSE(spec.validate().ok());
}

TEST(GpuSpec, ClockAccessors) {
  const auto spec = small_spec();
  EXPECT_DOUBLE_EQ(spec.nominal_mem_clock(), 4000.0);
  EXPECT_DOUBLE_EQ(spec.min_mem_clock(), 2000.0);
}

TEST(GpuModel, SmClockSpansRange) {
  const GpuModel model(small_spec());
  EXPECT_DOUBLE_EQ(model.sm_clock_mhz(0), 600.0);
  EXPECT_DOUBLE_EQ(model.sm_clock_mhz(6), 1800.0);
  EXPECT_DOUBLE_EQ(model.sm_clock_mhz(3), 1200.0);
}

TEST(GpuModel, StepForClock) {
  const GpuModel model(small_spec());
  EXPECT_EQ(model.step_for_clock(600.0), 0u);
  EXPECT_EQ(model.step_for_clock(601.0), 1u);
  EXPECT_EQ(model.step_for_clock(1800.0), 6u);
  EXPECT_EQ(model.step_for_clock(99999.0), 6u);
}

TEST(GpuModel, SmPowerMonotoneInStepAndUtil) {
  const GpuModel model(small_spec());
  double prev = 0.0;
  for (std::size_t s = 0; s < model.sm_step_count(); ++s) {
    const double p = model.sm_power(s, 0.8).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_LT(model.sm_power(3, 0.2), model.sm_power(3, 0.9));
}

TEST(GpuModel, SmPowerCubicInRelativeClock) {
  const GpuModel model(small_spec());
  // Step 3 is exactly 2/3 of max clock: dyn term scales by (2/3)^3.
  const double expected = 10.0 + 100.0 * 1.0 * (2.0 / 3.0) * (2.0 / 3.0) *
                                     (2.0 / 3.0);
  EXPECT_NEAR(model.sm_power(3, 1.0).value(), expected, 1e-9);
}

TEST(GpuModel, MemBandwidthTracksClock) {
  const GpuModel model(small_spec());
  EXPECT_DOUBLE_EQ(model.mem_bandwidth(0).value(), 200.0);
  EXPECT_DOUBLE_EQ(model.mem_bandwidth(2).value(), 400.0);
}

TEST(GpuModel, MemPowerMonotoneInClockAndBw) {
  const GpuModel model(small_spec());
  EXPECT_LT(model.mem_power(0, GBps{100.0}), model.mem_power(2, GBps{100.0}));
  EXPECT_LT(model.mem_power(1, GBps{50.0}), model.mem_power(1, GBps{200.0}));
}

TEST(GpuModel, MemPowerClampsBwToClockLimit) {
  const GpuModel model(small_spec());
  EXPECT_EQ(model.mem_power(0, GBps{1000.0}), model.mem_power(0, GBps{200.0}));
}

TEST(GpuModel, EstimatedMemPowerIsFullUtilization) {
  const GpuModel model(small_spec());
  for (std::size_t i = 0; i < model.mem_clock_count(); ++i) {
    EXPECT_EQ(model.estimated_mem_power(i),
              model.mem_power(i, model.mem_bandwidth(i)));
  }
}

TEST(GpuModel, EstimatedMemPowerMonotone) {
  const GpuModel model(small_spec());
  for (std::size_t i = 1; i < model.mem_clock_count(); ++i) {
    EXPECT_GT(model.estimated_mem_power(i), model.estimated_mem_power(i - 1));
  }
}

TEST(GpuModel, ComputeCapacityScalesWithClock) {
  const GpuModel model(small_spec());
  EXPECT_DOUBLE_EQ(model.compute_capacity(6).value(), 6000.0);
  EXPECT_NEAR(model.compute_capacity(3).value(), 6000.0 * 1200.0 / 1800.0,
              1e-9);
}

TEST(GpuModel, BoardPowerSumsDomains) {
  const GpuModel model(small_spec());
  const GpuOperatingPoint op{4, 1};
  const double total = model.board_power(op, 0.7, GBps{150.0}).value();
  const double parts = model.sm_power(4, 0.7).value() +
                       model.mem_power(1, GBps{150.0}).value() + 8.0;
  EXPECT_DOUBLE_EQ(total, parts);
}

TEST(GpuModel, OutOfRangeIndicesClamped) {
  const GpuModel model(small_spec());
  EXPECT_EQ(model.mem_bandwidth(99), model.mem_bandwidth(2));
  EXPECT_DOUBLE_EQ(model.sm_clock_mhz(99), 1800.0);
}

}  // namespace
}  // namespace pbc::hw
