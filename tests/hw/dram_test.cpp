#include "hw/dram.hpp"

#include <gtest/gtest.h>

namespace pbc::hw {
namespace {

DramSpec small_spec() {
  DramSpec spec;
  spec.name = "test-dram";
  spec.capacity_gb = 64.0;
  spec.background_w_per_gb = 0.25;  // 16 W background
  spec.dyn_w_per_gbps = 0.5;
  spec.peak_bw = GBps{40.0};
  spec.min_bw = GBps{2.0};
  spec.throttle_levels = 20;
  spec.floor = Watts{16.0};
  return spec;
}

TEST(DramSpec, ValidatesGoodSpec) { EXPECT_TRUE(small_spec().validate().ok()); }

TEST(DramSpec, RejectsBadBandwidthOrdering) {
  auto spec = small_spec();
  spec.min_bw = GBps{50.0};
  EXPECT_FALSE(spec.validate().ok());
}

TEST(DramSpec, RejectsTooFewThrottleLevels) {
  auto spec = small_spec();
  spec.throttle_levels = 1;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(DramSpec, RejectsNegativeCapacity) {
  auto spec = small_spec();
  spec.capacity_gb = -1.0;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(DramSpec, BackgroundPowerScalesWithCapacity) {
  auto spec = small_spec();
  EXPECT_DOUBLE_EQ(spec.background_power().value(), 16.0);
  spec.capacity_gb = 128.0;
  EXPECT_DOUBLE_EQ(spec.background_power().value(), 32.0);
}

TEST(DramModel, PowerIsBackgroundPlusDynamic) {
  const DramModel model(small_spec());
  EXPECT_DOUBLE_EQ(model.power(GBps{10.0}).value(), 16.0 + 5.0);
}

TEST(DramModel, PowerMonotoneInBandwidth) {
  const DramModel model(small_spec());
  double prev = 0.0;
  for (double bw = 0.0; bw <= 40.0; bw += 5.0) {
    const double p = model.power(GBps{bw}).value();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(DramModel, PowerClampsAtPeakBandwidth) {
  const DramModel model(small_spec());
  EXPECT_EQ(model.power(GBps{500.0}), model.power(GBps{40.0}));
}

TEST(DramModel, PowerNeverBelowFloor) {
  const DramModel model(small_spec());
  EXPECT_GE(model.power(GBps{0.0}), model.spec().floor);
}

TEST(DramModel, BwBudgetInvertsPower) {
  const DramModel model(small_spec());
  // Cap of 26 W leaves 10 W of dynamic headroom => 20 GB/s.
  EXPECT_DOUBLE_EQ(model.bw_budget_for_cap(Watts{26.0}).value(), 20.0);
}

TEST(DramModel, BwBudgetClampsToRange) {
  const DramModel model(small_spec());
  EXPECT_EQ(model.bw_budget_for_cap(Watts{1000.0}), model.spec().peak_bw);
  EXPECT_EQ(model.bw_budget_for_cap(Watts{0.0}), model.spec().min_bw);
}

TEST(DramModel, CapsBelowFloorTreatedAsFloor) {
  const DramModel model(small_spec());
  EXPECT_EQ(model.bw_budget_for_cap(Watts{1.0}),
            model.bw_budget_for_cap(Watts{16.0}));
}

TEST(DramModel, QuantizeRoundsDown) {
  const DramModel model(small_spec());
  // Levels are evenly spaced: step = 38/19 = 2 GB/s, states at 2,4,...,40.
  EXPECT_DOUBLE_EQ(model.quantize_throttle(GBps{5.9}).value(), 4.0);
  EXPECT_DOUBLE_EQ(model.quantize_throttle(GBps{6.0}).value(), 6.0);
}

TEST(DramModel, QuantizeClampsToRange) {
  const DramModel model(small_spec());
  EXPECT_EQ(model.quantize_throttle(GBps{0.1}), model.spec().min_bw);
  EXPECT_EQ(model.quantize_throttle(GBps{99.0}), model.spec().peak_bw);
}

TEST(DramModel, MaxPowerAtPeakBandwidth) {
  const DramModel model(small_spec());
  EXPECT_DOUBLE_EQ(model.max_power().value(), 16.0 + 0.5 * 40.0);
}

}  // namespace
}  // namespace pbc::hw
