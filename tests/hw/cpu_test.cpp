#include "hw/cpu.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"

namespace pbc::hw {
namespace {

CpuSpec small_spec() {
  CpuSpec spec;
  spec.name = "test-cpu";
  spec.sockets = 1;
  spec.cores_per_socket = 4;
  spec.pstates = linear_vf_ladder(Gigahertz{1.0}, Gigahertz{2.0}, 0.7, 1.0, 6);
  spec.flops_per_cycle = 4.0;
  spec.uncore_power = Watts{10.0};
  spec.floor = Watts{12.0};
  return spec;
}

TEST(LinearVfLadder, ProducesAscendingPoints) {
  const auto ladder =
      linear_vf_ladder(Gigahertz{1.2}, Gigahertz{2.5}, 0.7, 1.0, 14);
  ASSERT_EQ(ladder.size(), 14u);
  EXPECT_DOUBLE_EQ(ladder.front().frequency.value(), 1.2);
  EXPECT_DOUBLE_EQ(ladder.back().frequency.value(), 2.5);
  EXPECT_DOUBLE_EQ(ladder.front().voltage, 0.7);
  EXPECT_DOUBLE_EQ(ladder.back().voltage, 1.0);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].frequency, ladder[i - 1].frequency);
    EXPECT_GE(ladder[i].voltage, ladder[i - 1].voltage);
  }
}

TEST(CpuSpec, ValidatesGoodSpec) {
  EXPECT_TRUE(small_spec().validate().ok());
}

TEST(CpuSpec, RejectsEmptyPstates) {
  auto spec = small_spec();
  spec.pstates.clear();
  EXPECT_FALSE(spec.validate().ok());
}

TEST(CpuSpec, RejectsNonAscendingPstates) {
  auto spec = small_spec();
  std::swap(spec.pstates[0], spec.pstates[1]);
  EXPECT_FALSE(spec.validate().ok());
}

TEST(CpuSpec, RejectsNonPositiveCores) {
  auto spec = small_spec();
  spec.cores_per_socket = 0;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(CpuSpec, RejectsBadTstateLevels) {
  auto spec = small_spec();
  spec.tstate_levels = 0;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(CpuSpec, RejectsNegativeCoefficients) {
  auto spec = small_spec();
  spec.dyn_coeff_w_per_ghz_v2 = -1.0;
  EXPECT_FALSE(spec.validate().ok());
}

TEST(CpuSpec, DerivedQuantities) {
  const auto spec = small_spec();
  EXPECT_EQ(spec.total_cores(), 4);
  EXPECT_DOUBLE_EQ(spec.min_duty(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(spec.f_min().value(), 1.0);
  EXPECT_DOUBLE_EQ(spec.f_max().value(), 2.0);
}

TEST(CpuModel, PowerIncreasesWithPstate) {
  const CpuModel model(small_spec());
  double prev = 0.0;
  for (std::size_t i = 0; i < model.pstate_count(); ++i) {
    const double p = model.package_power({i, 1.0, false}, 0.8).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(CpuModel, PowerIncreasesWithActivity) {
  const CpuModel model(small_spec());
  const CpuOperatingPoint op{3, 1.0, false};
  EXPECT_LT(model.package_power(op, 0.2), model.package_power(op, 0.9));
}

TEST(CpuModel, PowerIncreasesWithDuty) {
  const CpuModel model(small_spec());
  EXPECT_LT(model.package_power({0, 0.25, false}, 0.8),
            model.package_power({0, 1.0, false}, 0.8));
}

TEST(CpuModel, PowerNeverBelowFloor) {
  const CpuModel model(small_spec());
  EXPECT_GE(model.package_power({0, 1.0 / 8.0, false}, 0.0),
            model.spec().floor);
  EXPECT_EQ(model.package_power({0, 1.0, true}, 0.9), model.spec().floor);
}

TEST(CpuModel, CapacityScalesWithFrequencyAndDuty) {
  const CpuModel model(small_spec());
  const double full =
      model.compute_capacity({model.pstate_count() - 1, 1.0, false}).value();
  EXPECT_DOUBLE_EQ(full, 4 * 4.0 * 2.0);  // cores × flops/cyc × GHz
  const double half_duty =
      model.compute_capacity({model.pstate_count() - 1, 0.5, false}).value();
  EXPECT_DOUBLE_EQ(half_duty, full / 2.0);
}

TEST(CpuModel, SleepingCapacityIsTiny) {
  const CpuModel model(small_spec());
  const double sleeping = model.compute_capacity({0, 1.0, true}).value();
  const double awake = model.compute_capacity({0, 1.0, false}).value();
  EXPECT_LT(sleeping, awake * 0.05);
  EXPECT_GT(sleeping, 0.0);
}

TEST(CpuModel, CriticalPowerHelpersAreOrdered) {
  const CpuModel model(small_spec());
  const double act = 0.8;
  EXPECT_GT(model.max_power(act), model.lowest_pstate_power(act));
  EXPECT_GT(model.lowest_pstate_power(act), model.deepest_tstate_power(act));
  EXPECT_GE(model.deepest_tstate_power(act), model.spec().floor);
}

TEST(CpuModel, OutOfRangePstateIndexIsClamped) {
  const CpuModel model(small_spec());
  EXPECT_EQ(model.package_power({999, 1.0, false}, 0.5),
            model.package_power({model.pstate_count() - 1, 1.0, false}, 0.5));
}

}  // namespace
}  // namespace pbc::hw
