#include "hw/platforms.hpp"

#include <gtest/gtest.h>

namespace pbc::hw {
namespace {

TEST(Platforms, IvyBridgeMatchesPaperTable2) {
  const CpuMachine m = ivybridge_node();
  EXPECT_TRUE(m.cpu.validate().ok());
  EXPECT_TRUE(m.dram.validate().ok());
  EXPECT_EQ(m.cpu.total_cores(), 20);
  EXPECT_DOUBLE_EQ(m.cpu.f_min().value(), 1.2);
  EXPECT_DOUBLE_EQ(m.cpu.f_max().value(), 2.5);
  EXPECT_DOUBLE_EQ(m.dram.capacity_gb, 256.0);
  // Paper: 48 W CPU hardware floor, ~68 W DRAM floor on this node.
  EXPECT_DOUBLE_EQ(m.cpu.floor.value(), 48.0);
  EXPECT_NEAR(m.dram.floor.value(), 68.0, 1.0);
}

TEST(Platforms, HaswellMatchesPaperTable2) {
  const CpuMachine m = haswell_node();
  EXPECT_TRUE(m.cpu.validate().ok());
  EXPECT_TRUE(m.dram.validate().ok());
  EXPECT_EQ(m.cpu.total_cores(), 24);
  EXPECT_DOUBLE_EQ(m.cpu.f_max().value(), 2.3);
}

TEST(Platforms, Ddr4BackgroundBelowDdr3) {
  // The paper attributes Haswell's small-budget advantage to DDR4's lower
  // (refresh) power and higher bandwidth.
  const CpuMachine ivy = ivybridge_node();
  const CpuMachine has = haswell_node();
  EXPECT_LT(has.dram.background_power(), ivy.dram.background_power());
  EXPECT_GT(has.dram.peak_bw, ivy.dram.peak_bw);
}

TEST(Platforms, CpuNodePeakAndFloorOrdering) {
  for (const CpuMachine& m : {ivybridge_node(), haswell_node()}) {
    EXPECT_GT(m.peak_power(), m.floor_power()) << m.name;
    EXPECT_GT(m.floor_power().value(), 0.0) << m.name;
  }
}

TEST(Platforms, TitanXpMatchesPaperSpec) {
  const GpuMachine m = titan_xp();
  EXPECT_TRUE(m.gpu.validate().ok());
  // Paper §6.1: 250 W default cap, settable up to 300 W.
  EXPECT_DOUBLE_EQ(m.gpu.board_default_cap.value(), 250.0);
  EXPECT_DOUBLE_EQ(m.gpu.board_max_cap.value(), 300.0);
}

TEST(Platforms, TitanVMatchesPaperSpec) {
  const GpuMachine m = titan_v();
  EXPECT_TRUE(m.gpu.validate().ok());
  EXPECT_DOUBLE_EQ(m.gpu.board_default_cap.value(), 250.0);
}

TEST(Platforms, TitanVMemoryRangeNarrowerThanXp) {
  // Paper: "Titan V has a smaller total and DRAM power range than Titan XP"
  // thanks to HBM2.
  const GpuModel xp{titan_xp().gpu};
  const GpuModel v{titan_v().gpu};
  const double xp_range = xp.estimated_mem_power(xp.mem_clock_count() - 1)
                              .value() -
                          xp.estimated_mem_power(0).value();
  const double v_range =
      v.estimated_mem_power(v.mem_clock_count() - 1).value() -
      v.estimated_mem_power(0).value();
  EXPECT_LT(v_range, xp_range);
  EXPECT_LT(v.estimated_mem_power(v.mem_clock_count() - 1),
            xp.estimated_mem_power(xp.mem_clock_count() - 1));
}

TEST(Platforms, TitanVSmsMoreEfficient) {
  const GpuMachine xp = titan_xp();
  const GpuMachine v = titan_v();
  EXPECT_LT(v.gpu.sm_max_dyn, xp.gpu.sm_max_dyn);
  EXPECT_GT(v.gpu.peak_gflops, xp.gpu.peak_gflops);
}

TEST(Platforms, PairingClockWithinSmRange) {
  for (const GpuMachine& m : {titan_xp(), titan_v()}) {
    EXPECT_GE(m.gpu.sm_pairing_min_mhz, m.gpu.sm_min_mhz) << m.name;
    EXPECT_LT(m.gpu.sm_pairing_min_mhz, m.gpu.sm_max_mhz) << m.name;
  }
}

}  // namespace
}  // namespace pbc::hw
