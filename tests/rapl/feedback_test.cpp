#include "rapl/feedback.hpp"

#include <gtest/gtest.h>

namespace pbc::rapl {
namespace {

TEST(Feedback, FirstObservationInitializesAverage) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.05});
  EXPECT_DOUBLE_EQ(ctrl.average().value(), 0.0);
  ctrl.observe(Watts{100.0});
  EXPECT_DOUBLE_EQ(ctrl.average().value(), 100.0);
}

TEST(Feedback, AverageConvergesToConstantInput) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.02});
  ctrl.observe(Watts{0.0});
  for (int i = 0; i < 500; ++i) ctrl.observe(Watts{80.0});
  EXPECT_NEAR(ctrl.average().value(), 80.0, 0.1);
}

TEST(Feedback, WindowControlsSmoothingSpeed) {
  FeedbackController fast(Seconds{0.001}, Seconds{0.005});
  FeedbackController slow(Seconds{0.001}, Seconds{0.5});
  fast.observe(Watts{0.0});
  slow.observe(Watts{0.0});
  for (int i = 0; i < 20; ++i) {
    fast.observe(Watts{100.0});
    slow.observe(Watts{100.0});
  }
  EXPECT_GT(fast.average().value(), slow.average().value());
}

TEST(Feedback, DecideStepsDownWhenOverCap) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.001});
  ctrl.observe(Watts{150.0});
  EXPECT_EQ(ctrl.decide(Watts{100.0}, Watts{140.0}), StepDecision::kDown);
}

TEST(Feedback, DecideStepsUpWhenPredictionFits) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.001});
  ctrl.observe(Watts{60.0});
  EXPECT_EQ(ctrl.decide(Watts{100.0}, Watts{90.0}), StepDecision::kUp);
}

TEST(Feedback, DecideHoldsWhenUpWouldOvershoot) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.001});
  ctrl.observe(Watts{60.0});
  EXPECT_EQ(ctrl.decide(Watts{100.0}, Watts{120.0}), StepDecision::kHold);
}

TEST(Feedback, ResetClearsState) {
  FeedbackController ctrl(Seconds{0.001}, Seconds{0.05});
  ctrl.observe(Watts{100.0});
  ctrl.reset();
  EXPECT_DOUBLE_EQ(ctrl.average().value(), 0.0);
  ctrl.observe(Watts{10.0});
  EXPECT_DOUBLE_EQ(ctrl.average().value(), 10.0);
}

TEST(Feedback, TickLargerThanWindowClampsAlpha) {
  FeedbackController ctrl(Seconds{1.0}, Seconds{0.01});
  ctrl.observe(Watts{50.0});
  ctrl.observe(Watts{90.0});
  EXPECT_DOUBLE_EQ(ctrl.average().value(), 90.0);  // alpha clamped to 1
}

}  // namespace
}  // namespace pbc::rapl
