#include "rapl/msr.hpp"

#include <gtest/gtest.h>

namespace pbc::rapl {
namespace {

TEST(RaplUnits, DefaultLsbsMatchIntelEncoding) {
  const RaplUnits u;
  EXPECT_DOUBLE_EQ(u.power_lsb(), 0.125);
  EXPECT_DOUBLE_EQ(u.energy_lsb(), 1.0 / 65536.0);
  EXPECT_DOUBLE_EQ(u.time_lsb(), 1.0 / 1024.0);
}

TEST(PowerLimit, EncodeDecodeRoundTripsToQuantum) {
  const RaplUnits u;
  PowerLimit pl;
  pl.enabled = true;
  pl.limit = Watts{208.0};  // multiple of 1/8 W: exact
  pl.window = Seconds{0.046};
  const auto raw = encode_power_limit(pl, u);
  const auto back = decode_power_limit(raw, u);
  EXPECT_TRUE(back.enabled);
  EXPECT_DOUBLE_EQ(back.limit.value(), 208.0);
  EXPECT_LE(back.window.value(), 0.046 + 1e-12);
  EXPECT_GT(back.window.value(), 0.02);
}

TEST(PowerLimit, NonMultipleQuantizesDown) {
  const RaplUnits u;
  PowerLimit pl;
  pl.limit = Watts{100.07};
  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_DOUBLE_EQ(back.limit.value(), 100.0);
}

TEST(PowerLimit, EnableBitIndependent) {
  const RaplUnits u;
  PowerLimit pl;
  pl.limit = Watts{50.0};
  pl.enabled = false;
  EXPECT_FALSE(decode_power_limit(encode_power_limit(pl, u), u).enabled);
  pl.enabled = true;
  EXPECT_TRUE(decode_power_limit(encode_power_limit(pl, u), u).enabled);
}

TEST(PowerLimit, SaturatesAtFieldMaximum) {
  const RaplUnits u;
  PowerLimit pl;
  pl.limit = Watts{1e9};
  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_DOUBLE_EQ(back.limit.value(), 32767.0 * 0.125);
}

TEST(PowerLimit, WindowEncodingNeverExceedsRequest) {
  const RaplUnits u;
  for (double w : {0.001, 0.01, 0.046, 0.1, 1.0, 10.0}) {
    PowerLimit pl;
    pl.limit = Watts{100.0};
    pl.window = Seconds{w};
    const auto back = decode_power_limit(encode_power_limit(pl, u), u);
    EXPECT_LE(back.window.value(), w + 1e-12) << "request " << w;
    EXPECT_GE(back.window.value(), u.time_lsb());
  }
}

TEST(RaplMsr, SetAndReadBackLimit) {
  RaplMsr msr;
  PowerLimit pl;
  pl.enabled = true;
  pl.limit = Watts{120.0};
  ASSERT_TRUE(msr.set_power_limit(Domain::kPackage, pl).ok());
  EXPECT_DOUBLE_EQ(msr.power_limit(Domain::kPackage).limit.value(), 120.0);
  // Domains are independent.
  EXPECT_DOUBLE_EQ(msr.power_limit(Domain::kDram).limit.value(), 0.0);
}

TEST(RaplMsr, RejectsNonPositiveLimit) {
  RaplMsr msr;
  PowerLimit pl;
  pl.limit = Watts{0.0};
  EXPECT_FALSE(msr.set_power_limit(Domain::kPackage, pl).ok());
  pl.limit = Watts{10.0};
  pl.window = Seconds{-1.0};
  EXPECT_FALSE(msr.set_power_limit(Domain::kPackage, pl).ok());
}

TEST(RaplMsr, EnergyAccumulates) {
  RaplMsr msr;
  const auto before = msr.energy_status(Domain::kPackage);
  msr.accumulate_energy(Domain::kPackage, Joules{2.0});
  const auto after = msr.energy_status(Domain::kPackage);
  EXPECT_EQ(after - before, 2u * 65536u);
}

TEST(RaplMsr, FractionalEnergyCarriesOver) {
  RaplMsr msr;
  // Half an energy unit twice must tick the counter once.
  const double half_unit = 0.5 / 65536.0;
  msr.accumulate_energy(Domain::kDram, Joules{half_unit});
  EXPECT_EQ(msr.energy_status(Domain::kDram), 0u);
  msr.accumulate_energy(Domain::kDram, Joules{half_unit});
  EXPECT_EQ(msr.energy_status(Domain::kDram), 1u);
}

TEST(RaplMsr, EnergyDeltaHandlesWrap) {
  RaplMsr msr;
  const std::uint32_t before = 0xffffff00u;
  const std::uint32_t after = 0x00000100u;
  const Joules d = msr.energy_delta(before, after);
  EXPECT_NEAR(d.value(), (0x100u + 0x100u) / 65536.0, 1e-9);
}

TEST(RaplMsr, EnergyDeltaNoWrap) {
  RaplMsr msr;
  EXPECT_NEAR(msr.energy_delta(1000, 66536).value(), 65536.0 / 65536.0, 1e-9);
}

TEST(RaplMsr, IgnoresNonPositiveEnergy) {
  RaplMsr msr;
  msr.accumulate_energy(Domain::kPackage, Joules{-5.0});
  EXPECT_EQ(msr.energy_status(Domain::kPackage), 0u);
}

TEST(RaplDomain, ToString) {
  EXPECT_STREQ(to_string(Domain::kPackage), "PKG");
  EXPECT_STREQ(to_string(Domain::kDram), "DRAM");
}

}  // namespace
}  // namespace pbc::rapl
