#include "rapl/ladder.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"

namespace pbc::rapl {
namespace {

hw::CpuSpec spec() { return hw::ivybridge_node().cpu; }

TEST(NotchLadder, CountIsPstatesPlusTstates) {
  const auto s = spec();
  const NotchLadder ladder(s);
  EXPECT_EQ(ladder.count(),
            s.pstates.size() + static_cast<std::size_t>(s.tstate_levels - 1));
}

TEST(NotchLadder, TopNotchIsTopPstate) {
  const auto s = spec();
  const NotchLadder ladder(s);
  const auto op = ladder.op(ladder.count() - 1);
  EXPECT_EQ(op.pstate_index, s.pstates.size() - 1);
  EXPECT_DOUBLE_EQ(op.duty, 1.0);
  EXPECT_FALSE(op.sleeping);
}

TEST(NotchLadder, BottomNotchIsDeepestTstate) {
  const auto s = spec();
  const NotchLadder ladder(s);
  const auto op = ladder.op(0);
  EXPECT_EQ(op.pstate_index, 0u);
  EXPECT_DOUBLE_EQ(op.duty, 1.0 / s.tstate_levels);
}

TEST(NotchLadder, FirstPstateNotchBoundary) {
  const auto s = spec();
  const NotchLadder ladder(s);
  const std::size_t boundary = ladder.first_pstate_notch();
  EXPECT_TRUE(ladder.is_tstate(boundary - 1));
  EXPECT_FALSE(ladder.is_tstate(boundary));
  const auto below = ladder.op(boundary - 1);
  const auto at = ladder.op(boundary);
  EXPECT_EQ(below.pstate_index, 0u);
  EXPECT_LT(below.duty, 1.0);
  EXPECT_EQ(at.pstate_index, 0u);
  EXPECT_DOUBLE_EQ(at.duty, 1.0);
}

TEST(NotchLadder, PowerMonotoneAlongLadder) {
  // Walking up the ladder must never decrease package power: that ordering
  // is what lets the governor scan for the shallowest fitting state.
  const auto s = spec();
  const hw::CpuModel model(s);
  const NotchLadder ladder(s);
  double prev = 0.0;
  for (std::size_t n = 0; n < ladder.count(); ++n) {
    const double p = model.package_power(ladder.op(n), 0.8).value();
    EXPECT_GE(p, prev - 1e-9) << "notch " << n;
    prev = p;
  }
}

TEST(NotchLadder, CapacityMonotoneAlongLadder) {
  const auto s = spec();
  const hw::CpuModel model(s);
  const NotchLadder ladder(s);
  double prev = 0.0;
  for (std::size_t n = 0; n < ladder.count(); ++n) {
    const double c = model.compute_capacity(ladder.op(n)).value();
    EXPECT_GE(c, prev - 1e-9) << "notch " << n;
    prev = c;
  }
}

TEST(NotchLadder, OutOfRangeNotchClamped) {
  const auto s = spec();
  const NotchLadder ladder(s);
  const auto op = ladder.op(10000);
  EXPECT_EQ(op.pstate_index, s.pstates.size() - 1);
}

}  // namespace
}  // namespace pbc::rapl
