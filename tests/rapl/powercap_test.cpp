#include "rapl/powercap.hpp"

#include <gtest/gtest.h>

namespace pbc::rapl {
namespace {

class PowercapTest : public ::testing::Test {
 protected:
  RaplMsr msr_;
  PowercapFs fs_{&msr_};
};

TEST_F(PowercapTest, ListsBothDomains) {
  const auto paths = fs_.list();
  EXPECT_EQ(paths.size(), 14u);
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      "intel-rapl:0/constraint_0_power_limit_uw"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "intel-rapl:0:0/energy_uj"),
            paths.end());
}

TEST_F(PowercapTest, DomainNames) {
  EXPECT_EQ(fs_.read("intel-rapl:0/name").value(), "package-0");
  EXPECT_EQ(fs_.read("intel-rapl:0:0/name").value(), "dram");
}

TEST_F(PowercapTest, WriteAndReadBackPowerLimit) {
  ASSERT_TRUE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "120000000")
          .ok());
  EXPECT_EQ(fs_.read("intel-rapl:0/constraint_0_power_limit_uw").value(),
            "120000000");
  EXPECT_DOUBLE_EQ(fs_.power_limit(Domain::kPackage).value(), 120.0);
}

TEST_F(PowercapTest, LimitQuantizedToRegisterUnits) {
  // 100.07 W quantizes down to 100.0 W (1/8 W power units).
  ASSERT_TRUE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "100070000")
          .ok());
  EXPECT_EQ(fs_.read("intel-rapl:0/constraint_0_power_limit_uw").value(),
            "100000000");
}

TEST_F(PowercapTest, TimeWindowRequiresLimitFirst) {
  EXPECT_FALSE(
      fs_.write("intel-rapl:0/constraint_0_time_window_us", "46000").ok());
  ASSERT_TRUE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "100000000")
          .ok());
  EXPECT_TRUE(
      fs_.write("intel-rapl:0/constraint_0_time_window_us", "46000").ok());
  // Window reads back ≤ request (hardware rounds down).
  const auto us =
      std::stoull(fs_.read("intel-rapl:0/constraint_0_time_window_us")
                      .value());
  EXPECT_LE(us, 46000u);
  EXPECT_GT(us, 10000u);
}

TEST_F(PowercapTest, EnabledToggles) {
  EXPECT_EQ(fs_.read("intel-rapl:0:0/enabled").value(), "0");
  ASSERT_TRUE(fs_.write("intel-rapl:0:0/enabled", "1").ok());
  EXPECT_EQ(fs_.read("intel-rapl:0:0/enabled").value(), "1");
  EXPECT_FALSE(fs_.write("intel-rapl:0:0/enabled", "yes").ok());
}

TEST_F(PowercapTest, EnergyCounterTracksMsr) {
  msr_.accumulate_energy(Domain::kPackage, Joules{3.5});
  const auto uj = std::stoull(fs_.read("intel-rapl:0/energy_uj").value());
  EXPECT_NEAR(static_cast<double>(uj), 3.5e6, 20.0);
}

TEST_F(PowercapTest, MaxEnergyRange) {
  const auto range =
      std::stoull(fs_.read("intel-rapl:0/max_energy_range_uj").value());
  // 2^32 counts × (1/2^16) J × 1e6 µJ/J = 65536e6.
  EXPECT_EQ(range, 65536000000ull);
}

TEST_F(PowercapTest, ReadOnlyFilesRejectWrites) {
  EXPECT_FALSE(fs_.write("intel-rapl:0/name", "x").ok());
  EXPECT_FALSE(fs_.write("intel-rapl:0/energy_uj", "0").ok());
  EXPECT_FALSE(fs_.write("intel-rapl:0/constraint_0_name", "x").ok());
}

TEST_F(PowercapTest, RejectsMalformedValues) {
  EXPECT_FALSE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "12e6").ok());
  EXPECT_FALSE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "-5").ok());
  EXPECT_FALSE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "").ok());
}

TEST_F(PowercapTest, UnknownPathsAreNotFound) {
  EXPECT_FALSE(fs_.read("intel-rapl:1/name").ok());
  EXPECT_FALSE(fs_.read("intel-rapl:0/bogus").ok());
  EXPECT_FALSE(fs_.read("no-slash").ok());
  EXPECT_FALSE(fs_.write("intel-rapl:0/bogus", "1").ok());
}

TEST_F(PowercapTest, DomainsAreIndependent) {
  ASSERT_TRUE(
      fs_.write("intel-rapl:0/constraint_0_power_limit_uw", "150000000")
          .ok());
  ASSERT_TRUE(
      fs_.write("intel-rapl:0:0/constraint_0_power_limit_uw", "90000000")
          .ok());
  EXPECT_DOUBLE_EQ(fs_.power_limit(Domain::kPackage).value(), 150.0);
  EXPECT_DOUBLE_EQ(fs_.power_limit(Domain::kDram).value(), 90.0);
}

}  // namespace
}  // namespace pbc::rapl
