// Deterministic fuzzing of the online controller and the checked error
// paths around it. Every case is a pure function of its seed, so a
// failure reproduces exactly from the logged seed. Iteration counts
// honor PBC_TEST_ITERS (tests/support/test_env.hpp) for slow sanitizer
// boxes; the defaults push well past a thousand distinct
// (machine, workload, trace, budget) cases through the controller.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "../support/test_env.hpp"
#include "../svc/svc_test_util.hpp"
#include "core/cluster_sim.hpp"
#include "core/dynamic.hpp"
#include "ctrl/closed_loop.hpp"
#include "ctrl/controller.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace pbc {
namespace {

struct PreparedPair {
  hw::CpuMachine machine;
  std::shared_ptr<const sim::PhaseNodeSet> nodes;
};

/// A fixed pool of randomized (machine, workload) pairs shared by every
/// fuzz case — table preparation dominates a PhaseNodeSet build, so the
/// thousand-case sweeps cycle over prepared pairs instead of rebuilding.
const std::vector<PreparedPair>& pairs() {
  static const std::vector<PreparedPair> p = [] {
    std::vector<PreparedPair> out;
    for (int t = 0; t < 12; ++t) {
      Xoshiro256 rng(0xC0FFEE, static_cast<std::uint64_t>(t));
      PreparedPair pp;
      pp.machine = svc_test::random_cpu_machine(rng);
      pp.nodes = std::make_shared<sim::PhaseNodeSet>(
          pp.machine, svc_test::random_cpu_workload(rng, t));
      out.push_back(std::move(pp));
    }
    return out;
  }();
  return p;
}

workload::PhaseTrace random_trace(const workload::Workload& wl,
                                  std::uint64_t seed, Xoshiro256& rng) {
  workload::TraceOptions opt;
  opt.total_units = rng.uniform(25.0, 60.0);
  opt.segment_units = rng.uniform(0.5, 2.0);
  opt.irregularity = rng.uniform(0.0, 1.0);
  opt.seed = seed;
  return workload::generate_trace(wl, opt);
}

TEST(CtrlFuzz, ControllerInvariantsOnRandomTracesMatchShifter) {
  const int cases = test::iters(1200);
  const double steps[] = {2.0, 4.0, 8.0};
  for (int i = 0; i < cases; ++i) {
    const auto& pp = pairs()[static_cast<std::size_t>(i) % pairs().size()];
    Xoshiro256 rng(0xFACE, static_cast<std::uint64_t>(i));
    const auto trace =
        random_trace(pp.nodes->wl(), 9000 + static_cast<std::uint64_t>(i),
                     rng);

    ctrl::ControllerConfig cfg;
    cfg.step = Watts{steps[rng.below(3)]};
    cfg.seed = static_cast<std::uint64_t>(i);
    const auto [cpu_min, mem_min] =
        ctrl::controller_floors(cfg, pp.machine);
    const double floors = cpu_min.value() + mem_min.value();
    // Mostly feasible budgets, with an infeasible tail exercising the
    // tolerated degrade path (pin at cpu_min, like the shifter's clamp).
    const Watts budget{floors + rng.uniform(-10.0, 120.0)};
    const bool feasible = budget.value() >= floors;

    const auto run =
        ctrl::run_closed_loop(*pp.nodes, trace, budget, cfg);
    ASSERT_EQ(run.stats.observations, run.caps.size()) << "case " << i;
    for (const auto& c : run.caps) {
      ASSERT_DOUBLE_EQ(c.cpu_cap.value() + c.mem_cap.value(),
                       budget.value())
          << "case " << i;
      ASSERT_GE(c.cpu_cap.value(), cpu_min.value() - 1e-9) << "case " << i;
      if (feasible) {
        ASSERT_GE(c.mem_cap.value(), mem_min.value() - 1e-9)
            << "case " << i;
      }
    }
    ASSERT_TRUE(std::isfinite(run.replay.total_time.value()))
        << "case " << i;
    ASSERT_GE(run.replay.total_time.value(), 0.0) << "case " << i;

    // Every 4th feasible case: the offline shifter on the identical
    // (nodes, trace, budget, step, floors) must obey the identical
    // budget/floor invariants — the two engines share one feasible band.
    if (feasible && i % 4 == 0) {
      core::ShiftingConfig scfg;
      scfg.step = cfg.step;
      scfg.cpu_min = cpu_min;
      scfg.mem_min = mem_min;
      const auto shifted =
          core::replay_with_shifting(*pp.nodes, trace, budget, scfg);
      for (const auto& c : shifted.caps) {
        ASSERT_LE(c.cpu_cap.value() + c.mem_cap.value(),
                  budget.value() + 1e-9)
            << "case " << i;
        ASSERT_GE(c.cpu_cap.value(), cpu_min.value() - 1e-9)
            << "case " << i;
        ASSERT_GE(c.mem_cap.value(), mem_min.value() - 1e-9)
            << "case " << i;
      }
      ASSERT_EQ(shifted.caps.size(), run.caps.size()) << "case " << i;
    }
  }
}

TEST(CtrlFuzz, FloorsAgreeWithShifterOnRandomMachines) {
  const int cases = test::iters(300);
  for (int i = 0; i < cases; ++i) {
    Xoshiro256 rng(0xF100D5, static_cast<std::uint64_t>(i));
    const hw::CpuMachine m = svc_test::random_cpu_machine(rng);
    ctrl::ControllerConfig ccfg;
    core::ShiftingConfig scfg;
    if (rng.below(2) == 0) {
      const Watts c{rng.uniform(30.0, 90.0)};
      ccfg.cpu_min = c;
      scfg.cpu_min = c;
    }
    if (rng.below(2) == 0) {
      const Watts mm{rng.uniform(40.0, 100.0)};
      ccfg.mem_min = mm;
      scfg.mem_min = mm;
    }
    const auto online = ctrl::controller_floors(ccfg, m);
    const auto offline = core::shifting_floors(scfg, m);
    ASSERT_DOUBLE_EQ(online.first.value(), offline.first.value())
        << "case " << i;
    ASSERT_DOUBLE_EQ(online.second.value(), offline.second.value())
        << "case " << i;
  }
}

// The checked closed loop and the checked shifter expose one error
// vocabulary: the same malformed input yields the same ErrorCode from
// both, so svc callers can switch engines without re-mapping errors.
TEST(CtrlFuzz, CheckedErrorCodesMatchShifterOnMalformedInput) {
  const int cases = test::iters(300);
  for (int i = 0; i < cases; ++i) {
    const auto& pp = pairs()[static_cast<std::size_t>(i) % pairs().size()];
    Xoshiro256 rng(0xBAD, static_cast<std::uint64_t>(i));
    auto trace =
        random_trace(pp.nodes->wl(), 7000 + static_cast<std::uint64_t>(i),
                     rng);
    ASSERT_FALSE(trace.empty());
    Watts budget{200.0};
    ErrorCode expected = ErrorCode::kOk;
    switch (i % 3) {
      case 0:
        trace[rng.below(trace.size())].phase_index =
            pp.nodes->phase_count() + rng.below(5);
        expected = ErrorCode::kOutOfRange;
        break;
      case 1:
        trace[rng.below(trace.size())].work_units = -rng.uniform(0.0, 3.0);
        expected = ErrorCode::kInvalidArgument;
        break;
      default:
        budget = Watts{rng.uniform(0.0, 40.0)};  // below any floor pair
        expected = ErrorCode::kFailedPrecondition;
        break;
    }
    const auto online =
        ctrl::run_closed_loop_checked(*pp.nodes, trace, budget, {});
    const auto offline =
        core::replay_with_shifting_checked(*pp.nodes, trace, budget, {});
    ASSERT_FALSE(online.ok()) << "case " << i;
    ASSERT_FALSE(offline.ok()) << "case " << i;
    ASSERT_EQ(online.status().code(), expected)
        << "case " << i << ": " << online.status().to_string();
    ASSERT_EQ(offline.status().code(), expected)
        << "case " << i << ": " << offline.status().to_string();
  }
}

TEST(CtrlFuzz, ObserveCheckedRejectsRandomBadTelemetry) {
  const auto machine = hw::ivybridge_node();
  const int cases = test::iters(200);
  auto made =
      ctrl::OnlineController::make_checked(machine, Watts{180.0}, {});
  ASSERT_TRUE(made.ok());
  ctrl::OnlineController& c = made.value();
  const double bads[] = {-1.0, std::nan(""),
                         std::numeric_limits<double>::infinity()};
  for (int i = 0; i < cases; ++i) {
    Xoshiro256 r(0x7E1E, static_cast<std::uint64_t>(i));
    ctrl::Observation o;
    o.work_units = r.uniform(0.5, 2.0);
    o.rate_gunits = r.uniform(0.1, 5.0);
    o.proc_power = Watts{r.uniform(40.0, 120.0)};
    o.mem_power = Watts{r.uniform(40.0, 100.0)};
    o.achieved_bw = GBps{r.uniform(1.0, 40.0)};
    const double bad = bads[r.below(3)];
    switch (r.below(5)) {
      case 0: o.work_units = bad; break;
      case 1: o.rate_gunits = bad; break;
      case 2: o.proc_power = Watts{bad}; break;
      case 3: o.mem_power = Watts{bad}; break;
      default: o.achieved_bw = GBps{bad}; break;
    }
    const auto before = c.stats().observations;
    ASSERT_EQ(c.observe_checked(o).code(), ErrorCode::kInvalidArgument)
        << "case " << i;
    ASSERT_EQ(c.stats().observations, before) << "case " << i;
  }
}

TEST(CtrlFuzz, CheckTraceFindsFirstViolationOnRandomCorruption) {
  const int cases = test::iters(400);
  for (int i = 0; i < cases; ++i) {
    const auto& pp = pairs()[static_cast<std::size_t>(i) % pairs().size()];
    Xoshiro256 rng(0xC8EC, static_cast<std::uint64_t>(i));
    auto trace =
        random_trace(pp.nodes->wl(), 5000 + static_cast<std::uint64_t>(i),
                     rng);
    const std::size_t phase_count = pp.nodes->phase_count();

    // Corrupt 0-2 random segments, then derive the expected first
    // violation in trace order independently of check_trace.
    const std::size_t corruptions = rng.below(3);
    for (std::size_t k = 0; k < corruptions; ++k) {
      auto& seg = trace[rng.below(trace.size())];
      if (rng.below(2) == 0) {
        seg.phase_index = phase_count + rng.below(4);
      } else {
        seg.work_units = rng.below(2) == 0 ? 0.0 : -rng.uniform(0.0, 2.0);
      }
    }
    ErrorCode expected = ErrorCode::kOk;
    for (const auto& seg : trace) {
      if (seg.phase_index >= phase_count) {
        expected = ErrorCode::kOutOfRange;
        break;
      }
      if (!(seg.work_units > 0.0)) {
        expected = ErrorCode::kInvalidArgument;
        break;
      }
    }
    const Status s = sim::check_trace(trace, phase_count);
    ASSERT_EQ(s.code(), expected) << "case " << i;
    const auto replayed = sim::replay_trace_checked(
        *pp.nodes, trace, Watts{90.0}, Watts{90.0});
    ASSERT_EQ(replayed.status().code(), expected) << "case " << i;
    if (expected == ErrorCode::kOk) {
      ASSERT_TRUE(replayed.ok()) << "case " << i;
    }
  }
}

TEST(CtrlFuzz, SimulateClusterCheckedRejectsBadConfigsWithoutCrashing) {
  const int cases = test::iters(48);
  for (int i = 0; i < cases; ++i) {
    Xoshiro256 rng(0xC105, static_cast<std::uint64_t>(i));
    const hw::CpuMachine machine = svc_test::random_cpu_machine(rng);
    std::vector<core::SimJob> jobs;
    const std::size_t njobs = 1 + rng.below(3);
    for (std::size_t j = 0; j < njobs; ++j) {
      core::SimJob job;
      job.name = "job" + std::to_string(j);
      job.wl = svc_test::random_cpu_workload(rng, i * 8 + static_cast<int>(j));
      job.arrival = Seconds{rng.uniform(0.0, 5.0)};
      job.work_gunits = rng.uniform(0.5, 2.0);
      jobs.push_back(std::move(job));
    }
    core::ClusterSimConfig config;
    config.nodes = 2;
    config.global_budget = Watts{rng.uniform(300.0, 600.0)};

    switch (i % 4) {
      case 0:
        config.nodes = 0;
        break;
      case 1:
        config.global_budget = Watts{-rng.uniform(0.0, 100.0)};
        break;
      case 2:
        config.admission_control = false;
        config.min_grant =
            Watts{config.global_budget.value() + rng.uniform(1.0, 50.0)};
        break;
      default: {
        // GPU job on a CPU-only cluster.
        core::SimJob gpu_job;
        gpu_job.name = "gpu";
        gpu_job.wl = svc_test::random_gpu_workload(rng, i);
        gpu_job.work_gunits = 1.0;
        jobs.push_back(std::move(gpu_job));
        break;
      }
    }
    const auto run =
        core::simulate_cluster_checked(machine, jobs, config);
    ASSERT_FALSE(run.ok()) << "case " << i;
    ASSERT_EQ(run.status().code(), ErrorCode::kInvalidArgument)
        << "case " << i << ": " << run.status().to_string();
  }
  // And a well-formed configuration still goes through the same door.
  Xoshiro256 rng(0xC105, 999);
  const hw::CpuMachine machine = svc_test::random_cpu_machine(rng);
  std::vector<core::SimJob> jobs;
  core::SimJob job;
  job.name = "ok";
  job.wl = svc_test::random_cpu_workload(rng, 999);
  job.work_gunits = 1.0;
  jobs.push_back(std::move(job));
  const auto run = core::simulate_cluster_checked(machine, jobs, {});
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  ASSERT_EQ(run.value().jobs.size(), 1u);
}

}  // namespace
}  // namespace pbc
