// Property tests for the online closed-loop controller (src/ctrl): the
// behavioural contracts docs/online.md documents, checked on fully
// deterministic (seeded) runs so every bound asserted here is exact and
// reproducible — no flaky tolerances hiding real regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dynamic.hpp"
#include "ctrl/closed_loop.hpp"
#include "ctrl/controller.hpp"
#include "hw/platforms.hpp"
#include "obs/metrics.hpp"
#include "sim/phase_nodes.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/trace.hpp"

namespace pbc {
namespace {

workload::PhaseTrace stationary_trace(std::size_t phase,
                                      std::size_t segments) {
  workload::PhaseTrace t;
  for (std::size_t i = 0; i < segments; ++i) {
    t.push_back(workload::TraceSegment{phase, 1.0});
  }
  return t;
}

workload::PhaseTrace square_wave(std::size_t phase_a, std::size_t phase_b,
                                 std::size_t dwell, std::size_t segments) {
  workload::PhaseTrace t;
  for (std::size_t i = 0; i < segments; ++i) {
    t.push_back(workload::TraceSegment{
        (i / dwell) % 2 == 0 ? phase_a : phase_b, 1.0});
  }
  return t;
}

/// The best split on the controller's own lattice for one phase, by
/// exhaustive sweep — the oracle the regret/convergence properties
/// compare against.
struct LatticeOracle {
  double cpu = 0.0;
  double rate = 0.0;
};

LatticeOracle lattice_oracle(const sim::PhaseNodeSet& nodes,
                             std::size_t phase, Watts budget,
                             const ctrl::ControllerConfig& cfg) {
  const auto [cpu_min, mem_min] =
      ctrl::controller_floors(cfg, nodes.machine());
  LatticeOracle best;
  for (double cpu = cpu_min.value();
       cpu <= budget.value() - mem_min.value() + 1e-9;
       cpu += cfg.step.value()) {
    const auto s = nodes.phase(phase).steady_state(
        Watts{cpu}, Watts{budget.value() - cpu});
    if (s.rate_gunits > best.rate) {
      best.rate = s.rate_gunits;
      best.cpu = cpu;
    }
  }
  return best;
}

TEST(CtrlController, FloorsMatchOfflineShifter) {
  for (const auto& machine : {hw::ivybridge_node(), hw::haswell_node()}) {
    const auto online = ctrl::controller_floors({}, machine);
    const auto offline = core::shifting_floors({}, machine);
    EXPECT_DOUBLE_EQ(online.first.value(), offline.first.value())
        << machine.name;
    EXPECT_DOUBLE_EQ(online.second.value(), offline.second.value())
        << machine.name;
  }
  // Explicit overrides win identically on both sides.
  ctrl::ControllerConfig ccfg;
  ccfg.cpu_min = Watts{60.0};
  ccfg.mem_min = Watts{70.0};
  core::ShiftingConfig scfg;
  scfg.cpu_min = Watts{60.0};
  scfg.mem_min = Watts{70.0};
  const auto machine = hw::ivybridge_node();
  EXPECT_DOUBLE_EQ(ctrl::controller_floors(ccfg, machine).first.value(),
                   core::shifting_floors(scfg, machine).first.value());
  EXPECT_DOUBLE_EQ(ctrl::controller_floors(ccfg, machine).second.value(),
                   core::shifting_floors(scfg, machine).second.value());
}

TEST(CtrlController, CheckedRejectsBadKnobs) {
  const auto machine = hw::ivybridge_node();
  const Watts budget{170.0};

  ctrl::ControllerConfig cfg;
  cfg.step = Watts{0.0};
  EXPECT_EQ(ctrl::OnlineController::make_checked(machine, budget, cfg)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.explore_rate = 1.5;
  EXPECT_EQ(ctrl::OnlineController::make_checked(machine, budget, cfg)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.ema_alpha = 0.0;
  EXPECT_EQ(ctrl::OnlineController::make_checked(machine, budget, cfg)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.hysteresis_margin = -0.1;
  EXPECT_EQ(ctrl::OnlineController::make_checked(machine, budget, cfg)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.explore_decay = 0.0;
  EXPECT_EQ(ctrl::OnlineController::make_checked(machine, budget, cfg)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  // Budget below the resolved floors is a precondition failure, matching
  // replay_with_shifting_checked's contract.
  const auto infeasible =
      ctrl::OnlineController::make_checked(machine, Watts{50.0}, {});
  EXPECT_EQ(infeasible.status().code(), ErrorCode::kFailedPrecondition);

  const auto ok = ctrl::OnlineController::make_checked(machine, budget, {});
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
}

TEST(CtrlController, ObserveCheckedRejectsBadTelemetryWithoutStateChange) {
  const auto machine = hw::ivybridge_node();
  auto made = ctrl::OnlineController::make_checked(machine, Watts{170.0}, {});
  ASSERT_TRUE(made.ok());
  ctrl::OnlineController& c = made.value();

  ctrl::Observation o;
  o.work_units = 1.0;
  o.rate_gunits = 2.0;
  o.proc_power = Watts{80.0};
  o.mem_power = Watts{70.0};
  o.achieved_bw = GBps{20.0};
  ASSERT_TRUE(c.observe_checked(o).ok());
  const auto before = c.stats();
  const auto split_before = c.decision();

  ctrl::Observation bad = o;
  bad.work_units = 0.0;
  EXPECT_EQ(c.observe_checked(bad).code(), ErrorCode::kInvalidArgument);
  bad = o;
  bad.rate_gunits = -1.0;
  EXPECT_EQ(c.observe_checked(bad).code(), ErrorCode::kInvalidArgument);
  bad = o;
  bad.proc_power = Watts{std::nan("")};
  EXPECT_EQ(c.observe_checked(bad).code(), ErrorCode::kInvalidArgument);
  bad = o;
  bad.achieved_bw = GBps{-3.0};
  EXPECT_EQ(c.observe_checked(bad).code(), ErrorCode::kInvalidArgument);

  // Rejected telemetry leaves the policy untouched: same stats, same
  // split, and the RNG stream has not advanced (next valid observation
  // behaves as if the bad ones never happened).
  EXPECT_EQ(c.stats().observations, before.observations);
  EXPECT_DOUBLE_EQ(c.decision().cpu_cap.value(),
                   split_before.cpu_cap.value());
}

TEST(CtrlController, EveryDecisionSumsToBudgetAndClearsFloors) {
  const auto machine = hw::ivybridge_node();
  const sim::PhaseNodeSet nodes(machine, workload::npb_ft());
  ctrl::ControllerConfig cfg;
  cfg.explore_floor = 0.05;  // keep probing forever: stress the bounds
  const Watts budget{170.0};
  const auto trace = workload::generate_trace(
      nodes.wl(), {/*total_units=*/300.0, /*segment_units=*/1.0,
                   /*irregularity=*/0.7, /*seed=*/7});
  const auto run = ctrl::run_closed_loop(nodes, trace, budget, cfg);
  const auto [cpu_min, mem_min] = ctrl::controller_floors(cfg, machine);
  ASSERT_FALSE(run.caps.empty());
  for (const auto& c : run.caps) {
    EXPECT_DOUBLE_EQ(c.cpu_cap.value() + c.mem_cap.value(), budget.value());
    EXPECT_GE(c.cpu_cap.value(), cpu_min.value() - 1e-9);
    EXPECT_GE(c.mem_cap.value(), mem_min.value() - 1e-9);
  }
}

TEST(CtrlController, SameSeedSameTraceIsBitReproducible) {
  const auto machine = hw::ivybridge_node();
  const sim::PhaseNodeSet nodes(machine, workload::npb_bt());
  const auto trace = workload::generate_trace(
      nodes.wl(), {/*total_units=*/200.0, /*segment_units=*/1.0,
                   /*irregularity=*/0.6, /*seed=*/11});
  const auto a = ctrl::run_closed_loop(nodes, trace, Watts{160.0}, {});
  const auto b = ctrl::run_closed_loop(nodes, trace, Watts{160.0}, {});
  ASSERT_EQ(a.caps.size(), b.caps.size());
  for (std::size_t i = 0; i < a.caps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.caps[i].cpu_cap.value(), b.caps[i].cpu_cap.value())
        << i;
    EXPECT_EQ(a.caps[i].explored, b.caps[i].explored) << i;
  }
  EXPECT_DOUBLE_EQ(a.replay.total_time.value(), b.replay.total_time.value());
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.explorations, b.stats.explorations);
}

// ISSUE property 1: on a stationary trace, cumulative average regret
// (vs the best fixed split on the controller's own lattice) is monotone
// non-increasing across observation-count checkpoints — more telemetry
// never makes the average worse.
TEST(CtrlProperty, RegretMonotoneNonIncreasingOnStationaryTraces) {
  const auto machine = hw::ivybridge_node();
  for (const auto& wl : {workload::npb_ft(), workload::npb_bt()}) {
    const sim::PhaseNodeSet nodes(machine, wl);
    for (std::size_t phase = 0; phase < nodes.phase_count(); ++phase) {
      for (const double budget : {150.0, 180.0}) {
        const ctrl::ControllerConfig cfg;
        const auto trace = stationary_trace(phase, 400);
        const auto run =
            ctrl::run_closed_loop(nodes, trace, Watts{budget}, cfg);
        const auto oracle =
            lattice_oracle(nodes, phase, Watts{budget}, cfg);
        ASSERT_GT(oracle.rate, 0.0);
        ASSERT_EQ(run.replay.segments.size(), trace.size());

        // Cumulative average regret at quarter checkpoints.
        std::vector<double> checkpoints;
        double regret_sum = 0.0;
        for (std::size_t i = 0; i < run.replay.segments.size(); ++i) {
          const double r = run.replay.segments[i].rate_gunits;
          regret_sum += std::max(0.0, (oracle.rate - r) / oracle.rate);
          if ((i + 1) % 100 == 0) {
            checkpoints.push_back(regret_sum / static_cast<double>(i + 1));
          }
        }
        ASSERT_EQ(checkpoints.size(), 4u);
        for (std::size_t k = 1; k < checkpoints.size(); ++k) {
          // Exploration decays, so each later window dilutes the early
          // learning cost; 1e-9 absorbs FP summation noise only.
          EXPECT_LE(checkpoints[k], checkpoints[k - 1] + 1e-9)
              << wl.name << " phase " << phase << " budget " << budget
              << " checkpoint " << k;
        }
      }
    }
  }
}

// ISSUE property 2: the converged split performs within the documented
// tolerance of the lattice oracle. Tolerance: the controller's own
// hysteresis margin (arms inside it are treated as equal by design) plus
// 1% slack for EMA noise — docs/online.md states the same bound.
TEST(CtrlProperty, ConvergedSplitWithinToleranceOfOracle) {
  const auto machine = hw::ivybridge_node();
  for (const auto& wl : {workload::npb_ft(), workload::npb_bt()}) {
    const sim::PhaseNodeSet nodes(machine, wl);
    for (std::size_t phase = 0; phase < nodes.phase_count(); ++phase) {
      for (const double budget : {150.0, 180.0}) {
        const ctrl::ControllerConfig cfg;
        const auto trace = stationary_trace(phase, 400);
        const auto run =
            ctrl::run_closed_loop(nodes, trace, Watts{budget}, cfg);
        const auto oracle =
            lattice_oracle(nodes, phase, Watts{budget}, cfg);
        ASSERT_FALSE(run.caps.empty());
        const auto& last = run.caps.back();
        const auto converged = nodes.phase(phase).steady_state(
            last.cpu_cap, last.mem_cap);
        EXPECT_GE(converged.rate_gunits,
                  oracle.rate * (1.0 - cfg.hysteresis_margin - 0.01))
            << wl.name << " phase " << phase << " budget " << budget
            << ": converged to " << last.cpu_cap.value() << " W vs oracle "
            << oracle.cpu << " W";
      }
    }
  }
}

// ISSUE property 3: on a two-phase square wave the hysteresis/jump
// policy keeps the split from thrashing. Once both phases have been
// seen (first full cycle), the split changes at most K times per dwell:
// one jump at the boundary plus a small climb-and-probe allowance — far
// below the dwell length, which is what an oscillating controller would
// burn.
TEST(CtrlProperty, HysteresisBoundsSquareWaveOscillation) {
  const auto machine = hw::ivybridge_node();
  const std::size_t dwell = 30;
  constexpr std::size_t kMaxChangesPerDwell = 10;
  for (const auto& wl : {workload::npb_ft(), workload::npb_bt()}) {
    const sim::PhaseNodeSet nodes(machine, wl);
    ASSERT_GE(nodes.phase_count(), 2u);
    for (const double budget : {150.0, 180.0}) {
      const auto trace = square_wave(0, 1, dwell, 20 * dwell);
      const auto run =
          ctrl::run_closed_loop(nodes, trace, Watts{budget}, {});
      ASSERT_EQ(run.caps.size(), trace.size());
      for (std::size_t start = 2 * dwell; start + dwell <= run.caps.size();
           start += dwell) {
        std::size_t changes = 0;
        for (std::size_t k = 1; k < dwell; ++k) {
          if (run.caps[start + k].cpu_cap.value() !=
              run.caps[start + k - 1].cpu_cap.value()) {
            ++changes;
          }
        }
        EXPECT_LE(changes, kMaxChangesPerDwell)
            << wl.name << " budget " << budget << " dwell at " << start;
      }
      // And revisiting a learned phase is one jump, not a fresh climb:
      // every phase change after the first cycle lands on the remembered
      // best arm immediately, so moves stay near one per boundary.
      EXPECT_EQ(run.stats.phase_changes, 19u) << wl.name << " " << budget;
    }
  }
}

TEST(CtrlClosedLoop, AccountingMatchesSegmentSums) {
  const auto machine = hw::ivybridge_node();
  const sim::PhaseNodeSet nodes(machine, workload::npb_ft());
  const auto trace = workload::generate_trace(
      nodes.wl(), {/*total_units=*/150.0, /*segment_units=*/1.0,
                   /*irregularity=*/0.5, /*seed=*/3});
  const auto run = ctrl::run_closed_loop(nodes, trace, Watts{170.0}, {});
  double time = 0.0, proc_e = 0.0, mem_e = 0.0;
  for (const auto& s : run.replay.segments) {
    time += s.duration.value();
    proc_e += s.proc_power.value() * s.duration.value();
    mem_e += s.mem_power.value() * s.duration.value();
  }
  EXPECT_NEAR(run.replay.total_time.value(), time, 1e-9 * time);
  EXPECT_NEAR(run.replay.proc_energy.value(), proc_e, 1e-6 * proc_e);
  EXPECT_NEAR(run.replay.mem_energy.value(), mem_e, 1e-6 * mem_e);
  EXPECT_TRUE(run.replay.aggregate.proc_cap_respected);
  EXPECT_TRUE(run.replay.aggregate.mem_cap_respected);
  // The time-weighted mean caps still sum to the budget: every segment's
  // split does, so any convex combination does too.
  EXPECT_NEAR(run.replay.aggregate.proc_cap.value() +
                  run.replay.aggregate.mem_cap.value(),
              170.0, 1e-6);
}

TEST(CtrlClosedLoop, CheckedRejectsBadTraceAndConfig) {
  const auto machine = hw::ivybridge_node();
  const sim::PhaseNodeSet nodes(machine, workload::npb_ft());
  const workload::PhaseTrace good = stationary_trace(0, 4);

  workload::PhaseTrace bad_phase = good;
  bad_phase[2].phase_index = 99;
  EXPECT_EQ(ctrl::run_closed_loop_checked(nodes, bad_phase, Watts{170.0}, {})
                .status()
                .code(),
            ErrorCode::kOutOfRange);

  workload::PhaseTrace bad_work = good;
  bad_work[1].work_units = -2.0;
  EXPECT_EQ(ctrl::run_closed_loop_checked(nodes, bad_work, Watts{170.0}, {})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);

  EXPECT_EQ(ctrl::run_closed_loop_checked(nodes, good, Watts{10.0}, {})
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);

  const auto ok = ctrl::run_closed_loop_checked(nodes, good, Watts{170.0}, {});
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  // Checked and unchecked agree bit-for-bit on valid input.
  const auto raw = ctrl::run_closed_loop(nodes, good, Watts{170.0}, {});
  EXPECT_DOUBLE_EQ(ok.value().replay.total_time.value(),
                   raw.replay.total_time.value());
}

TEST(CtrlController, PublishesCountersToConfiguredRegistry) {
  obs::MetricsRegistry reg;
  const auto machine = hw::ivybridge_node();
  const sim::PhaseNodeSet nodes(machine, workload::npb_ft());
  ctrl::ControllerConfig cfg;
  cfg.registry = &reg;
  const auto trace = stationary_trace(0, 50);
  const auto run = ctrl::run_closed_loop(nodes, trace, Watts{170.0}, cfg);
  EXPECT_EQ(reg.counter("pbc_ctrl_observations_total", "").value(),
            run.stats.observations);
  EXPECT_EQ(reg.counter("pbc_ctrl_explorations_total", "").value(),
            run.stats.explorations);
  EXPECT_EQ(reg.counter("pbc_ctrl_moves_total", "").value(),
            run.stats.moves);
  EXPECT_EQ(run.stats.observations, 50u);
}

}  // namespace
}  // namespace pbc
