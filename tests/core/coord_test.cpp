#include "core/coord.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

CpuCriticalPowers sra_profile() {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  return profile_critical_powers(node);
}

TEST(CoordCpu, RegimeAHandsBackSurplus) {
  const auto p = sra_profile();
  const Watts budget{p.max_demand().value() + 50.0};
  const auto a = coord_cpu(p, budget);
  EXPECT_EQ(a.status, CoordStatus::kPowerSurplus);
  EXPECT_EQ(a.cpu, p.cpu_l1);
  EXPECT_EQ(a.mem, p.mem_l1);
  EXPECT_NEAR(a.surplus.value(), 50.0, 1e-9);
}

TEST(CoordCpu, RegimeBWarrantsMemoryFirst) {
  const auto p = sra_profile();
  // Between L2c+L1m and L1c+L1m: memory gets its full demand.
  const Watts budget{(p.cpu_l2 + p.mem_l1).value() + 10.0};
  const auto a = coord_cpu(p, budget);
  EXPECT_EQ(a.status, CoordStatus::kSuccess);
  EXPECT_EQ(a.mem, p.mem_l1);
  EXPECT_NEAR(a.cpu.value(), budget.value() - p.mem_l1.value(), 1e-9);
  EXPECT_DOUBLE_EQ(a.surplus.value(), 0.0);
}

TEST(CoordCpu, RegimeCSplitsProportionally) {
  const auto p = sra_profile();
  const double base = p.productive_threshold().value();
  const Watts budget{base + 20.0};
  const auto a = coord_cpu(p, budget);
  EXPECT_EQ(a.status, CoordStatus::kSuccess);
  const double pd_cpu = (p.cpu_l1 - p.cpu_l2).value();
  const double pd_mem = (p.mem_l1 - p.mem_l2).value();
  const double expected_cpu =
      p.cpu_l2.value() + 20.0 * pd_cpu / (pd_cpu + pd_mem);
  EXPECT_NEAR(a.cpu.value(), expected_cpu, 1e-9);
  EXPECT_NEAR(a.total().value(), budget.value(), 1e-9);
  EXPECT_GE(a.cpu, p.cpu_l2);
  EXPECT_GE(a.mem, p.mem_l2);
}

TEST(CoordCpu, MemoryBiasedVariantPinsCpuAtL2) {
  const auto p = sra_profile();
  const Watts budget{p.productive_threshold().value() + 20.0};
  const auto a = coord_cpu(p, budget, CpuCoordVariant::kMemoryBiased);
  EXPECT_EQ(a.cpu, p.cpu_l2);
  EXPECT_NEAR(a.mem.value(), budget.value() - p.cpu_l2.value(), 1e-9);
}

TEST(CoordCpu, VariantsAgreeOutsideRegimeC) {
  const auto p = sra_profile();
  for (double b : {p.max_demand().value() + 30.0,
                   (p.cpu_l2 + p.mem_l1).value() + 5.0}) {
    const auto prop = coord_cpu(p, Watts{b});
    const auto bias = coord_cpu(p, Watts{b}, CpuCoordVariant::kMemoryBiased);
    EXPECT_EQ(prop.cpu.value(), bias.cpu.value()) << b;
    EXPECT_EQ(prop.mem.value(), bias.mem.value()) << b;
  }
}

TEST(CoordCpu, RejectsBudgetBelowThreshold) {
  const auto p = sra_profile();
  const auto a = coord_cpu(p, Watts{p.productive_threshold().value() - 5.0});
  EXPECT_EQ(a.status, CoordStatus::kBudgetTooSmall);
}

TEST(CoordCpu, AllocationNeverExceedsBudget) {
  const auto p = sra_profile();
  for (double b = 120.0; b <= 300.0; b += 7.0) {
    const auto a = coord_cpu(p, Watts{b});
    if (a.status == CoordStatus::kBudgetTooSmall) continue;
    EXPECT_LE(a.total().value(), b + 1e-9) << "budget " << b;
  }
}

TEST(CoordCpu, MemoryShareMonotoneInBudget) {
  // More budget never reduces memory's share. (The CPU share is NOT
  // monotone for the paper's Algorithm 1: crossing from regime C into
  // regime B re-prioritizes memory to its full demand, which steps the
  // CPU share down — a documented discontinuity of the printed algorithm.)
  const auto p = sra_profile();
  double prev_mem = 0.0;
  for (double b = p.productive_threshold().value(); b <= 260.0; b += 4.0) {
    const auto a = coord_cpu(p, Watts{b});
    EXPECT_GE(a.mem.value(), prev_mem - 1e-9) << b;
    prev_mem = a.mem.value();
  }
}

TEST(CoordCpu, RegimeABBoundaryIsContinuous) {
  const auto p = sra_profile();
  const double boundary = p.max_demand().value();
  const auto below = coord_cpu(p, Watts{boundary - 0.01});
  const auto above = coord_cpu(p, Watts{boundary + 0.01});
  EXPECT_NEAR(below.cpu.value(), above.cpu.value(), 0.5);
  EXPECT_NEAR(below.mem.value(), above.mem.value(), 0.5);
}

TEST(CoordCpu, MemoryBiasedVariantIsContinuousEverywhere) {
  // The Table-1 intersection-following variant removes Algorithm 1's B/C
  // discontinuity: both shares are continuous in the budget.
  const auto p = sra_profile();
  for (double boundary : {(p.cpu_l2 + p.mem_l1).value(),
                          p.max_demand().value()}) {
    const auto below = coord_cpu(p, Watts{boundary - 0.01},
                                 CpuCoordVariant::kMemoryBiased);
    const auto above = coord_cpu(p, Watts{boundary + 0.01},
                                 CpuCoordVariant::kMemoryBiased);
    EXPECT_NEAR(below.cpu.value(), above.cpu.value(), 0.5) << boundary;
    EXPECT_NEAR(below.mem.value(), above.mem.value(), 0.5) << boundary;
  }
}

TEST(CoordStatusNames, ToString) {
  EXPECT_STREQ(to_string(CoordStatus::kSuccess), "success");
  EXPECT_STREQ(to_string(CoordStatus::kPowerSurplus), "power-surplus");
  EXPECT_STREQ(to_string(CoordStatus::kBudgetTooSmall), "budget-too-small");
}

// ---------------------------------------------------------------- GPU ----

TEST(CoordGpu, ComputeIntensiveGetsMinimumMemory) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::sgemm());
  const auto p = profile_gpu_params(node);
  ASSERT_TRUE(p.compute_intensive);
  const auto a = coord_gpu(p, node.gpu_model(), Watts{200.0});
  EXPECT_EQ(a.mem, p.mem_min);
  EXPECT_EQ(a.mem_clock_index, 0u);
  EXPECT_NEAR(a.sm.value(), 200.0 - p.mem_min.value(), 1e-9);
}

TEST(CoordGpu, MemoryIntensiveGetsMaximumMemoryWhenBudgetSuffices) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  const auto p = profile_gpu_params(node);
  const Watts budget{p.tot_ref.value() + 20.0};
  const auto a = coord_gpu(p, node.gpu_model(), budget);
  EXPECT_EQ(a.mem, p.mem_max);
  EXPECT_EQ(a.mem_clock_index, node.gpu_model().mem_clock_count() - 1);
}

TEST(CoordGpu, BalancedBelowReference) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  const auto p = profile_gpu_params(node);
  const Watts budget{p.tot_ref.value() - 20.0};
  const auto a = coord_gpu(p, node.gpu_model(), budget, 0.5);
  EXPECT_GT(a.mem, p.mem_min);
  EXPECT_LT(a.mem, p.mem_max);
  EXPECT_NEAR(a.mem.value(),
              p.mem_min.value() + 0.5 * (budget.value() - p.tot_min.value()),
              1e-9);
}

TEST(CoordGpu, GammaShiftsBalance) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  const auto p = profile_gpu_params(node);
  const Watts budget{p.tot_ref.value() - 20.0};
  const auto lo = coord_gpu(p, node.gpu_model(), budget, 0.25);
  const auto hi = coord_gpu(p, node.gpu_model(), budget, 0.75);
  EXPECT_LT(lo.mem, hi.mem);
}

TEST(CoordGpu, SurplusFlaggedAboveMaxDemand) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::minife());
  const auto p = profile_gpu_params(node);
  const auto a =
      coord_gpu(p, node.gpu_model(), Watts{p.tot_max.value() + 40.0});
  EXPECT_EQ(a.status, CoordStatus::kPowerSurplus);
  EXPECT_NEAR(a.surplus.value(), 40.0, 1e-9);
}

TEST(CoordGpu, MemShareClampedToCardRange) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  const auto p = profile_gpu_params(node);
  const auto a = coord_gpu(p, node.gpu_model(), Watts{125.0}, 5.0);
  EXPECT_LE(a.mem, p.mem_max);
  EXPECT_GE(a.mem, p.mem_min);
}

TEST(CoordGpu, TitanVReducesToMemoryMaximization) {
  // Paper §5.2: on the Titan V the algorithm degenerates to "max memory,
  // rest to SMs" for every application studied.
  const auto card = hw::titan_v();
  for (const auto& w : workload::gpu_suite()) {
    const sim::GpuNodeSim node(card, w);
    const auto p = profile_gpu_params(node);
    const auto a = coord_gpu(p, node.gpu_model(), Watts{200.0});
    EXPECT_EQ(a.mem, p.mem_max) << w.name;
  }
}

TEST(MemClockForPower, PicksHighestAffordableClock) {
  const hw::GpuModel model(hw::titan_xp().gpu);
  for (std::size_t i = 0; i < model.mem_clock_count(); ++i) {
    const Watts exact = model.estimated_mem_power(i);
    EXPECT_EQ(mem_clock_for_power(model, exact), i);
    EXPECT_EQ(mem_clock_for_power(model, Watts{exact.value() + 0.5}), i);
  }
}

TEST(MemClockForPower, BelowLowestClockYieldsIndexZero) {
  const hw::GpuModel model(hw::titan_xp().gpu);
  EXPECT_EQ(mem_clock_for_power(model, Watts{1.0}), 0u);
}

}  // namespace
}  // namespace pbc::core
