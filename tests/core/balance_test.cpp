#include "core/balance.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(Balance, UtilizationsAreFractions) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  for (const auto& bp : balance_sweep(node, Watts{208.0})) {
    EXPECT_GE(bp.compute_utilization, 0.0);
    EXPECT_LE(bp.compute_utilization, 1.0);
    EXPECT_GE(bp.mem_utilization, 0.0);
    EXPECT_LE(bp.mem_utilization, 1.0);
  }
}

TEST(Balance, ActualNeverExceedsEitherCapacityMaterially) {
  // A small overshoot (<2%) over the measured capacity is possible: the
  // overpowered-run's DRAM governor can pick a deeper quantized throttle
  // level than the constrained run needs (its faster CPU generates more
  // traffic at the probed cap).
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  for (const auto& bp : balance_sweep(node, Watts{200.0})) {
    EXPECT_LE(bp.actual, bp.compute_capacity * 1.02 + 1e-9);
    EXPECT_LE(bp.actual, bp.mem_capacity * 1.02 + 1e-9);
  }
}

TEST(Balance, OptimalSplitBalancesBothUtilizations) {
  // Paper Fig. 5: at the optimal allocation both compute and memory-access
  // utilization are high (close to 100%).
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{208.0};
  sweep.samples = sim::sweep_cpu_split(node, Watts{208.0}, {});
  const auto& best = oracle_best(sweep);
  const auto bp = balance_at(node, best.proc_cap, best.mem_cap);
  EXPECT_GT(bp.compute_utilization, 0.85);
  EXPECT_GT(bp.mem_utilization, 0.85);
}

TEST(Balance, UnderpoweredProcessorBoundsExecution) {
  // Paper §3.4.1: when processors are underpowered, processor capacity
  // utilization is high but memory capacity utilization is low.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto bp = balance_at(node, Watts{80.0}, Watts{128.0});
  EXPECT_GT(bp.compute_utilization, 0.9);
  EXPECT_LT(bp.mem_utilization, 0.6);
}

TEST(Balance, UnderpoweredMemoryBoundsExecution) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto bp = balance_at(node, Watts{120.0}, Watts{80.0});
  EXPECT_GT(bp.mem_utilization, 0.9);
  EXPECT_LT(bp.compute_utilization, 0.6);
}

TEST(Balance, CapacitiesMonotoneInTheirCaps) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  double prev_c = 0.0;
  double prev_m = 0.0;
  for (double w = 60.0; w <= 140.0; w += 10.0) {
    const auto c = balance_at(node, Watts{w}, Watts{300.0});
    const auto m = balance_at(node, Watts{300.0}, Watts{w});
    EXPECT_GE(c.compute_capacity, prev_c - 1e-9);
    EXPECT_GE(m.mem_capacity, prev_m - 1e-9);
    prev_c = c.compute_capacity;
    prev_m = m.mem_capacity;
  }
}

TEST(Balance, SweepCoversRequestedGrid) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto points = balance_sweep(node, Watts{200.0}, Watts{48.0},
                                    Watts{40.0}, Watts{16.0});
  ASSERT_FALSE(points.empty());
  EXPECT_DOUBLE_EQ(points.front().mem_cap.value(), 48.0);
  for (const auto& bp : points) {
    EXPECT_NEAR((bp.proc_cap + bp.mem_cap).value(), 200.0, 1e-9);
  }
}

}  // namespace
}  // namespace pbc::core
