#include "core/optimal.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

sim::CpuNodeSim sra_node() {
  return sim::CpuNodeSim(hw::ivybridge_node(), workload::sra());
}

TEST(Optimal, LargeBudgetSitsInScenarioI) {
  // Paper Table 1 row 1: with a large budget all six scenarios are valid
  // and the optimum sits inside scenario I with no critical component
  // (the scenario-I plateau must be wide enough that a ±24 W shift stays
  // inside it, hence 300 W here).
  const auto row = optimal_allocation_row(sra_node(), Watts{300.0});
  EXPECT_EQ(row.intersection.first, Category::kI);
  EXPECT_EQ(row.intersection.second, Category::kI);
  EXPECT_FALSE(row.critical.has_value());
  EXPECT_EQ(row.valid_scenarios.size(), 6u);
}

TEST(Optimal, At224DramIsCritical) {
  // Paper §3.4.2: for SRA at 224 W, shifting 24 W away from DRAM loses far
  // more performance (≈50%) than shifting 24 W away from the CPU (≈10%) —
  // DRAM is the critical component.
  const auto row = optimal_allocation_row(sra_node(), Watts{224.0});
  ASSERT_TRUE(row.critical.has_value());
  EXPECT_EQ(*row.critical, hw::Component::kMemory);
  EXPECT_GT(row.loss_mem_underpowered, 0.3);
  EXPECT_LT(row.loss_proc_underpowered, 0.2);
}

TEST(Optimal, At224OptimumNearPaperSplit) {
  // Paper: optimal allocation at 224 W is about (108 cpu, 116 mem).
  const auto row = optimal_allocation_row(sra_node(), Watts{224.0});
  EXPECT_NEAR(row.best_proc.value(), 108.0, 14.0);
  EXPECT_NEAR(row.best_mem.value(), 116.0, 14.0);
}

TEST(Optimal, CriticalComponentSwitchesToCpuAtSmallerBudget) {
  // Paper: DRAM critical at 224 W, CPU critical at 176 W.
  const auto row = optimal_allocation_row(sra_node(), Watts{176.0});
  ASSERT_TRUE(row.critical.has_value());
  EXPECT_EQ(*row.critical, hw::Component::kProcessor);
}

TEST(Optimal, IntersectionMovesThroughScenariosAsBudgetShrinks) {
  // Table 1: the optimum's neighbourhood progresses I -> II|III -> deeper
  // categories as the budget falls.
  const auto at_240 = optimal_allocation_row(sra_node(), Watts{240.0});
  EXPECT_EQ(at_240.intersection.first, Category::kI);
  const auto at_200 = optimal_allocation_row(sra_node(), Watts{200.0});
  // No scenario I left: neighbours are working categories II/III.
  EXPECT_NE(at_200.intersection.first, Category::kI);
  const auto cats_200 = at_200.valid_scenarios;
  EXPECT_EQ(std::find(cats_200.begin(), cats_200.end(), Category::kI),
            cats_200.end());
}

TEST(Optimal, ValidScenarioCountShrinksWithBudget) {
  const auto big = optimal_allocation_row(sra_node(), Watts{260.0});
  const auto small = optimal_allocation_row(sra_node(), Watts{170.0});
  EXPECT_LE(small.valid_scenarios.size(), big.valid_scenarios.size());
}

TEST(Optimal, LossesAreNonNegativeFractions) {
  for (double b : {170.0, 200.0, 240.0}) {
    const auto row = optimal_allocation_row(sra_node(), Watts{b});
    EXPECT_GE(row.loss_mem_underpowered, 0.0);
    EXPECT_LE(row.loss_mem_underpowered, 1.0);
    EXPECT_GE(row.loss_proc_underpowered, 0.0);
    EXPECT_LE(row.loss_proc_underpowered, 1.0);
  }
}

TEST(Optimal, PerfMaxPositiveAndSplitSumsToBudget) {
  const auto row = optimal_allocation_row(sra_node(), Watts{208.0});
  EXPECT_GT(row.perf_max, 0.0);
  EXPECT_NEAR((row.best_proc + row.best_mem).value(), 208.0, 1e-6);
}

}  // namespace
}  // namespace pbc::core
