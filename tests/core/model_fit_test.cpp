#include "core/model_fit.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

FittedPhase fit_of(const workload::Workload& wl) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), wl);
  return fit_single_phase(node);
}

TEST(ModelFit, RecoversStreamTrafficParameters) {
  const auto fit = fit_of(workload::stream_cpu());
  // Ground truth: 32 bytes/unit, energy scale 1.0, ceiling ~1.0 of peak.
  EXPECT_NEAR(fit.bytes_per_unit, 32.0, 1.5);
  EXPECT_NEAR(fit.mem_energy_scale, 1.0, 0.05);
  EXPECT_GT(fit.max_bw_frac, 0.95);
  EXPECT_FALSE(fit.compute_bound);
}

TEST(ModelFit, RecoversStreamClockExponent) {
  const auto fit = fit_of(workload::stream_cpu());
  EXPECT_NEAR(fit.freq_scaling, 0.12, 0.05);
}

TEST(ModelFit, RecoversSraEnergyScaleAndCeiling) {
  const auto fit = fit_of(workload::sra());
  // Ground truth: 64 bytes/unit, 2.0x energy/byte, 0.5 ceiling, λ=0.55.
  EXPECT_NEAR(fit.bytes_per_unit, 64.0, 3.0);
  EXPECT_NEAR(fit.mem_energy_scale, 2.0, 0.15);
  EXPECT_NEAR(fit.max_bw_frac, 0.5, 0.06);
  EXPECT_NEAR(fit.freq_scaling, 0.55, 0.12);
}

TEST(ModelFit, DetectsComputeBoundDgemm) {
  const auto fit = fit_of(workload::dgemm());
  EXPECT_TRUE(fit.compute_bound);
  // flops_per_unit / compute_eff = 1 / 0.8 = 1.25, exactly identifiable
  // for a compute-bound phase.
  EXPECT_NEAR(fit.effective_flops_per_unit, 1.25, 0.05);
}

TEST(ModelFit, RecoversActivityAtTopPstate) {
  // DGEMM's configured activity 0.95 with the stall floor at full
  // utilization gives activity_eff = 0.95.
  const auto fit = fit_of(workload::dgemm());
  EXPECT_NEAR(fit.activity_eff, 0.95, 0.03);
  // SRA stalls: activity_eff ≈ 0.75·(0.75 + 0.25·util) ≈ 0.58.
  const auto sra = fit_of(workload::sra());
  EXPECT_NEAR(sra.activity_eff, 0.58, 0.05);
}

TEST(ModelFit, ClassifiesIntensityAcrossTheSuite) {
  const auto machine = hw::ivybridge_node();
  // Spot checks on unambiguous benchmarks.
  EXPECT_EQ(classify_intensity(fit_of(workload::dgemm()), machine),
            workload::Intensity::kCompute);
  EXPECT_EQ(classify_intensity(fit_of(workload::npb_ep()), machine),
            workload::Intensity::kCompute);
  EXPECT_EQ(classify_intensity(fit_of(workload::stream_cpu()), machine),
            workload::Intensity::kMemory);
  EXPECT_EQ(classify_intensity(fit_of(workload::sra()), machine),
            workload::Intensity::kMemory);
  EXPECT_EQ(classify_intensity(fit_of(workload::npb_is()), machine),
            workload::Intensity::kMemory);
  EXPECT_EQ(classify_intensity(fit_of(workload::npb_bt()), machine),
            workload::Intensity::kBalanced);
  EXPECT_EQ(classify_intensity(fit_of(workload::npb_ft()), machine),
            workload::Intensity::kBalanced);
}

TEST(ModelFit, FittedClassificationMatchesNominalLabels) {
  // The observational classifier reproduces the suite's a-priori labels
  // for every CPU benchmark except CG and MG, which it calls memory-bound
  // — they are labelled memory in Table 3 too.
  const auto machine = hw::ivybridge_node();
  for (const auto& wl : workload::cpu_suite()) {
    const auto got = classify_intensity(fit_of(wl), machine);
    if (wl.name == "SP" || wl.name == "LU") {
      // Nominally balanced; observed utilization ~0.9 keeps them balanced.
      EXPECT_EQ(got, workload::Intensity::kBalanced) << wl.name;
    } else if (wl.name == "BT") {
      // Nominally compute intensive but not compute-*bound* on this node.
      EXPECT_EQ(got, workload::Intensity::kBalanced) << wl.name;
    } else {
      EXPECT_EQ(got, wl.nominal_intensity) << wl.name;
    }
  }
}

TEST(ModelFit, FitIsDeterministic) {
  const auto a = fit_of(workload::npb_cg());
  const auto b = fit_of(workload::npb_cg());
  EXPECT_EQ(a.bytes_per_unit, b.bytes_per_unit);
  EXPECT_EQ(a.freq_scaling, b.freq_scaling);
}

TEST(ModelFit, AllBenchmarksProduceFiniteFits) {
  for (const auto& wl : workload::cpu_suite()) {
    const auto fit = fit_of(wl);
    EXPECT_TRUE(std::isfinite(fit.bytes_per_unit)) << wl.name;
    EXPECT_TRUE(std::isfinite(fit.freq_scaling)) << wl.name;
    EXPECT_GE(fit.mem_energy_scale, 1.0) << wl.name;
    EXPECT_GE(fit.activity_eff, 0.0) << wl.name;
    EXPECT_LE(fit.activity_eff, 1.0) << wl.name;
  }
}

}  // namespace
}  // namespace pbc::core
