// The cluster engine's fast-path contract: bit-identical runs to the
// retained reference implementation over randomized traces (every queue
// policy × admission × domain-mix combination), prepared-node providers,
// up-front config validation, grant-ledger conservation, and the backfill
// edge cases the incremental queue index must preserve.
#include "core/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "hw/platforms.hpp"
#include "svc/engine.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

/// Exact (bitwise) equality of two runs — the fast/reference contract.
void expect_identical(const ClusterRun& a, const ClusterRun& b,
                      const std::string& context) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << context;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobOutcome& x = a.jobs[i];
    const JobOutcome& y = b.jobs[i];
    EXPECT_EQ(x.name, y.name) << context << " job " << i;
    EXPECT_EQ(x.arrival.value(), y.arrival.value()) << context << " " << x.name;
    EXPECT_EQ(x.start.value(), y.start.value()) << context << " " << x.name;
    EXPECT_EQ(x.finish.value(), y.finish.value()) << context << " " << x.name;
    EXPECT_EQ(x.budget.value(), y.budget.value()) << context << " " << x.name;
    EXPECT_EQ(x.perf, y.perf) << context << " " << x.name;
    EXPECT_EQ(x.energy.value(), y.energy.value()) << context << " " << x.name;
  }
  EXPECT_EQ(a.makespan.value(), b.makespan.value()) << context;
  EXPECT_EQ(a.mean_wait.value(), b.mean_wait.value()) << context;
  EXPECT_EQ(a.mean_response.value(), b.mean_response.value()) << context;
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value()) << context;
  EXPECT_EQ(a.work_per_joule, b.work_per_joule) << context;
}

/// A small random trace drawing from the full suites. Workloads repeat
/// across jobs (the dedupe path matters) and arrivals interleave with
/// completions.
std::vector<SimJob> random_trace(Xoshiro256& rng, bool with_gpu) {
  static const std::vector<workload::Workload> cpu_wls = workload::cpu_suite();
  static const std::vector<workload::Workload> gpu_wls = workload::gpu_suite();
  const std::size_t n = 3 + rng.below(16);
  std::vector<SimJob> jobs;
  jobs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    SimJob job;
    const bool gpu = with_gpu && rng.uniform() < 0.4;
    if (gpu) {
      job.wl = gpu_wls[rng.below(gpu_wls.size())];
      job.work_gunits = rng.uniform(100.0, 50000.0);
    } else {
      job.wl = cpu_wls[rng.below(cpu_wls.size())];
      job.work_gunits = rng.uniform(1.0, 3000.0);
    }
    job.name = (gpu ? "g" : "c") + std::to_string(j);
    job.arrival = Seconds{rng.uniform(0.0, 50.0)};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ClusterSimConfig random_config(Xoshiro256& rng, bool with_gpu,
                               QueuePolicy queue_policy, bool admission) {
  ClusterSimConfig config;
  config.nodes = 1 + rng.below(5);
  config.gpu_nodes = with_gpu ? 1 + rng.below(3) : 0;
  config.global_budget = Watts{rng.uniform(150.0, 1200.0)};
  config.queue_policy = queue_policy;
  config.admission_control = admission;
  config.policy =
      rng.uniform() < 0.5 ? SplitPolicy::kCoord : SplitPolicy::kEvenSplit;
  return config;
}

// 2 domain mixes × 2 queue policies × 2 admission settings × 64 seeds =
// 512 randomized traces, each run on both paths and compared bitwise.
TEST(ClusterDiff, FastMatchesReferenceOnRandomTraces) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();
  int traces = 0;
  for (const bool with_gpu : {false, true}) {
    for (const QueuePolicy qp : {QueuePolicy::kFifo, QueuePolicy::kBackfill}) {
      for (const bool admission : {true, false}) {
        for (std::uint64_t seed = 0; seed < 64; ++seed) {
          Xoshiro256 rng(seed, /*stream=*/with_gpu ? 11 : 3);
          const auto jobs = random_trace(rng, with_gpu);
          auto config = random_config(rng, with_gpu, qp, admission);
          const std::string context =
              "seed=" + std::to_string(seed) +
              " gpu=" + std::to_string(with_gpu) +
              " backfill=" + std::to_string(qp == QueuePolicy::kBackfill) +
              " admission=" + std::to_string(admission);

          config.path = ClusterPath::kFast;
          const ClusterRun fast =
              with_gpu
                  ? simulate_cluster(cpu_machine, gpu_machine, jobs, config)
                  : simulate_cluster(cpu_machine, jobs, config);
          config.path = ClusterPath::kReference;
          const ClusterRun ref =
              with_gpu
                  ? simulate_cluster(cpu_machine, gpu_machine, jobs, config)
                  : simulate_cluster(cpu_machine, jobs, config);
          expect_identical(fast, ref, context);
          ++traces;
          if (HasFatalFailure()) return;
        }
      }
    }
  }
  EXPECT_EQ(traces, 512);
}

TEST(ClusterPrepared, ProviderNodesAreUsedOncePerDistinctWorkload) {
  // Three jobs share one workload, two share another: the provider must
  // be consulted exactly once per distinct (machine, workload) pair, and
  // the run must match the provider-less one exactly.
  std::vector<SimJob> jobs{
      {"a0", workload::dgemm(), Seconds{0.0}, 1000.0},
      {"a1", workload::dgemm(), Seconds{1.0}, 800.0},
      {"a2", workload::dgemm(), Seconds{2.0}, 600.0},
      {"b0", workload::stream_cpu(), Seconds{3.0}, 50.0},
      {"b1", workload::stream_cpu(), Seconds{4.0}, 70.0},
  };
  ClusterSimConfig config;
  config.nodes = 2;
  config.global_budget = Watts{500.0};

  std::atomic<int> cpu_calls{0};
  ClusterNodeProvider provider;
  provider.cpu = [&](const hw::CpuMachine& machine,
                     const workload::Workload& wl) {
    cpu_calls.fetch_add(1);
    return sim::make_prepared_cpu_node(machine, wl);
  };

  const auto with_provider =
      simulate_cluster(hw::ivybridge_node(), jobs, config, &provider);
  const auto without = simulate_cluster(hw::ivybridge_node(), jobs, config);
  EXPECT_EQ(cpu_calls.load(), 2);
  expect_identical(with_provider, without, "provider");
}

TEST(ClusterService, QueryEngineRoutesThroughSimCache) {
  std::vector<SimJob> jobs{
      {"c0", workload::npb_mg(), Seconds{0.0}, 500.0},
      {"c1", workload::npb_mg(), Seconds{1.0}, 400.0},
      {"g0", workload::minife(), Seconds{2.0}, 30000.0},
  };
  ClusterSimConfig config;
  config.nodes = 2;
  config.gpu_nodes = 1;
  config.global_budget = Watts{700.0};

  svc::QueryEngine engine;
  const auto first = engine.simulate_cluster(hw::ivybridge_node(),
                                             hw::titan_xp(), jobs, config);
  const auto direct =
      simulate_cluster(hw::ivybridge_node(), hw::titan_xp(), jobs, config);
  expect_identical(first, direct, "svc-vs-core");

  // A second identical query reuses the cached prepared nodes: misses do
  // not grow.
  const auto misses_after_first = engine.stats().sim_misses;
  const auto second = engine.simulate_cluster(hw::ivybridge_node(),
                                              hw::titan_xp(), jobs, config);
  expect_identical(second, direct, "svc-second-run");
  EXPECT_EQ(engine.stats().sim_misses, misses_after_first);
  EXPECT_GT(engine.stats().sim_hits, 0u);
}

TEST(ClusterChecked, RejectsZeroNodes) {
  ClusterSimConfig config;
  config.nodes = 0;
  const auto result = simulate_cluster_checked(
      hw::ivybridge_node(), {{"j", workload::sra(), Seconds{0.0}, 1.0}},
      config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(ClusterChecked, RejectsNonPositiveBudget) {
  ClusterSimConfig config;
  config.global_budget = Watts{0.0};
  const auto result = simulate_cluster_checked(
      hw::ivybridge_node(), {{"j", workload::sra(), Seconds{0.0}, 1.0}},
      config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(ClusterChecked, RejectsMinGrantAboveBudgetWithoutAdmission) {
  ClusterSimConfig config;
  config.global_budget = Watts{300.0};
  config.admission_control = false;
  config.min_grant = Watts{400.0};
  const auto result = simulate_cluster_checked(
      hw::ivybridge_node(), {{"j", workload::sra(), Seconds{0.0}, 1.0}},
      config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  // With admission control the same floor is fine (min_grant is ignored).
  config.admission_control = true;
  EXPECT_TRUE(simulate_cluster_checked(
                  hw::ivybridge_node(),
                  {{"j", workload::sra(), Seconds{0.0}, 1.0}}, config)
                  .ok());
}

TEST(ClusterChecked, RejectsGpuJobsWithoutGpuNodes) {
  ClusterSimConfig config;
  config.gpu_nodes = 0;
  const std::vector<SimJob> jobs{
      {"c", workload::sra(), Seconds{0.0}, 1.0},
      {"g", workload::minife(), Seconds{1.0}, 100.0},
  };
  // CPU-only overload: no GPU machine at all.
  const auto no_machine =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_FALSE(no_machine.ok());
  EXPECT_NE(no_machine.error().message.find("'g'"), std::string::npos);
  // Heterogeneous overload with zero GPU nodes.
  const auto no_nodes = simulate_cluster_checked(hw::ivybridge_node(),
                                                 hw::titan_xp(), jobs, config);
  ASSERT_FALSE(no_nodes.ok());
  EXPECT_NE(no_nodes.error().message.find("'g'"), std::string::npos);
}

TEST(ClusterChecked, AcceptsAndMatchesUncheckedRun) {
  std::vector<SimJob> jobs{
      {"c0", workload::dgemm(), Seconds{0.0}, 1000.0},
      {"g0", workload::sgemm(), Seconds{1.0}, 200000.0},
  };
  ClusterSimConfig config;
  config.nodes = 2;
  config.gpu_nodes = 1;
  config.global_budget = Watts{600.0};
  const auto checked = simulate_cluster_checked(
      hw::ivybridge_node(), hw::titan_xp(), jobs, config);
  ASSERT_TRUE(checked.ok());
  const auto plain =
      simulate_cluster(hw::ivybridge_node(), hw::titan_xp(), jobs, config);
  expect_identical(checked.value(), plain, "checked");
}

TEST(ClusterLedger, LongTracePowerStaysConserved) {
  // Hundreds of start/finish pairs over a tight budget: the ledger must
  // keep the implied free power consistent with the outcomes' timeline —
  // no oversubscription at any instant on either path.
  Xoshiro256 rng(99, 5);
  std::vector<SimJob> jobs;
  for (int j = 0; j < 200; ++j) {
    SimJob job;
    job.wl = j % 3 == 0 ? workload::stream_cpu()
                        : (j % 3 == 1 ? workload::dgemm() : workload::sra());
    job.name = "j" + std::to_string(j);
    job.work_gunits = rng.uniform(1.0, 1500.0);
    job.arrival = Seconds{rng.uniform(0.0, 2000.0)};
    jobs.push_back(std::move(job));
  }
  ClusterSimConfig config;
  config.nodes = 4;
  config.global_budget = Watts{520.0};
  config.queue_policy = QueuePolicy::kBackfill;

  for (const ClusterPath path :
       {ClusterPath::kFast, ClusterPath::kReference}) {
    config.path = path;
    const auto run = simulate_cluster(hw::ivybridge_node(), jobs, config);
    EXPECT_EQ(run.jobs.size(), 200u);
    for (const auto& probe : run.jobs) {
      const double t = probe.start.value();
      double in_use = 0.0;
      for (const auto& o : run.jobs) {
        if (o.start.value() <= t + 1e-9 && t < o.finish.value() - 1e-9) {
          in_use += o.budget.value();
        }
      }
      EXPECT_LE(in_use, config.global_budget.value() + 1e-6)
          << "t=" << t << " path=" << static_cast<int>(path);
    }
  }
}

TEST(ClusterBackfillEdge, BackfilledJobFinishesBeforeBlockedHeadStarts) {
  // After the first DGEMM claims its ~226 W demand, ~136 W remain: below
  // the second DGEMM's ~142 W threshold (head blocks) but above SRA's
  // ~133 W threshold. SRA backfills, and being short, finishes before the
  // blocked head ever gets power.
  std::vector<SimJob> jobs{
      {"big-0", workload::dgemm(), Seconds{0.0}, 30000.0},
      {"big-1", workload::dgemm(), Seconds{1.0}, 30000.0},
      {"small", workload::sra(), Seconds{2.0}, 1.0},
  };
  ClusterSimConfig config;
  config.nodes = 3;
  config.global_budget = Watts{362.0};
  config.queue_policy = QueuePolicy::kBackfill;
  for (const ClusterPath path :
       {ClusterPath::kFast, ClusterPath::kReference}) {
    config.path = path;
    const auto run = simulate_cluster(hw::ivybridge_node(), jobs, config);
    ASSERT_EQ(run.jobs.size(), 3u);
    const auto find = [&](const std::string& name) -> const JobOutcome& {
      for (const auto& o : run.jobs) {
        if (o.name == name) return o;
      }
      ADD_FAILURE() << name << " missing";
      return run.jobs.front();
    };
    EXPECT_LT(find("small").finish.value(), find("big-1").start.value());
    // The head still runs eventually — backfill must not starve it.
    EXPECT_GT(find("big-1").perf, 0.0);
  }
}

TEST(ClusterBackfillEdge, EqualCandidatesStartInArrivalOrder) {
  // Behind a blocked head, two identical backfill candidates must start
  // in arrival order — the incremental index scans its buckets in job
  // order, exactly like the linear rescan.
  std::vector<SimJob> jobs{
      {"head", workload::dgemm(), Seconds{0.0}, 30000.0},
      {"blocked", workload::dgemm(), Seconds{1.0}, 30000.0},
      {"fill-a", workload::sra(), Seconds{2.0}, 400.0},
      {"fill-b", workload::sra(), Seconds{2.5}, 400.0},
  };
  ClusterSimConfig config;
  config.nodes = 4;
  config.global_budget = Watts{362.0};
  config.queue_policy = QueuePolicy::kBackfill;
  for (const ClusterPath path :
       {ClusterPath::kFast, ClusterPath::kReference}) {
    config.path = path;
    const auto run = simulate_cluster(hw::ivybridge_node(), jobs, config);
    ASSERT_EQ(run.jobs.size(), 4u);
    double start_a = -1.0;
    double start_b = -1.0;
    for (const auto& o : run.jobs) {
      if (o.name == "fill-a") start_a = o.start.value();
      if (o.name == "fill-b") start_b = o.start.value();
    }
    EXPECT_LE(start_a, start_b) << "path=" << static_cast<int>(path);
  }
}

TEST(ClusterDeterminism, IdenticalAcrossPoolSizes) {
  // Parallel pre-profiling writes disjoint slots; the run must not depend
  // on how many workers filled them.
  std::vector<SimJob> jobs;
  const auto wls = workload::cpu_suite();
  for (std::size_t j = 0; j < 24; ++j) {
    jobs.push_back({"j" + std::to_string(j), wls[j % wls.size()],
                    Seconds{static_cast<double>(j)}, 500.0});
  }
  ClusterSimConfig config;
  config.nodes = 3;
  config.global_budget = Watts{500.0};
  config.queue_policy = QueuePolicy::kBackfill;

  ThreadPool one(1);
  ThreadPool many(4);
  config.pool = &one;
  const auto run_one = simulate_cluster(hw::ivybridge_node(), jobs, config);
  config.pool = &many;
  const auto run_many = simulate_cluster(hw::ivybridge_node(), jobs, config);
  config.pool = nullptr;  // global pool
  const auto run_global = simulate_cluster(hw::ivybridge_node(), jobs, config);
  expect_identical(run_one, run_many, "pool-1-vs-4");
  expect_identical(run_one, run_global, "pool-1-vs-global");
}

}  // namespace
}  // namespace pbc::core
