#include "core/scorecard.hpp"

#include <gtest/gtest.h>

namespace pbc::core {
namespace {

TEST(Scorecard, EveryHeadlineClaimStaysInBand) {
  // The full EXPERIMENTS.md comparison, as one assertion: calibration or
  // model drift that silently breaks a reproduced result fails here.
  const auto results = run_scorecard();
  ASSERT_GE(results.size(), 12u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.in_band) << r.id << ": " << r.claim << " — measured "
                           << r.measured;
  }
  EXPECT_TRUE(all_in_band(results));
}

TEST(Scorecard, ResultsAreFullyPopulated) {
  for (const auto& r : run_scorecard()) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.claim.empty());
    EXPECT_FALSE(r.measured.empty());
    EXPECT_LE(r.band_lo, r.band_hi) << r.id;
  }
}

TEST(Scorecard, Deterministic) {
  const auto a = run_scorecard();
  const auto b = run_scorecard();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << a[i].id;
  }
}

TEST(Scorecard, AllInBandDetectsFailures) {
  auto results = run_scorecard();
  ASSERT_FALSE(results.empty());
  results[0].in_band = false;
  EXPECT_FALSE(all_in_band(results));
}

}  // namespace
}  // namespace pbc::core
