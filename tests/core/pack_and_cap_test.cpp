#include "core/pack_and_cap.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(PackedExecution, FewerCoresDrawLessPower) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto all = node.steady_state_packed(20, Watts{500.0}, Watts{500.0});
  const auto half = node.steady_state_packed(10, Watts{500.0}, Watts{500.0});
  EXPECT_LT(half.proc_power.value(), all.proc_power.value());
  EXPECT_LT(half.perf, all.perf);  // compute-bound: cores are throughput
}

TEST(PackedExecution, CoreCountClamped) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto zero = node.steady_state_packed(0, Watts{300.0}, Watts{300.0});
  const auto one = node.steady_state_packed(1, Watts{300.0}, Watts{300.0});
  EXPECT_EQ(zero.perf, one.perf);
  const auto over = node.steady_state_packed(99, Watts{300.0}, Watts{300.0});
  const auto all = node.steady_state(Watts{300.0}, Watts{300.0});
  EXPECT_EQ(over.perf, all.perf);
}

TEST(PackedExecution, HalfTheCoresKeepFullBandwidth) {
  // ~Half the cores saturate the memory system: STREAM at 10/20 cores with
  // generous power matches the full-package bandwidth.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto all = node.steady_state_packed(20, Watts{500.0}, Watts{500.0});
  const auto half = node.steady_state_packed(10, Watts{500.0}, Watts{500.0});
  EXPECT_NEAR(half.perf, all.perf, 0.02 * all.perf);
  // A couple of cores cannot.
  const auto two = node.steady_state_packed(2, Watts{500.0}, Watts{500.0});
  EXPECT_LT(two.perf, 0.5 * all.perf);
}

TEST(PackAndCap, PackingWinsUnderTightCpuCaps) {
  // At a budget that forces all-cores execution into duty cycling, packing
  // onto fewer cores avoids the scenario-IV cliff (the Pack & Cap
  // result [11]).
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto r = pack_and_cap(node, Watts{150.0});
  EXPECT_LT(r.best_cores, 20);
  EXPECT_GT(r.packing_gain(), 1.1);
}

TEST(PackAndCap, AllCoresWinAtGenerousBudgets) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto r = pack_and_cap(node, Watts{260.0});
  EXPECT_EQ(r.best_cores, 20);
  EXPECT_NEAR(r.packing_gain(), 1.0, 1e-9);
}

TEST(PackAndCap, SplitSumsToBudget) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_cg());
  const auto r = pack_and_cap(node, Watts{180.0});
  EXPECT_NEAR((r.cpu_cap + r.mem_cap).value(), 180.0, 1e-9);
  EXPECT_GT(r.perf, 0.0);
  EXPECT_GE(r.perf, r.perf_all_cores);
}

TEST(PackAndCap, GainNeverBelowOne) {
  // The all-cores configuration is inside the search space, so packing can
  // only help.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  for (double b : {150.0, 180.0, 220.0}) {
    const auto r = pack_and_cap(node, Watts{b});
    EXPECT_GE(r.packing_gain(), 1.0 - 1e-9) << b;
  }
}

}  // namespace
}  // namespace pbc::core
