// Differential layer for the trace-replay / dynamic-shifting engine: the
// fast path (shared PhaseNodeSet, split/climb memoization, warm-started
// solves) must be bit-identical to the retained reference path over
// randomized traces, budgets, and configs; plus batch determinism,
// warm-start invariance, checked-variant errors, machine-derived floors,
// and the aggregate-cap / shifting-beats-static contracts.
#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "core/dynamic.hpp"
#include "hw/platforms.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/trace.hpp"

namespace pbc {
namespace {

void expect_replays_equal(const sim::TraceReplayResult& a,
                          const sim::TraceReplayResult& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const auto& x = a.segments[i];
    const auto& y = b.segments[i];
    EXPECT_EQ(x.phase_index, y.phase_index) << "segment " << i;
    EXPECT_EQ(x.work_units, y.work_units) << "segment " << i;
    EXPECT_EQ(x.duration.value(), y.duration.value()) << "segment " << i;
    EXPECT_EQ(x.proc_power.value(), y.proc_power.value()) << "segment " << i;
    EXPECT_EQ(x.mem_power.value(), y.mem_power.value()) << "segment " << i;
    EXPECT_EQ(x.rate_gunits, y.rate_gunits) << "segment " << i;
  }
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.total_time.value(), b.total_time.value());
  EXPECT_EQ(a.proc_energy.value(), b.proc_energy.value());
  EXPECT_EQ(a.mem_energy.value(), b.mem_energy.value());
}

void expect_shifts_equal(const core::ShiftingResult& a,
                         const core::ShiftingResult& b) {
  EXPECT_EQ(a.shifts, b.shifts);
  ASSERT_EQ(a.caps.size(), b.caps.size());
  for (std::size_t i = 0; i < a.caps.size(); ++i) {
    EXPECT_EQ(a.caps[i].phase_index, b.caps[i].phase_index) << "seg " << i;
    EXPECT_EQ(a.caps[i].cpu_cap.value(), b.caps[i].cpu_cap.value())
        << "seg " << i;
    EXPECT_EQ(a.caps[i].mem_cap.value(), b.caps[i].mem_cap.value())
        << "seg " << i;
  }
  expect_replays_equal(a.replay, b.replay);
}

/// Runs `count` randomized traces of `wl` through both engines — replay
/// under a random static split and shifting under a random budget/config —
/// and requires exact equality throughout.
void run_differential(const workload::Workload& wl, std::size_t count,
                      std::uint64_t seed) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, wl);
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  Xoshiro256 rng(seed);

  for (std::size_t t = 0; t < count; ++t) {
    workload::TraceOptions opt;
    opt.total_units = rng.uniform(10.0, 80.0);
    opt.segment_units = rng.uniform(0.5, 3.0);
    opt.irregularity = rng.uniform();
    opt.seed = seed * 1000 + t;
    const auto trace = workload::generate_trace(wl, opt);

    const Watts cpu_cap{rng.uniform(40.0, 160.0)};
    const Watts mem_cap{rng.uniform(40.0, 120.0)};
    const auto ref = sim::replay_trace(node, trace, cpu_cap, mem_cap,
                                       sim::ReplayPath::kReference);
    const auto fast = sim::replay_trace(*nodes, trace, cpu_cap, mem_cap);
    expect_replays_equal(ref, fast);

    core::ShiftingConfig cfg;
    cfg.step = Watts{rng.uniform(1.0, 8.0)};
    cfg.max_steps_per_segment = static_cast<int>(rng.uniform(1.0, 12.0));
    const Watts budget{rng.uniform(120.0, 280.0)};
    core::ShiftingConfig ref_cfg = cfg;
    ref_cfg.path = sim::ReplayPath::kReference;
    const auto sref = core::replay_with_shifting(node, trace, budget, ref_cfg);
    const auto sfast = core::replay_with_shifting(*nodes, trace, budget, cfg);
    expect_shifts_equal(sref, sfast);
  }
}

// 4 × 128 = 512 randomized traces, each checked on both the replay and
// the shifting path.
TEST(ReplayDifferential, FastMatchesReferenceOnNpbFt) {
  run_differential(workload::npb_ft(), 128, 11);
}

TEST(ReplayDifferential, FastMatchesReferenceOnNpbBt) {
  run_differential(workload::npb_bt(), 128, 23);
}

TEST(ReplayDifferential, FastMatchesReferenceOnNpbSp) {
  run_differential(workload::npb_sp(), 128, 37);
}

TEST(ReplayDifferential, FastMatchesReferenceOnDgemm) {
  run_differential(workload::dgemm(), 128, 53);
}

TEST(ReplayDifferential, NodeOverloadFastPathMatchesPreparedSet) {
  // The node-based overload's default kFast builds a transient set; it
  // must agree with a caller-prepared set and with the reference path.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const sim::CpuNodeSim node(machine, wl);
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto trace = workload::generate_trace(wl, {60.0, 1.0, 0.7, 5});
  const auto via_node = sim::replay_trace(node, trace, Watts{90.0},
                                          Watts{80.0});
  const auto via_set = sim::replay_trace(*nodes, trace, Watts{90.0},
                                         Watts{80.0});
  expect_replays_equal(via_node, via_set);
}

TEST(ReplayBatch, ReplayGridMatchesSingles) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_bt();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  std::vector<workload::PhaseTrace> traces;
  for (std::uint64_t s = 0; s < 3; ++s) {
    traces.push_back(workload::generate_trace(wl, {50.0, 1.0, 0.6, 100 + s}));
  }
  const std::vector<sim::CapPair> caps = {
      {Watts{80.0}, Watts{70.0}}, {Watts{100.0}, Watts{80.0}},
      {Watts{120.0}, Watts{70.0}}, {Watts{60.0}, Watts{90.0}}};
  const auto batch = sim::replay_trace_batch(*nodes, traces, caps);
  ASSERT_EQ(batch.size(), traces.size() * caps.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const auto single = sim::replay_trace(*nodes, traces[t],
                                            caps[c].cpu_cap, caps[c].mem_cap);
      expect_replays_equal(batch[t * caps.size() + c], single);
    }
  }
}

TEST(ReplayBatch, ShiftingGridMatchesSinglesAcrossPoolSizes) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  std::vector<workload::PhaseTrace> traces;
  for (std::uint64_t s = 0; s < 3; ++s) {
    traces.push_back(workload::generate_trace(wl, {40.0, 1.0, 0.5, 200 + s}));
  }
  const std::vector<Watts> budgets = {Watts{150.0}, Watts{170.0},
                                      Watts{200.0}, Watts{240.0}};

  std::vector<core::ShiftingResult> singles;
  for (const auto& trace : traces) {
    for (const Watts b : budgets) {
      singles.push_back(core::replay_with_shifting(*nodes, trace, b));
    }
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{7}}) {
    ThreadPool pool(threads);
    const auto batch = core::shifting_batch(*nodes, traces, budgets, {},
                                            &pool);
    ASSERT_EQ(batch.size(), singles.size()) << threads << " threads";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_shifts_equal(batch[i], singles[i]);
    }
  }
}

TEST(ReplayBatch, NestedOnPoolWorkerFallsBackToSerial) {
  // Calling a batch from inside a pool task must not deadlock; it runs
  // serially and still matches.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::dgemm();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const std::vector<workload::PhaseTrace> traces = {
      workload::generate_trace(wl, {30.0, 1.0, 0.3, 7})};
  const std::vector<Watts> budgets = {Watts{160.0}, Watts{200.0}};
  const auto direct = core::shifting_batch(*nodes, traces, budgets);

  ThreadPool pool(2);
  std::vector<core::ShiftingResult> nested;
  pool.parallel_for_index(1, [&](std::size_t) {
    nested = core::shifting_batch(*nodes, traces, budgets, {}, &pool);
  });
  ASSERT_EQ(nested.size(), direct.size());
  for (std::size_t i = 0; i < nested.size(); ++i) {
    expect_shifts_equal(nested[i], direct[i]);
  }
}

TEST(ReplayWarmStart, RepeatedRunsOnSharedSetAreInvariant) {
  // The fast engine memoizes within a run and warm-starts solves via
  // hints; neither may leak across calls — the Nth run of any (trace,
  // budget) on a shared set must equal the first, in any order.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto t1 = workload::generate_trace(wl, {50.0, 1.0, 0.6, 31});
  const auto t2 = workload::generate_trace(wl, {50.0, 1.0, 0.6, 32});

  const auto first = core::replay_with_shifting(*nodes, t1, Watts{170.0});
  const auto other = core::replay_with_shifting(*nodes, t2, Watts{150.0});
  const auto again = core::replay_with_shifting(*nodes, t1, Watts{170.0});
  (void)other;
  expect_shifts_equal(first, again);

  const auto r1 = sim::replay_trace(*nodes, t1, Watts{95.0}, Watts{75.0});
  const auto rx = sim::replay_trace(*nodes, t2, Watts{60.0}, Watts{110.0});
  const auto r2 = sim::replay_trace(*nodes, t1, Watts{95.0}, Watts{75.0});
  (void)rx;
  expect_replays_equal(r1, r2);
}

TEST(ReplayWarmStart, HintedSteadyStateMatchesUnhinted) {
  // Hints only seed the governor bisection's starting gallop; the solve
  // they return must be bit-identical to the cold one, whatever was
  // solved before them.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_sp());
  sim::SolveHint hint;
  Xoshiro256 rng(77);
  for (int i = 0; i < 64; ++i) {
    const Watts cpu{rng.uniform(40.0, 160.0)};
    const Watts mem{rng.uniform(40.0, 120.0)};
    const auto hinted = node.steady_state_hinted(cpu, mem, &hint);
    const auto cold = node.steady_state(cpu, mem);
    EXPECT_EQ(hinted, cold) << "solve " << i;
  }
}

TEST(ReplayChecked, RejectsOutOfRangePhaseIndex) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  workload::PhaseTrace trace = {{0, 5.0}, {wl.phases.size(), 5.0}};
  const auto r = sim::replay_trace_checked(*nodes, trace, Watts{90.0},
                                           Watts{80.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kOutOfRange);
  EXPECT_NE(r.error().message.find("phase_index"), std::string::npos);
}

TEST(ReplayChecked, RejectsNonPositiveWorkAndCaps) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const workload::PhaseTrace bad_work = {{0, 0.0}};
  const auto r1 = sim::replay_trace_checked(*nodes, bad_work, Watts{90.0},
                                            Watts{80.0});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, ErrorCode::kInvalidArgument);

  const workload::PhaseTrace good = {{0, 5.0}};
  const auto r2 = sim::replay_trace_checked(*nodes, good, Watts{0.0},
                                            Watts{80.0});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code, ErrorCode::kInvalidArgument);
}

TEST(ReplayChecked, AcceptsWellFormedTraceAndMatchesUnchecked) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_bt();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto trace = workload::generate_trace(wl, {40.0, 1.0, 0.5, 9});
  const auto checked = sim::replay_trace_checked(*nodes, trace, Watts{100.0},
                                                 Watts{80.0});
  ASSERT_TRUE(checked.ok());
  expect_replays_equal(checked.value(),
                       sim::replay_trace(*nodes, trace, Watts{100.0},
                                         Watts{80.0}));
}

TEST(ReplayChecked, ShiftingRejectsBadConfigAndInfeasibleBudget) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto trace = workload::generate_trace(wl, {30.0, 1.0, 0.5, 4});

  core::ShiftingConfig bad_step;
  bad_step.step = Watts{0.0};
  const auto r1 = core::replay_with_shifting_checked(*nodes, trace,
                                                     Watts{170.0}, bad_step);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, ErrorCode::kInvalidArgument);

  core::ShiftingConfig bad_steps;
  bad_steps.max_steps_per_segment = -1;
  const auto r2 = core::replay_with_shifting_checked(*nodes, trace,
                                                     Watts{170.0}, bad_steps);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code, ErrorCode::kInvalidArgument);

  // ivybridge floors are 48 + 68 = 116 W; a 100 W budget can't clear them.
  const auto r3 = core::replay_with_shifting_checked(*nodes, trace,
                                                     Watts{100.0});
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.error().code, ErrorCode::kFailedPrecondition);

  const auto ok = core::replay_with_shifting_checked(*nodes, trace,
                                                     Watts{170.0});
  ASSERT_TRUE(ok.ok());
  expect_shifts_equal(ok.value(),
                      core::replay_with_shifting(*nodes, trace, Watts{170.0}));
}

TEST(ReplayFloors, DerivedFromMachineThenFallbackThenOverride) {
  const core::ShiftingConfig cfg;
  const auto ivy = core::shifting_floors(cfg, hw::ivybridge_node());
  EXPECT_EQ(ivy.first.value(), 48.0);
  EXPECT_EQ(ivy.second.value(), 68.0);

  const auto has = core::shifting_floors(cfg, hw::haswell_node());
  EXPECT_EQ(has.first.value(), 50.0);
  EXPECT_EQ(has.second.value(), 44.0);

  hw::CpuMachine floorless = hw::ivybridge_node();
  floorless.cpu.floor = Watts{0.0};
  floorless.dram.floor = Watts{0.0};
  const auto fb = core::shifting_floors(cfg, floorless);
  EXPECT_EQ(fb.first.value(), 48.0);
  EXPECT_EQ(fb.second.value(), 68.0);

  core::ShiftingConfig explicit_cfg;
  explicit_cfg.cpu_min = Watts{55.0};
  explicit_cfg.mem_min = Watts{60.0};
  const auto ov = core::shifting_floors(explicit_cfg, hw::haswell_node());
  EXPECT_EQ(ov.first.value(), 55.0);
  EXPECT_EQ(ov.second.value(), 60.0);
}

TEST(ReplayFloors, HaswellShiftsRespectItsOwnFloors) {
  // Haswell's DRAM floor (44 W) is below the old hard-coded 68 W; derived
  // floors let the shifter move power the old default forbade.
  const hw::CpuMachine machine = hw::haswell_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto trace = workload::generate_trace(wl, {60.0, 1.0, 0.6, 13});
  const auto r = core::replay_with_shifting(*nodes, trace, Watts{150.0});
  for (const auto& caps : r.caps) {
    EXPECT_GE(caps.cpu_cap.value(), 50.0 - 1e-9);
    EXPECT_GE(caps.mem_cap.value(), 44.0 - 1e-9);
  }
}

TEST(ReplayAggregate, ShiftingAggregateCapsAreTimeWeightedMeans) {
  const hw::CpuMachine machine = hw::ivybridge_node();
  const auto wl = workload::npb_ft();
  const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
  const auto trace = workload::generate_trace(wl, {60.0, 1.0, 0.6, 21});
  const auto r = core::replay_with_shifting(*nodes, trace, Watts{170.0});
  ASSERT_EQ(r.caps.size(), r.replay.segments.size());
  ASSERT_GT(r.replay.total_time.value(), 0.0);

  double cpu_weighted = 0.0;
  double mem_weighted = 0.0;
  for (std::size_t i = 0; i < r.caps.size(); ++i) {
    cpu_weighted += r.caps[i].cpu_cap.value() *
                    r.replay.segments[i].duration.value();
    mem_weighted += r.caps[i].mem_cap.value() *
                    r.replay.segments[i].duration.value();
  }
  const double total = r.replay.total_time.value();
  EXPECT_DOUBLE_EQ(r.replay.aggregate.proc_cap.value(), cpu_weighted / total);
  EXPECT_DOUBLE_EQ(r.replay.aggregate.mem_cap.value(), mem_weighted / total);
  // And the mean caps still sum to the budget (each segment's pair does).
  EXPECT_NEAR(r.replay.aggregate.proc_cap.value() +
                  r.replay.aggregate.mem_cap.value(),
              170.0, 1e-9);
}

TEST(ReplayProperty, ShiftingNeverLosesToStaticCoordAtTightBudgets) {
  for (const auto& wl : {workload::npb_ft(), workload::npb_bt()}) {
    const hw::CpuMachine machine = hw::ivybridge_node();
    const sim::CpuNodeSim node(machine, wl);
    const auto nodes = sim::make_prepared_phase_nodes(machine, wl);
    const auto profile = core::profile_critical_powers(node);
    const auto trace = workload::generate_trace(wl, {80.0, 1.0, 0.6, 29});
    for (const Watts budget : {Watts{140.0}, Watts{170.0}, Watts{200.0}}) {
      const auto dyn = core::replay_with_shifting(*nodes, trace, budget);
      const auto alloc = core::coord_cpu(profile, budget);
      const auto fixed = sim::replay_trace(*nodes, trace, alloc.cpu,
                                           alloc.mem);
      // The climb starts at COORD's split and only commits strict
      // improvements, so it can never end below the static baseline.
      EXPECT_GE(dyn.replay.aggregate.perf, fixed.aggregate.perf)
          << wl.name << " @ " << budget.value() << " W";
    }
  }
}

}  // namespace
}  // namespace pbc
