#include "core/critical.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

class CriticalPowersTest
    : public ::testing::TestWithParam<workload::Workload> {};

TEST_P(CriticalPowersTest, CpuLevelsAreOrdered) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), GetParam());
  const auto cp = profile_critical_powers(node);
  EXPECT_GT(cp.cpu_l1, cp.cpu_l2) << GetParam().name;
  EXPECT_GT(cp.cpu_l2, cp.cpu_l3) << GetParam().name;
  EXPECT_GE(cp.cpu_l3, cp.cpu_l4) << GetParam().name;
  EXPECT_GE(cp.mem_l1, cp.mem_l2) << GetParam().name;
  EXPECT_GE(cp.mem_l2, cp.mem_l3) << GetParam().name;
}

TEST_P(CriticalPowersTest, HardwareFloorsAreApplicationIndependent) {
  const auto machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, GetParam());
  const auto cp = profile_critical_powers(node);
  EXPECT_EQ(cp.cpu_l4, machine.cpu.floor);
  EXPECT_EQ(cp.mem_l3, machine.dram.floor);
}

TEST_P(CriticalPowersTest, ThresholdsAreOrdered) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), GetParam());
  const auto cp = profile_critical_powers(node);
  EXPECT_LT(cp.productive_threshold(), cp.max_demand());
}

std::string wl_name(const ::testing::TestParamInfo<workload::Workload>& i) {
  return i.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllCpuBenchmarks, CriticalPowersTest,
                         ::testing::ValuesIn(workload::cpu_suite()), wl_name);

TEST(CriticalPowers, SraValuesMatchPaperFigures) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto cp = profile_critical_powers(node);
  EXPECT_NEAR(cp.cpu_l1.value(), 112.0, 8.0);   // paper: ~112 W
  EXPECT_NEAR(cp.cpu_l2.value(), 68.0, 8.0);    // paper: scenario II edge
  EXPECT_DOUBLE_EQ(cp.cpu_l4.value(), 48.0);    // paper: 48 W floor
  EXPECT_NEAR(cp.mem_l1.value(), 116.0, 8.0);   // paper: ~116 W
  EXPECT_DOUBLE_EQ(cp.mem_l3.value(), 68.0);    // paper: ~68 W floor
}

TEST(CriticalPowers, DgemmDemandsMoreCpuThanStream) {
  const auto machine = hw::ivybridge_node();
  const auto dgemm = profile_critical_powers(
      sim::CpuNodeSim(machine, workload::dgemm()));
  const auto stream = profile_critical_powers(
      sim::CpuNodeSim(machine, workload::stream_cpu()));
  EXPECT_GT(dgemm.cpu_l1, stream.cpu_l1);
  EXPECT_LT(dgemm.mem_l1, stream.mem_l1);
}

TEST(GpuParams, OrderingHolds) {
  for (const auto& make : {hw::titan_xp, hw::titan_v}) {
    const auto card = make();
    for (const auto& w : workload::gpu_suite()) {
      const sim::GpuNodeSim node(card, w);
      const auto p = profile_gpu_params(node);
      EXPECT_GT(p.tot_max, p.tot_ref) << w.name << " " << card.name;
      EXPECT_GE(p.tot_ref, p.tot_min) << w.name << " " << card.name;
      EXPECT_GT(p.mem_max, p.mem_min) << w.name << " " << card.name;
    }
  }
}

TEST(GpuParams, SgemmComputeIntensiveOnXpOnly) {
  // Paper §5.2: P_totmax near the 300 W hardware max flags a compute-
  // intensive application. On the Titan V the same kernel saturates around
  // 180 W, so the flag clears and the memory-intensive path is used — the
  // paper's "further reduced" Titan V variant.
  const sim::GpuNodeSim xp(hw::titan_xp(), workload::sgemm());
  EXPECT_TRUE(profile_gpu_params(xp).compute_intensive);
  const sim::GpuNodeSim v(hw::titan_v(), workload::sgemm());
  EXPECT_FALSE(profile_gpu_params(v).compute_intensive);
}

TEST(GpuParams, MemoryIntensiveAppsAreNotComputeIntensive) {
  for (const auto& w :
       {workload::stream_gpu(), workload::minife(), workload::hpcg()}) {
    const sim::GpuNodeSim node(hw::titan_xp(), w);
    EXPECT_FALSE(profile_gpu_params(node).compute_intensive) << w.name;
  }
}

TEST(GpuParams, MemRangeIsCardProperty) {
  // mem_min / mem_max come from the card, not the application.
  const auto card = hw::titan_xp();
  const auto a =
      profile_gpu_params(sim::GpuNodeSim(card, workload::sgemm()));
  const auto b =
      profile_gpu_params(sim::GpuNodeSim(card, workload::minife()));
  EXPECT_EQ(a.mem_min, b.mem_min);
  EXPECT_EQ(a.mem_max, b.mem_max);
}

}  // namespace
}  // namespace pbc::core
