#include "core/interpolation.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(Interpolation, FindsNearOracleSplit) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{224.0};
  sweep.samples = sim::sweep_cpu_split(
      node, Watts{224.0}, {Watts{48.0}, Watts{40.0}, Watts{2.0}});
  const double oracle = oracle_best(sweep).perf;
  const auto r = interpolated_best(node, Watts{224.0}, Watts{16.0});
  EXPECT_GT(r.achieved_perf, 0.9 * oracle);
}

TEST(Interpolation, UsesFewerSamplesThanFineSweep) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const auto r = interpolated_best(node, Watts{208.0}, Watts{16.0});
  // (208-40-48)/16 + 1 samples + 1 confirmation.
  EXPECT_LE(r.samples_used, 10u);
  EXPECT_GE(r.samples_used, 5u);
}

TEST(Interpolation, FinerStrideIsAtLeastAsGood) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto coarse = interpolated_best(node, Watts{208.0}, Watts{32.0});
  const auto fine = interpolated_best(node, Watts{208.0}, Watts{8.0});
  EXPECT_GE(fine.achieved_perf, 0.95 * coarse.achieved_perf);
  EXPECT_GT(fine.samples_used, coarse.samples_used);
}

TEST(Interpolation, SplitSumsToBudget) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_cg());
  const auto r = interpolated_best(node, Watts{200.0});
  EXPECT_NEAR((r.best_proc_cap + r.best_mem_cap).value(), 200.0, 1e-9);
}

TEST(Interpolation, PredictionCloseToAchievedOnSmoothRegions) {
  // Piecewise-linear interpolation between real samples cannot overshoot
  // badly when the underlying curve is piecewise-linear itself.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  const auto r = interpolated_best(node, Watts{208.0}, Watts{8.0});
  EXPECT_NEAR(r.achieved_perf, r.predicted_perf,
              0.15 * std::max(r.predicted_perf, 1.0));
}

TEST(Interpolation, WorksAcrossTheSuite) {
  const auto machine = hw::ivybridge_node();
  for (const auto& wl : workload::cpu_suite()) {
    const sim::CpuNodeSim node(machine, wl);
    const auto r = interpolated_best(node, Watts{220.0});
    EXPECT_GT(r.achieved_perf, 0.0) << wl.name;
  }
}

}  // namespace
}  // namespace pbc::core
