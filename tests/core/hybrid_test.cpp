#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

HybridNode sp_minife_node() {
  return HybridNode{hw::ivybridge_node(), hw::titan_xp(), workload::npb_sp(),
                    workload::minife()};
}

TEST(Hybrid, AllocationStaysWithinBudget) {
  const auto node = sp_minife_node();
  for (double b : {320.0, 400.0, 480.0}) {
    const auto a = coord_hybrid(node, Watts{b});
    EXPECT_LE(a.total().value(), b + 1e-6) << b;
    EXPECT_GT(a.host_perf, 0.0) << b;
    EXPECT_GT(a.gpu_perf, 0.0) << b;
  }
}

TEST(Hybrid, SurplusAboveCombinedDemand) {
  const auto node = sp_minife_node();
  const auto a = coord_hybrid(node, Watts{600.0});
  EXPECT_EQ(a.status, CoordStatus::kPowerSurplus);
  EXPECT_GT(a.surplus.value(), 50.0);
  EXPECT_NEAR(a.utility, 2.0, 0.05);  // both near solo speed
}

TEST(Hybrid, TooSmallBudgetFlagged) {
  const auto node = sp_minife_node();
  const auto a = coord_hybrid(node, Watts{200.0});
  EXPECT_EQ(a.status, CoordStatus::kBudgetTooSmall);
}

TEST(Hybrid, UtilityWithinRange) {
  const auto node = sp_minife_node();
  for (double b : {300.0, 400.0, 500.0}) {
    const auto a = coord_hybrid(node, Watts{b});
    EXPECT_GE(a.utility, 0.0);
    EXPECT_LE(a.utility, 2.0 + 1e-6);
  }
}

TEST(Hybrid, UtilityMonotoneInBudget) {
  const auto node = sp_minife_node();
  double prev = 0.0;
  for (double b = 280.0; b <= 520.0; b += 40.0) {
    const auto a = coord_hybrid(node, Watts{b});
    EXPECT_GE(a.utility, prev - 0.02) << b;
    prev = a.utility;
  }
}

TEST(Hybrid, CoordTracksOracleAtModerateBudgets) {
  // Same shape as the single-device result: near-oracle once the budget
  // clears the productive band, a gap right above the threshold.
  const auto node = sp_minife_node();
  for (double b : {380.0, 440.0, 500.0}) {
    const auto c = coord_hybrid(node, Watts{b});
    const auto o = hybrid_oracle(node, Watts{b}, Watts{12.0});
    EXPECT_GT(c.utility, 0.88 * o.utility) << b;
  }
}

TEST(Hybrid, OracleRespectsBudget) {
  const auto node = sp_minife_node();
  const auto o = hybrid_oracle(node, Watts{400.0}, Watts{16.0});
  EXPECT_LE((o.host.cpu + o.host.mem + o.gpu_cap).value(), 400.0 + 1e-6);
  EXPECT_GT(o.utility, 1.0);
}

TEST(Hybrid, GpuHeavyPairShiftsShareToGpu) {
  // SGEMM demands >300 W of board power; EP barely needs DRAM. The GPU
  // share must dominate for (EP, SGEMM) relative to (SP, MiniFE).
  const HybridNode gpu_heavy{hw::ivybridge_node(), hw::titan_xp(),
                             workload::npb_ep(), workload::sgemm()};
  const auto a = coord_hybrid(gpu_heavy, Watts{420.0});
  const auto b = coord_hybrid(sp_minife_node(), Watts{420.0});
  EXPECT_GT(a.gpu_cap.value(), b.gpu_cap.value());
}

}  // namespace
}  // namespace pbc::core
