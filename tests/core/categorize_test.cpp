#include "core/categorize.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

sim::BudgetSweep sra_sweep(double budget) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{budget};
  sweep.samples = sim::sweep_cpu_split(node, Watts{budget},
                                       {Watts{40.0}, Watts{32.0}, Watts{4.0}});
  return sweep;
}

TEST(Categorize, SraAt240ShowsAllSixCategories) {
  // Paper Fig. 3: at P_b = 240 W, SRA on IvyBridge exhibits scenarios I-VI.
  const auto machine = hw::ivybridge_node();
  const auto spans = category_spans_cpu(sra_sweep(240.0), machine);
  const auto cats = categories_present(spans);
  for (Category c : {Category::kI, Category::kII, Category::kIII,
                     Category::kIV, Category::kV, Category::kVI}) {
    EXPECT_NE(std::find(cats.begin(), cats.end(), c), cats.end())
        << "missing category " << to_string(c) << " in "
        << format_spans(spans);
  }
}

TEST(Categorize, SraSpansOrderedAlongSplitAxis) {
  // Low mem caps sit in V/III, the optimum in I, then II, IV, VI as the
  // CPU is starved (Fig. 3's left-to-right structure).
  const auto machine = hw::ivybridge_node();
  const auto spans = category_spans_cpu(sra_sweep(240.0), machine);
  ASSERT_GE(spans.size(), 5u);
  EXPECT_EQ(spans.front().category, Category::kV);
  EXPECT_EQ(spans.back().category, Category::kVI);
  // Category I must appear between III and II.
  std::size_t i_pos = 0;
  std::size_t iii_pos = 0;
  std::size_t ii_pos = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].category == Category::kI) i_pos = i;
    if (spans[i].category == Category::kIII) iii_pos = i;
    if (spans[i].category == Category::kII) ii_pos = i;
  }
  EXPECT_GT(i_pos, iii_pos);
  EXPECT_LT(i_pos, ii_pos);
}

TEST(Categorize, CategoryIRangeMatchesPaper) {
  // Paper: scenario I at P_mem ∈ [120, 132] W (we require overlap with a
  // widened band, not exact endpoints).
  const auto machine = hw::ivybridge_node();
  const auto spans = category_spans_cpu(sra_sweep(240.0), machine);
  for (const auto& sp : spans) {
    if (sp.category == Category::kI) {
      EXPECT_GT(sp.mem_hi.value(), 115.0);
      EXPECT_LT(sp.mem_lo.value(), 135.0);
      return;
    }
  }
  FAIL() << "no category I span";
}

TEST(Categorize, ScenarioIDisappearsWhenBudgetTooSmall) {
  // Paper §3.2: if the budget is below the sum of the component demands,
  // scenario I does not appear.
  const auto machine = hw::ivybridge_node();
  const auto cats =
      categories_present(category_spans_cpu(sra_sweep(180.0), machine));
  EXPECT_EQ(std::find(cats.begin(), cats.end(), Category::kI), cats.end());
}

TEST(Categorize, FewerScenariosAtSmallerBudgets) {
  const auto machine = hw::ivybridge_node();
  const auto big =
      categories_present(category_spans_cpu(sra_sweep(240.0), machine));
  const auto small =
      categories_present(category_spans_cpu(sra_sweep(150.0), machine));
  EXPECT_LT(small.size(), big.size());
}

TEST(Categorize, MechanismRules) {
  const auto machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, workload::sra());
  // Both generous: scenario I.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{150.0}, Watts{150.0}),
                           machine),
            Category::kI);
  // CPU lightly constrained (DVFS): II.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{85.0}, Watts{150.0}),
                           machine),
            Category::kII);
  // Memory constrained: III.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{150.0}, Watts{95.0}),
                           machine),
            Category::kIII);
  // CPU duty-cycled: IV.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{55.0}, Watts{150.0}),
                           machine),
            Category::kIV);
  // Memory cap below its floor: V.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{150.0}, Watts{50.0}),
                           machine),
            Category::kV);
  // CPU cap below its floor: VI.
  EXPECT_EQ(categorize_cpu(node.steady_state(Watts{40.0}, Watts{150.0}),
                           machine),
            Category::kVI);
}

TEST(Categorize, BlackboxAgreesWithMechanismOnInteriorPoints) {
  // The observational classifier must reproduce the telemetry-based one on
  // the vast majority of samples (span boundaries may disagree by one).
  const auto machine = hw::ivybridge_node();
  const auto sweep = sra_sweep(240.0);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    if (categorize_cpu_blackbox(sweep, i, machine) ==
        categorize_cpu(sweep.samples[i], machine)) {
      ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(sweep.samples.size()),
            0.70)
      << format_spans(category_spans_cpu(sweep, machine));
}

TEST(Categorize, GpuShowsOnlyCategoriesIThroughIII) {
  // Paper §4: GPU hardware excludes IV/V/VI.
  for (const auto& make :
       {hw::titan_xp, hw::titan_v}) {
    const auto card = make();
    for (const auto& w : workload::gpu_suite()) {
      const sim::GpuNodeSim node(card, w);
      for (double cap : {125.0, 160.0, 200.0, 250.0}) {
        sim::BudgetSweep sweep;
        sweep.budget = Watts{cap};
        sweep.samples = sim::sweep_gpu_split(node, Watts{cap});
        for (const auto& c :
             categories_present(category_spans_gpu(sweep))) {
          EXPECT_TRUE(c == Category::kI || c == Category::kII ||
                      c == Category::kIII)
              << w.name << " on " << card.name << " cap " << cap;
        }
      }
    }
  }
}

TEST(Categorize, GpuComputeIntensivePrefersLowMemClock) {
  // SGEMM at a small cap: performance falls as the memory clock rises —
  // category II readings dominate.
  const sim::GpuNodeSim node(hw::titan_xp(), workload::sgemm());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{125.0};
  sweep.samples = sim::sweep_gpu_split(node, Watts{125.0});
  const auto cats = categories_present(category_spans_gpu(sweep));
  EXPECT_NE(std::find(cats.begin(), cats.end(), Category::kII), cats.end());
}

TEST(Categorize, GpuMemoryIntensiveShowsCategoryIIIAtLargeCap) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::stream_gpu());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{250.0};
  sweep.samples = sim::sweep_gpu_split(node, Watts{250.0});
  const auto cats = categories_present(category_spans_gpu(sweep));
  EXPECT_NE(std::find(cats.begin(), cats.end(), Category::kIII), cats.end());
}

TEST(Categorize, FormatSpansIsReadable) {
  const auto machine = hw::ivybridge_node();
  const auto spans = category_spans_cpu(sra_sweep(240.0), machine);
  const std::string text = format_spans(spans);
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("I"), std::string::npos);
}

TEST(Categorize, CategoryToString) {
  EXPECT_STREQ(to_string(Category::kI), "I");
  EXPECT_STREQ(to_string(Category::kIV), "IV");
  EXPECT_STREQ(to_string(Category::kVI), "VI");
}

}  // namespace
}  // namespace pbc::core
