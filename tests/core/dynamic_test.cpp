#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

workload::PhaseTrace ft_trace() {
  return workload::generate_trace(workload::npb_ft(),
                                  {300.0, 2.0, 0.6, 17});
}

TEST(DynamicShifting, BeatsStaticCoordOnPhaseHeterogeneousWorkload) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto trace = ft_trace();
  const Watts budget{170.0};
  const auto dynamic = replay_with_shifting(node, trace, budget);
  const auto profile = profile_critical_powers(node);
  const auto alloc = coord_cpu(profile, budget);
  const auto fixed = sim::replay_trace(node, trace, alloc.cpu, alloc.mem);
  EXPECT_GT(dynamic.replay.aggregate.perf, fixed.aggregate.perf);
}

TEST(DynamicShifting, BeatsEveryStaticSplitWhenPhasesDiverge) {
  // No single static split is right for both of FT's phases at a tight
  // budget; the shifter's per-phase splits beat the best static one.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto trace = ft_trace();
  const Watts budget{170.0};
  const auto dynamic = replay_with_shifting(node, trace, budget);
  double best_static = 0.0;
  for (double m = 68.0; m <= budget.value() - 48.0; m += 4.0) {
    const auto r = sim::replay_trace(node, trace,
                                     Watts{budget.value() - m}, Watts{m});
    best_static = std::max(best_static, r.aggregate.perf);
  }
  EXPECT_GT(dynamic.replay.aggregate.perf, best_static);
}

TEST(DynamicShifting, TotalNeverExceedsBudget) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_bt());
  const auto trace =
      workload::generate_trace(workload::npb_bt(), {200.0, 2.0, 0.5, 3});
  const Watts budget{180.0};
  const auto r = replay_with_shifting(node, trace, budget);
  for (const auto& caps : r.caps) {
    EXPECT_NEAR((caps.cpu_cap + caps.mem_cap).value(), 180.0, 1e-9);
    EXPECT_GE(caps.cpu_cap.value(), 48.0);
    EXPECT_GE(caps.mem_cap.value(), 68.0);
  }
  for (const auto& seg : r.replay.segments) {
    EXPECT_LE(seg.proc_power.value() + seg.mem_power.value(), 180.1);
  }
}

TEST(DynamicShifting, CapsDifferAcrossPhases) {
  // The whole point: the converged split is phase-specific.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto r = replay_with_shifting(node, ft_trace(), Watts{170.0});
  double cpu_for_fft = -1.0;
  double cpu_for_transpose = -1.0;
  for (const auto& caps : r.caps) {
    (caps.phase_index == 0 ? cpu_for_fft : cpu_for_transpose) =
        caps.cpu_cap.value();
  }
  ASSERT_GE(cpu_for_fft, 0.0);
  ASSERT_GE(cpu_for_transpose, 0.0);
  // fft is compute-leaning, transpose bandwidth-leaning.
  EXPECT_GT(cpu_for_fft, cpu_for_transpose);
}

TEST(DynamicShifting, NoShiftsForSinglePhaseAtGenerousBudget) {
  // With plenty of power and one phase, COORD's start is already optimal;
  // the climber settles immediately.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto trace =
      workload::generate_trace(workload::dgemm(), {100.0, 5.0, 0.0, 1});
  const auto r = replay_with_shifting(node, trace, Watts{260.0});
  EXPECT_LE(r.shifts, 2u);
  EXPECT_GT(r.replay.aggregate.perf, 300.0);
}

TEST(DynamicShifting, EmptyTraceIsEmptyResult) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto r = replay_with_shifting(node, {}, Watts{200.0});
  EXPECT_TRUE(r.replay.segments.empty());
  EXPECT_EQ(r.shifts, 0u);
}

TEST(DynamicShifting, Deterministic) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto trace = ft_trace();
  const auto a = replay_with_shifting(node, trace, Watts{160.0});
  const auto b = replay_with_shifting(node, trace, Watts{160.0});
  EXPECT_EQ(a.replay.aggregate.perf, b.replay.aggregate.perf);
  EXPECT_EQ(a.shifts, b.shifts);
}

}  // namespace
}  // namespace pbc::core
