#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(OracleBest, ReturnsMaximumPerfSample) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::stream_cpu());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{208.0};
  sweep.samples = sim::sweep_cpu_split(node, Watts{208.0}, {});
  const auto& best = oracle_best(sweep);
  for (const auto& s : sweep.samples) EXPECT_LE(s.perf, best.perf);
}

TEST(MemoryFirst, GrantsMemoryItsFullDemandWhenAffordable) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto p = profile_critical_powers(node);
  const auto a = memory_first(p, Watts{200.0});
  EXPECT_EQ(a.mem, p.mem_l1);
  EXPECT_NEAR(a.cpu.value(), 200.0 - p.mem_l1.value(), 1e-9);
}

TEST(MemoryFirst, NeverSqueezesCpuBelowFloor) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto p = profile_critical_powers(node);
  const auto a = memory_first(p, Watts{130.0});
  EXPECT_GE(a.cpu, p.cpu_l4);
  EXPECT_NEAR(a.total().value(), 130.0, 1e-9);
}

TEST(MemoryFirst, SurplusAboveMaxDemand) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto p = profile_critical_powers(node);
  const auto a = memory_first(p, Watts{p.max_demand().value() + 25.0});
  EXPECT_EQ(a.status, CoordStatus::kPowerSurplus);
  EXPECT_NEAR(a.surplus.value(), 25.0, 1e-9);
  EXPECT_EQ(a.cpu, p.cpu_l1);
}

TEST(MemoryFirst, FlagsTooSmallBudgets) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::sra());
  const auto p = profile_critical_powers(node);
  const auto a =
      memory_first(p, Watts{p.productive_threshold().value() - 10.0});
  EXPECT_EQ(a.status, CoordStatus::kBudgetTooSmall);
}

TEST(FixedRatio, SplitsByFraction) {
  const auto a = fixed_ratio_split(Watts{200.0}, 0.6);
  EXPECT_DOUBLE_EQ(a.cpu.value(), 120.0);
  EXPECT_DOUBLE_EQ(a.mem.value(), 80.0);
}

TEST(FixedRatio, ClampsFraction) {
  EXPECT_DOUBLE_EQ(fixed_ratio_split(Watts{100.0}, 1.7).cpu.value(), 100.0);
  EXPECT_DOUBLE_EQ(fixed_ratio_split(Watts{100.0}, -0.5).cpu.value(), 0.0);
}

}  // namespace
}  // namespace pbc::core
