#include "core/cluster_sim.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

std::vector<SimJob> mixed_jobs() {
  return {
      {"j0-dgemm", workload::dgemm(), Seconds{0.0}, 5000.0},
      {"j1-stream", workload::stream_cpu(), Seconds{1.0}, 100.0},
      {"j2-mg", workload::npb_mg(), Seconds{2.0}, 1500.0},
      {"j3-sra", workload::sra(), Seconds{3.0}, 10.0},
      {"j4-bt", workload::npb_bt(), Seconds{4.0}, 2500.0},
      {"j5-cg", workload::npb_cg(), Seconds{30.0}, 700.0},
  };
}

ClusterSimConfig base_config() {
  ClusterSimConfig cfg;
  cfg.nodes = 3;
  cfg.global_budget = Watts{600.0};
  return cfg;
}

TEST(ClusterSim, AllJobsComplete) {
  const auto run =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), base_config());
  EXPECT_EQ(run.jobs.size(), 6u);
  for (const auto& o : run.jobs) {
    EXPECT_GE(o.start.value(), o.arrival.value()) << o.name;
    EXPECT_GT(o.finish.value(), o.start.value()) << o.name;
    EXPECT_GT(o.perf, 0.0) << o.name;
  }
}

TEST(ClusterSim, MakespanIsLatestFinish) {
  const auto run =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), base_config());
  double latest = 0.0;
  for (const auto& o : run.jobs) latest = std::max(latest, o.finish.value());
  EXPECT_DOUBLE_EQ(run.makespan.value(), latest);
}

TEST(ClusterSim, PowerNeverOversubscribed) {
  // Reconstruct the power timeline from the outcomes: at any instant the
  // sum of budgets of in-flight jobs must fit the global budget.
  const auto cfg = base_config();
  const auto run = simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  std::vector<double> events;
  for (const auto& o : run.jobs) {
    events.push_back(o.start.value());
    events.push_back(o.finish.value());
  }
  for (double t : events) {
    double in_use = 0.0;
    int active = 0;
    for (const auto& o : run.jobs) {
      if (o.start.value() <= t + 1e-9 && t < o.finish.value() - 1e-9) {
        in_use += o.budget.value();
        ++active;
      }
    }
    EXPECT_LE(in_use, cfg.global_budget.value() + 1e-6) << "t=" << t;
    EXPECT_LE(active, static_cast<int>(cfg.nodes)) << "t=" << t;
  }
}

TEST(ClusterSim, CoordBeatsEvenSplitOnMakespan) {
  auto cfg = base_config();
  cfg.global_budget = Watts{450.0};  // scarce power: coordination matters
  const auto coord = simulate_cluster(hw::ivybridge_node(), mixed_jobs(),
                                      cfg);
  cfg.policy = SplitPolicy::kEvenSplit;
  const auto naive = simulate_cluster(hw::ivybridge_node(), mixed_jobs(),
                                      cfg);
  EXPECT_LT(coord.makespan.value(), naive.makespan.value());
  EXPECT_GT(coord.work_per_joule, naive.work_per_joule);
}

TEST(ClusterSim, ScarcePowerSerializesJobs) {
  // Budget for roughly one job at a time: later arrivals must wait.
  auto cfg = base_config();
  cfg.global_budget = Watts{240.0};
  const auto run = simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  EXPECT_EQ(run.jobs.size(), 6u);
  EXPECT_GT(run.mean_wait.value(), 0.0);
}

TEST(ClusterSim, MoredPowerShortensMakespan) {
  auto scarce = base_config();
  scarce.global_budget = Watts{300.0};
  auto rich = base_config();
  rich.global_budget = Watts{900.0};
  const auto a = simulate_cluster(hw::ivybridge_node(), mixed_jobs(), scarce);
  const auto b = simulate_cluster(hw::ivybridge_node(), mixed_jobs(), rich);
  EXPECT_GT(a.makespan.value(), b.makespan.value());
}

TEST(ClusterSim, WithoutAdmissionJobsStartStarved) {
  // Disabling admission lets the queue head start on unproductive power,
  // stretching its runtime.
  auto cfg = base_config();
  cfg.nodes = 2;
  cfg.global_budget = Watts{400.0};
  cfg.admission_control = false;
  cfg.min_grant = Watts{130.0};
  const auto no_admission =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  cfg.admission_control = true;
  const auto with_admission =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  EXPECT_EQ(no_admission.jobs.size(), 6u);
  EXPECT_EQ(with_admission.jobs.size(), 6u);
  // Admission control should not be worse on energy per work.
  EXPECT_GE(with_admission.work_per_joule,
            0.95 * no_admission.work_per_joule);
}

TEST(ClusterSim, BackfillNeverWorseOnMakespan) {
  // When the FIFO head is blocked on power, letting small jobs jump ahead
  // can only pack the schedule tighter here (grants are released whole).
  auto cfg = base_config();
  cfg.global_budget = Watts{300.0};
  const auto fifo = simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  cfg.queue_policy = QueuePolicy::kBackfill;
  const auto backfill =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), cfg);
  EXPECT_EQ(backfill.jobs.size(), fifo.jobs.size());
  EXPECT_LE(backfill.makespan.value(), fifo.makespan.value() + 1e-6);
}

TEST(ClusterSim, BackfillReducesWaitWhenHeadIsHungry) {
  // A power-hungry head (DGEMM needs ~226 W) blocks a 240 W cluster; the
  // small SRA job behind it can backfill.
  std::vector<SimJob> jobs{
      {"big-0", workload::dgemm(), Seconds{0.0}, 30000.0},
      {"big-1", workload::dgemm(), Seconds{1.0}, 30000.0},
      {"small", workload::sra(), Seconds{2.0}, 5.0},
  };
  ClusterSimConfig cfg;
  cfg.nodes = 3;
  // After the first DGEMM claims its ~226 W demand, ~136 W remain: below
  // the second DGEMM's ~142 W threshold (head blocks) but above SRA's
  // ~133 W threshold (backfillable).
  cfg.global_budget = Watts{362.0};
  const auto fifo = simulate_cluster(hw::ivybridge_node(), jobs, cfg);
  cfg.queue_policy = QueuePolicy::kBackfill;
  const auto backfill = simulate_cluster(hw::ivybridge_node(), jobs, cfg);
  auto wait_of = [](const ClusterRun& run, const std::string& name) {
    for (const auto& o : run.jobs) {
      if (o.name == name) return o.wait().value();
    }
    return -1.0;
  };
  EXPECT_LT(wait_of(backfill, "small"), wait_of(fifo, "small"));
}

// ------------------------------------------ heterogeneous clusters ----

std::vector<SimJob> mixed_domain_jobs() {
  auto jobs = mixed_jobs();
  jobs.push_back({"g0-sgemm", workload::gpu_benchmark("SGEMM").value(),
                  Seconds{0.5}, 500000.0});
  jobs.push_back({"g1-minife", workload::gpu_benchmark("MiniFE").value(),
                  Seconds{6.0}, 8000.0});
  return jobs;
}

TEST(ClusterSimHetero, CpuAndGpuJobsAllComplete) {
  ClusterSimConfig cfg;
  cfg.nodes = 3;
  cfg.gpu_nodes = 2;
  cfg.global_budget = Watts{1000.0};
  const auto run = simulate_cluster(hw::ivybridge_node(), hw::titan_xp(),
                                    mixed_domain_jobs(), cfg);
  EXPECT_EQ(run.jobs.size(), 8u);
}

TEST(ClusterSimHetero, GpuJobsDroppedWithoutGpuNodes) {
  ClusterSimConfig cfg;
  cfg.nodes = 3;
  cfg.gpu_nodes = 0;
  cfg.global_budget = Watts{1000.0};
  const auto run = simulate_cluster(hw::ivybridge_node(), hw::titan_xp(),
                                    mixed_domain_jobs(), cfg);
  // Only the six CPU jobs can ever run; the GPU jobs are eventually
  // dropped rather than deadlocking the queue.
  EXPECT_EQ(run.jobs.size(), 6u);
}

TEST(ClusterSimHetero, GpuGrantsStayWithinDriverRange) {
  ClusterSimConfig cfg;
  cfg.nodes = 2;
  cfg.gpu_nodes = 2;
  cfg.global_budget = Watts{900.0};
  const auto run = simulate_cluster(hw::ivybridge_node(), hw::titan_xp(),
                                    mixed_domain_jobs(), cfg);
  for (const auto& o : run.jobs) {
    if (o.name.rfind("g", 0) == 0) {
      EXPECT_LE(o.budget.value(),
                hw::titan_xp().gpu.board_max_cap.value() + 1e-6)
          << o.name;
      EXPECT_GE(o.budget.value(),
                hw::titan_xp().gpu.board_min_cap.value() - 1e-6)
          << o.name;
    }
  }
}

TEST(ClusterSimHetero, SharedPowerPoolConstrainsBothDomains) {
  // With a pool that fits roughly one job at a time, CPU and GPU jobs
  // serialize against each other.
  ClusterSimConfig cfg;
  cfg.nodes = 2;
  cfg.gpu_nodes = 2;
  cfg.global_budget = Watts{320.0};
  const auto run = simulate_cluster(hw::ivybridge_node(), hw::titan_xp(),
                                    mixed_domain_jobs(), cfg);
  EXPECT_EQ(run.jobs.size(), 8u);
  EXPECT_GT(run.mean_wait.value(), 0.0);
  // Power-timeline check across both domains.
  for (const auto& probe : run.jobs) {
    const double t = probe.start.value();
    double in_use = 0.0;
    for (const auto& o : run.jobs) {
      if (o.start.value() <= t + 1e-9 && t < o.finish.value() - 1e-9) {
        in_use += o.budget.value();
      }
    }
    EXPECT_LE(in_use, 320.0 + 1e-6) << "t=" << t;
  }
}

TEST(ClusterSim, EmptyJobList) {
  const auto run =
      simulate_cluster(hw::ivybridge_node(), {}, base_config());
  EXPECT_TRUE(run.jobs.empty());
  EXPECT_EQ(run.makespan.value(), 0.0);
}

TEST(ClusterSim, Deterministic) {
  const auto a =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), base_config());
  const auto b =
      simulate_cluster(hw::ivybridge_node(), mixed_jobs(), base_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].name, b.jobs[i].name);
    EXPECT_EQ(a.jobs[i].finish.value(), b.jobs[i].finish.value());
  }
}

}  // namespace
}  // namespace pbc::core
