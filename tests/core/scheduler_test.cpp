#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(NodePowerManager, AcceptsProductiveBudget) {
  const NodePowerManager mgr(hw::ivybridge_node(), workload::dgemm());
  const auto plan = mgr.plan(Watts{200.0});
  EXPECT_TRUE(plan.accepted);
  EXPECT_GT(plan.predicted.perf, 0.0);
  EXPECT_LE(plan.allocation.total().value(), 200.0 + 1e-9);
}

TEST(NodePowerManager, RejectsUnproductiveBudget) {
  const NodePowerManager mgr(hw::ivybridge_node(), workload::dgemm());
  const auto plan = mgr.plan(Watts{mgr.min_productive().value() - 5.0});
  EXPECT_FALSE(plan.accepted);
}

TEST(NodePowerManager, PredictionRespectsAllocation) {
  const NodePowerManager mgr(hw::ivybridge_node(), workload::npb_cg());
  const auto plan = mgr.plan(Watts{190.0});
  ASSERT_TRUE(plan.accepted);
  EXPECT_LE(plan.predicted.proc_power.value(),
            plan.allocation.cpu.value() + 0.1);
  EXPECT_LE(plan.predicted.mem_power.value(),
            plan.allocation.mem.value() + 0.1);
}

TEST(NodePowerManager, BoundsAreOrdered) {
  const NodePowerManager mgr(hw::ivybridge_node(), workload::stream_cpu());
  EXPECT_LT(mgr.min_productive(), mgr.max_demand());
}

std::vector<JobRequest> three_jobs() {
  return {{"dgemm-job", workload::dgemm()},
          {"stream-job", workload::stream_cpu()},
          {"mg-job", workload::npb_mg()}};
}

TEST(ClusterScheduler, PlacesJobsWithinGlobalBudget) {
  const ClusterScheduler sched(hw::ivybridge_node(), 4);
  const auto jobs = three_jobs();
  const auto result = sched.schedule(jobs, Watts{700.0});
  EXPECT_EQ(result.placements.size(), 3u);
  EXPECT_TRUE(result.rejected.empty());
  double total = 0.0;
  for (const auto& p : result.placements) total += p.budget.value();
  EXPECT_LE(total, 700.0 + 1e-6);
}

TEST(ClusterScheduler, RejectsJobsBeyondNodeCount) {
  const ClusterScheduler sched(hw::ivybridge_node(), 2);
  const auto result = sched.schedule(three_jobs(), Watts{700.0});
  EXPECT_EQ(result.placements.size(), 2u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0], "mg-job");
}

TEST(ClusterScheduler, RejectsWhenFairShareUnproductive) {
  // 3 jobs with ~130-140 W thresholds cannot all run on 300 W total.
  const ClusterScheduler sched(hw::ivybridge_node(), 4);
  const auto result = sched.schedule(three_jobs(), Watts{300.0});
  EXPECT_LT(result.placements.size(), 3u);
  EXPECT_FALSE(result.rejected.empty());
}

TEST(ClusterScheduler, ReclaimsSurplusAboveDemand) {
  // One job, enormous global budget: everything beyond the job's max
  // demand must be reclaimed.
  const ClusterScheduler sched(hw::ivybridge_node(), 4);
  const std::vector<JobRequest> jobs{{"solo", workload::stream_cpu()}};
  const auto result = sched.schedule(jobs, Watts{1000.0});
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_GT(result.reclaimed.value(), 700.0);
  EXPECT_LT(result.allocated.value(), 300.0);
}

TEST(ClusterScheduler, WaterFillingUsesLeftoverFromRejectedJob) {
  // With 420 W and three jobs, the fair share (140 W) is productive for
  // some jobs only; power from denied jobs flows to the placed ones.
  const ClusterScheduler sched(hw::ivybridge_node(), 4);
  const auto result = sched.schedule(three_jobs(), Watts{430.0});
  EXPECT_GE(result.placements.size(), 2u);
  for (const auto& p : result.placements) {
    EXPECT_GE(p.budget.value(), 130.0);
  }
}

TEST(ClusterScheduler, PlacementsCarryCoordinatedAllocations) {
  const ClusterScheduler sched(hw::ivybridge_node(), 4);
  const auto result = sched.schedule(three_jobs(), Watts{700.0});
  for (const auto& p : result.placements) {
    EXPECT_GT(p.allocation.cpu.value(), 0.0) << p.job;
    EXPECT_GT(p.allocation.mem.value(), 0.0) << p.job;
    EXPECT_GT(p.predicted_perf, 0.0) << p.job;
    EXPECT_LE(p.allocation.total().value(), p.budget.value() + 1e-9)
        << p.job;
  }
}

TEST(ClusterScheduler, EmptyJobListIsAllReclaim) {
  const ClusterScheduler sched(hw::ivybridge_node(), 2);
  const auto result = sched.schedule({}, Watts{500.0});
  EXPECT_TRUE(result.placements.empty());
  EXPECT_DOUBLE_EQ(result.reclaimed.value(), 500.0);
}

}  // namespace
}  // namespace pbc::core
