#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

std::vector<FrontierPoint> dgemm_frontier() {
  // Budgets start above the node's floor power: below it, caps cannot be
  // respected and "consumed ≤ budget" does not hold (paper scenario VI).
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto budgets = sim::budget_grid(Watts{140.0}, Watts{280.0},
                                        Watts{10.0});
  return perf_frontier_cpu(node, budgets);
}

TEST(Frontier, PerfMaxMonotoneNonDecreasing) {
  const auto frontier = dgemm_frontier();
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].perf_max, frontier[i - 1].perf_max - 1e-9)
        << "budget " << frontier[i].budget.value();
  }
}

TEST(Frontier, ConsumedNeverExceedsBudget) {
  for (const auto& fp : dgemm_frontier()) {
    EXPECT_LE(fp.consumed.value(), fp.budget.value() + 0.1);
  }
}

TEST(Frontier, BestSplitSumsToBudget) {
  for (const auto& fp : dgemm_frontier()) {
    EXPECT_NEAR((fp.best_proc_cap + fp.best_mem_cap).value(),
                fp.budget.value(), 1e-6);
  }
}

TEST(Frontier, DgemmSaturatesNearItsMaxDemand) {
  // Paper Fig. 2: DGEMM stops growing once P_b reaches ~220-240 W.
  const auto frontier = dgemm_frontier();
  const Watts sat = saturation_budget(frontier);
  EXPECT_GT(sat.value(), 190.0);
  EXPECT_LT(sat.value(), 250.0);
}

TEST(Frontier, GrowthIsNonlinearWithSegments) {
  // Slow below 125 W, fast after: the 125->145 gain dwarfs 105->125.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const std::vector<Watts> budgets{Watts{105.0}, Watts{125.0}, Watts{145.0}};
  const auto f = perf_frontier_cpu(node, budgets);
  const double early_gain = f[1].perf_max - f[0].perf_max;
  const double later_gain = f[2].perf_max - f[1].perf_max;
  EXPECT_GT(later_gain, 3.0 * std::max(early_gain, 1.0));
}

TEST(Frontier, CurveEvaluates) {
  const auto frontier = dgemm_frontier();
  const auto curve = frontier_curve(frontier);
  ASSERT_TRUE(curve.ok());
  EXPECT_GT(curve.value()(200.0), curve.value()(150.0));
}

TEST(Frontier, ProductiveBudgetBelowSaturation) {
  const auto frontier = dgemm_frontier();
  EXPECT_LT(productive_budget(frontier, 0.25).value(),
            saturation_budget(frontier).value());
}

TEST(Frontier, GpuFrontierMonotone) {
  for (const auto& w : workload::gpu_suite()) {
    const sim::GpuNodeSim node(hw::titan_xp(), w);
    const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0},
                                       Watts{25.0});
    const auto frontier = perf_frontier_gpu(node, caps);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      EXPECT_GE(frontier[i].perf_max, frontier[i - 1].perf_max - 1e-9)
          << w.name;
    }
  }
}

TEST(Frontier, SgemmXpNeverSaturatesInCapRange) {
  // Paper Fig. 6 left: SGEMM's bound keeps growing through 300 W.
  const sim::GpuNodeSim node(hw::titan_xp(), workload::sgemm());
  const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0}, Watts{25.0});
  const auto frontier = perf_frontier_gpu(node, caps);
  EXPECT_GT(frontier.back().perf_max,
            1.02 * frontier[frontier.size() - 2].perf_max);
}

TEST(Frontier, MinifeXpSaturatesWithinRange) {
  const sim::GpuNodeSim node(hw::titan_xp(), workload::minife());
  const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0}, Watts{5.0});
  const auto frontier = perf_frontier_gpu(node, caps);
  const double sat = saturation_budget(frontier).value();
  EXPECT_LT(sat, 260.0);
  EXPECT_GT(sat, 150.0);
}

TEST(Frontier, EmptyInputsHandled) {
  EXPECT_EQ(saturation_budget({}).value(), 0.0);
  EXPECT_EQ(productive_budget({}).value(), 0.0);
  EXPECT_FALSE(frontier_curve({}).ok());
}

}  // namespace
}  // namespace pbc::core
