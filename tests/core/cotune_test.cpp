#include "core/cotune.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(CoTune, ComplementaryPairCoRunsWell) {
  // DGEMM (compute) + STREAM (bandwidth) stress different resources:
  // co-running on a 240 W node must retain a large fraction of both solo
  // throughputs (STP well above 1).
  const auto r = cotune_pair(hw::ivybridge_node(), workload::dgemm(),
                             workload::stream_cpu(), Watts{240.0});
  EXPECT_GT(r.stp, 1.3);
  EXPECT_GT(r.perf_a, 0.0);
  EXPECT_GT(r.perf_b, 0.0);
  EXPECT_GT(r.configurations_searched, 50u);
}

TEST(CoTune, BandwidthJobKeepsItsSaturationCores) {
  const auto r = cotune_pair(hw::ivybridge_node(), workload::dgemm(),
                             workload::stream_cpu(), Watts{240.0});
  // STREAM needs ~half the package to generate full memory-level
  // parallelism; DGEMM takes at least the other half (compute scales with
  // cores, bandwidth does not beyond the saturation point).
  EXPECT_GE(r.cores_a, r.cores_b);
  EXPECT_GE(r.cores_b, 8);
}

TEST(CoTune, CoreSplitIsValid) {
  const auto machine = hw::ivybridge_node();
  const auto r = cotune_pair(machine, workload::npb_bt(), workload::npb_mg(),
                             Watts{220.0});
  EXPECT_GE(r.cores_a, 2);
  EXPECT_GE(r.cores_b, 2);
  EXPECT_EQ(r.cores_a + r.cores_b, machine.cpu.total_cores());
}

TEST(CoTune, PowerSplitSumsToBudget) {
  const auto r = cotune_pair(hw::ivybridge_node(), workload::npb_cg(),
                             workload::npb_ep(), Watts{230.0});
  EXPECT_NEAR((r.cpu_cap + r.mem_cap).value(), 230.0, 1e-9);
}

TEST(CoTune, StpNeverExceedsTwo) {
  for (const auto& pair :
       std::vector<std::pair<workload::Workload, workload::Workload>>{
           {workload::dgemm(), workload::stream_cpu()},
           {workload::sra(), workload::sra()},
           {workload::npb_ep(), workload::npb_mg()}}) {
    const auto r = cotune_pair(hw::ivybridge_node(), pair.first, pair.second,
                               Watts{240.0});
    EXPECT_LE(r.stp, 2.0 + 1e-6) << pair.first.name << "+" << pair.second.name;
  }
}

TEST(CoTune, TwoBandwidthHogsInterfere) {
  // STREAM + STREAM fight over the same bandwidth: their combined STP must
  // sit clearly below a compute/memory pairing's.
  const auto hogs = cotune_pair(hw::ivybridge_node(), workload::stream_cpu(),
                                workload::stream_cpu(), Watts{240.0});
  const auto mixed = cotune_pair(hw::ivybridge_node(), workload::npb_ep(),
                                 workload::stream_cpu(), Watts{240.0});
  EXPECT_LT(hogs.stp, mixed.stp);
  // Two identical bandwidth-bound jobs split the bandwidth: ~0.5 each.
  EXPECT_NEAR(hogs.stp, 1.0, 0.25);
}

}  // namespace
}  // namespace pbc::core
