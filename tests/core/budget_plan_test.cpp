#include "core/budget_plan.hpp"

#include <gtest/gtest.h>

#include "hw/platforms.hpp"
#include "workload/cpu_suite.hpp"

namespace pbc::core {
namespace {

TEST(BudgetPlan, LandmarksAreOrdered) {
  for (const auto& wl :
       {workload::dgemm(), workload::stream_cpu(), workload::sra()}) {
    const sim::CpuNodeSim node(hw::ivybridge_node(), wl);
    const auto plan = plan_budget(node);
    EXPECT_LE(plan.reject_below.value(), plan.diminishing_at.value())
        << wl.name;
    EXPECT_LE(plan.diminishing_at.value(), plan.saturation_at.value() + 8.0)
        << wl.name;
    EXPECT_GT(plan.peak_perf, 0.0) << wl.name;
  }
}

TEST(BudgetPlan, DgemmSaturationMatchesFrontierAnalysis) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::dgemm());
  const auto plan = plan_budget(node);
  EXPECT_GT(plan.saturation_at.value(), 190.0);
  EXPECT_LT(plan.saturation_at.value(), 250.0);
}

TEST(BudgetPlan, EfficiencyOptimumIsBelowSaturation) {
  // Past saturation extra budget adds power headroom but no performance:
  // the efficiency optimum cannot sit above it.
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_mg());
  const auto plan = plan_budget(node);
  EXPECT_LE(plan.efficient_at.value(), plan.saturation_at.value() + 8.0);
  EXPECT_GT(plan.peak_efficiency, 0.0);
  EXPECT_GT(plan.perf_at_efficient, 0.0);
}

TEST(BudgetPlan, RejectThresholdMatchesProfile) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_bt());
  const auto plan = plan_budget(node);
  const auto profile = profile_critical_powers(node);
  EXPECT_EQ(plan.reject_below.value(),
            profile.productive_threshold().value());
}

TEST(BudgetPlan, FrontierCoversThresholdToPastDemand) {
  const sim::CpuNodeSim node(hw::ivybridge_node(), workload::npb_ft());
  const auto plan = plan_budget(node);
  const auto profile = profile_critical_powers(node);
  ASSERT_FALSE(plan.frontier.empty());
  EXPECT_NEAR(plan.frontier.front().budget.value(),
              profile.productive_threshold().value(), 1e-9);
  EXPECT_GT(plan.frontier.back().budget.value(),
            profile.max_demand().value());
}

TEST(BudgetPlan, MemoryBoundSaturatesBelowComputeBound) {
  const sim::CpuNodeSim stream(hw::ivybridge_node(), workload::stream_cpu());
  const sim::CpuNodeSim dgemm(hw::ivybridge_node(), workload::dgemm());
  EXPECT_LT(plan_budget(stream).saturation_at.value(),
            plan_budget(dgemm).saturation_at.value());
}

}  // namespace
}  // namespace pbc::core
