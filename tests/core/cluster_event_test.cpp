// The event-driven hierarchical engine's contract: bit-identical runs to
// the flat reference path over 512 randomized traces when the tree is
// flat, hierarchy/scenario validation through the checked entry points,
// inter-rack power redistribution, bounded shed/re-grant power
// emergencies, node-failure preemption, seeded determinism across pool
// sizes, and the grant ledger's incremental-release equivalence.
#include "core/cluster_event.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster_hier.hpp"
#include "core/cluster_sim.hpp"
#include "core/grant_ledger.hpp"
#include "hw/platforms.hpp"
#include "util/rng.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {
namespace {

/// Exact (bitwise) equality of two runs — the event/flat contract.
/// event_stats is intentionally not compared: the flat paths report
/// zeros there by construction.
void expect_identical(const ClusterRun& a, const ClusterRun& b,
                      const std::string& context) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << context;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobOutcome& x = a.jobs[i];
    const JobOutcome& y = b.jobs[i];
    EXPECT_EQ(x.name, y.name) << context << " job " << i;
    EXPECT_EQ(x.arrival.value(), y.arrival.value()) << context << " " << x.name;
    EXPECT_EQ(x.start.value(), y.start.value()) << context << " " << x.name;
    EXPECT_EQ(x.finish.value(), y.finish.value()) << context << " " << x.name;
    EXPECT_EQ(x.budget.value(), y.budget.value()) << context << " " << x.name;
    EXPECT_EQ(x.perf, y.perf) << context << " " << x.name;
    EXPECT_EQ(x.energy.value(), y.energy.value()) << context << " " << x.name;
  }
  EXPECT_EQ(a.makespan.value(), b.makespan.value()) << context;
  EXPECT_EQ(a.mean_wait.value(), b.mean_wait.value()) << context;
  EXPECT_EQ(a.mean_response.value(), b.mean_response.value()) << context;
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value()) << context;
  EXPECT_EQ(a.work_per_joule, b.work_per_joule) << context;
}

void expect_same_event_stats(const ClusterEventStats& a,
                             const ClusterEventStats& b,
                             const std::string& context) {
  EXPECT_EQ(a.events, b.events) << context;
  EXPECT_EQ(a.subtree_resolves, b.subtree_resolves) << context;
  EXPECT_EQ(a.donations, b.donations) << context;
  EXPECT_EQ(a.jobs_preempted, b.jobs_preempted) << context;
  EXPECT_EQ(a.emergency_sheds, b.emergency_sheds) << context;
  EXPECT_EQ(a.emergency_regrants, b.emergency_regrants) << context;
  EXPECT_EQ(a.watts_redistributed, b.watts_redistributed) << context;
  EXPECT_EQ(a.caps_respected, b.caps_respected) << context;
}

std::vector<SimJob> random_trace(Xoshiro256& rng, bool with_gpu) {
  static const std::vector<workload::Workload> cpu_wls = workload::cpu_suite();
  static const std::vector<workload::Workload> gpu_wls = workload::gpu_suite();
  const std::size_t n = 3 + rng.below(16);
  std::vector<SimJob> jobs;
  jobs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    SimJob job;
    const bool gpu = with_gpu && rng.uniform() < 0.4;
    if (gpu) {
      job.wl = gpu_wls[rng.below(gpu_wls.size())];
      job.work_gunits = rng.uniform(100.0, 50000.0);
    } else {
      job.wl = cpu_wls[rng.below(cpu_wls.size())];
      job.work_gunits = rng.uniform(1.0, 3000.0);
    }
    job.name = (gpu ? "g" : "c") + std::to_string(j);
    job.arrival = Seconds{rng.uniform(0.0, 50.0)};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ClusterSimConfig random_config(Xoshiro256& rng, bool with_gpu,
                               QueuePolicy queue_policy, bool admission) {
  ClusterSimConfig config;
  config.nodes = 1 + rng.below(5);
  config.gpu_nodes = with_gpu ? 1 + rng.below(3) : 0;
  config.global_budget = Watts{rng.uniform(150.0, 1200.0)};
  config.queue_policy = queue_policy;
  config.admission_control = admission;
  config.policy =
      rng.uniform() < 0.5 ? SplitPolicy::kCoord : SplitPolicy::kEvenSplit;
  return config;
}

/// A three-rack tree with one deliberately power-starved rack: rack0's
/// cap sits below a DGEMM job's productive threshold, so a job placed
/// there can only start by pulling budget from its siblings.
HierarchySpec starved_rack_spec(bool redistribution) {
  HierarchySpec spec;
  spec.redistribution = redistribution;
  HierVertexSpec root;
  root.parent = -1;
  root.budget = Watts{700.0};
  root.level = "dc";
  root.name = "dc";
  spec.vertices.push_back(root);
  for (int r = 0; r < 2; ++r) {
    HierVertexSpec rack;
    rack.parent = 0;
    rack.budget = r == 0 ? Watts{120.0} : Watts{560.0};
    rack.level = "rack";
    rack.name = "rack" + std::to_string(r);
    rack.cpu_nodes = r == 0 ? std::vector<std::uint32_t>{0, 1}
                            : std::vector<std::uint32_t>{2, 3};
    spec.vertices.push_back(std::move(rack));
  }
  return spec;
}

// 2 domain mixes × 2 queue policies × 2 admission settings × 64 seeds =
// 512 randomized traces: the event path over a flat tree must replay the
// reference path bit-for-bit. Even seeds exercise the implicit flat tree
// (hierarchy == nullptr); odd seeds pass an explicit flat_hierarchy.
TEST(ClusterEventDiff, EventMatchesReferenceOnRandomTraces) {
  const hw::CpuMachine cpu_machine = hw::ivybridge_node();
  const hw::GpuMachine gpu_machine = hw::titan_xp();
  int traces = 0;
  for (const bool with_gpu : {false, true}) {
    for (const QueuePolicy qp : {QueuePolicy::kFifo, QueuePolicy::kBackfill}) {
      for (const bool admission : {true, false}) {
        for (std::uint64_t seed = 0; seed < 64; ++seed) {
          Xoshiro256 rng(seed, /*stream=*/with_gpu ? 11 : 3);
          const auto jobs = random_trace(rng, with_gpu);
          auto config = random_config(rng, with_gpu, qp, admission);
          const std::string context =
              "seed=" + std::to_string(seed) +
              " gpu=" + std::to_string(with_gpu) +
              " backfill=" + std::to_string(qp == QueuePolicy::kBackfill) +
              " admission=" + std::to_string(admission);

          const HierarchySpec flat = flat_hierarchy(
              config.nodes, with_gpu ? config.gpu_nodes : 0,
              config.global_budget);
          config.path = ClusterPath::kEvent;
          config.hierarchy = seed % 2 == 1 ? &flat : nullptr;
          const ClusterRun event =
              with_gpu
                  ? simulate_cluster(cpu_machine, gpu_machine, jobs, config)
                  : simulate_cluster(cpu_machine, jobs, config);
          config.hierarchy = nullptr;
          config.path = ClusterPath::kReference;
          const ClusterRun ref =
              with_gpu
                  ? simulate_cluster(cpu_machine, gpu_machine, jobs, config)
                  : simulate_cluster(cpu_machine, jobs, config);
          expect_identical(event, ref, context);
          EXPECT_GT(event.event_stats.events, 0u) << context;
          ++traces;
          if (HasFatalFailure()) return;
        }
      }
    }
  }
  EXPECT_EQ(traces, 512);
}

TEST(ClusterEventHierarchy, RedistributionUnblocksStarvedRack) {
  // Four simultaneous DGEMM jobs on 2+2 nodes: two fill the big rack;
  // the other two land on rack0, whose 120 W cap is below DGEMM's
  // productive threshold. With redistribution the big rack donates its
  // leftover headroom through the root and the starved jobs start early;
  // without it they must wait for the big rack to drain.
  std::vector<SimJob> jobs;
  for (int j = 0; j < 4; ++j) {
    jobs.push_back({"d" + std::to_string(j), workload::dgemm(),
                    Seconds{static_cast<double>(j) * 0.25}, 20000.0});
  }
  ClusterSimConfig config;
  config.nodes = 4;
  config.global_budget = Watts{700.0};  // overridden by the tree's root
  config.path = ClusterPath::kEvent;

  const HierarchySpec with = starved_rack_spec(true);
  config.hierarchy = &with;
  const auto run_with =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_TRUE(run_with.ok()) << run_with.error().message;

  const HierarchySpec without = starved_rack_spec(false);
  config.hierarchy = &without;
  const auto run_without =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_TRUE(run_without.ok()) << run_without.error().message;

  EXPECT_EQ(run_with.value().jobs.size(), 4u);
  EXPECT_EQ(run_without.value().jobs.size(), 4u);
  EXPECT_GT(run_with.value().event_stats.donations, 0u);
  EXPECT_GT(run_with.value().event_stats.watts_redistributed, 0.0);
  EXPECT_EQ(run_without.value().event_stats.donations, 0u);
  // Donated headroom lets the starved jobs overlap the big rack's,
  // instead of queueing behind them.
  EXPECT_LT(run_with.value().mean_wait.value(),
            run_without.value().mean_wait.value());
  EXPECT_TRUE(run_with.value().event_stats.caps_respected);
}

TEST(ClusterEventEmergency, CapDropShedsAndRegrantsWithinBounds) {
  // Three long DGEMMs saturate a 600 W cluster; mid-run the facility
  // feed halves. The engine must shed newest-first until the tree fits,
  // re-grant immediately, respect the cap afterwards, and still finish
  // every job once the feed is restored. The documented bound: sheds ≤
  // jobs running at the drop, re-grants ≤ sheds + queued jobs — all
  // settled within the drop event itself.
  std::vector<SimJob> jobs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back({"d" + std::to_string(j), workload::dgemm(),
                    Seconds{static_cast<double>(j)}, 30000.0});
  }
  ClusterSimConfig config;
  config.nodes = 3;
  config.global_budget = Watts{600.0};
  config.path = ClusterPath::kEvent;
  const ClusterScenario scenario = make_emergency_scenario(
      Watts{600.0}, /*drop_at=*/Seconds{30.0}, /*drop_fraction=*/0.5,
      /*restore_after=*/Seconds{60.0});
  config.scenario = &scenario;

  const auto checked =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_TRUE(checked.ok()) << checked.error().message;
  const ClusterRun& run = checked.value();
  const ClusterEventStats& s = run.event_stats;

  EXPECT_EQ(run.jobs.size(), 3u);  // everything finishes eventually
  EXPECT_GE(s.emergency_sheds, 1u);
  EXPECT_LE(s.emergency_sheds, 3u);  // ≤ jobs running at the drop
  // ≤ sheds + queue (the whole trace had arrived by t=30).
  EXPECT_LE(s.emergency_regrants, s.emergency_sheds + 3u);
  EXPECT_TRUE(s.caps_respected);
  EXPECT_GT(s.jobs_preempted, 0u);
  // A preempted-and-resumed job accrues energy across both segments and
  // finishes after the restore.
  for (const auto& o : run.jobs) {
    EXPECT_GT(o.energy.value(), 0.0) << o.name;
  }
}

TEST(ClusterEventFailure, LostSlotsPreemptAndRequeue) {
  // Four jobs on a 4-node flat rack; at t=20 the rack loses two nodes.
  // Two newest-started jobs must be preempted, re-queued, and finish
  // later on the surviving slots.
  std::vector<SimJob> jobs;
  for (int j = 0; j < 4; ++j) {
    jobs.push_back({"j" + std::to_string(j), workload::stream_cpu(),
                    Seconds{static_cast<double>(j)}, 2000.0});
  }
  ClusterSimConfig config;
  config.nodes = 4;
  config.global_budget = Watts{900.0};
  config.path = ClusterPath::kEvent;
  ClusterScenario scenario;
  scenario.failures.push_back({Seconds{20.0}, 0, /*cpu_lost=*/2,
                               /*gpu_lost=*/0});
  config.scenario = &scenario;

  const auto checked =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_TRUE(checked.ok()) << checked.error().message;
  const ClusterRun& run = checked.value();
  EXPECT_EQ(run.jobs.size(), 4u);
  EXPECT_EQ(run.event_stats.jobs_preempted, 2u);
  EXPECT_EQ(run.event_stats.emergency_sheds, 0u);  // failure, not cap drop
  EXPECT_TRUE(run.event_stats.caps_respected);

  // Against the same trace with no failure: losing half the rack must
  // delay completion (the preempted pair re-runs on the survivors), and
  // the preempted jobs pay for the work done in both segments.
  config.scenario = nullptr;
  const auto baseline = simulate_cluster(hw::ivybridge_node(), jobs, config);
  EXPECT_EQ(baseline.event_stats.jobs_preempted, 0u);
  EXPECT_GT(run.makespan.value(), baseline.makespan.value());
  EXPECT_GT(run.total_energy.value(), 0.0);
  // Outcome.start is the first segment's start, finish the last
  // segment's end: a preempted job's response time spans its suspension.
  EXPECT_GT(run.mean_response.value(), baseline.mean_response.value());
}

TEST(ClusterEventDeterminism, ScenarioRunsIdenticalAcrossPoolSizes) {
  // Seeded determinism for a hierarchy + diurnal-load + failure +
  // emergency run: the profiling pool size (1/2/7) must not leak into
  // the result, and re-running with the same seed must reproduce it.
  const HierarchySpec spec =
      uniform_hierarchy(12, 0, Watts{1400.0}, {4, 2}, 1.2);
  const ClusterScenario failures =
      make_failure_scenario(spec, /*failures=*/2, Seconds{400.0}, /*seed=*/5);
  ClusterScenario scenario = failures;
  const ClusterScenario emergency = make_emergency_scenario(
      Watts{1400.0}, Seconds{120.0}, 0.45, Seconds{150.0});
  scenario.cap_changes = emergency.cap_changes;

  const auto arrivals =
      diurnal_arrivals(40, Seconds{500.0}, Seconds{250.0}, 3.0, /*seed=*/9);
  static const std::vector<workload::Workload> wls = workload::cpu_suite();
  std::vector<SimJob> jobs;
  Xoshiro256 rng(21, 2);
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    jobs.push_back({"j" + std::to_string(j), wls[rng.below(wls.size())],
                    arrivals[j], rng.uniform(100.0, 2000.0)});
  }

  ClusterSimConfig config;
  config.nodes = 12;
  config.global_budget = Watts{1400.0};
  config.queue_policy = QueuePolicy::kBackfill;
  config.path = ClusterPath::kEvent;
  config.hierarchy = &spec;
  config.scenario = &scenario;

  ThreadPool pool1(1);
  ThreadPool pool2(2);
  ThreadPool pool7(7);
  config.pool = &pool1;
  const auto run1 = simulate_cluster(hw::ivybridge_node(), jobs, config);
  const auto run1b = simulate_cluster(hw::ivybridge_node(), jobs, config);
  config.pool = &pool2;
  const auto run2 = simulate_cluster(hw::ivybridge_node(), jobs, config);
  config.pool = &pool7;
  const auto run7 = simulate_cluster(hw::ivybridge_node(), jobs, config);

  expect_identical(run1, run1b, "seeded-rerun");
  expect_identical(run1, run2, "pool-1-vs-2");
  expect_identical(run1, run7, "pool-1-vs-7");
  expect_same_event_stats(run1.event_stats, run1b.event_stats, "rerun-stats");
  expect_same_event_stats(run1.event_stats, run2.event_stats, "pool-2-stats");
  expect_same_event_stats(run1.event_stats, run7.event_stats, "pool-7-stats");
  EXPECT_TRUE(run1.event_stats.caps_respected);
}

// --- hierarchy / scenario validation ---------------------------------

TEST(ClusterEventChecked, RejectsHierarchyOnFlatPaths) {
  const HierarchySpec flat = flat_hierarchy(2, 0, Watts{400.0});
  ClusterSimConfig config;
  config.nodes = 2;
  config.hierarchy = &flat;  // path stays kFast
  const auto result = simulate_cluster_checked(
      hw::ivybridge_node(), {{"j", workload::sra(), Seconds{0.0}, 1.0}},
      config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(ClusterEventChecked, RejectsEmptyAndStructurallyBrokenHierarchies) {
  ClusterSimConfig config;
  config.nodes = 2;
  config.path = ClusterPath::kEvent;
  const std::vector<SimJob> jobs{{"j", workload::sra(), Seconds{0.0}, 1.0}};

  // Explicitly empty spec (a null pointer would mean the implicit flat
  // tree; an empty one is a mistake and is rejected).
  {
    HierarchySpec spec;
    config.hierarchy = &spec;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  }

  // The root has neither members nor children: an empty level.
  {
    HierarchySpec spec;
    spec.vertices.push_back({-1, Watts{400.0}, {}, {}, "dc", "dc"});
    config.hierarchy = &spec;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
    EXPECT_NE(result.error().message.find("empty level"), std::string::npos);
  }

  // Duplicate node membership across racks.
  {
    HierarchySpec spec;
    spec.vertices.push_back({-1, Watts{400.0}, {}, {}, "dc", "dc"});
    spec.vertices.push_back({0, Watts{200.0}, {0, 1}, {}, "rack", "r0"});
    spec.vertices.push_back({0, Watts{200.0}, {1}, {}, "rack", "r1"});
    config.hierarchy = &spec;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
    EXPECT_NE(result.error().message.find("duplicate"), std::string::npos);
  }

  // Membership not covering every node exactly once.
  {
    HierarchySpec spec;
    spec.vertices.push_back({-1, Watts{400.0}, {0}, {}, "dc", "dc"});
    config.hierarchy = &spec;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  }
}

TEST(ClusterEventChecked, ChildBudgetAboveParentIsFailedPrecondition) {
  ClusterSimConfig config;
  config.nodes = 2;
  config.path = ClusterPath::kEvent;
  HierarchySpec spec;
  spec.vertices.push_back({-1, Watts{300.0}, {}, {}, "dc", "dc"});
  spec.vertices.push_back({0, Watts{400.0}, {0, 1}, {}, "rack", "r0"});
  config.hierarchy = &spec;
  const auto result = simulate_cluster_checked(
      hw::ivybridge_node(), {{"j", workload::sra(), Seconds{0.0}, 1.0}},
      config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kFailedPrecondition);
}

TEST(ClusterEventChecked, RejectsBrokenScenarios) {
  ClusterSimConfig config;
  config.nodes = 2;
  config.path = ClusterPath::kEvent;
  const std::vector<SimJob> jobs{{"j", workload::sra(), Seconds{0.0}, 1.0}};

  // Cap change on a vertex the (implicit flat) tree does not have.
  {
    ClusterScenario scenario;
    scenario.cap_changes.push_back({Seconds{1.0}, 7, Watts{100.0}});
    config.scenario = &scenario;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  }
  // Node failure on a non-rack vertex.
  {
    HierarchySpec spec;
    spec.vertices.push_back({-1, Watts{400.0}, {}, {}, "dc", "dc"});
    spec.vertices.push_back({0, Watts{300.0}, {0, 1}, {}, "rack", "r0"});
    ClusterScenario scenario;
    scenario.failures.push_back({Seconds{1.0}, 0, 1, 0});  // vertex 0 = dc
    config.hierarchy = &spec;
    config.scenario = &scenario;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
    EXPECT_NE(result.error().message.find("not a rack"), std::string::npos);
  }
  // Losing more slots than the rack has.
  {
    HierarchySpec spec;
    spec.vertices.push_back({-1, Watts{400.0}, {0, 1}, {}, "dc", "root-rack"});
    ClusterScenario scenario;
    scenario.failures.push_back({Seconds{1.0}, 0, 3, 0});
    config.hierarchy = &spec;
    config.scenario = &scenario;
    const auto result =
        simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  }
}

TEST(ClusterEventChecked, AcceptsValidHierarchyAndMatchesUnchecked) {
  const HierarchySpec spec = uniform_hierarchy(4, 0, Watts{800.0}, {2});
  std::vector<SimJob> jobs{
      {"c0", workload::dgemm(), Seconds{0.0}, 1000.0},
      {"c1", workload::stream_cpu(), Seconds{1.0}, 500.0},
  };
  ClusterSimConfig config;
  config.nodes = 4;
  config.global_budget = Watts{800.0};
  config.path = ClusterPath::kEvent;
  config.hierarchy = &spec;
  const auto checked =
      simulate_cluster_checked(hw::ivybridge_node(), jobs, config);
  ASSERT_TRUE(checked.ok()) << checked.error().message;
  const auto plain = simulate_cluster(hw::ivybridge_node(), jobs, config);
  expect_identical(checked.value(), plain, "checked-event");
}

// --- scenario generators ---------------------------------------------

TEST(ClusterEventScenario, GeneratorsAreDeterministicAndValid) {
  const HierarchySpec spec = uniform_hierarchy(64, 8, Watts{9000.0}, {8, 4});
  EXPECT_TRUE(validate_hierarchy(spec, 64, 8).ok());

  const ClusterScenario f1 =
      make_failure_scenario(spec, 5, Seconds{1000.0}, 3);
  const ClusterScenario f2 =
      make_failure_scenario(spec, 5, Seconds{1000.0}, 3);
  ASSERT_EQ(f1.failures.size(), 5u);
  for (std::size_t i = 0; i < f1.failures.size(); ++i) {
    EXPECT_EQ(f1.failures[i].at.value(), f2.failures[i].at.value());
    EXPECT_EQ(f1.failures[i].vertex, f2.failures[i].vertex);
    EXPECT_LE(i == 0 ? 0.0 : f1.failures[i - 1].at.value(),
              f1.failures[i].at.value());
  }
  EXPECT_TRUE(validate_scenario(f1, spec).ok());

  const auto a1 = diurnal_arrivals(200, Seconds{1000.0}, Seconds{500.0},
                                   4.0, 7);
  const auto a2 = diurnal_arrivals(200, Seconds{1000.0}, Seconds{500.0},
                                   4.0, 7);
  ASSERT_EQ(a1.size(), 200u);
  double prev = 0.0;
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].value(), a2[i].value());
    EXPECT_GE(a1[i].value(), prev);  // sorted by construction
    EXPECT_LE(a1[i].value(), 1000.0);
    prev = a1[i].value();
  }
  // The diurnal profile actually modulates: more arrivals land in the
  // first half-day (the sine peak) than in the second.
  const std::size_t first_half =
      static_cast<std::size_t>(std::count_if(a1.begin(), a1.end(),
                                             [](Seconds t) {
                                               return t.value() < 250.0;
                                             }));
  EXPECT_GT(first_half, 60u);
}

// --- grant ledger ----------------------------------------------------

TEST(ClusterLedgerIncremental, MatchesFullRescanBitwise) {
  // Random hold/release churn on twin ledgers, one using the incremental
  // release and one the original full rescan: the free balance must stay
  // bitwise equal at every step (the x + 0.0 == x argument in
  // grant_ledger.hpp).
  Xoshiro256 rng(13, 1);
  GrantLedger fast(5000.0);
  GrantLedger slow(5000.0);
  std::vector<std::pair<std::size_t, std::size_t>> live;  // (fast, slow)
  for (int step = 0; step < 20000; ++step) {
    const bool can_hold = fast.free_power() > 0.0;
    if (live.empty() || (can_hold && rng.uniform() < 0.55)) {
      const double w = rng.uniform(0.0, fast.free_power());
      live.emplace_back(fast.hold(w), slow.hold(w));
    } else {
      const std::size_t pick = rng.below(live.size());
      const auto [fs, ss] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_EQ(fast.release(fs), slow.release_full_rescan(ss));
    }
    ASSERT_EQ(fast.free_power(), slow.free_power()) << "step " << step;
    ASSERT_EQ(fast.active_grants(), slow.active_grants()) << "step " << step;
  }
}

TEST(ClusterLedgerIncremental, SetBudgetClampsAndRecovers) {
  GrantLedger ledger(100.0);
  const std::size_t a = ledger.hold(60.0);
  const std::size_t b = ledger.hold(30.0);
  EXPECT_DOUBLE_EQ(ledger.free_power(), 10.0);
  // An emergency re-cap below the held power is legal: free clamps to 0
  // and the grants stay on the books.
  ledger.set_budget(50.0);
  EXPECT_EQ(ledger.free_power(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.held_power(), 90.0);
  EXPECT_EQ(ledger.active_grants(), 2u);
  // Restoring the budget restores the exact balance.
  ledger.set_budget(100.0);
  EXPECT_DOUBLE_EQ(ledger.free_power(), 10.0);
  ledger.release(a);
  ledger.release(b);
  EXPECT_DOUBLE_EQ(ledger.free_power(), 100.0);
  EXPECT_EQ(ledger.active_grants(), 0u);
}

}  // namespace
}  // namespace pbc::core
