#include "workload/workload.hpp"

#include <gtest/gtest.h>

namespace pbc::workload {
namespace {

Workload two_phase() {
  Workload w;
  w.name = "two-phase";
  w.metric_name = "Gunit/s";
  w.metric_per_gunit = 1.0;
  Phase a;
  a.name = "a";
  a.weight = 1.0;
  a.flops_per_unit = 10.0;
  a.bytes_per_unit = 1.0;
  a.compute_eff = 1.0;
  a.overlap = 1.0;
  Phase b = a;
  b.name = "b";
  b.weight = 3.0;
  b.flops_per_unit = 1.0;
  b.bytes_per_unit = 10.0;
  w.phases = {a, b};
  return w;
}

PhaseOperands ops(double cap, double bw) {
  PhaseOperands op;
  op.compute_capacity = Gflops{cap};
  op.avail_bw = GBps{bw};
  op.peak_bw = GBps{bw};
  return op;
}

TEST(Workload, ValidatesGood) { EXPECT_TRUE(two_phase().validate().ok()); }

TEST(Workload, RejectsNoName) {
  auto w = two_phase();
  w.name.clear();
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsNoPhases) {
  auto w = two_phase();
  w.phases.clear();
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsNonPositiveWeight) {
  auto w = two_phase();
  w.phases[0].weight = 0.0;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsWorklessPhase) {
  auto w = two_phase();
  w.phases[0].flops_per_unit = 0.0;
  w.phases[0].bytes_per_unit = 0.0;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsBadComputeEff) {
  auto w = two_phase();
  w.phases[0].compute_eff = 1.5;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsBadBwFrac) {
  auto w = two_phase();
  w.phases[0].max_bw_frac = 0.0;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsEnergyScaleBelowOne) {
  auto w = two_phase();
  w.phases[0].mem_energy_scale = 0.5;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, RejectsBadMetricFactor) {
  auto w = two_phase();
  w.metric_per_gunit = 0.0;
  EXPECT_FALSE(w.validate().ok());
}

TEST(Workload, AggregateRateIsWeightedHarmonic) {
  const auto w = two_phase();
  const auto op = ops(100.0, 10.0);
  // Phase a: t_c = 10/100 = 0.1, t_m = 1/10 = 0.1 => t = 0.1 (overlap 1).
  // Phase b: t_c = 1/100 = 0.01, t_m = 10/10 = 1.0 => t = 1.0.
  // Aggregate: total units 4, total time 1*0.1 + 3*1.0 = 3.1.
  const auto r = evaluate(w, op);
  EXPECT_NEAR(r.rate_gunits, 4.0 / 3.1, 1e-9);
}

TEST(Workload, AggregateBandwidthIsBytesOverTime) {
  const auto w = two_phase();
  const auto r = evaluate(w, ops(100.0, 10.0));
  // Total bytes = 1*1 + 3*10 = 31 over 3.1 time units.
  EXPECT_NEAR(r.achieved_bw.value(), 31.0 / 3.1, 1e-9);
}

TEST(Workload, MetricScalesRate) {
  auto w = two_phase();
  w.metric_per_gunit = 32.0;
  const auto r = evaluate(w, ops(100.0, 10.0));
  EXPECT_NEAR(r.metric, r.rate_gunits * 32.0, 1e-12);
}

TEST(Workload, SinglePhaseAggregationMatchesPhase) {
  auto w = two_phase();
  w.phases.resize(1);
  const auto op = ops(100.0, 10.0);
  const auto agg = evaluate(w, op);
  const auto ph = evaluate_phase(w.phases[0], op);
  EXPECT_NEAR(agg.rate_gunits, ph.rate_gunits, 1e-12);
  EXPECT_NEAR(agg.compute_util, ph.compute_util, 1e-12);
  EXPECT_NEAR(agg.activity_eff, ph.activity_eff, 1e-12);
}

TEST(Workload, OperationalIntensityIsWorkWeighted) {
  const auto w = two_phase();
  // flops = 1*10 + 3*1 = 13; bytes = 1*1 + 3*10 = 31.
  EXPECT_NEAR(operational_intensity(w), 13.0 / 31.0, 1e-12);
}

TEST(Workload, UtilizationsAreTimeWeightedAverages) {
  const auto r = evaluate(two_phase(), ops(100.0, 10.0));
  EXPECT_GE(r.compute_util, 0.0);
  EXPECT_LE(r.compute_util, 1.0);
  EXPECT_GE(r.mem_util, 0.0);
  EXPECT_LE(r.mem_util, 1.0);
}

TEST(Workload, DomainAndIntensityToString) {
  EXPECT_STREQ(to_string(Domain::kCpu), "cpu");
  EXPECT_STREQ(to_string(Domain::kGpu), "gpu");
  EXPECT_STREQ(to_string(Intensity::kCompute), "compute");
  EXPECT_STREQ(to_string(Intensity::kMemory), "memory");
  EXPECT_STREQ(to_string(Intensity::kBalanced), "balanced");
}

}  // namespace
}  // namespace pbc::workload
