#include "workload/serialize.hpp"

#include <gtest/gtest.h>

#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::workload {
namespace {

void expect_equal(const Workload& a, const Workload& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.description, b.description);
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.nominal_intensity, b.nominal_intensity);
  EXPECT_EQ(a.metric_name, b.metric_name);
  EXPECT_DOUBLE_EQ(a.metric_per_gunit, b.metric_per_gunit);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const auto& pa = a.phases[i];
    const auto& pb = b.phases[i];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_DOUBLE_EQ(pa.weight, pb.weight);
    EXPECT_DOUBLE_EQ(pa.flops_per_unit, pb.flops_per_unit);
    EXPECT_DOUBLE_EQ(pa.bytes_per_unit, pb.bytes_per_unit);
    EXPECT_DOUBLE_EQ(pa.compute_eff, pb.compute_eff);
    EXPECT_DOUBLE_EQ(pa.overlap, pb.overlap);
    EXPECT_DOUBLE_EQ(pa.max_bw_frac, pb.max_bw_frac);
    EXPECT_DOUBLE_EQ(pa.freq_scaling, pb.freq_scaling);
    EXPECT_DOUBLE_EQ(pa.activity, pb.activity);
    EXPECT_DOUBLE_EQ(pa.mem_energy_scale, pb.mem_energy_scale);
  }
}

TEST(Serialize, RoundTripsEverySuiteBenchmark) {
  for (const auto& w : cpu_suite()) {
    const auto back = from_text(to_text(w));
    ASSERT_TRUE(back.ok()) << w.name << ": " << back.error().to_string();
    expect_equal(w, back.value());
  }
  for (const auto& w : gpu_suite()) {
    const auto back = from_text(to_text(w));
    ASSERT_TRUE(back.ok()) << w.name;
    expect_equal(w, back.value());
  }
}

TEST(Serialize, ParsesHandWrittenDescriptor) {
  const std::string text = R"(
# my custom solver
name = MYAPP
description = a custom solver
domain = cpu
metric = GFLOP/s
metric_per_gunit = 1.0
[phase]
name = sweep
weight = 0.7
flops_per_unit = 1.0
bytes_per_unit = 0.25
compute_eff = 0.45
[phase]
name = exchange
weight = 0.3
flops_per_unit = 1.0
bytes_per_unit = 0.8
compute_eff = 0.35
activity = 0.6
)";
  const auto w = from_text(text);
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  EXPECT_EQ(w.value().name, "MYAPP");
  ASSERT_EQ(w.value().phases.size(), 2u);
  EXPECT_DOUBLE_EQ(w.value().phases[0].weight, 0.7);
  EXPECT_DOUBLE_EQ(w.value().phases[1].bytes_per_unit, 0.8);
  // Omitted keys keep defaults.
  EXPECT_DOUBLE_EQ(w.value().phases[0].overlap, 0.9);
}

TEST(Serialize, RejectsUnknownKeys) {
  EXPECT_FALSE(from_text("name = X\nbogus = 1\n[phase]\nweight = 1\n").ok());
  EXPECT_FALSE(
      from_text("name = X\n[phase]\nweight = 1\ntypo_key = 2\n").ok());
}

TEST(Serialize, RejectsMalformedLines) {
  const auto r = from_text("name = X\n[phase]\nno equals sign here\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 3"), std::string::npos);
}

TEST(Serialize, RejectsNonNumericValues) {
  EXPECT_FALSE(
      from_text("name = X\n[phase]\nweight = heavy\n").ok());
}

TEST(Serialize, RejectsUnknownDomainOrIntensity) {
  EXPECT_FALSE(from_text("name = X\ndomain = fpga\n[phase]\n").ok());
  EXPECT_FALSE(from_text("name = X\nintensity = extreme\n[phase]\n").ok());
}

TEST(Serialize, ValidationStillApplies) {
  // Parses fine but violates workload invariants (no phases).
  EXPECT_FALSE(from_text("name = X\n").ok());
  // Negative weight.
  EXPECT_FALSE(from_text("name = X\n[phase]\nweight = -1\n").ok());
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
  const auto w = from_text(
      "# header comment\n\nname = Y\n\n[phase]\n# phase comment\nweight = "
      "2\n");
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w.value().phases[0].weight, 2.0);
}

}  // namespace
}  // namespace pbc::workload
