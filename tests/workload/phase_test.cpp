#include "workload/phase.hpp"

#include <gtest/gtest.h>

namespace pbc::workload {
namespace {

Phase basic_phase() {
  Phase p;
  p.name = "p";
  p.flops_per_unit = 10.0;
  p.bytes_per_unit = 5.0;
  p.compute_eff = 0.5;
  p.overlap = 1.0;
  p.max_bw_frac = 1.0;
  p.freq_scaling = 0.0;
  p.activity = 0.8;
  return p;
}

PhaseOperands operands(double cap_gflops, double bw) {
  PhaseOperands op;
  op.compute_capacity = Gflops{cap_gflops};
  op.avail_bw = GBps{bw};
  op.peak_bw = GBps{100.0};
  op.rel_clock = 1.0;
  op.duty = 1.0;
  return op;
}

TEST(Phase, ComputeBoundRateMatchesRoofline) {
  // Effective capacity 50 GFLOP/s and 10 FLOPs/unit => 5 Gunits/s when
  // memory is plentiful.
  const auto r = evaluate_phase(basic_phase(), operands(100.0, 1000.0));
  EXPECT_NEAR(r.rate_gunits, 5.0, 1e-9);
  EXPECT_NEAR(r.compute_util, 1.0, 1e-9);
  EXPECT_LT(r.mem_util, 1.0);
}

TEST(Phase, MemoryBoundRateMatchesRoofline) {
  // 4 GB/s and 5 bytes/unit => 0.8 Gunits/s when compute is plentiful.
  const auto r = evaluate_phase(basic_phase(), operands(10000.0, 4.0));
  EXPECT_NEAR(r.rate_gunits, 0.8, 1e-9);
  EXPECT_NEAR(r.mem_util, 1.0, 1e-9);
  EXPECT_LT(r.compute_util, 0.1);
}

TEST(Phase, FullOverlapTakesMax) {
  auto p = basic_phase();
  p.overlap = 1.0;
  // t_c = 10/50 = 0.2; t_m = 5/10 = 0.5 => rate 2.0
  const auto r = evaluate_phase(p, operands(100.0, 10.0));
  EXPECT_NEAR(r.rate_gunits, 2.0, 1e-9);
}

TEST(Phase, NoOverlapTakesSum) {
  auto p = basic_phase();
  p.overlap = 0.0;
  // t = 0.2 + 0.5 = 0.7 => rate 1/0.7
  const auto r = evaluate_phase(p, operands(100.0, 10.0));
  EXPECT_NEAR(r.rate_gunits, 1.0 / 0.7, 1e-9);
}

TEST(Phase, PartialOverlapBetweenExtremes) {
  auto p = basic_phase();
  p.overlap = 0.5;
  const auto r = evaluate_phase(p, operands(100.0, 10.0));
  EXPECT_GT(r.rate_gunits, 1.0 / 0.7);
  EXPECT_LT(r.rate_gunits, 2.0);
}

TEST(Phase, LatencyCeilingLimitsBandwidth) {
  auto p = basic_phase();
  p.max_bw_frac = 0.3;  // ceiling = 30 GB/s out of peak 100
  const auto r = evaluate_phase(p, operands(100000.0, 1000.0));
  EXPECT_NEAR(r.achieved_bw.value(), 30.0, 1e-6);
}

TEST(Phase, FreqScalingDegradesCeiling) {
  auto p = basic_phase();
  p.max_bw_frac = 1.0;
  p.freq_scaling = 0.5;
  auto op = operands(100000.0, 1000.0);
  op.rel_clock = 0.25;
  const auto r = evaluate_phase(p, op);
  // ceiling = 100 * 0.25^0.5 = 50 GB/s
  EXPECT_NEAR(r.achieved_bw.value(), 50.0, 1e-6);
}

TEST(Phase, ZeroFreqScalingIgnoresClock) {
  auto p = basic_phase();
  auto op = operands(100000.0, 1000.0);
  op.rel_clock = 0.3;
  const auto r = evaluate_phase(p, op);
  EXPECT_NEAR(r.achieved_bw.value(), 100.0, 1e-6);
}

TEST(Phase, DutyGatesBandwidthLinearly) {
  // A duty-cycled core issues no requests during the off fraction: the
  // ceiling must scale linearly with duty even when freq_scaling is small.
  auto p = basic_phase();
  p.freq_scaling = 0.1;
  auto op = operands(100000.0, 1000.0);
  op.duty = 0.25;
  const auto r = evaluate_phase(p, op);
  EXPECT_NEAR(r.achieved_bw.value(), 25.0 * std::pow(1.0, 0.1), 1e-6);
}

TEST(Phase, EffectiveBwCarriesEnergyScale) {
  auto p = basic_phase();
  p.mem_energy_scale = 2.0;
  const auto r = evaluate_phase(p, operands(100.0, 10.0));
  EXPECT_NEAR(r.effective_bw.value(), 2.0 * r.achieved_bw.value(), 1e-9);
}

TEST(Phase, ActivityHasStallFloor) {
  // Fully memory-bound: compute_util ~ 0, but activity stays within the
  // stall floor of the configured activity.
  const auto r = evaluate_phase(basic_phase(), operands(100000.0, 1.0));
  EXPECT_GT(r.activity_eff, 0.8 * 0.70);
  EXPECT_LT(r.activity_eff, 0.8);
}

TEST(Phase, ActivityFullWhenComputeBound) {
  const auto r = evaluate_phase(basic_phase(), operands(10.0, 10000.0));
  EXPECT_NEAR(r.activity_eff, 0.8, 1e-6);
}

TEST(Phase, ComputeTimeFracOrdering) {
  const auto compute_bound =
      evaluate_phase(basic_phase(), operands(10.0, 10000.0));
  const auto memory_bound =
      evaluate_phase(basic_phase(), operands(10000.0, 1.0));
  EXPECT_GT(compute_bound.compute_time_frac, 0.9);
  EXPECT_LT(memory_bound.compute_time_frac, 0.1);
}

TEST(Phase, RateMonotoneInBothCapacities) {
  const auto base = evaluate_phase(basic_phase(), operands(100.0, 10.0));
  const auto more_compute =
      evaluate_phase(basic_phase(), operands(200.0, 10.0));
  const auto more_bw = evaluate_phase(basic_phase(), operands(100.0, 20.0));
  EXPECT_GE(more_compute.rate_gunits, base.rate_gunits);
  EXPECT_GE(more_bw.rate_gunits, base.rate_gunits);
}

TEST(Phase, TimeAndRateAreReciprocal) {
  const auto r = evaluate_phase(basic_phase(), operands(123.0, 7.0));
  EXPECT_NEAR(r.rate_gunits * r.time_per_unit, 1.0, 1e-12);
}

}  // namespace
}  // namespace pbc::workload
