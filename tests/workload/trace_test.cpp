#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/cpu_suite.hpp"

namespace pbc::workload {
namespace {

TEST(Trace, TotalWorkMatchesRequest) {
  const auto wl = npb_bt();
  const auto trace = generate_trace(wl, {200.0, 1.0, 0.5, 7});
  double total = 0.0;
  for (const auto& seg : trace) total += seg.work_units;
  EXPECT_NEAR(total, 200.0, 1e-9);
}

TEST(Trace, SharesConvergeToWeights) {
  const auto wl = npb_ft();  // weights 0.6 / 0.4
  TraceOptions opt;
  opt.total_units = 5000.0;
  opt.segment_units = 1.0;
  opt.irregularity = 0.6;
  const auto trace = generate_trace(wl, opt);
  const auto shares = phase_shares(wl, trace);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0], 0.6, 0.05);
  EXPECT_NEAR(shares[1], 0.4, 0.05);
}

TEST(Trace, RegularModeAlternatesDeterministically) {
  const auto wl = npb_ft();
  TraceOptions opt;
  opt.total_units = 100.0;
  opt.irregularity = 0.0;
  const auto a = generate_trace(wl, opt);
  const auto b = generate_trace(wl, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].phase_index, b[i].phase_index);
    EXPECT_EQ(a[i].work_units, b[i].work_units);
  }
  // Regular mode still hits the weight shares exactly-ish.
  const auto shares = phase_shares(wl, a);
  EXPECT_NEAR(shares[0], 0.6, 0.02);
}

TEST(Trace, SeedChangesIrregularTrace) {
  const auto wl = npb_bt();
  TraceOptions a;
  a.irregularity = 1.0;
  a.seed = 1;
  TraceOptions b = a;
  b.seed = 2;
  const auto ta = generate_trace(wl, a);
  const auto tb = generate_trace(wl, b);
  bool differs = ta.size() != tb.size();
  for (std::size_t i = 0; !differs && i < ta.size(); ++i) {
    differs = ta[i].phase_index != tb[i].phase_index ||
              ta[i].work_units != tb[i].work_units;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, SameSeedReproduces) {
  const auto wl = npb_lu();
  TraceOptions opt;
  opt.irregularity = 0.9;
  opt.seed = 99;
  const auto a = generate_trace(wl, opt);
  const auto b = generate_trace(wl, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].work_units, b[i].work_units);
  }
}

TEST(Trace, IrregularityVariesSegmentLengths) {
  // Regular mode produces a periodic pattern with few distinct segment
  // lengths; irregular mode jitters lengths and merges random repeats,
  // producing many distinct lengths (the "less regular" execution §6.2
  // attributes pseudo-applications' curves to).
  const auto wl = npb_ft();
  TraceOptions regular;
  regular.total_units = 1000.0;
  regular.irregularity = 0.0;
  TraceOptions irregular = regular;
  irregular.irregularity = 1.0;
  auto distinct_lengths = [](const PhaseTrace& trace) {
    std::set<double> lengths;
    for (const auto& seg : trace) lengths.insert(seg.work_units);
    return lengths.size();
  };
  EXPECT_GT(distinct_lengths(generate_trace(wl, irregular)),
            4 * distinct_lengths(generate_trace(wl, regular)));
}

TEST(Trace, AdjacentSegmentsNeverShareAPhase) {
  const auto trace = generate_trace(npb_bt(), {500.0, 1.0, 1.0, 3});
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NE(trace[i].phase_index, trace[i - 1].phase_index);
  }
}

TEST(Trace, SinglePhaseWorkloadYieldsOneSegment) {
  const auto trace = generate_trace(dgemm(), {50.0, 1.0, 0.8, 5});
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].phase_index, 0u);
  EXPECT_NEAR(trace[0].work_units, 50.0, 1e-9);
}

TEST(Trace, DegenerateOptionsYieldEmptyTrace) {
  EXPECT_TRUE(generate_trace(dgemm(), {0.0, 1.0, 0.5, 1}).empty());
  EXPECT_TRUE(generate_trace(dgemm(), {10.0, 0.0, 0.5, 1}).empty());
}

TEST(Trace, PhaseSharesOfEmptyTrace) {
  const auto shares = phase_shares(npb_bt(), {});
  for (double s : shares) EXPECT_EQ(s, 0.0);
}

}  // namespace
}  // namespace pbc::workload
