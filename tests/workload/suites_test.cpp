// Parameterized checks over the full benchmark suites (paper Table 3).
#include <gtest/gtest.h>

#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::workload {
namespace {

class SuiteTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SuiteTest, Validates) {
  EXPECT_TRUE(GetParam().validate().ok()) << GetParam().name;
}

TEST_P(SuiteTest, HasDescriptionAndMetric) {
  const auto& w = GetParam();
  EXPECT_FALSE(w.description.empty());
  EXPECT_FALSE(w.metric_name.empty());
  EXPECT_GT(w.metric_per_gunit, 0.0);
}

TEST_P(SuiteTest, IntensityLabelConsistentWithOperationalIntensity) {
  const auto& w = GetParam();
  const double oi = operational_intensity(w);
  switch (w.nominal_intensity) {
    case Intensity::kCompute:
      EXPECT_GT(oi, 3.0) << w.name;
      break;
    case Intensity::kMemory:
      EXPECT_LT(oi, 1.5) << w.name;
      break;
    case Intensity::kBalanced:
      EXPECT_GT(oi, 0.2) << w.name;
      EXPECT_LT(oi, 10.0) << w.name;
      break;
  }
}

TEST_P(SuiteTest, ProducesFinitePositiveRate) {
  const auto& w = GetParam();
  PhaseOperands op;
  op.compute_capacity = Gflops{w.domain == Domain::kCpu ? 400.0 : 12000.0};
  op.avail_bw = GBps{w.domain == Domain::kCpu ? 80.0 : 480.0};
  op.peak_bw = op.avail_bw;
  const auto r = evaluate(w, op);
  EXPECT_GT(r.rate_gunits, 0.0) << w.name;
  EXPECT_TRUE(std::isfinite(r.rate_gunits)) << w.name;
  EXPECT_GT(r.metric, 0.0) << w.name;
}

std::string param_name(const ::testing::TestParamInfo<Workload>& info) {
  std::string n = info.param.name;
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(CpuSuite, SuiteTest,
                         ::testing::ValuesIn(cpu_suite()), param_name);
INSTANTIATE_TEST_SUITE_P(GpuSuite, SuiteTest,
                         ::testing::ValuesIn(gpu_suite()), param_name);

TEST(CpuSuite, HasElevenBenchmarksInTableOrder) {
  const auto suite = cpu_suite();
  ASSERT_EQ(suite.size(), 11u);
  EXPECT_EQ(suite[0].name, "SRA");
  EXPECT_EQ(suite[1].name, "STREAM");
  EXPECT_EQ(suite[2].name, "DGEMM");
  EXPECT_EQ(suite[10].name, "MG");
  for (const auto& w : suite) EXPECT_EQ(w.domain, Domain::kCpu);
}

TEST(GpuSuite, HasSixBenchmarksInTableOrder) {
  const auto suite = gpu_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "SGEMM");
  EXPECT_EQ(suite[5].name, "HPCG");
  for (const auto& w : suite) EXPECT_EQ(w.domain, Domain::kGpu);
}

TEST(SuiteLookup, FindsByName) {
  EXPECT_TRUE(cpu_benchmark("DGEMM").ok());
  EXPECT_TRUE(gpu_benchmark("MiniFE").ok());
}

TEST(SuiteLookup, UnknownNameIsNotFound) {
  const auto r = cpu_benchmark("NOPE");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(gpu_benchmark("DGEMM").ok());  // DGEMM is CPU-only
}

TEST(SuiteCharacteristics, DgemmMoreComputeIntenseThanStream) {
  EXPECT_GT(operational_intensity(dgemm()),
            100.0 * operational_intensity(stream_cpu()));
}

TEST(SuiteCharacteristics, RandomAccessPaysDramEnergyPremium) {
  EXPECT_GT(sra().phases[0].mem_energy_scale, 1.5);
  EXPECT_DOUBLE_EQ(stream_cpu().phases[0].mem_energy_scale, 1.0);
}

TEST(SuiteCharacteristics, RandomAccessIsLatencyLimited) {
  EXPECT_LT(sra().phases[0].max_bw_frac, 0.7);
  EXPECT_GT(sra().phases[0].freq_scaling, 0.3);
}

}  // namespace
}  // namespace pbc::workload
