#include "nvml/smi.hpp"

#include <cstdlib>
#include <sstream>

namespace pbc::nvml {

std::vector<std::string> split_args(const std::string& line) {
  std::vector<std::string> args;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) args.push_back(tok);
  return args;
}

CliResult SmiCli::run(const std::string& command_line) {
  const auto args = split_args(command_line);
  if (args.empty()) return {1, "usage: nvidia-smi|nvidia-settings ...\n"};
  if (args[0] == "nvidia-smi") return smi(args);
  if (args[0] == "nvidia-settings") return settings(args);
  return {1, "unknown command: " + args[0] + "\n"};
}

std::string SmiCli::power_query() const {
  const auto c = device_->power_constraints();
  std::ostringstream out;
  out << "==============NVSMI LOG==============\n"
      << "GPU 00000000:01:00.0\n"
      << "    Product Name                    : "
      << device_->machine().name << "\n"
      << "    Power Readings\n"
      << "        Power Management            : Supported\n"
      << "        Power Limit                 : "
      << device_->power_limit().value() << " W\n"
      << "        Default Power Limit         : " << c.default_limit.value()
      << " W\n"
      << "        Min Power Limit             : " << c.min_limit.value()
      << " W\n"
      << "        Max Power Limit             : " << c.max_limit.value()
      << " W\n"
      << "    Clocks\n"
      << "        Memory                      : "
      << device_->mem_clock_mhz() << " MHz\n";
  return out.str();
}

CliResult SmiCli::smi(const std::vector<std::string>& args) {
  // nvidia-smi -q -d POWER
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-q") {
      return {0, power_query()};
    }
    if (args[i] == "-pl" || args[i] == "--power-limit") {
      if (i + 1 >= args.size()) {
        return {1, "option requires an argument: -pl\n"};
      }
      char* end = nullptr;
      const double watts = std::strtod(args[i + 1].c_str(), &end);
      if (end == args[i + 1].c_str() || *end != '\0') {
        return {1, "invalid power limit: " + args[i + 1] + "\n"};
      }
      const auto r = device_->set_power_limit(Watts{watts});
      if (!r.ok()) {
        return {1, "Provided power limit is not a valid power limit "
                   "which should be between " +
                       std::to_string(
                           device_->power_constraints().min_limit.value()) +
                       " W and " +
                       std::to_string(
                           device_->power_constraints().max_limit.value()) +
                       " W for GPU 00000000:01:00.0\n"};
      }
      std::ostringstream out;
      out << "Power limit for GPU 00000000:01:00.0 was set to " << watts
          << ".00 W from " << watts << ".00 W.\n";
      return {0, out.str()};
    }
  }
  return {1, "usage: nvidia-smi [-q -d POWER] [-pl <watts>]\n"};
}

CliResult SmiCli::settings(const std::vector<std::string>& args) {
  // nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=<offset>
  // The offset is relative to the nominal transfer rate in MHz; negative
  // offsets select lower memory clocks.
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] != "-a" || i + 1 >= args.size()) continue;
    const std::string& assignment = args[i + 1];
    const std::string key = "GPUMemoryTransferRateOffset";
    const auto key_pos = assignment.find(key);
    const auto eq = assignment.find('=');
    if (key_pos == std::string::npos || eq == std::string::npos) {
      return {1, "unsupported attribute: " + assignment + "\n"};
    }
    char* end = nullptr;
    const double offset = std::strtod(assignment.c_str() + eq + 1, &end);
    if (end == assignment.c_str() + eq + 1) {
      return {1, "invalid offset in: " + assignment + "\n"};
    }
    const double target =
        device_->machine().gpu.nominal_mem_clock() + offset;
    const auto r = device_->set_mem_clock(target);
    if (!r.ok()) return {1, r.error().to_string() + "\n"};
    std::ostringstream out;
    out << "  Attribute 'GPUMemoryTransferRateOffset' ([gpu:0]) assigned "
           "value "
        << offset << ".\n  Effective memory clock: "
        << device_->mem_clock_mhz() << " MHz.\n";
    return {0, out.str()};
  }
  return {1,
          "usage: nvidia-settings -a "
          "[gpu:0]/GPUMemoryTransferRateOffset=<offset>\n"};
}

}  // namespace pbc::nvml
