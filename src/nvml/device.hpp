// NVML-style device façade over the simulated GPU.
//
// Mirrors the two knobs the paper's GPU experiments drive: the board power
// limit (`nvidia-smi -pl`, clamped to the card's [min, max] constraint
// range) and the memory clock offset (`nvidia-settings`, restricted to the
// card's supported transfer rates). Running a workload under the current
// settings yields one AllocationSample, exactly like one experiment run.
#pragma once

#include <cstddef>
#include <span>

#include "hw/machine.hpp"
#include "sim/gpu_node.hpp"
#include "sim/measurement.hpp"
#include "workload/workload.hpp"

namespace pbc::nvml {

/// Driver-reported power-limit constraints (nvidia-smi -q -d POWER).
struct PowerConstraints {
  Watts min_limit{0.0};
  Watts default_limit{0.0};
  Watts max_limit{0.0};
};

class NvmlDevice {
 public:
  explicit NvmlDevice(hw::GpuMachine machine);

  [[nodiscard]] const hw::GpuMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const hw::GpuModel& model() const noexcept { return model_; }

  // --- power limit (nvidia-smi -pl) ---

  [[nodiscard]] PowerConstraints power_constraints() const noexcept;

  /// Rejects limits outside the constraint range, like the real driver.
  Result<bool> set_power_limit(Watts limit);

  [[nodiscard]] Watts power_limit() const noexcept { return power_limit_; }

  // --- memory clock (nvidia-settings transfer-rate offset) ---

  [[nodiscard]] std::span<const double> supported_mem_clocks() const noexcept {
    return machine_.gpu.mem_clocks_mhz;
  }

  /// Selects the highest supported clock that does not exceed `mhz`;
  /// rejects values below the lowest supported clock.
  Result<bool> set_mem_clock(double mhz);

  /// Back to the nominal clock (the default driver policy's setting).
  void reset_mem_clock() noexcept;

  [[nodiscard]] std::size_t mem_clock_index() const noexcept {
    return mem_clock_index_;
  }
  [[nodiscard]] double mem_clock_mhz() const noexcept;

  /// Empirical-model estimate of memory power at the current clock — the
  /// quantity the paper plots on the x-axis of Fig. 7.
  [[nodiscard]] Watts estimated_mem_power() const noexcept;

  // --- execution ---

  /// Runs a workload to steady state under the current power limit and
  /// memory clock.
  [[nodiscard]] sim::AllocationSample run(
      const workload::Workload& wl) const;

  /// Board power the workload would draw with no cap (max clocks) — the
  /// P_totmax profiling parameter of Algorithm 2.
  [[nodiscard]] Watts uncapped_power(const workload::Workload& wl) const;

 private:
  hw::GpuMachine machine_;
  hw::GpuModel model_;
  Watts power_limit_;
  std::size_t mem_clock_index_;
};

}  // namespace pbc::nvml
