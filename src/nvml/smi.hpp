// nvidia-smi / nvidia-settings style command front-end over NvmlDevice.
//
// The paper drives its GPU experiments through exactly two commands:
//   nvidia-smi -pl <watts>                      (board power limit)
//   nvidia-settings -a "[gpu:0]/GPUMemoryTransferRateOffset[3]=<offset>"
// plus `nvidia-smi -q -d POWER` to read the constraint block back.
// SmiCli parses those command lines against a simulated device so scripts
// and examples can be written verbatim.
#pragma once

#include <string>
#include <vector>

#include "nvml/device.hpp"

namespace pbc::nvml {

/// Outcome of one command invocation.
struct CliResult {
  int exit_code = 0;   ///< 0 on success, like the real tools
  std::string output;  ///< stdout text
};

class SmiCli {
 public:
  explicit SmiCli(NvmlDevice* device) : device_(device) {}

  /// Executes one command line, e.g.
  ///   "nvidia-smi -pl 200"
  ///   "nvidia-smi -q -d POWER"
  ///   "nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-3398"
  /// Unknown commands/flags fail with exit code 1 and a usage message.
  CliResult run(const std::string& command_line);

 private:
  CliResult smi(const std::vector<std::string>& args);
  CliResult settings(const std::vector<std::string>& args);
  [[nodiscard]] std::string power_query() const;

  NvmlDevice* device_;
};

/// Splits a command line on whitespace (no quoting — the supported
/// commands never need it).
[[nodiscard]] std::vector<std::string> split_args(const std::string& line);

}  // namespace pbc::nvml
