#include "nvml/device.hpp"

#include <algorithm>

namespace pbc::nvml {

NvmlDevice::NvmlDevice(hw::GpuMachine machine)
    : machine_(std::move(machine)),
      model_(machine_.gpu),
      power_limit_(machine_.gpu.board_default_cap),
      mem_clock_index_(machine_.gpu.mem_clocks_mhz.size() - 1) {}

PowerConstraints NvmlDevice::power_constraints() const noexcept {
  return {machine_.gpu.board_min_cap, machine_.gpu.board_default_cap,
          machine_.gpu.board_max_cap};
}

Result<bool> NvmlDevice::set_power_limit(Watts limit) {
  const auto c = power_constraints();
  if (limit < c.min_limit || c.max_limit < limit) {
    return out_of_range("power limit " + std::to_string(limit.value()) +
                        " W outside [" + std::to_string(c.min_limit.value()) +
                        ", " + std::to_string(c.max_limit.value()) + "] W");
  }
  power_limit_ = limit;
  return true;
}

Result<bool> NvmlDevice::set_mem_clock(double mhz) {
  const auto& clocks = machine_.gpu.mem_clocks_mhz;
  if (mhz < clocks.front()) {
    return out_of_range("memory clock " + std::to_string(mhz) +
                        " MHz below the lowest supported clock");
  }
  std::size_t best = 0;
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    if (clocks[i] <= mhz) best = i;
  }
  mem_clock_index_ = best;
  return true;
}

void NvmlDevice::reset_mem_clock() noexcept {
  mem_clock_index_ = machine_.gpu.mem_clocks_mhz.size() - 1;
}

double NvmlDevice::mem_clock_mhz() const noexcept {
  return machine_.gpu.mem_clocks_mhz[mem_clock_index_];
}

Watts NvmlDevice::estimated_mem_power() const noexcept {
  return model_.estimated_mem_power(mem_clock_index_);
}

sim::AllocationSample NvmlDevice::run(const workload::Workload& wl) const {
  const sim::GpuNodeSim node(machine_, wl);
  return node.steady_state(mem_clock_index_, power_limit_);
}

Watts NvmlDevice::uncapped_power(const workload::Workload& wl) const {
  const sim::GpuNodeSim node(machine_, wl);
  return node.uncapped_board_power();
}

}  // namespace pbc::nvml
