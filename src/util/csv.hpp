// Minimal CSV emission for sweep results.
//
// Bench harnesses optionally dump raw sweep grids as CSV so results can be
// re-plotted outside the repo; CsvWriter handles quoting and row shape
// validation.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pbc {

/// Streams CSV rows to an ostream. The header fixes the column count; rows
/// with mismatched arity are rejected.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  /// Writes one row. Returns false (and writes nothing) on arity mismatch.
  bool write_row(const std::vector<std::string>& cells);

  /// Quotes a cell per RFC 4180 if it contains comma, quote, or newline.
  [[nodiscard]] static std::string escape(const std::string& cell);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& os_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace pbc
