// Fixed-width text table rendering for bench harness output.
//
// Bench binaries print paper-style tables; TableWriter handles column
// sizing, alignment, and numeric formatting so every harness reports rows
// the same way.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pbc {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; it may have fewer cells than headers (padded blank).
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (fixed notation).
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Renders the table with a header rule, e.g.
  ///   budget  perf   category
  ///   ------  -----  --------
  ///   208     12.4   II
  void render(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pbc
