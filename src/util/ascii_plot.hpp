// Terminal line/scatter plots for bench output.
//
// The paper's evaluation is figures; the bench harnesses render the same
// series as ASCII so a reviewer can see curve shapes (knees, plateaus,
// category boundaries) directly in the captured bench_output.txt.
#pragma once

#include <string>
#include <vector>

namespace pbc {

/// One named series of (x, y) points.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling the character canvas.
struct PlotOptions {
  int width = 72;        ///< plot area columns (excluding axis labels)
  int height = 20;       ///< plot area rows
  std::string title;     ///< printed above the canvas
  std::string x_label;   ///< printed below the canvas
  std::string y_label;   ///< printed beside the y axis extremes
  bool connect = true;   ///< draw line segments between consecutive points
};

/// Renders up to 8 series on a shared canvas; each series uses its own glyph
/// ('*', '+', 'o', 'x', '#', '@', '%', '&') and a legend line maps glyphs to
/// names. Returns the complete multi-line string.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const PlotOptions& options);

}  // namespace pbc
