// Deterministic pseudo-random number generation.
//
// Simulation runs must be reproducible bit-for-bit across platforms and
// thread counts, so the library uses its own xoshiro256** generator rather
// than implementation-defined std::default_random_engine, and every consumer
// derives an independent stream from a (seed, stream-id) pair via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace pbc {

/// SplitMix64: used to seed / derive streams. Passes BigCrush as a 64-bit
/// mixer; the standard way to initialize xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed with a (seed, stream) pair; distinct streams are statistically
  /// independent for our purposes.
  constexpr explicit Xoshiro256(std::uint64_t seed,
                                std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0x632be59bd9b4e019ULL * (stream + 1));
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation (biased variant is
    // fine: n << 2^64 in all library uses).
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>((*this)()) * n) >>
                                      64);
  }

  /// Standard normal via Marsaglia polar method (deterministic, no libm
  /// trig dependence).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pbc
