// Canonical structural hashing for descriptor types.
//
// The service layer (src/svc) keys its caches by a hash of the full
// machine + workload descriptor, so two requests describing the same
// configuration — however they were constructed — must hash identically
// and two different configurations must practically never collide. The
// building block is a streaming FNV-1a 64 over a canonical byte encoding:
// every field is fed in a fixed order, floating-point values are
// normalized (-0.0 folds onto +0.0, NaNs onto one bit pattern), and
// variable-length data is length-prefixed so adjacent fields cannot alias.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pbc {

/// Streaming FNV-1a 64-bit hasher with canonical field encoders.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  /// `seed` perturbs the starting state so independent hash streams over
  /// the same bytes produce independent digests (used for 128-bit keys).
  constexpr explicit Fnv1a64(std::uint64_t seed = 0) noexcept
      : h_(kOffsetBasis ^ seed) {}

  constexpr void byte(std::uint8_t b) noexcept {
    h_ ^= b;
    h_ *= kPrime;
  }

  constexpr void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v & 0xffU));
      v >>= 8;
    }
  }

  constexpr void i64(std::int64_t v) noexcept {
    u64(static_cast<std::uint64_t>(v));
  }

  constexpr void size(std::size_t v) noexcept {
    u64(static_cast<std::uint64_t>(v));
  }

  constexpr void boolean(bool v) noexcept { byte(v ? 1 : 0); }

  /// Canonical double: -0.0 and +0.0 hash identically, every NaN hashes
  /// as one quiet-NaN pattern.
  constexpr void f64(double v) noexcept {
    if (v != v) {
      u64(0x7ff8000000000000ULL);
      return;
    }
    if (v == 0.0) v = 0.0;  // fold -0.0 onto +0.0
    u64(std::bit_cast<std::uint64_t>(v));
  }

  /// Length-prefixed string content ("ab","c" never aliases "a","bc").
  constexpr void str(std::string_view s) noexcept {
    size(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_;
};

/// Single-shot convenience for small inputs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  Fnv1a64 h;
  h.str(s);
  return h.digest();
}

}  // namespace pbc
