#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pbc {

namespace {
/// Set for the lifetime of each worker; lets is_worker_thread() answer
/// without any synchronization.
thread_local const ThreadPool* tl_current_pool = nullptr;
}  // namespace

bool ThreadPool::is_worker_thread() const noexcept {
  return tl_current_pool == this;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial fast path: a single index, or a pool that cannot actually fan
  // out, runs inline on the caller — the cross-thread handoff (queue
  // allocation, condvar wake, completion wait) costs more than small
  // batched work items themselves.
  if (n == 1 || thread_count() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static chunking: indices are handed out via a shared atomic counter in
  // chunks to balance load without per-index queue traffic.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (thread_count() * 8));
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(thread_count(), (n + chunk - 1) / chunk);
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t t = 0; t < tasks; ++t) {
    submit([&, next] {
      for (;;) {
        const std::size_t begin = next->fetch_add(chunk);
        if (begin >= n) break;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
      if (done.fetch_add(1) + 1 == tasks) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == tasks; });
}

void ThreadPool::worker_loop() {
  tl_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pbc
