// Minimal command-line parsing for the examples and bench harnesses.
//
// Supports the two shapes those binaries need: positional arguments with
// defaults (`power_sweep SRA ivybridge 240`) and --key=value / --flag
// options (`--csv=out.csv`, `--verbose`). No dependencies, no global
// state; unknown options are reported rather than ignored so typos in
// experiment scripts fail loudly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace pbc {

class CliArgs {
 public:
  /// Parses argv. Options start with "--"; everything else is positional,
  /// in order. "--" alone ends option parsing.
  static Result<CliArgs> parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

  // --- positional ---
  [[nodiscard]] std::size_t positional_count() const noexcept {
    return positional_.size();
  }
  /// i-th positional argument, or `fallback` when absent.
  [[nodiscard]] std::string positional(std::size_t i,
                                       std::string fallback = "") const;
  /// i-th positional parsed as double; `fallback` when absent or
  /// non-numeric.
  [[nodiscard]] double positional_num(std::size_t i,
                                      double fallback) const noexcept;

  // --- options ---
  /// True if --name or --name=value was given.
  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// The value of --name=value (nullopt for bare --name or absent).
  [[nodiscard]] std::optional<std::string> value(
      const std::string& name) const;
  [[nodiscard]] double value_num(const std::string& name,
                                 double fallback) const noexcept;

  /// All option names seen, in order (for unknown-option checks).
  [[nodiscard]] const std::vector<std::string>& option_names() const noexcept {
    return names_;
  }
  /// Names not in `known` (empty vector means everything was recognized).
  [[nodiscard]] std::vector<std::string> unknown_options(
      const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::vector<std::string> names_;
  std::vector<std::optional<std::string>> values_;
};

}  // namespace pbc
