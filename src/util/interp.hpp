// Piecewise-linear curves and curve analysis.
//
// Power/performance profiles in pbc are sampled at discrete allocation
// points; PiecewiseLinear gives continuous evaluation between them, and the
// knee/plateau finders implement the curve-shape analysis the paper does
// visually (locating inflection points of perf_max(P_b) and scenario
// boundaries).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace pbc {

/// A piecewise-linear function defined by sorted (x, y) knots.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from knots; sorts by x and rejects duplicate x values.
  static Result<PiecewiseLinear> from_points(
      std::vector<std::pair<double, double>> pts);

  /// Evaluate with flat extrapolation beyond the domain.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Left derivative-style local slope at x (slope of the containing
  /// segment; 0 outside the domain).
  [[nodiscard]] double slope_at(double x) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return knots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return knots_.size(); }
  [[nodiscard]] double x_min() const noexcept {
    return knots_.empty() ? 0.0 : knots_.front().first;
  }
  [[nodiscard]] double x_max() const noexcept {
    return knots_.empty() ? 0.0 : knots_.back().first;
  }
  [[nodiscard]] const std::vector<std::pair<double, double>>& knots()
      const noexcept {
    return knots_;
  }

 private:
  std::vector<std::pair<double, double>> knots_;
};

/// Finds the x beyond which the curve is flat: the smallest knot x such that
/// for all later knots the y value stays within rel_tol of the final y.
/// Used to locate "performance stops growing" points (paper Fig. 2/6).
[[nodiscard]] double plateau_onset(const PiecewiseLinear& f,
                                   double rel_tol = 0.02) noexcept;

/// Finds interior points where the segment slope changes by more than
/// min_slope_jump (relative to the curve's mean absolute slope). Returns
/// knot x positions; these are candidate scenario-boundary locations.
[[nodiscard]] std::vector<double> slope_breaks(const PiecewiseLinear& f,
                                               double min_slope_jump = 0.5);

}  // namespace pbc
