#include "util/rng.hpp"

#include <cmath>

namespace pbc {

double Xoshiro256::normal() noexcept {
  // Marsaglia polar method; caches nothing so consecutive calls from
  // different call sites stay independent of call interleaving.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace pbc
