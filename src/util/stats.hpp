// Descriptive statistics helpers for sweep results and measurements.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pbc {

/// Streaming mean/variance via Welford's algorithm. Numerically stable for
/// long accumulations (e.g. per-tick power samples over millions of steps).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Geometric mean; all inputs must be positive. Returns 0 for empty input.
[[nodiscard]] double geomean(std::span<const double> xs) noexcept;

/// p in [0, 100]; linear interpolation between order statistics. Copies and
/// sorts internally.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Index of the maximum element; npos (=size) for empty input.
[[nodiscard]] std::size_t argmax(std::span<const double> xs) noexcept;

/// Simple linear regression slope of y over x (least squares). Returns 0 if
/// x has no variance.
[[nodiscard]] double slope(std::span<const double> x,
                           std::span<const double> y) noexcept;

}  // namespace pbc
