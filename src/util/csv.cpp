#include "util/csv.hpp"

namespace pbc {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), columns_(header.size()) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(header[i]);
  }
  os_ << '\n';
}

bool CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) return false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  ++rows_;
  return true;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace pbc
