#include "util/interp.hpp"

#include <algorithm>
#include <cmath>

namespace pbc {

Result<PiecewiseLinear> PiecewiseLinear::from_points(
    std::vector<std::pair<double, double>> pts) {
  if (pts.empty()) {
    return invalid_argument("PiecewiseLinear requires at least one knot");
  }
  std::sort(pts.begin(), pts.end());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].first == pts[i - 1].first) {
      return invalid_argument("duplicate x knot in PiecewiseLinear");
    }
  }
  PiecewiseLinear f;
  f.knots_ = std::move(pts);
  return f;
}

double PiecewiseLinear::operator()(double x) const noexcept {
  if (knots_.empty()) return 0.0;
  if (x <= knots_.front().first) return knots_.front().second;
  if (x >= knots_.back().first) return knots_.back().second;
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), x,
      [](const auto& knot, double v) { return knot.first < v; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double t = (x - lo.first) / (hi.first - lo.first);
  return lo.second + t * (hi.second - lo.second);
}

double PiecewiseLinear::slope_at(double x) const noexcept {
  if (knots_.size() < 2) return 0.0;
  if (x < knots_.front().first || x > knots_.back().first) return 0.0;
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), x,
      [](const auto& knot, double v) { return knot.first < v; });
  if (it == knots_.begin()) ++it;
  if (it == knots_.end()) --it;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  return (hi.second - lo.second) / (hi.first - lo.first);
}

double plateau_onset(const PiecewiseLinear& f, double rel_tol) noexcept {
  const auto& knots = f.knots();
  if (knots.empty()) return 0.0;
  const double final_y = knots.back().second;
  const double tol = std::fabs(final_y) * rel_tol;
  double onset = knots.back().first;
  for (std::size_t i = knots.size(); i-- > 0;) {
    if (std::fabs(knots[i].second - final_y) > tol) break;
    onset = knots[i].first;
  }
  return onset;
}

std::vector<double> slope_breaks(const PiecewiseLinear& f,
                                 double min_slope_jump) {
  std::vector<double> breaks;
  const auto& knots = f.knots();
  if (knots.size() < 3) return breaks;

  std::vector<double> seg_slopes(knots.size() - 1);
  double mean_abs = 0.0;
  for (std::size_t i = 0; i + 1 < knots.size(); ++i) {
    seg_slopes[i] = (knots[i + 1].second - knots[i].second) /
                    (knots[i + 1].first - knots[i].first);
    mean_abs += std::fabs(seg_slopes[i]);
  }
  mean_abs /= static_cast<double>(seg_slopes.size());
  if (mean_abs == 0.0) return breaks;

  for (std::size_t i = 0; i + 1 < seg_slopes.size(); ++i) {
    if (std::fabs(seg_slopes[i + 1] - seg_slopes[i]) >
        min_slope_jump * mean_abs) {
      breaks.push_back(knots[i + 1].first);
    }
  }
  return breaks;
}

}  // namespace pbc
