// Fixed-size thread pool with a blocking parallel_for.
//
// Sweep experiments evaluate thousands of independent (budget, allocation)
// grid points; parallel_for_index partitions them across worker threads.
// The pool is deliberately simple (single mutex-protected queue): tasks in
// this library are coarse (a whole simulation run), so queue contention is
// negligible and determinism is easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pbc {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must not submit to the same pool. Exceptions from fn terminate (the
  /// library's simulation kernels are noexcept by design).
  void parallel_for_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers. Fan-out
  /// helpers (engine batch misses, cluster pre-profiling) consult this to
  /// fall back to serial execution instead of deadlocking on a nested
  /// parallel_for_index against their own pool.
  [[nodiscard]] bool is_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool for sweep runners that don't carry their own.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace pbc
