#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pbc {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::size_t argmax(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::max_element(xs.begin(), xs.end())));
}

double slope(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = mean(x.first(n));
  const double my = mean(y.first(n));
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

}  // namespace pbc
