#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pbc {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void TableWriter::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
}

std::string TableWriter::to_string() const {
  std::ostringstream ss;
  render(ss);
  return ss.str();
}

}  // namespace pbc
