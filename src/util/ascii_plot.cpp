#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pbc {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Bounds {
  double x_lo = std::numeric_limits<double>::max();
  double x_hi = std::numeric_limits<double>::lowest();
  double y_lo = std::numeric_limits<double>::max();
  double y_hi = std::numeric_limits<double>::lowest();
};

Bounds compute_bounds(const std::vector<PlotSeries>& series) {
  Bounds b;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      b.x_lo = std::min(b.x_lo, s.x[i]);
      b.x_hi = std::max(b.x_hi, s.x[i]);
      b.y_lo = std::min(b.y_lo, s.y[i]);
      b.y_hi = std::max(b.y_hi, s.y[i]);
    }
  }
  if (b.x_lo > b.x_hi) {  // no finite points
    b = Bounds{0.0, 1.0, 0.0, 1.0};
  }
  if (b.x_lo == b.x_hi) {
    b.x_lo -= 0.5;
    b.x_hi += 0.5;
  }
  if (b.y_lo == b.y_hi) {
    b.y_lo -= 0.5;
    b.y_hi += 0.5;
  }
  return b;
}

std::string fmt(double v) {
  std::ostringstream ss;
  if (std::fabs(v) >= 1000.0 || (v != 0.0 && std::fabs(v) < 0.01)) {
    ss << std::scientific << std::setprecision(1) << v;
  } else {
    ss << std::fixed << std::setprecision(std::fabs(v) < 10 ? 2 : 1) << v;
  }
  return ss.str();
}

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  const int w = std::max(options.width, 16);
  const int h = std::max(options.height, 6);
  const Bounds b = compute_bounds(series);

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    return static_cast<int>(std::lround((x - b.x_lo) / (b.x_hi - b.x_lo) *
                                        static_cast<double>(w - 1)));
  };
  auto to_row = [&](double y) {
    // Row 0 is the top of the canvas.
    return (h - 1) - static_cast<int>(std::lround(
                         (y - b.y_lo) / (b.y_hi - b.y_lo) *
                         static_cast<double>(h - 1)));
  };
  auto put = [&](int col, int row, char g) {
    if (col < 0 || col >= w || row < 0 || row >= h) return;
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = g;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % std::size(kGlyphs)];
    const auto& s = series[si];
    const std::size_t n = std::min(s.x.size(), s.y.size());

    if (options.connect && n >= 2) {
      for (std::size_t i = 0; i + 1 < n; ++i) {
        if (!std::isfinite(s.y[i]) || !std::isfinite(s.y[i + 1])) continue;
        const int c0 = to_col(s.x[i]);
        const int c1 = to_col(s.x[i + 1]);
        const int r0 = to_row(s.y[i]);
        const int r1 = to_row(s.y[i + 1]);
        const int steps = std::max({std::abs(c1 - c0), std::abs(r1 - r0), 1});
        for (int t = 0; t <= steps; ++t) {
          const double frac = static_cast<double>(t) / steps;
          put(c0 + static_cast<int>(std::lround(frac * (c1 - c0))),
              r0 + static_cast<int>(std::lround(frac * (r1 - r0))), glyph);
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(s.y[i])) continue;
        put(to_col(s.x[i]), to_row(s.y[i]), glyph);
      }
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';

  const std::string y_hi_label = fmt(b.y_hi);
  const std::string y_lo_label = fmt(b.y_lo);
  const std::size_t label_w = std::max(y_hi_label.size(), y_lo_label.size());

  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) {
      label = y_hi_label;
    } else if (r == h - 1) {
      label = y_lo_label;
    }
    out << std::right << std::setw(static_cast<int>(label_w)) << label << " |"
        << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(label_w + 1, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << '\n';
  out << std::string(label_w + 2, ' ') << fmt(b.x_lo);
  const std::string x_hi_label = fmt(b.x_hi);
  const int pad = w - static_cast<int>(fmt(b.x_lo).size()) -
                  static_cast<int>(x_hi_label.size());
  out << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ')
      << x_hi_label << '\n';
  if (!options.x_label.empty()) {
    out << std::string(label_w + 2, ' ') << options.x_label << '\n';
  }

  out << "legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  [" << kGlyphs[si % std::size(kGlyphs)] << "] "
        << series[si].name;
  }
  out << '\n';
  return out.str();
}

}  // namespace pbc
