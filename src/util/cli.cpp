#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace pbc {

Result<CliArgs> CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  if (argc < 1 || argv == nullptr) {
    return invalid_argument("empty argv");
  }
  args.program_ = argv[0];
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (!options_done && tok == "--") {
      options_done = true;
      continue;
    }
    if (!options_done && tok.rfind("--", 0) == 0) {
      const std::string body = tok.substr(2);
      if (body.empty()) {
        return invalid_argument("malformed option '--'");
      }
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        args.names_.push_back(body);
        args.values_.emplace_back(std::nullopt);
      } else {
        if (eq == 0) return invalid_argument("option with empty name");
        args.names_.push_back(body.substr(0, eq));
        args.values_.emplace_back(body.substr(eq + 1));
      }
    } else {
      args.positional_.push_back(tok);
    }
  }
  return args;
}

std::string CliArgs::positional(std::size_t i, std::string fallback) const {
  return i < positional_.size() ? positional_[i] : std::move(fallback);
}

double CliArgs::positional_num(std::size_t i, double fallback) const noexcept {
  if (i >= positional_.size()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(positional_[i].c_str(), &end);
  return end != positional_[i].c_str() && *end == '\0' ? v : fallback;
}

bool CliArgs::has(const std::string& name) const noexcept {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

std::optional<std::string> CliArgs::value(const std::string& name) const {
  for (std::size_t i = names_.size(); i-- > 0;) {
    if (names_[i] == name) return values_[i];  // last occurrence wins
  }
  return std::nullopt;
}

double CliArgs::value_num(const std::string& name,
                          double fallback) const noexcept {
  const auto v = value(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const double num = std::strtod(v->c_str(), &end);
  return end != v->c_str() && *end == '\0' ? num : fallback;
}

std::vector<std::string> CliArgs::unknown_options(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& name : names_) {
    if (std::find(known.begin(), known.end(), name) == known.end() &&
        std::find(unknown.begin(), unknown.end(), name) == unknown.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace pbc
