// Lightweight status / expected-value vocabulary used across pbc.
//
// The library is exception-free on hot paths: fallible operations return
// Result<T> (value or Error) or Status (ok or Error) — ONE error-code
// enum, ONE shape, across every layer's `*_checked` entry point
// (replay_trace_checked, replay_with_shifting_checked,
// simulate_cluster_checked, obs configuration validation, workload
// parsing, hardware interfaces). Policy decisions that carry advisory
// information (e.g. "power surplus") use CoordStatus-style enums defined
// by the owning module — those are outcomes, not errors.
//
// docs/api.md documents the contract: which code each validation class
// maps to, and how to consume Result/Status without exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pbc {

/// Machine-readable error categories — the single enum shared by every
/// checked API in the library. kOk exists so Status/Result can expose a
/// uniform code() accessor; an Error never carries it.
enum class ErrorCode {
  kOk,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kUnavailable,
  kDeadlineExceeded,
  kInternal,
};

/// Human-readable name for an ErrorCode.
[[nodiscard]] constexpr const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

/// An error with a category and a context message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(pbc::to_string(code)) + ": " + message;
  }
};

/// Success-or-error outcome for operations with no value to return —
/// the Result<void> of the vocabulary. Default-constructed Status is ok;
/// an Error converts implicitly, so `return invalid_argument(...)` works
/// in a Status-returning function exactly as it does for Result<T>.
class Status {
 public:
  Status() = default;
  Status(Error error)  // NOLINT(google-explicit-constructor)
      : error_(std::move(error)) {}

  [[nodiscard]] bool is_ok() const noexcept { return !error_.has_value(); }
  // Named ok() for symmetry with Result<T>.
  [[nodiscard]] bool ok() const noexcept { return is_ok(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// kOk when ok, the error's category otherwise.
  [[nodiscard]] ErrorCode code() const noexcept {
    return error_ ? error_->code : ErrorCode::kOk;
  }

  [[nodiscard]] const Error& error() const& {
    assert(!is_ok());
    return *error_;
  }

  [[nodiscard]] std::string to_string() const {
    return error_ ? error_->to_string() : std::string("ok");
  }

 private:
  std::optional<Error> error_;
};

/// Value-or-error result. Inspired by std::expected (not yet available on
/// every toolchain this library targets).
template <class T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  /// kOk when holding a value, the error's category otherwise — the same
  /// accessor Status exposes, so call sites branch on one vocabulary.
  [[nodiscard]] ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<Error>(storage_).code;
  }

  /// The outcome with the value dropped.
  [[nodiscard]] Status status() const& {
    return ok() ? Status{} : Status(std::get<Error>(storage_));
  }

 private:
  std::variant<T, Error> storage_;
};

/// Convenience factory helpers.
[[nodiscard]] inline Error invalid_argument(std::string msg) {
  return Error{ErrorCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Error out_of_range(std::string msg) {
  return Error{ErrorCode::kOutOfRange, std::move(msg)};
}
[[nodiscard]] inline Error failed_precondition(std::string msg) {
  return Error{ErrorCode::kFailedPrecondition, std::move(msg)};
}
[[nodiscard]] inline Error not_found(std::string msg) {
  return Error{ErrorCode::kNotFound, std::move(msg)};
}
[[nodiscard]] inline Error unavailable(std::string msg) {
  return Error{ErrorCode::kUnavailable, std::move(msg)};
}
[[nodiscard]] inline Error deadline_exceeded(std::string msg) {
  return Error{ErrorCode::kDeadlineExceeded, std::move(msg)};
}

}  // namespace pbc
