// Lightweight status / expected-value vocabulary used across pbc.
//
// The library is exception-free on hot paths: fallible operations return
// Result<T> (value or Error), and policy decisions that carry advisory
// information (e.g. "power surplus") use CoordStatus-style enums defined by
// the owning module.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pbc {

/// Machine-readable error categories.
enum class ErrorCode {
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kUnavailable,
  kInternal,
};

/// Human-readable name for an ErrorCode.
[[nodiscard]] constexpr const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

/// An error with a category and a context message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(pbc::to_string(code)) + ": " + message;
  }
};

/// Value-or-error result. Inspired by std::expected (not yet available on
/// every toolchain this library targets).
template <class T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Convenience factory helpers.
[[nodiscard]] inline Error invalid_argument(std::string msg) {
  return Error{ErrorCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Error out_of_range(std::string msg) {
  return Error{ErrorCode::kOutOfRange, std::move(msg)};
}
[[nodiscard]] inline Error failed_precondition(std::string msg) {
  return Error{ErrorCode::kFailedPrecondition, std::move(msg)};
}
[[nodiscard]] inline Error not_found(std::string msg) {
  return Error{ErrorCode::kNotFound, std::move(msg)};
}
[[nodiscard]] inline Error unavailable(std::string msg) {
  return Error{ErrorCode::kUnavailable, std::move(msg)};
}

}  // namespace pbc
