// Strong quantity types for the pbc library.
//
// Power-management code mixes watts, gigahertz, bandwidths, and ratios
// constantly; a mixed-up operand order silently produces garbage allocations.
// Quantity<Tag> is a zero-overhead wrapper that permits only dimensionally
// meaningful arithmetic (add/sub same unit, scale by dimensionless factors,
// ratio of same unit yields a plain double).
#pragma once

#include <cmath>
#include <compare>
#include <cstddef>
#include <functional>
#include <ostream>

namespace pbc {

/// A strongly typed scalar quantity. Tag distinguishes units at compile time.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr auto operator<=>(const Quantity&) const noexcept = default;

  constexpr Quantity& operator+=(Quantity o) noexcept {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return a.value_ / b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_;
  }

 private:
  double value_ = 0.0;
};

struct WattsTag {};
struct GigahertzTag {};
struct GBperSecTag {};
struct SecondsTag {};
struct JoulesTag {};
struct GflopsTag {};

/// Electrical power.
using Watts = Quantity<WattsTag>;
/// Clock frequency.
using Gigahertz = Quantity<GigahertzTag>;
/// Memory bandwidth.
using GBps = Quantity<GBperSecTag>;
/// Time.
using Seconds = Quantity<SecondsTag>;
/// Energy.
using Joules = Quantity<JoulesTag>;
/// Compute rate (used generically for "operations per second" metrics).
using Gflops = Quantity<GflopsTag>;

inline namespace literals {
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr Gigahertz operator""_GHz(long double v) {
  return Gigahertz{static_cast<double>(v)};
}
constexpr Gigahertz operator""_GHz(unsigned long long v) {
  return Gigahertz{static_cast<double>(v)};
}
constexpr GBps operator""_GBps(long double v) {
  return GBps{static_cast<double>(v)};
}
constexpr GBps operator""_GBps(unsigned long long v) {
  return GBps{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
}  // namespace literals

/// Energy accumulated by power over time.
constexpr Joules operator*(Watts p, Seconds t) noexcept {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) noexcept { return p * t; }

/// Average power from energy over time.
constexpr Watts operator/(Joules e, Seconds t) noexcept {
  return Watts{e.value() / t.value()};
}

/// Clamp a quantity to [lo, hi].
template <class Tag>
[[nodiscard]] constexpr Quantity<Tag> clamp(Quantity<Tag> v, Quantity<Tag> lo,
                                            Quantity<Tag> hi) noexcept {
  return v < lo ? lo : (hi < v ? hi : v);
}

/// Approximate equality with absolute tolerance.
template <class Tag>
[[nodiscard]] constexpr bool near(Quantity<Tag> a, Quantity<Tag> b,
                                  double abs_tol) noexcept {
  return std::fabs(a.value() - b.value()) <= abs_tol;
}

}  // namespace pbc

template <class Tag>
struct std::hash<pbc::Quantity<Tag>> {
  std::size_t operator()(pbc::Quantity<Tag> q) const noexcept {
    return std::hash<double>{}(q.value());
  }
};
