// Text serialization of workload descriptors.
//
// Downstream users characterize their own applications (by measurement or
// via core::fit_single_phase) and want to run the harnesses on them
// without recompiling. The format is a minimal line-oriented key=value
// dialect with one `[phase]` section per phase:
//
//     name = MYAPP
//     description = my solver
//     domain = cpu
//     metric = GFLOP/s
//     metric_per_gunit = 1.0
//     [phase]
//     name = sweep
//     weight = 0.7
//     flops_per_unit = 1.0
//     bytes_per_unit = 0.25
//     compute_eff = 0.45
//     overlap = 0.9
//     max_bw_frac = 1.0
//     freq_scaling = 0.1
//     activity = 0.8
//     mem_energy_scale = 1.0
//     [phase]
//     ...
//
// Unknown keys are rejected (typos fail loudly); omitted keys keep their
// defaults. Round-trip is exact for every suite benchmark
// (tests/workload/serialize_test.cpp).
#pragma once

#include <string>

#include "util/status.hpp"
#include "workload/workload.hpp"

namespace pbc::workload {

/// Renders a workload in the format above.
[[nodiscard]] std::string to_text(const Workload& w);

/// Parses the format above and validates the result.
[[nodiscard]] Result<Workload> from_text(const std::string& text);

}  // namespace pbc::workload
