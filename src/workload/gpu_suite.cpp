#include "workload/gpu_suite.hpp"

namespace pbc::workload {

namespace {
Workload make(std::string name, std::string description, Intensity intensity,
              std::string metric, double metric_per_gunit,
              std::vector<Phase> phases) {
  Workload w;
  w.name = std::move(name);
  w.description = std::move(description);
  w.domain = Domain::kGpu;
  w.nominal_intensity = intensity;
  w.metric_name = std::move(metric);
  w.metric_per_gunit = metric_per_gunit;
  w.phases = std::move(phases);
  return w;
}
}  // namespace

Workload sgemm() {
  Phase p;
  p.name = "gemm";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 60.0;  // tiled: very high operational intensity
  p.compute_eff = 0.85;
  p.overlap = 0.98;
  p.max_bw_frac = 1.0;
  p.freq_scaling = 0.0;
  p.activity = 0.95;
  return make("SGEMM", "Compute intensive, CUBLAS implementation",
              Intensity::kCompute, "GFLOP/s", 1.0, {p});
}

Workload stream_gpu() {
  Phase p;
  p.name = "triad";
  p.flops_per_unit = 2.0;
  p.bytes_per_unit = 24.0;
  p.compute_eff = 0.50;
  p.overlap = 0.95;
  p.max_bw_frac = 0.92;
  p.freq_scaling = 0.70;  // achieved BW needs SMs issuing loads
  p.activity = 0.55;
  return make("STREAM", "Memory intensive, CUDA version of STREAM",
              Intensity::kMemory, "GB/s", 24.0, {p});
}

Workload cufft() {
  Phase butterfly;
  butterfly.name = "butterfly";
  butterfly.weight = 0.55;
  butterfly.flops_per_unit = 1.0;
  butterfly.bytes_per_unit = 1.0 / 2.2;
  butterfly.compute_eff = 0.45;
  butterfly.overlap = 0.92;
  butterfly.max_bw_frac = 0.9;
  butterfly.freq_scaling = 0.60;
  butterfly.activity = 0.70;

  Phase transpose;
  transpose.name = "transpose";
  transpose.weight = 0.45;
  transpose.flops_per_unit = 1.0;
  transpose.bytes_per_unit = 1.0 / 0.6;
  transpose.compute_eff = 0.40;
  transpose.overlap = 0.9;
  transpose.max_bw_frac = 0.8;
  transpose.freq_scaling = 0.70;
  transpose.activity = 0.60;
  transpose.mem_energy_scale = 1.15;

  return make("CUFFT", "Memory intensive, CUDA example", Intensity::kMemory,
              "GFLOP/s", 1.0, {butterfly, transpose});
}

Workload minife() {
  Phase p;
  p.name = "cg-spmv";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 2.5;  // OI 0.4 flop/byte
  p.compute_eff = 0.50;
  p.overlap = 0.92;
  p.max_bw_frac = 0.88;
  p.freq_scaling = 0.70;
  p.activity = 0.55;
  p.mem_energy_scale = 1.1;
  return make("MiniFE", "Memory intensive, ECP proxy", Intensity::kMemory,
              "GFLOP/s", 1.0, {p});
}

Workload cloverleaf() {
  Phase p;
  p.name = "hydro";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 4.5;
  // Modest efficiency puts the compute roofline and the bandwidth roofline
  // within reach of each other — the paper's "in between" pattern where a
  // balanced SM/memory allocation wins.
  p.compute_eff = 0.20;
  p.overlap = 0.92;
  p.max_bw_frac = 0.9;
  p.freq_scaling = 0.50;
  p.activity = 0.75;
  return make("Cloverleaf", "compute/memory, ECP proxy", Intensity::kBalanced,
              "GFLOP/s", 1.0, {p});
}

Workload hpcg() {
  Phase p;
  p.name = "mg-spmv";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 0.26;
  p.compute_eff = 0.30;
  p.overlap = 0.9;
  p.max_bw_frac = 0.8;
  p.freq_scaling = 0.70;
  p.activity = 0.50;
  p.mem_energy_scale = 1.2;
  return make("HPCG", "Memory intensive, HPL benchmark", Intensity::kMemory,
              "GFLOP/s", 1.0, {p});
}

std::vector<Workload> gpu_suite() {
  return {sgemm(), stream_gpu(), cufft(), minife(), cloverleaf(), hpcg()};
}

Result<Workload> gpu_benchmark(std::string_view name) {
  for (auto& w : gpu_suite()) {
    if (w.name == name) return w;
  }
  return not_found("no GPU benchmark named '" + std::string(name) + "'");
}

}  // namespace pbc::workload
