// Workload: a named, weighted sequence of phases plus display metadata.
//
// The benchmarks of the paper's Table 3 are instances of this type (see
// cpu_suite.hpp / gpu_suite.hpp). Aggregation follows execution semantics:
// per aggregate work unit, phase i contributes weight_i units, so aggregate
// time is the weighted sum of phase times and bandwidth/utilization figures
// are time-weighted.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"
#include "workload/phase.hpp"

namespace pbc::workload {

/// Which machine type the workload targets.
enum class Domain { kCpu, kGpu };

[[nodiscard]] constexpr const char* to_string(Domain d) noexcept {
  return d == Domain::kCpu ? "cpu" : "gpu";
}

/// How compute-hungry a workload is; the paper's §4 GPU patterns and
/// Algorithm 2 branch on this. Derived from profiling (core/Profiler), but
/// suites also carry the a-priori label for tests.
enum class Intensity { kCompute, kMemory, kBalanced };

[[nodiscard]] constexpr const char* to_string(Intensity i) noexcept {
  switch (i) {
    case Intensity::kCompute:
      return "compute";
    case Intensity::kMemory:
      return "memory";
    case Intensity::kBalanced:
      return "balanced";
  }
  return "?";
}

struct Workload {
  std::string name;
  std::string description;
  Domain domain = Domain::kCpu;
  Intensity nominal_intensity = Intensity::kBalanced;

  /// Display metric: reported value = rate_gunits × metric_per_gunit.
  std::string metric_name = "Gop/s";
  double metric_per_gunit = 1.0;

  std::vector<Phase> phases;

  [[nodiscard]] Result<bool> validate() const;
};

/// Aggregate result over all phases.
struct WorkloadResult {
  double rate_gunits = 0.0;  ///< aggregate work units per second (G)
  double metric = 0.0;       ///< rate in the workload's display metric
  GBps achieved_bw{0.0};
  GBps effective_bw{0.0};
  double compute_util = 0.0;      ///< time-weighted
  double mem_util = 0.0;          ///< time-weighted
  double compute_time_frac = 0.0; ///< time-weighted
  double activity_eff = 0.0;      ///< time-weighted
};

/// Evaluates the whole workload under granted capacities.
[[nodiscard]] WorkloadResult evaluate(const Workload& w,
                                      const PhaseOperands& op) noexcept;

/// Mean operational intensity (FLOPs per byte) over phases, work-weighted.
[[nodiscard]] double operational_intensity(const Workload& w) noexcept;

}  // namespace pbc::workload
