// The 6 GPU benchmarks of the paper's Table 3 (CUDA examples and exascale
// computing proxies), expressed as calibrated Workload descriptors.
//
// Calibration targets from the paper: SGEMM on the Titan XP demands more
// than the 300 W maximum cap and prefers minimum memory power; MiniFE's
// perf_max flattens near a 180 W cap; Cloverleaf sits "in between" and
// wants a balanced SM/memory split; performance spread across allocations
// at a fixed budget is ≈25-35%.
#pragma once

#include <string_view>
#include <vector>

#include "util/status.hpp"
#include "workload/workload.hpp"

namespace pbc::workload {

/// CUBLAS-style dense matrix multiply, compute intensive.
[[nodiscard]] Workload sgemm();
/// GPU-STREAM triad, memory intensive.
[[nodiscard]] Workload stream_gpu();
/// CUFFT batched 3-D FFT, memory intensive.
[[nodiscard]] Workload cufft();
/// MiniFE finite-element proxy (ECP), memory intensive.
[[nodiscard]] Workload minife();
/// Cloverleaf hydrodynamics proxy (ECP), mixed compute/memory.
[[nodiscard]] Workload cloverleaf();
/// HPCG conjugate-gradient benchmark, memory intensive.
[[nodiscard]] Workload hpcg();

/// All 6 GPU benchmarks in the paper's Table 3 order.
[[nodiscard]] std::vector<Workload> gpu_suite();

/// Case-sensitive lookup by benchmark name (e.g. "SGEMM", "MiniFE").
[[nodiscard]] Result<Workload> gpu_benchmark(std::string_view name);

}  // namespace pbc::workload
