#include "workload/workload.hpp"

namespace pbc::workload {

Result<bool> Workload::validate() const {
  if (name.empty()) return invalid_argument("workload has no name");
  if (phases.empty()) return invalid_argument(name + ": no phases");
  for (const auto& p : phases) {
    if (p.weight <= 0.0) {
      return invalid_argument(name + "/" + p.name + ": non-positive weight");
    }
    if (p.flops_per_unit < 0.0 || p.bytes_per_unit < 0.0 ||
        (p.flops_per_unit == 0.0 && p.bytes_per_unit == 0.0)) {
      return invalid_argument(name + "/" + p.name + ": no work");
    }
    if (p.compute_eff <= 0.0 || p.compute_eff > 1.0) {
      return invalid_argument(name + "/" + p.name + ": compute_eff not in (0,1]");
    }
    if (p.max_bw_frac <= 0.0 || p.max_bw_frac > 1.0) {
      return invalid_argument(name + "/" + p.name + ": max_bw_frac not in (0,1]");
    }
    if (p.mem_energy_scale < 1.0) {
      return invalid_argument(name + "/" + p.name + ": mem_energy_scale < 1");
    }
    if (p.activity < 0.0 || p.activity > 1.0) {
      return invalid_argument(name + "/" + p.name + ": activity not in [0,1]");
    }
  }
  if (metric_per_gunit <= 0.0) {
    return invalid_argument(name + ": non-positive metric factor");
  }
  return true;
}

WorkloadResult evaluate(const Workload& w, const PhaseOperands& op) noexcept {
  WorkloadResult agg;
  double total_time = 0.0;
  double total_units = 0.0;
  double total_bytes = 0.0;
  double total_eff_bytes = 0.0;
  double t_compute_util = 0.0;
  double t_mem_util = 0.0;
  double t_compute_frac = 0.0;
  double t_activity = 0.0;

  for (const auto& phase : w.phases) {
    const PhaseResult r = evaluate_phase(phase, op);
    const double t = phase.weight * r.time_per_unit;
    total_time += t;
    total_units += phase.weight;
    total_bytes += phase.weight * phase.bytes_per_unit;
    total_eff_bytes +=
        phase.weight * phase.bytes_per_unit * phase.mem_energy_scale;
    t_compute_util += t * r.compute_util;
    t_mem_util += t * r.mem_util;
    t_compute_frac += t * r.compute_time_frac;
    t_activity += t * r.activity_eff;
  }

  if (total_time <= 0.0) return agg;
  agg.rate_gunits = total_units / total_time;
  agg.metric = agg.rate_gunits * w.metric_per_gunit;
  agg.achieved_bw = GBps{total_bytes / total_time};
  agg.effective_bw = GBps{total_eff_bytes / total_time};
  agg.compute_util = t_compute_util / total_time;
  agg.mem_util = t_mem_util / total_time;
  agg.compute_time_frac = t_compute_frac / total_time;
  agg.activity_eff = t_activity / total_time;
  return agg;
}

double operational_intensity(const Workload& w) noexcept {
  double flops = 0.0;
  double bytes = 0.0;
  for (const auto& p : w.phases) {
    flops += p.weight * p.flops_per_unit;
    bytes += p.weight * p.bytes_per_unit;
  }
  return bytes > 0.0 ? flops / bytes : 0.0;
}

}  // namespace pbc::workload
