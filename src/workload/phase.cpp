#include "workload/phase.hpp"

#include <algorithm>
#include <cmath>

namespace pbc::workload {

namespace {
// Even a fully stalled out-of-order core keeps most of its clock tree,
// speculation, and prefetch machinery switching; activity does not collapse
// with utilization. This floor is what keeps memory-bound codes' processor
// power high (paper: SRA draws 112 W CPU while achieving ~10% compute
// utilization).
constexpr double kStallActivityFloor = 0.75;
}  // namespace

PhaseResult evaluate_phase(const Phase& phase,
                           const PhaseOperands& op) noexcept {
  PhaseResult r;

  const double capacity = std::max(op.compute_capacity.value(), 1e-9);
  const double effective_capacity = capacity * phase.compute_eff;

  // Latency/MLP ceiling, degraded at reduced clock, gated by duty, and
  // limited by how many cores are generating misses.
  const double rel = std::clamp(op.rel_clock, 0.01, 1.0);
  const double duty = std::clamp(op.duty, 0.01, 1.0);
  const double mlp_factor =
      std::min(1.0, 2.0 * std::clamp(op.core_fraction, 0.0, 1.0));
  const double ceiling = phase.max_bw_frac * op.peak_bw.value() *
                         std::pow(rel, phase.freq_scaling) * duty *
                         mlp_factor;
  const double bw = std::max(
      std::min(op.avail_bw.value(), ceiling), 1e-9);

  // Per-unit times in nanoseconds (capacities are in G-units per second).
  const double t_compute = phase.flops_per_unit / effective_capacity;
  const double t_memory = phase.bytes_per_unit / bw;

  const double ov = std::clamp(phase.overlap, 0.0, 1.0);
  r.time_per_unit = (1.0 - ov) * (t_compute + t_memory) +
                    ov * std::max(t_compute, t_memory);
  r.rate_gunits = 1.0 / r.time_per_unit;

  r.achieved_bw = GBps{r.rate_gunits * phase.bytes_per_unit};
  r.effective_bw = GBps{r.achieved_bw.value() * phase.mem_energy_scale};
  r.compute_util =
      std::min(1.0, r.rate_gunits * phase.flops_per_unit / effective_capacity);
  r.mem_util = std::min(1.0, r.achieved_bw.value() / op.avail_bw.value());
  r.compute_time_frac =
      t_compute + t_memory > 0.0 ? t_compute / (t_compute + t_memory) : 0.0;
  r.activity_eff =
      phase.activity *
      (kStallActivityFloor + (1.0 - kStallActivityFloor) * r.compute_util);
  return r;
}

}  // namespace pbc::workload
