// Synthetic execution traces: timed phase sequences with controlled
// irregularity.
//
// The paper observes (§6.2) that multi-phase pseudo-applications (BT, MG,
// FT) produce less regular performance-power curves than single-phase
// kernels, and suggests adaptive in-application scheduling. A PhaseTrace
// turns a Workload's weight mix into an explicit, reproducible sequence of
// phase segments — either round-robin (regular) or Markov-switched with a
// deterministic RNG (irregular) — so trace-driven evaluation and the
// control-loop engine can be exercised with realistic phase churn.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace pbc::workload {

/// One contiguous stretch of a single phase, measured in work units.
struct TraceSegment {
  std::size_t phase_index = 0;
  double work_units = 0.0;
};

using PhaseTrace = std::vector<TraceSegment>;

struct TraceOptions {
  /// Total work units in the trace.
  double total_units = 100.0;
  /// Work units per segment before jitter.
  double segment_units = 1.0;
  /// 0 = strict round-robin by weight; 1 = fully random phase choice
  /// (weight-proportional). Values in between interpolate via sticky
  /// Markov switching.
  double irregularity = 0.5;
  std::uint64_t seed = 42;
};

/// Generates a trace whose per-phase work shares converge to the
/// workload's weights. Deterministic for a given (workload, options).
[[nodiscard]] PhaseTrace generate_trace(const Workload& w,
                                        const TraceOptions& opt = {});

/// Fraction of total work spent in each phase.
[[nodiscard]] std::vector<double> phase_shares(const Workload& w,
                                               const PhaseTrace& trace);

/// Number of phase switches (adjacent segments with different phases).
[[nodiscard]] std::size_t switch_count(const PhaseTrace& trace);

}  // namespace pbc::workload
