#include "workload/cpu_suite.hpp"

namespace pbc::workload {

namespace {
Workload make(std::string name, std::string description, Intensity intensity,
              std::string metric, double metric_per_gunit,
              std::vector<Phase> phases) {
  Workload w;
  w.name = std::move(name);
  w.description = std::move(description);
  w.domain = Domain::kCpu;
  w.nominal_intensity = intensity;
  w.metric_name = std::move(metric);
  w.metric_per_gunit = metric_per_gunit;
  w.phases = std::move(phases);
  return w;
}
}  // namespace

Workload sra() {
  Phase p;
  p.name = "updates";
  p.flops_per_unit = 10.0;   // index generation + XOR, FLOP-equivalents
  p.bytes_per_unit = 64.0;   // one cacheline per update
  p.compute_eff = 0.15;      // scalar integer pipeline
  p.overlap = 0.7;
  p.max_bw_frac = 0.50;      // MLP-limited random access
  p.freq_scaling = 0.55;     // OoO window turns over slower at low clock
  p.activity = 0.75;
  p.mem_energy_scale = 2.0;  // row-buffer hostile
  return make("SRA", "Embarrassingly parallel, random memory access",
              Intensity::kMemory, "GUP/s", 1.0, {p});
}

Workload stream_cpu() {
  Phase p;
  p.name = "triad";
  p.flops_per_unit = 2.0;    // a[i] = b[i] + s*c[i]
  p.bytes_per_unit = 32.0;   // 2 reads + 1 write + RFO
  p.compute_eff = 0.50;
  p.overlap = 0.9;
  p.max_bw_frac = 1.0;
  p.freq_scaling = 0.12;     // prefetchers keep BW up at low clock
  p.activity = 0.55;
  p.mem_energy_scale = 1.0;
  return make("STREAM", "Synthetic, measuring memory bandwidth",
              Intensity::kMemory, "GB/s", 32.0, {p});
}

Workload dgemm() {
  Phase p;
  p.name = "gemm";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 24.0;  // blocked: high operational intensity
  p.compute_eff = 0.80;
  p.overlap = 0.95;
  p.max_bw_frac = 1.0;
  p.freq_scaling = 0.0;
  p.activity = 0.95;
  p.mem_energy_scale = 1.0;
  return make("DGEMM", "Matrix multiplication, compute intensive",
              Intensity::kCompute, "GFLOP/s", 1.0, {p});
}

Workload npb_bt() {
  Phase solve;
  solve.name = "block-solve";
  solve.weight = 0.75;
  solve.flops_per_unit = 1.0;
  solve.bytes_per_unit = 1.0 / 9.0;
  solve.compute_eff = 0.45;
  solve.overlap = 0.9;
  solve.activity = 0.85;

  Phase exchange;
  exchange.name = "rhs-exchange";
  exchange.weight = 0.25;
  exchange.flops_per_unit = 1.0;
  exchange.bytes_per_unit = 1.0 / 1.6;
  exchange.compute_eff = 0.40;
  exchange.overlap = 0.85;
  exchange.freq_scaling = 0.1;
  exchange.activity = 0.70;

  return make("BT", "Block tri-diagonal solver, compute intensive",
              Intensity::kCompute, "GFLOP/s", 1.0, {solve, exchange});
}

Workload npb_sp() {
  Phase p;
  p.name = "penta-solve";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 3.5;
  p.compute_eff = 0.40;
  p.overlap = 0.88;
  p.freq_scaling = 0.1;
  p.activity = 0.80;
  return make("SP", "Scalar penta-diagonal solver, compute/memory",
              Intensity::kBalanced, "GFLOP/s", 1.0, {p});
}

Workload npb_lu() {
  Phase ssor;
  ssor.name = "ssor";
  ssor.weight = 0.65;
  ssor.flops_per_unit = 1.0;
  ssor.bytes_per_unit = 1.0 / 4.5;
  ssor.compute_eff = 0.42;
  ssor.overlap = 0.85;
  ssor.activity = 0.80;

  Phase rhs;
  rhs.name = "rhs";
  rhs.weight = 0.35;
  rhs.flops_per_unit = 1.0;
  rhs.bytes_per_unit = 1.0 / 2.0;
  rhs.compute_eff = 0.38;
  rhs.overlap = 0.85;
  rhs.freq_scaling = 0.15;
  rhs.activity = 0.72;

  return make("LU", "Lower-Upper Gauss-Seidel solver, compute/memory",
              Intensity::kBalanced, "GFLOP/s", 1.0, {ssor, rhs});
}

Workload npb_ep() {
  Phase p;
  p.name = "prng";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 120.0;  // effectively no memory traffic
  p.compute_eff = 0.35;            // transcendental-heavy
  p.overlap = 0.98;
  p.activity = 0.90;
  return make("EP", "Embarrassingly Parallel, compute intensive",
              Intensity::kCompute, "GFLOP/s", 1.0, {p});
}

Workload npb_is() {
  Phase p;
  p.name = "bucket-scatter";
  p.flops_per_unit = 6.0;    // integer key ops, FLOP-equivalents
  p.bytes_per_unit = 48.0;
  p.compute_eff = 0.20;
  p.overlap = 0.75;
  p.max_bw_frac = 0.60;
  p.freq_scaling = 0.50;
  p.activity = 0.65;
  p.mem_energy_scale = 1.6;
  return make("IS", "Integer Sort, random memory access", Intensity::kMemory,
              "Mop/s", 1000.0, {p});
}

Workload npb_cg() {
  Phase p;
  p.name = "spmv";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0 / 0.6;  // sparse: OI ~0.6 flop/byte
  p.compute_eff = 0.30;
  p.overlap = 0.8;
  p.max_bw_frac = 0.75;
  p.freq_scaling = 0.30;
  p.activity = 0.60;
  p.mem_energy_scale = 1.3;
  return make("CG", "Conjugate Gradient, irregular memory access",
              Intensity::kMemory, "GFLOP/s", 1.0, {p});
}

Workload npb_ft() {
  Phase fft;
  fft.name = "fft";
  fft.weight = 0.6;
  fft.flops_per_unit = 1.0;
  fft.bytes_per_unit = 1.0 / 5.0;
  fft.compute_eff = 0.45;
  fft.overlap = 0.9;
  fft.activity = 0.80;

  Phase transpose;
  transpose.name = "transpose";
  transpose.weight = 0.4;
  transpose.flops_per_unit = 1.0;
  transpose.bytes_per_unit = 1.0 / 0.8;
  transpose.compute_eff = 0.40;
  transpose.overlap = 0.85;
  transpose.max_bw_frac = 0.85;
  transpose.freq_scaling = 0.2;
  transpose.activity = 0.60;
  transpose.mem_energy_scale = 1.2;

  return make("FT", "Discrete 3D fast Fourier Transform, compute/memory",
              Intensity::kBalanced, "GFLOP/s", 1.0, {fft, transpose});
}

Workload npb_mg() {
  Phase p;
  p.name = "relax";
  p.flops_per_unit = 1.0;
  p.bytes_per_unit = 1.0;  // OI ~1 flop/byte
  p.compute_eff = 0.40;
  p.overlap = 0.88;
  p.freq_scaling = 0.15;
  p.activity = 0.60;
  p.mem_energy_scale = 1.1;
  return make("MG", "Multi-Grid operation, compute/memory",
              Intensity::kMemory, "GFLOP/s", 1.0, {p});
}

std::vector<Workload> cpu_suite() {
  return {sra(),    stream_cpu(), dgemm(), npb_bt(), npb_sp(), npb_lu(),
          npb_ep(), npb_is(),     npb_cg(), npb_ft(), npb_mg()};
}

Result<Workload> cpu_benchmark(std::string_view name) {
  for (auto& w : cpu_suite()) {
    if (w.name == name) return w;
  }
  return not_found("no CPU benchmark named '" + std::string(name) + "'");
}

}  // namespace pbc::workload
