#include "workload/serialize.hpp"

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pbc::workload {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

Result<double> parse_double(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    return invalid_argument("non-numeric value for " + key + ": '" + v + "'");
  }
  return x;
}

}  // namespace

std::string to_text(const Workload& w) {
  std::ostringstream out;
  // Round-trip exactness: shortest representation that restores the bits.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "name = " << w.name << '\n'
      << "description = " << w.description << '\n'
      << "domain = " << to_string(w.domain) << '\n'
      << "intensity = " << to_string(w.nominal_intensity) << '\n'
      << "metric = " << w.metric_name << '\n'
      << "metric_per_gunit = " << w.metric_per_gunit << '\n';
  for (const auto& p : w.phases) {
    out << "[phase]\n"
        << "name = " << p.name << '\n'
        << "weight = " << p.weight << '\n'
        << "flops_per_unit = " << p.flops_per_unit << '\n'
        << "bytes_per_unit = " << p.bytes_per_unit << '\n'
        << "compute_eff = " << p.compute_eff << '\n'
        << "overlap = " << p.overlap << '\n'
        << "max_bw_frac = " << p.max_bw_frac << '\n'
        << "freq_scaling = " << p.freq_scaling << '\n'
        << "activity = " << p.activity << '\n'
        << "mem_energy_scale = " << p.mem_energy_scale << '\n';
  }
  return out.str();
}

Result<Workload> from_text(const std::string& text) {
  Workload w;
  Phase* phase = nullptr;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    if (stripped == "[phase]") {
      w.phases.emplace_back();
      phase = &w.phases.back();
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      return invalid_argument("line " + std::to_string(line_no) +
                              ": expected key = value");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));

    if (phase == nullptr) {
      // Workload header.
      if (key == "name") {
        w.name = value;
      } else if (key == "description") {
        w.description = value;
      } else if (key == "domain") {
        if (value == "cpu") {
          w.domain = Domain::kCpu;
        } else if (value == "gpu") {
          w.domain = Domain::kGpu;
        } else {
          return invalid_argument("unknown domain '" + value + "'");
        }
      } else if (key == "intensity") {
        if (value == "compute") {
          w.nominal_intensity = Intensity::kCompute;
        } else if (value == "memory") {
          w.nominal_intensity = Intensity::kMemory;
        } else if (value == "balanced") {
          w.nominal_intensity = Intensity::kBalanced;
        } else {
          return invalid_argument("unknown intensity '" + value + "'");
        }
      } else if (key == "metric") {
        w.metric_name = value;
      } else if (key == "metric_per_gunit") {
        const auto x = parse_double(key, value);
        if (!x.ok()) return x.error();
        w.metric_per_gunit = x.value();
      } else {
        return invalid_argument("line " + std::to_string(line_no) +
                                ": unknown workload key '" + key + "'");
      }
      continue;
    }

    // Phase section.
    auto set = [&](double Phase::*field, const std::string& v) -> Result<bool> {
      const auto x = parse_double(key, v);
      if (!x.ok()) return x.error();
      phase->*field = x.value();
      return true;
    };
    Result<bool> r = true;
    if (key == "name") {
      phase->name = value;
    } else if (key == "weight") {
      r = set(&Phase::weight, value);
    } else if (key == "flops_per_unit") {
      r = set(&Phase::flops_per_unit, value);
    } else if (key == "bytes_per_unit") {
      r = set(&Phase::bytes_per_unit, value);
    } else if (key == "compute_eff") {
      r = set(&Phase::compute_eff, value);
    } else if (key == "overlap") {
      r = set(&Phase::overlap, value);
    } else if (key == "max_bw_frac") {
      r = set(&Phase::max_bw_frac, value);
    } else if (key == "freq_scaling") {
      r = set(&Phase::freq_scaling, value);
    } else if (key == "activity") {
      r = set(&Phase::activity, value);
    } else if (key == "mem_energy_scale") {
      r = set(&Phase::mem_energy_scale, value);
    } else {
      return invalid_argument("line " + std::to_string(line_no) +
                              ": unknown phase key '" + key + "'");
    }
    if (!r.ok()) return r.error();
  }

  if (const auto valid = w.validate(); !valid.ok()) return valid.error();
  return w;
}

}  // namespace pbc::workload
