// Phase-level analytic performance model.
//
// A phase is a homogeneous stretch of execution characterized by its
// compute work, memory traffic, overlap, and latency behaviour. Given the
// component capacities the power governors grant (compute GFLOP/s and
// memory GB/s), evaluate_phase returns the achieved rate and the
// utilization/activity figures the power models need. This is the roofline
// argument the paper itself makes in §3.4.1 (Fig. 5: balanced capacity vs
// utilization), extended with:
//   * partial compute/memory overlap,
//   * a latency/MLP bandwidth ceiling with clock sensitivity (random-access
//     codes lose achievable bandwidth when the core/SM clock drops), and
//   * an energy-per-byte multiplier (poor row locality costs the DRAM more
//     energy per transferred byte).
#pragma once

#include <string>

#include "util/units.hpp"

namespace pbc::workload {

/// Static description of one execution phase.
struct Phase {
  std::string name;

  /// Share of the workload's total work units carried by this phase.
  double weight = 1.0;

  /// Compute work per work unit (FLOPs; integer-dominated codes express
  /// their op count in FLOP-equivalents).
  double flops_per_unit = 1.0;

  /// Memory traffic per work unit (bytes at cacheline granularity).
  double bytes_per_unit = 1.0;

  /// Fraction of peak compute capacity this phase can extract
  /// (vectorization/ILP quality).
  double compute_eff = 0.8;

  /// Compute/memory overlap in [0, 1]: 1 = perfectly overlapped
  /// (time = max of the two), 0 = fully serialized (time = sum).
  double overlap = 0.9;

  /// Latency/MLP ceiling on achievable bandwidth, as a fraction of the
  /// machine's peak bandwidth (1 = streaming, prefetch-friendly;
  /// ~0.5 = pointer-chasing random access).
  double max_bw_frac = 1.0;

  /// Sensitivity of the latency ceiling to the relative processor clock
  /// (exponent λ: ceiling ∝ (f/f_max)^λ). Random access ≈ 0.5, streaming
  /// ≈ 0.1: out-of-order/issue resources turn over slower at low clocks.
  double freq_scaling = 0.0;

  /// Peak switching-activity factor of busy processor logic in [0, 1].
  double activity = 0.7;

  /// DRAM energy multiplier per transferred byte (row-buffer-hostile
  /// access patterns pay more than streaming; ≥ 1).
  double mem_energy_scale = 1.0;
};

/// Component capacities granted to the phase by the power governors.
struct PhaseOperands {
  Gflops compute_capacity;  ///< aggregate processor capacity at the op point
  GBps avail_bw;            ///< memory bandwidth after throttling
  GBps peak_bw;             ///< untrottled machine peak (for max_bw_frac)
  double rel_clock = 1.0;   ///< processor clock relative to maximum (DVFS only)
  /// T-state duty cycle. Clock gating stops request issue entirely during
  /// the off fraction, so the achievable-bandwidth ceiling scales linearly
  /// with duty (unlike DVFS, which only slows issue — hence the exponent
  /// freq_scaling < 1 on rel_clock). This asymmetry is what makes the
  /// paper's scenario IV cliff so much steeper than scenario II's slope.
  double duty = 1.0;
  /// Fraction of the package's cores running the workload (thread
  /// packing). Outstanding-miss capacity scales with cores, but roughly
  /// half the cores already saturate the memory system, so the ceiling
  /// factor is min(1, 2·core_fraction).
  double core_fraction = 1.0;
};

/// What a phase achieves under the granted capacities.
struct PhaseResult {
  double rate_gunits = 0.0;       ///< work units per ns (== Gunits/s)
  double time_per_unit = 0.0;     ///< ns per work unit
  GBps achieved_bw{0.0};          ///< real transferred bandwidth
  GBps effective_bw{0.0};         ///< energy-weighted bandwidth (DRAM power)
  double compute_util = 0.0;      ///< achieved compute rate / capacity
  double mem_util = 0.0;          ///< achieved bw / available bw
  double compute_time_frac = 0.0; ///< compute share of critical path
  double activity_eff = 0.0;      ///< effective switching activity for power
};

/// Pure evaluation: no state, no allocation.
[[nodiscard]] PhaseResult evaluate_phase(const Phase& phase,
                                         const PhaseOperands& op) noexcept;

}  // namespace pbc::workload
