#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>

namespace pbc::workload {

PhaseTrace generate_trace(const Workload& w, const TraceOptions& opt) {
  PhaseTrace trace;
  const std::size_t n = w.phases.size();
  if (n == 0 || opt.total_units <= 0.0 || opt.segment_units <= 0.0) {
    return trace;
  }

  std::vector<double> weights(n);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = w.phases[i].weight;
    weight_sum += weights[i];
  }

  Xoshiro256 rng(opt.seed, 0x7261636521ULL);
  const double irregularity = std::clamp(opt.irregularity, 0.0, 1.0);

  // Deficit round-robin keeps long-run shares on the weights; the
  // irregularity knob decides how often we instead jump to a
  // weight-proportional random phase.
  std::vector<double> deficit(n, 0.0);
  double emitted = 0.0;
  std::size_t current = 0;
  while (emitted < opt.total_units - 1e-12) {
    // Accrue credit proportional to weights.
    for (std::size_t i = 0; i < n; ++i) {
      deficit[i] += opt.segment_units * weights[i] / weight_sum;
    }
    std::size_t next;
    if (rng.uniform() < irregularity) {
      // Random weight-proportional pick.
      double r = rng.uniform() * weight_sum;
      next = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        if (r < weights[i]) {
          next = i;
          break;
        }
        r -= weights[i];
      }
    } else {
      // Largest accumulated deficit.
      next = static_cast<std::size_t>(
          std::distance(deficit.begin(),
                        std::max_element(deficit.begin(), deficit.end())));
    }

    // Segment length: nominal, with ±50% jitter when irregular.
    double units = opt.segment_units;
    if (irregularity > 0.0) {
      units *= 1.0 + irregularity * rng.uniform(-0.5, 0.5);
    }
    units = std::min(units, opt.total_units - emitted);
    deficit[next] -= units;
    emitted += units;

    if (!trace.empty() && trace.back().phase_index == next) {
      trace.back().work_units += units;  // merge adjacent same-phase runs
    } else {
      trace.push_back(TraceSegment{next, units});
      current = next;
    }
  }
  (void)current;
  return trace;
}

std::vector<double> phase_shares(const Workload& w, const PhaseTrace& trace) {
  std::vector<double> shares(w.phases.size(), 0.0);
  double total = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index < shares.size()) {
      shares[seg.phase_index] += seg.work_units;
    }
    total += seg.work_units;
  }
  if (total > 0.0) {
    for (double& s : shares) s /= total;
  }
  return shares;
}

std::size_t switch_count(const PhaseTrace& trace) {
  std::size_t switches = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].phase_index != trace[i - 1].phase_index) ++switches;
  }
  return switches;
}

}  // namespace pbc::workload
