// The 11 CPU benchmarks of the paper's Table 3 (HPC Challenge, NPB, and
// UVA STREAM), expressed as calibrated Workload descriptors.
//
// Each descriptor's phase parameters (operational intensity, compute
// efficiency, activity, latency ceiling, DRAM energy scale) are chosen so
// the simulated IvyBridge node reproduces the power/performance figures the
// paper quotes: SRA draws ≈112 W CPU / ≈116 W DRAM unconstrained, DGEMM's
// perf_max(P_b) flattens in the 220-240 W region, STREAM shows a ~30×
// best-to-worst spread at a 208 W budget, etc.
#pragma once

#include <span>
#include <string_view>

#include "util/status.hpp"
#include "workload/workload.hpp"

namespace pbc::workload {

/// Star RandomAccess (HPCC): embarrassingly parallel random memory access.
[[nodiscard]] Workload sra();
/// UVA/HPCC STREAM: streaming memory bandwidth (triad-dominated).
[[nodiscard]] Workload stream_cpu();
/// EP-DGEMM (HPCC): dense matrix multiply, compute intensive.
[[nodiscard]] Workload dgemm();
/// NPB BT: block tri-diagonal solver, compute intensive.
[[nodiscard]] Workload npb_bt();
/// NPB SP: scalar penta-diagonal solver, mixed compute/memory.
[[nodiscard]] Workload npb_sp();
/// NPB LU: lower-upper Gauss-Seidel solver, mixed compute/memory.
[[nodiscard]] Workload npb_lu();
/// NPB EP: embarrassingly parallel random-number kernel, compute intensive.
[[nodiscard]] Workload npb_ep();
/// NPB IS: integer sort, random memory access.
[[nodiscard]] Workload npb_is();
/// NPB CG: conjugate gradient, irregular memory access.
[[nodiscard]] Workload npb_cg();
/// NPB FT: 3-D FFT, mixed compute/memory with a transpose phase.
[[nodiscard]] Workload npb_ft();
/// NPB MG: multigrid, memory intensive.
[[nodiscard]] Workload npb_mg();

/// All 11 CPU benchmarks in the paper's Table 3 order.
[[nodiscard]] std::vector<Workload> cpu_suite();

/// Case-sensitive lookup by benchmark name (e.g. "SRA", "DGEMM", "MG").
[[nodiscard]] Result<Workload> cpu_benchmark(std::string_view name);

}  // namespace pbc::workload
