#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pbc::net {

namespace {

[[nodiscard]] bool write_all(int fd, const std::uint8_t* data,
                             std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      codec_(other.codec_),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    codec_ = other.codec_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Result<Client> Client::connect(const std::string& host, std::uint16_t port,
                               Codec codec) {
  const int fd = connect_tcp(host, port);
  if (fd < 0) {
    return unavailable("pbc_client: cannot connect to " + host + ":" +
                       std::to_string(port));
  }
  Client c;
  c.fd_ = fd;
  c.codec_ = codec;
  return c;
}

Status Client::send(const svc::Request& req) {
  if (fd_ < 0) return failed_precondition("pbc_client: not connected");
  const auto bytes = frame_request(req, codec_);
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    return unavailable("pbc_client: send failed");
  }
  return {};
}

Result<svc::Response> Client::receive() {
  if (fd_ < 0) return failed_precondition("pbc_client: not connected");
  while (true) {
    auto next = decoder_.next();
    if (!next.ok()) return next.error();
    if (next.value().has_value()) {
      const Frame& f = *next.value();
      return decode_response(f.payload, f.header.codec);
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return unavailable("pbc_client: connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable("pbc_client: recv failed");
    }
    decoder_.feed(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
  }
}

Result<svc::Response> Client::call(const svc::Request& req) {
  if (auto s = send(req); !s.ok()) return s.error();
  return receive();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> scrape_metrics(const std::string& host,
                                   std::uint16_t port) {
  const int fd = connect_tcp(host, port);
  if (fd < 0) {
    return unavailable("scrape_metrics: cannot connect to " + host + ":" +
                       std::to_string(port));
  }
  const std::string req =
      "GET /metrics HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  if (!write_all(fd, reinterpret_cast<const std::uint8_t*>(req.data()),
                 req.size())) {
    ::close(fd);
    return unavailable("scrape_metrics: send failed");
  }
  std::string raw;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server closes after one response
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) {
    return unavailable("scrape_metrics: malformed HTTP response");
  }
  return raw.substr(body + 4);
}

}  // namespace pbc::net
