// Minimal JSON document model for the debug codec.
//
// The wire's JSON flavour (src/net/codec.hpp) needs a DOM it can build
// and walk, a renderer, and a parser that fails with pbc::Status instead
// of throwing — nothing the library already has covers that
// (obs::render_json writes strings directly and never parses). The model
// is deliberately small: objects preserve insertion order (so rendered
// requests are stable for golden tests) and numbers are doubles — the
// codec layer is responsible for anything a double cannot carry
// losslessly (it writes u64 fields and non-finite doubles as strings).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace pbc::net::json {

class Value;

/// Order-preserving object representation. Lookup is linear — wire
/// payload objects are small (tens of keys), and preserving insertion
/// order keeps rendered output deterministic.
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

/// One JSON value. The default-constructed Value is null.
class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}        // NOLINT
  Value(bool b) : v_(b) {}                      // NOLINT
  Value(double d) : v_(d) {}                    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}    // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT
  Value(Array a) : v_(std::move(a)) {}          // NOLINT
  Value(Object o) : v_(std::move(o)) {}         // NOLINT

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// First member with the key, or null when absent / not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

 private:
  Storage v_;
};

/// Renders compactly (no whitespace). Numbers print with %.17g, which
/// round-trips every finite double exactly; non-finite doubles render as
/// null (the codec never emits them as numbers — see header comment).
[[nodiscard]] std::string render(const Value& v);

/// Parses one JSON document. Trailing non-whitespace, depth over 64,
/// inputs over 16 MiB, and every grammar violation return
/// kInvalidArgument with a byte offset — never throws, never crashes on
/// garbage (the frame fuzz test feeds this arbitrary bytes).
[[nodiscard]] Result<Value> parse(std::string_view text);

}  // namespace pbc::net::json
