// pbcd payload codecs: svc::Request / svc::Response <-> bytes.
//
// Two encodings share one field enumeration (codec.cpp's io() overloads,
// mirroring the canonical field order of svc/key.cpp's cache-key hashes):
//
//  * binary (Codec::kBinary) — the compact production encoding. All
//    integers little-endian; doubles bit-cast to u64 (exact round-trip,
//    NaN payloads included); strings and vectors length-prefixed (u32);
//    optionals a presence byte; enums one byte.
//  * JSON (Codec::kJson) — the debug encoding, human-readable with
//    field names. Doubles print with %.17g (exact for finite values);
//    non-finite doubles and all u64 fields ride as strings so nothing is
//    truncated through the double-typed JSON number space.
//
// Payload layout (inside a net/wire.hpp frame):
//
//   request  := id:u64  options:CallOptions  kind:u8  op-body
//   response := id:u64  ok:u8
//               ok=1 -> kind:u8  result-body
//               ok=0 -> code:u8  message:string
//
// (JSON spells the same shape as {"id","options","kind","op"} and
// {"id","ok","kind","result"} / {"id","ok","error":{"code","message"}};
// kind and code are their to_string names.) The kind tag is the
// svc::QueryKind value — index-aligned with the Request/Response
// variants. Decoders never trust the input: truncated, oversized, or
// garbage payloads return kInvalidArgument, and no length field is
// believed until it fits in the remaining bytes.
//
// tests/net/codec_test.cpp holds both codecs to golden round-trips over
// every kind; the binary encoding doubles as the bit-exact equality
// witness in the execute() differential test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire.hpp"
#include "svc/request.hpp"
#include "util/status.hpp"

namespace pbc::net {

/// Appends the encoded request payload (no frame header) to `out`.
void encode_request(const svc::Request& req, Codec codec,
                    std::vector<std::uint8_t>& out);

/// Decodes one request payload.
[[nodiscard]] Result<svc::Request> decode_request(
    std::span<const std::uint8_t> payload, Codec codec);

/// Appends the encoded success-response payload to `out`.
void encode_response(const svc::Response& resp, Codec codec,
                     std::vector<std::uint8_t>& out);

/// Appends an error-response payload (ok=0) carrying `err` for request
/// `id` to `out`.
void encode_error_response(std::uint64_t id, const Error& err, Codec codec,
                           std::vector<std::uint8_t>& out);

/// Decodes one response payload. An ok=0 payload decodes to the Error it
/// carries (so a client treats transport-level decode failures and
/// server-reported errors through the one Result vocabulary); the
/// response id of an error payload is reported via `error_id` when
/// non-null.
[[nodiscard]] Result<svc::Response> decode_response(
    std::span<const std::uint8_t> payload, Codec codec,
    std::uint64_t* error_id = nullptr);

/// Convenience: one fully framed request / response message.
[[nodiscard]] std::vector<std::uint8_t> frame_request(const svc::Request& req,
                                                      Codec codec);
[[nodiscard]] std::vector<std::uint8_t> frame_response(
    const svc::Response& resp, Codec codec);
[[nodiscard]] std::vector<std::uint8_t> frame_error_response(
    std::uint64_t id, const Error& err, Codec codec);

}  // namespace pbc::net
