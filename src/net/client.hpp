// Blocking pbcd client: framed Request/Response over one TCP connection.
//
// The client is deliberately small — connect, send, receive — because
// the protocol is symmetric and self-describing: responses come back in
// request order on a connection (the daemon executes frames in arrival
// order), so pipelining is just calling send() k times before draining
// k receive() calls. call() is the one-shot convenience.
//
// Server-reported errors and transport failures surface through the one
// Result vocabulary: receive() returns the carried Error for an ok=0
// payload (kUnavailable when shed, kDeadlineExceeded when the deadline
// elapsed server-side, kInvalidArgument for validation) exactly as it
// returns decode errors for a corrupt stream.
#pragma once

#include <cstdint>
#include <string>

#include "net/codec.hpp"
#include "net/wire.hpp"
#include "svc/request.hpp"
#include "util/status.hpp"

namespace pbc::net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a pbcd daemon. `codec` selects the payload encoding for
  /// every request this client sends.
  [[nodiscard]] static Result<Client> connect(const std::string& host,
                                              std::uint16_t port,
                                              Codec codec = Codec::kBinary);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] Codec codec() const noexcept { return codec_; }

  /// Writes one framed request. Pair with receive(); responses arrive in
  /// send order.
  [[nodiscard]] Status send(const svc::Request& req);

  /// Blocks for the next response frame and decodes it.
  [[nodiscard]] Result<svc::Response> receive();

  /// send() + receive().
  [[nodiscard]] Result<svc::Response> call(const svc::Request& req);

  void close();

 private:
  int fd_ = -1;
  Codec codec_ = Codec::kBinary;
  FrameDecoder decoder_;
};

/// One-shot HTTP GET against the daemon's /metrics endpoint; returns the
/// Prometheus exposition body.
[[nodiscard]] Result<std::string> scrape_metrics(const std::string& host,
                                                 std::uint16_t port);

}  // namespace pbc::net
