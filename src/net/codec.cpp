#include "net/codec.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>

#include "net/json.hpp"

namespace pbc::net {

namespace {

using svc::QueryKind;

template <class T>
struct is_quantity : std::false_type {};
template <class Tag>
struct is_quantity<Quantity<Tag>> : std::true_type {};
template <class T>
inline constexpr bool is_quantity_v = is_quantity<T>::value;

/// Shared decode-failure state: the first failure wins, later archive
/// operations become no-ops, and the top-level decode returns the error.
struct Err {
  bool failed = false;
  std::string msg;

  void fail(const char* field, const char* what) {
    if (failed) return;
    failed = true;
    msg = what;
    if (field != nullptr && field[0] != '\0') {
      msg += std::string(" (field '") + field + "')";
    }
  }
};

// ---------------------------------------------------------------------------
// JSON number helpers shared by the writer/reader archives: finite doubles
// are JSON numbers (%.17g round-trips them exactly), non-finite doubles and
// all u64 values ride as strings.

[[nodiscard]] json::Value json_double(double d) {
  if (std::isfinite(d)) return json::Value(d);
  if (std::isnan(d)) return json::Value("nan");
  return json::Value(d > 0 ? "inf" : "-inf");
}

[[nodiscard]] bool json_read_double(const json::Value& v, double& out) {
  if (v.is_number()) {
    out = v.as_number();
    return true;
  }
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "nan") {
      out = std::nan("");
      return true;
    }
    if (s == "inf") {
      out = HUGE_VAL;
      return true;
    }
    if (s == "-inf") {
      out = -HUGE_VAL;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool json_read_u64(const json::Value& v, std::uint64_t& out) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long x = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size()) return false;
    out = static_cast<std::uint64_t>(x);
    return true;
  }
  if (v.is_number()) {
    const double d = v.as_number();
    if (!(d >= 0.0) || d > 9007199254740992.0 ||
        d != std::floor(d)) {
      return false;
    }
    out = static_cast<std::uint64_t>(d);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The four archives. Each exposes the same surface, consumed by the io()
// field enumerations below, so one enumeration per struct serves encode and
// decode in both codecs:
//   prim(name, double|bool|string|u64&)     leaf fields
//   enum_u8(name, u8&)                      enum representation
//   object(name, T&)                        nested struct (io() recursion)
//   list(name, vector<T>&)                  length-prefixed sequence
//   opt(name, optional<T>&)                 presence-tagged value
//   fail_field(name, what)                  decode-error reporting

class BinWriter {
 public:
  /// Write archives never store through the field references they are
  /// handed; the adapters key on this so encode_request can serve a
  /// const (possibly shared-across-threads) Request without mutation.
  static constexpr bool kLoads = false;

  explicit BinWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void raw_u8(std::uint8_t v) { out_.push_back(v); }
  void raw_u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  void raw_u64(std::uint64_t v) {
    raw_u32(static_cast<std::uint32_t>(v));
    raw_u32(static_cast<std::uint32_t>(v >> 32));
  }

  void prim(const char*, double& v) {
    raw_u64(std::bit_cast<std::uint64_t>(v));
  }
  void prim(const char*, bool& v) { raw_u8(v ? 1 : 0); }
  void prim(const char*, std::uint64_t& v) { raw_u64(v); }
  void prim(const char*, std::string& v) {
    raw_u32(static_cast<std::uint32_t>(v.size()));
    out_.insert(out_.end(), v.begin(), v.end());
  }
  void enum_u8(const char*, std::uint8_t& v) { raw_u8(v); }
  void fail_field(const char*, const char*) {}

  template <class T>
  void object(const char*, T& v) {
    io(*this, v);
  }
  template <class T>
  void list(const char*, std::vector<T>& v) {
    raw_u32(static_cast<std::uint32_t>(v.size()));
    for (auto& e : v) elem_io(*this, e);
  }
  template <class T>
  void opt(const char*, std::optional<T>& v) {
    raw_u8(v.has_value() ? 1 : 0);
    if (v.has_value()) elem_io(*this, *v);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class BinReader {
 public:
  static constexpr bool kLoads = true;

  BinReader(std::span<const std::uint8_t> data, Err& err)
      : data_(data), err_(&err) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool fully_consumed() const noexcept {
    return pos_ == data_.size();
  }

  [[nodiscard]] bool take(void* dst, std::size_t n, const char* field) {
    if (err_->failed) return false;
    if (remaining() < n) {
      err_->fail(field, "payload truncated");
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::uint8_t raw_u8(const char* field) {
    std::uint8_t b = 0;
    (void)take(&b, 1, field);
    return b;
  }
  [[nodiscard]] std::uint32_t raw_u32(const char* field) {
    std::uint8_t b[4] = {};
    if (!take(b, 4, field)) return 0;
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
  [[nodiscard]] std::uint64_t raw_u64(const char* field) {
    const std::uint64_t lo = raw_u32(field);
    const std::uint64_t hi = raw_u32(field);
    return lo | (hi << 32);
  }

  void prim(const char* n, double& v) {
    v = std::bit_cast<double>(raw_u64(n));
  }
  void prim(const char* n, bool& v) {
    const std::uint8_t b = raw_u8(n);
    if (b > 1) {
      err_->fail(n, "bad bool byte");
      v = false;
      return;
    }
    v = b != 0;
  }
  void prim(const char* n, std::uint64_t& v) { v = raw_u64(n); }
  void prim(const char* n, std::string& v) {
    const std::uint32_t len = raw_u32(n);
    if (err_->failed) return;
    if (len > remaining()) {
      err_->fail(n, "string length over remaining payload");
      return;
    }
    v.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
  }
  void enum_u8(const char* n, std::uint8_t& v) { v = raw_u8(n); }
  void fail_field(const char* n, const char* what) { err_->fail(n, what); }

  template <class T>
  void object(const char*, T& v) {
    io(*this, v);
  }
  template <class T>
  void list(const char* n, std::vector<T>& v) {
    const std::uint32_t count = raw_u32(n);
    if (err_->failed) return;
    // Every encoded element occupies at least one byte, so a count over
    // the remaining payload is a lie — reject before allocating.
    if (count > remaining()) {
      err_->fail(n, "element count over remaining payload");
      return;
    }
    v.clear();
    v.reserve(count);
    for (std::uint32_t i = 0; i < count && !err_->failed; ++i) {
      T e{};
      elem_io(*this, e);
      v.push_back(std::move(e));
    }
  }
  template <class T>
  void opt(const char* n, std::optional<T>& v) {
    const std::uint8_t p = raw_u8(n);
    if (err_->failed) return;
    if (p == 0) {
      v.reset();
      return;
    }
    if (p != 1) {
      err_->fail(n, "bad optional tag");
      return;
    }
    v.emplace();
    elem_io(*this, *v);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  Err* err_;
};

class JsonWriter {
 public:
  static constexpr bool kLoads = false;

  explicit JsonWriter(json::Object& obj) : obj_(&obj) {}

  void prim(const char* n, double& v) { obj_->emplace_back(n, json_double(v)); }
  void prim(const char* n, bool& v) {
    obj_->emplace_back(n, json::Value(v));
  }
  void prim(const char* n, std::uint64_t& v) {
    obj_->emplace_back(n, json::Value(std::to_string(v)));
  }
  void prim(const char* n, std::string& v) {
    obj_->emplace_back(n, json::Value(v));
  }
  void enum_u8(const char* n, std::uint8_t& v) {
    obj_->emplace_back(n, json::Value(static_cast<double>(v)));
  }
  void fail_field(const char*, const char*) {}

  template <class T>
  void object(const char* n, T& v) {
    json::Value sub{json::Object{}};
    JsonWriter w(sub.as_object());
    io(w, v);
    obj_->emplace_back(n, std::move(sub));
  }
  template <class T>
  void list(const char* n, std::vector<T>& v) {
    json::Array arr;
    arr.reserve(v.size());
    for (auto& e : v) arr.push_back(make_elem(e));
    obj_->emplace_back(n, json::Value(std::move(arr)));
  }
  template <class T>
  void opt(const char* n, std::optional<T>& v) {
    if (!v.has_value()) {
      obj_->emplace_back(n, json::Value(nullptr));
      return;
    }
    obj_->emplace_back(n, make_elem(*v));
  }

 private:
  template <class T>
  [[nodiscard]] json::Value make_elem(T& e) {
    if constexpr (std::is_same_v<T, double>) {
      return json_double(e);
    } else if constexpr (is_quantity_v<T>) {
      return json_double(e.value());
    } else {
      json::Value sub{json::Object{}};
      JsonWriter w(sub.as_object());
      io(w, e);
      return sub;
    }
  }

  json::Object* obj_;
};

class JsonReader {
 public:
  static constexpr bool kLoads = true;

  JsonReader(const json::Object& obj, Err& err) : obj_(&obj), err_(&err) {}

  void prim(const char* n, double& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!json_read_double(*val, v)) err_->fail(n, "expected number");
  }
  void prim(const char* n, bool& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!val->is_bool()) {
      err_->fail(n, "expected bool");
      return;
    }
    v = val->as_bool();
  }
  void prim(const char* n, std::uint64_t& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!json_read_u64(*val, v)) err_->fail(n, "expected u64");
  }
  void prim(const char* n, std::string& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!val->is_string()) {
      err_->fail(n, "expected string");
      return;
    }
    v = val->as_string();
  }
  void enum_u8(const char* n, std::uint8_t& v) {
    std::uint64_t t = 0;
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!json_read_u64(*val, t) || t > 255) {
      err_->fail(n, "expected enum byte");
      return;
    }
    v = static_cast<std::uint8_t>(t);
  }
  void fail_field(const char* n, const char* what) { err_->fail(n, what); }

  template <class T>
  void object(const char* n, T& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!val->is_object()) {
      err_->fail(n, "expected object");
      return;
    }
    JsonReader r(val->as_object(), *err_);
    io(r, v);
  }
  template <class T>
  void list(const char* n, std::vector<T>& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (!val->is_array()) {
      err_->fail(n, "expected array");
      return;
    }
    const json::Array& arr = val->as_array();
    v.clear();
    v.reserve(arr.size());
    for (const auto& e : arr) {
      if (err_->failed) return;
      T t{};
      read_elem(n, e, t);
      v.push_back(std::move(t));
    }
  }
  template <class T>
  void opt(const char* n, std::optional<T>& v) {
    const json::Value* val = find(n);
    if (val == nullptr) return;
    if (val->is_null()) {
      v.reset();
      return;
    }
    v.emplace();
    read_elem(n, *val, *v);
  }

 private:
  [[nodiscard]] const json::Value* find(const char* n) {
    if (err_->failed) return nullptr;
    for (const auto& [k, v] : *obj_) {
      if (k == n) return &v;
    }
    err_->fail(n, "missing field");
    return nullptr;
  }

  template <class T>
  void read_elem(const char* n, const json::Value& e, T& v) {
    if constexpr (std::is_same_v<T, double>) {
      if (!json_read_double(e, v)) err_->fail(n, "expected number element");
    } else if constexpr (is_quantity_v<T>) {
      double d = 0.0;
      if (!json_read_double(e, d)) {
        err_->fail(n, "expected number element");
        return;
      }
      v = T{d};
    } else {
      if (!e.is_object()) {
        err_->fail(n, "expected object element");
        return;
      }
      JsonReader r(e.as_object(), *err_);
      io(r, v);
    }
  }

  const json::Object* obj_;
  Err* err_;
};

// ---------------------------------------------------------------------------
// Field adapters over the archive prim() core.

template <class A>
void fld(A& a, const char* n, double& v) {
  a.prim(n, v);
}
template <class A>
void fld(A& a, const char* n, bool& v) {
  a.prim(n, v);
}
template <class A>
void fld(A& a, const char* n, std::string& v) {
  a.prim(n, v);
}
template <class A>
void fld(A& a, const char* n, std::uint64_t& v) {
  a.prim(n, v);
}
template <class A>
void fld(A& a, const char* n, std::uint32_t& v) {
  std::uint64_t t = v;
  a.prim(n, t);
  if constexpr (A::kLoads) {
    if (t > 0xFFFFFFFFull) {
      a.fail_field(n, "u32 out of range");
      t = 0;
    }
    v = static_cast<std::uint32_t>(t);
  }
}
template <class A>
void fld(A& a, const char* n, int& v) {
  std::uint64_t t =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  a.prim(n, t);
  if constexpr (A::kLoads) {
    v = static_cast<int>(static_cast<std::int64_t>(t));
  }
}
template <class A, class Tag>
void fld(A& a, const char* n, Quantity<Tag>& v) {
  double d = v.value();
  a.prim(n, d);
  if constexpr (A::kLoads) v = Quantity<Tag>{d};
}

/// Enum as a range-checked byte. `count` is the number of enumerators;
/// decoding anything >= count fails instead of smuggling an out-of-range
/// value into a switch downstream.
template <class A, class E>
void efld(A& a, const char* n, E& v, std::uint8_t count) {
  std::uint8_t t = static_cast<std::uint8_t>(v);
  a.enum_u8(n, t);
  if constexpr (A::kLoads) {
    if (t >= count) {
      a.fail_field(n, "enum value out of range");
      t = 0;
    }
    v = static_cast<E>(t);
  }
}

/// List/optional element dispatch for the binary archives (the JSON
/// archives carry their own element handling — arrays have no names).
template <class A, class T>
void elem_io(A& a, T& v) {
  if constexpr (std::is_same_v<T, double>) {
    a.prim("", v);
  } else if constexpr (is_quantity_v<T>) {
    double d = v.value();
    a.prim("", d);
    if constexpr (A::kLoads) v = T{d};
  } else {
    io(a, v);
  }
}

// ---------------------------------------------------------------------------
// Per-struct field enumerations. Field order is canonical (it IS the
// binary layout) and mirrors svc/key.cpp's cache-key hash enumeration of
// the same descriptors.

template <class A>
void io(A& a, hw::PState& v) {
  fld(a, "frequency", v.frequency);
  fld(a, "voltage", v.voltage);
}

template <class A>
void io(A& a, hw::CpuSpec& v) {
  fld(a, "name", v.name);
  fld(a, "sockets", v.sockets);
  fld(a, "cores_per_socket", v.cores_per_socket);
  a.list("pstates", v.pstates);
  fld(a, "flops_per_cycle", v.flops_per_cycle);
  fld(a, "dyn_coeff_w_per_ghz_v2", v.dyn_coeff_w_per_ghz_v2);
  fld(a, "static_w_per_core_per_volt", v.static_w_per_core_per_volt);
  fld(a, "uncore_power", v.uncore_power);
  fld(a, "floor", v.floor);
  fld(a, "tstate_levels", v.tstate_levels);
  fld(a, "per_core_dvfs", v.per_core_dvfs);
}

template <class A>
void io(A& a, hw::DramSpec& v) {
  fld(a, "name", v.name);
  fld(a, "capacity_gb", v.capacity_gb);
  fld(a, "background_w_per_gb", v.background_w_per_gb);
  fld(a, "dyn_w_per_gbps", v.dyn_w_per_gbps);
  fld(a, "peak_bw", v.peak_bw);
  fld(a, "min_bw", v.min_bw);
  fld(a, "throttle_levels", v.throttle_levels);
  fld(a, "floor", v.floor);
}

template <class A>
void io(A& a, hw::CpuMachine& v) {
  fld(a, "name", v.name);
  a.object("cpu", v.cpu);
  a.object("dram", v.dram);
}

template <class A>
void io(A& a, hw::GpuSpec& v) {
  fld(a, "name", v.name);
  fld(a, "sm_min_mhz", v.sm_min_mhz);
  fld(a, "sm_max_mhz", v.sm_max_mhz);
  fld(a, "sm_steps", v.sm_steps);
  fld(a, "sm_pairing_min_mhz", v.sm_pairing_min_mhz);
  fld(a, "sm_idle", v.sm_idle);
  fld(a, "sm_max_dyn", v.sm_max_dyn);
  fld(a, "peak_gflops", v.peak_gflops);
  a.list("mem_clocks_mhz", v.mem_clocks_mhz);
  fld(a, "bw_per_mhz", v.bw_per_mhz);
  fld(a, "mem_idle", v.mem_idle);
  fld(a, "mem_w_per_mhz", v.mem_w_per_mhz);
  fld(a, "mem_dyn_w_per_gbps", v.mem_dyn_w_per_gbps);
  fld(a, "other_power", v.other_power);
  fld(a, "board_min_cap", v.board_min_cap);
  fld(a, "board_default_cap", v.board_default_cap);
  fld(a, "board_max_cap", v.board_max_cap);
}

template <class A>
void io(A& a, hw::GpuMachine& v) {
  fld(a, "name", v.name);
  a.object("gpu", v.gpu);
}

template <class A>
void io(A& a, workload::Phase& v) {
  fld(a, "name", v.name);
  fld(a, "weight", v.weight);
  fld(a, "flops_per_unit", v.flops_per_unit);
  fld(a, "bytes_per_unit", v.bytes_per_unit);
  fld(a, "compute_eff", v.compute_eff);
  fld(a, "overlap", v.overlap);
  fld(a, "max_bw_frac", v.max_bw_frac);
  fld(a, "freq_scaling", v.freq_scaling);
  fld(a, "activity", v.activity);
  fld(a, "mem_energy_scale", v.mem_energy_scale);
}

template <class A>
void io(A& a, workload::Workload& v) {
  fld(a, "name", v.name);
  fld(a, "description", v.description);
  efld(a, "domain", v.domain, 2);
  efld(a, "nominal_intensity", v.nominal_intensity, 3);
  fld(a, "metric_name", v.metric_name);
  fld(a, "metric_per_gunit", v.metric_per_gunit);
  a.list("phases", v.phases);
}

template <class A>
void io(A& a, workload::TraceSegment& v) {
  fld(a, "phase_index", v.phase_index);
  fld(a, "work_units", v.work_units);
}

template <class A>
void io(A& a, core::SimJob& v) {
  fld(a, "name", v.name);
  a.object("wl", v.wl);
  fld(a, "arrival", v.arrival);
  fld(a, "work_gunits", v.work_gunits);
}

template <class A>
void io(A& a, svc::CallOptions& v) {
  efld(a, "solver_path", v.solver_path, 2);
  efld(a, "replay_path", v.replay_path, 2);
  efld(a, "cluster_path", v.cluster_path, 3);
  fld(a, "seed", v.seed);
  fld(a, "deadline_us", v.deadline_us);
  fld(a, "budget_block", v.budget_block);
}

// --- request op bodies ---

template <class A>
void io(A& a, svc::QueryCpuOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  fld(a, "budget", v.budget);
  efld(a, "variant", v.variant, 2);
}

template <class A>
void io(A& a, svc::QueryGpuOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  fld(a, "budget", v.budget);
  fld(a, "gamma", v.gamma);
}

template <class A>
void io(A& a, svc::SampleOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  fld(a, "cpu_cap", v.cpu_cap);
  fld(a, "mem_cap", v.mem_cap);
}

template <class A>
void io(A& a, svc::FrontierOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  a.list("budgets", v.budgets);
  fld(a, "mem_lo", v.mem_lo);
  fld(a, "proc_lo", v.proc_lo);
  fld(a, "step", v.step);
}

template <class A>
void io(A& a, svc::ReplayOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  a.list("trace", v.trace);
  fld(a, "cpu_cap", v.cpu_cap);
  fld(a, "mem_cap", v.mem_cap);
}

template <class A>
void io(A& a, svc::ShiftOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  a.list("trace", v.trace);
  fld(a, "total_budget", v.total_budget);
  fld(a, "step", v.step);
  fld(a, "max_steps_per_segment", v.max_steps_per_segment);
  a.opt("cpu_min", v.cpu_min);
  a.opt("mem_min", v.mem_min);
}

template <class A>
void io(A& a, svc::ClusterOp& v) {
  a.object("node_type", v.node_type);
  a.opt("gpu_type", v.gpu_type);
  a.list("jobs", v.jobs);
  fld(a, "nodes", v.nodes);
  fld(a, "gpu_nodes", v.gpu_nodes);
  fld(a, "global_budget", v.global_budget);
  efld(a, "policy", v.policy, 2);
  efld(a, "queue_policy", v.queue_policy, 2);
  fld(a, "admission_control", v.admission_control);
  fld(a, "min_grant", v.min_grant);
}

template <class A>
void io(A& a, svc::OnlineOp& v) {
  a.object("machine", v.machine);
  a.object("wl", v.wl);
  a.list("trace", v.trace);
  fld(a, "total_budget", v.total_budget);
  fld(a, "step", v.step);
  a.opt("cpu_min", v.cpu_min);
  a.opt("mem_min", v.mem_min);
  fld(a, "explore_rate", v.explore_rate);
  fld(a, "explore_decay", v.explore_decay);
  fld(a, "explore_floor", v.explore_floor);
  fld(a, "ema_alpha", v.ema_alpha);
  fld(a, "hysteresis_margin", v.hysteresis_margin);
}

// --- response result bodies ---

template <class A>
void io(A& a, core::CpuAllocation& v) {
  fld(a, "cpu", v.cpu);
  fld(a, "mem", v.mem);
  efld(a, "status", v.status, 3);
  fld(a, "surplus", v.surplus);
}

template <class A>
void io(A& a, core::GpuAllocation& v) {
  fld(a, "sm", v.sm);
  fld(a, "mem", v.mem);
  efld(a, "status", v.status, 3);
  fld(a, "surplus", v.surplus);
  fld(a, "mem_clock_index", v.mem_clock_index);
}

template <class A>
void io(A& a, sim::AllocationSample& v) {
  fld(a, "proc_cap", v.proc_cap);
  fld(a, "mem_cap", v.mem_cap);
  fld(a, "proc_power", v.proc_power);
  fld(a, "mem_power", v.mem_power);
  fld(a, "perf", v.perf);
  fld(a, "rate_gunits", v.rate_gunits);
  fld(a, "proc_cap_respected", v.proc_cap_respected);
  fld(a, "mem_cap_respected", v.mem_cap_respected);
  efld(a, "proc_region", v.proc_region, 3);
  efld(a, "mem_region", v.mem_region, 3);
  fld(a, "pstate_index", v.pstate_index);
  fld(a, "duty", v.duty);
  fld(a, "sm_step", v.sm_step);
  fld(a, "mem_clock_index", v.mem_clock_index);
  fld(a, "compute_util", v.compute_util);
  fld(a, "mem_util", v.mem_util);
  fld(a, "avail_bw", v.avail_bw);
  fld(a, "achieved_bw", v.achieved_bw);
}

template <class A>
void io(A& a, core::FrontierPoint& v) {
  fld(a, "budget", v.budget);
  fld(a, "perf_max", v.perf_max);
  fld(a, "best_proc_cap", v.best_proc_cap);
  fld(a, "best_mem_cap", v.best_mem_cap);
  fld(a, "consumed", v.consumed);
}

/// The frontier result is a bare vector; wrap it as one "points" list so
/// every response body shares the object shape.
template <class A>
void io(A& a, std::vector<core::FrontierPoint>& v) {
  a.list("points", v);
}

template <class A>
void io(A& a, sim::SegmentResult& v) {
  fld(a, "phase_index", v.phase_index);
  fld(a, "work_units", v.work_units);
  fld(a, "duration", v.duration);
  fld(a, "proc_power", v.proc_power);
  fld(a, "mem_power", v.mem_power);
  fld(a, "rate_gunits", v.rate_gunits);
}

template <class A>
void io(A& a, sim::TraceReplayResult& v) {
  a.list("segments", v.segments);
  a.object("aggregate", v.aggregate);
  fld(a, "total_time", v.total_time);
  fld(a, "proc_energy", v.proc_energy);
  fld(a, "mem_energy", v.mem_energy);
}

template <class A>
void io(A& a, core::SegmentCaps& v) {
  fld(a, "phase_index", v.phase_index);
  fld(a, "cpu_cap", v.cpu_cap);
  fld(a, "mem_cap", v.mem_cap);
}

template <class A>
void io(A& a, core::ShiftingResult& v) {
  a.object("replay", v.replay);
  a.list("caps", v.caps);
  fld(a, "shifts", v.shifts);
}

template <class A>
void io(A& a, ctrl::ClosedLoopSegment& v) {
  fld(a, "phase_index", v.phase_index);
  fld(a, "cpu_cap", v.cpu_cap);
  fld(a, "mem_cap", v.mem_cap);
  fld(a, "explored", v.explored);
  fld(a, "phase_change", v.phase_change);
}

template <class A>
void io(A& a, ctrl::ControllerStats& v) {
  fld(a, "observations", v.observations);
  fld(a, "explorations", v.explorations);
  fld(a, "moves", v.moves);
  fld(a, "phase_changes", v.phase_changes);
  fld(a, "signatures", v.signatures);
}

template <class A>
void io(A& a, ctrl::ClosedLoopResult& v) {
  a.object("replay", v.replay);
  a.list("caps", v.caps);
  a.object("stats", v.stats);
}

template <class A>
void io(A& a, core::JobOutcome& v) {
  fld(a, "name", v.name);
  fld(a, "arrival", v.arrival);
  fld(a, "start", v.start);
  fld(a, "finish", v.finish);
  fld(a, "budget", v.budget);
  fld(a, "perf", v.perf);
  fld(a, "energy", v.energy);
}

template <class A>
void io(A& a, core::ClusterEventStats& v) {
  fld(a, "events", v.events);
  fld(a, "subtree_resolves", v.subtree_resolves);
  fld(a, "donations", v.donations);
  fld(a, "jobs_preempted", v.jobs_preempted);
  fld(a, "emergency_sheds", v.emergency_sheds);
  fld(a, "emergency_regrants", v.emergency_regrants);
  fld(a, "watts_redistributed", v.watts_redistributed);
  fld(a, "caps_respected", v.caps_respected);
}

template <class A>
void io(A& a, core::ClusterRun& v) {
  a.list("jobs", v.jobs);
  fld(a, "makespan", v.makespan);
  fld(a, "mean_wait", v.mean_wait);
  fld(a, "mean_response", v.mean_response);
  fld(a, "total_energy", v.total_energy);
  fld(a, "work_per_joule", v.work_per_joule);
  a.object("event_stats", v.event_stats);
}

// ---------------------------------------------------------------------------
// Top-level message layouts.

/// Default-constructs the op alternative for a kind tag.
void set_op_for_kind(svc::Request& req, QueryKind kind) {
  switch (kind) {
    case QueryKind::kQueryCpu:
      req.op = svc::QueryCpuOp{};
      return;
    case QueryKind::kQueryGpu:
      req.op = svc::QueryGpuOp{};
      return;
    case QueryKind::kSample:
      req.op = svc::SampleOp{};
      return;
    case QueryKind::kFrontier:
      req.op = svc::FrontierOp{};
      return;
    case QueryKind::kReplay:
      req.op = svc::ReplayOp{};
      return;
    case QueryKind::kShift:
      req.op = svc::ShiftOp{};
      return;
    case QueryKind::kCluster:
      req.op = svc::ClusterOp{};
      return;
    case QueryKind::kOnline:
      req.op = svc::OnlineOp{};
      return;
  }
}

void set_result_for_kind(svc::Response& resp, QueryKind kind) {
  switch (kind) {
    case QueryKind::kQueryCpu:
      resp.result = core::CpuAllocation{};
      return;
    case QueryKind::kQueryGpu:
      resp.result = core::GpuAllocation{};
      return;
    case QueryKind::kSample:
      resp.result = sim::AllocationSample{};
      return;
    case QueryKind::kFrontier:
      resp.result = std::vector<core::FrontierPoint>{};
      return;
    case QueryKind::kReplay:
      resp.result = sim::TraceReplayResult{};
      return;
    case QueryKind::kShift:
      resp.result = core::ShiftingResult{};
      return;
    case QueryKind::kCluster:
      resp.result = core::ClusterRun{};
      return;
    case QueryKind::kOnline:
      resp.result = ctrl::ClosedLoopResult{};
      return;
  }
}

[[nodiscard]] bool kind_from_name(const std::string& name, QueryKind& out) {
  for (std::size_t i = 0; i < svc::kQueryKindCount; ++i) {
    const auto k = static_cast<QueryKind>(i);
    if (name == svc::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool code_from_name(const std::string& name, ErrorCode& out) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    const auto c = static_cast<ErrorCode>(i);
    if (name == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

void append_text(const std::string& text, std::vector<std::uint8_t>& out) {
  out.insert(out.end(), text.begin(), text.end());
}

}  // namespace

void encode_request(const svc::Request& req, Codec codec,
                    std::vector<std::uint8_t>& out) {
  // The archives mutate nothing on the write path; the shared io()
  // enumeration just takes T& so one signature serves read and write.
  auto& r = const_cast<svc::Request&>(req);
  const auto kind = svc::request_kind(req);
  if (codec == Codec::kBinary) {
    BinWriter a(out);
    fld(a, "id", r.id);
    io(a, r.options);
    std::uint8_t tag = static_cast<std::uint8_t>(kind);
    a.enum_u8("kind", tag);
    std::visit([&](auto& op) { io(a, op); }, r.op);
    return;
  }
  json::Value root{json::Object{}};
  JsonWriter a(root.as_object());
  fld(a, "id", r.id);
  a.object("options", r.options);
  std::string kind_name = svc::to_string(kind);
  a.prim("kind", kind_name);
  std::visit([&](auto& op) { a.object("op", op); }, r.op);
  append_text(json::render(root), out);
}

Result<svc::Request> decode_request(std::span<const std::uint8_t> payload,
                                    Codec codec) {
  svc::Request req;
  Err err;
  if (codec == Codec::kBinary) {
    BinReader a(payload, err);
    fld(a, "id", req.id);
    io(a, req.options);
    std::uint8_t tag = 0;
    a.enum_u8("kind", tag);
    if (!err.failed && tag >= svc::kQueryKindCount) {
      err.fail("kind", "unknown request kind");
    }
    if (!err.failed) {
      set_op_for_kind(req, static_cast<QueryKind>(tag));
      std::visit([&](auto& op) { io(a, op); }, req.op);
    }
    if (!err.failed && !a.fully_consumed()) {
      err.fail("", "trailing bytes after request payload");
    }
  } else {
    auto doc = json::parse(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
    if (!doc.ok()) return doc.error();
    if (!doc.value().is_object()) {
      return invalid_argument("request: top-level JSON is not an object");
    }
    JsonReader a(doc.value().as_object(), err);
    fld(a, "id", req.id);
    a.object("options", req.options);
    std::string kind_name;
    a.prim("kind", kind_name);
    QueryKind kind = QueryKind::kQueryCpu;
    if (!err.failed && !kind_from_name(kind_name, kind)) {
      err.fail("kind", "unknown request kind");
    }
    if (!err.failed) {
      set_op_for_kind(req, kind);
      std::visit([&](auto& op) { a.object("op", op); }, req.op);
    }
  }
  if (err.failed) return invalid_argument("request: " + err.msg);
  return req;
}

void encode_response(const svc::Response& resp, Codec codec,
                     std::vector<std::uint8_t>& out) {
  auto& r = const_cast<svc::Response&>(resp);
  const auto kind = svc::response_kind(resp);
  if (codec == Codec::kBinary) {
    BinWriter a(out);
    fld(a, "id", r.id);
    a.raw_u8(1);  // ok
    std::uint8_t tag = static_cast<std::uint8_t>(kind);
    a.enum_u8("kind", tag);
    std::visit([&](auto& res) { io(a, res); }, r.result);
    return;
  }
  json::Value root{json::Object{}};
  JsonWriter a(root.as_object());
  fld(a, "id", r.id);
  bool ok = true;
  fld(a, "ok", ok);
  std::string kind_name = svc::to_string(kind);
  a.prim("kind", kind_name);
  std::visit([&](auto& res) { a.object("result", res); }, r.result);
  append_text(json::render(root), out);
}

void encode_error_response(std::uint64_t id, const Error& err, Codec codec,
                           std::vector<std::uint8_t>& out) {
  if (codec == Codec::kBinary) {
    BinWriter a(out);
    fld(a, "id", id);
    a.raw_u8(0);  // not ok
    std::uint8_t code = static_cast<std::uint8_t>(err.code);
    a.enum_u8("code", code);
    std::string msg = err.message;
    a.prim("message", msg);
    return;
  }
  json::Value root{json::Object{}};
  JsonWriter a(root.as_object());
  fld(a, "id", id);
  bool ok = false;
  fld(a, "ok", ok);
  json::Value sub{json::Object{}};
  JsonWriter e(sub.as_object());
  std::string code_name = to_string(err.code);
  e.prim("code", code_name);
  std::string msg = err.message;
  e.prim("message", msg);
  root.as_object().emplace_back("error", std::move(sub));
  append_text(json::render(root), out);
}

Result<svc::Response> decode_response(std::span<const std::uint8_t> payload,
                                      Codec codec, std::uint64_t* error_id) {
  svc::Response resp;
  Err err;
  if (codec == Codec::kBinary) {
    BinReader a(payload, err);
    fld(a, "id", resp.id);
    std::uint8_t ok = 0;
    ok = static_cast<std::uint8_t>(a.raw_u8("ok"));
    if (!err.failed && ok > 1) err.fail("ok", "bad ok byte");
    if (!err.failed && ok == 0) {
      std::uint8_t code = 0;
      a.enum_u8("code", code);
      if (!err.failed && code > static_cast<std::uint8_t>(ErrorCode::kInternal)) {
        err.fail("code", "unknown error code");
      }
      std::string msg;
      a.prim("message", msg);
      if (err.failed) return invalid_argument("response: " + err.msg);
      if (error_id != nullptr) *error_id = resp.id;
      return Error{static_cast<ErrorCode>(code), std::move(msg)};
    }
    if (!err.failed) {
      std::uint8_t tag = 0;
      a.enum_u8("kind", tag);
      if (!err.failed && tag >= svc::kQueryKindCount) {
        err.fail("kind", "unknown response kind");
      }
      if (!err.failed) {
        set_result_for_kind(resp, static_cast<QueryKind>(tag));
        std::visit([&](auto& res) { io(a, res); }, resp.result);
      }
      if (!err.failed && !a.fully_consumed()) {
        err.fail("", "trailing bytes after response payload");
      }
    }
  } else {
    auto doc = json::parse(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
    if (!doc.ok()) return doc.error();
    if (!doc.value().is_object()) {
      return invalid_argument("response: top-level JSON is not an object");
    }
    JsonReader a(doc.value().as_object(), err);
    fld(a, "id", resp.id);
    bool ok = false;
    fld(a, "ok", ok);
    if (!err.failed && !ok) {
      const json::Value* e = doc.value().find("error");
      if (e == nullptr || !e->is_object()) {
        return invalid_argument("response: error payload without error object");
      }
      JsonReader er(e->as_object(), err);
      std::string code_name;
      er.prim("code", code_name);
      std::string msg;
      er.prim("message", msg);
      ErrorCode code = ErrorCode::kInternal;
      if (!err.failed && !code_from_name(code_name, code)) {
        err.fail("code", "unknown error code");
      }
      if (err.failed) return invalid_argument("response: " + err.msg);
      if (error_id != nullptr) *error_id = resp.id;
      return Error{code, std::move(msg)};
    }
    if (!err.failed) {
      std::string kind_name;
      a.prim("kind", kind_name);
      QueryKind kind = QueryKind::kQueryCpu;
      if (!err.failed && !kind_from_name(kind_name, kind)) {
        err.fail("kind", "unknown response kind");
      }
      if (!err.failed) {
        set_result_for_kind(resp, kind);
        std::visit([&](auto& res) { a.object("result", res); }, resp.result);
      }
    }
  }
  if (err.failed) return invalid_argument("response: " + err.msg);
  return resp;
}

std::vector<std::uint8_t> frame_request(const svc::Request& req, Codec codec) {
  std::vector<std::uint8_t> payload;
  encode_request(req, codec, payload);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  append_frame(out, codec, payload);
  return out;
}

std::vector<std::uint8_t> frame_response(const svc::Response& resp,
                                         Codec codec) {
  std::vector<std::uint8_t> payload;
  encode_response(resp, codec, payload);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  append_frame(out, codec, payload);
  return out;
}

std::vector<std::uint8_t> frame_error_response(std::uint64_t id,
                                               const Error& err,
                                               Codec codec) {
  std::vector<std::uint8_t> payload;
  encode_error_response(id, err, codec, payload);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  append_frame(out, codec, payload);
  return out;
}

}  // namespace pbc::net
