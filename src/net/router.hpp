// Consistent-hash routing of request descriptors onto engine shards.
//
// The pbcd daemon runs N in-process QueryEngine shards so cache shards,
// single-flight maps, and LRU locks scale with cores. Requests route by
// svc::descriptor_hash — the (machine, workload) digest — so all traffic
// for one descriptor lands on one shard and its profile/sim/replay
// caches stay hot, instead of every shard cold-computing every pair.
//
// The ring is the textbook construction: each shard owns `vnodes`
// pseudo-random points on the u64 circle; a key routes to the owner of
// the first point at or after it. Virtual nodes keep the load split
// within a few percent of uniform, and adding a shard only moves ~1/N of
// the keyspace — the property that matters if shard counts ever become
// dynamic. Routing is a binary search over an immutable ring: no locks,
// safe from every connection thread.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pbc::net {

class ShardRouter {
 public:
  /// A ring over `shards` shards (>= 1; 0 is promoted to 1) with
  /// `vnodes` points per shard.
  explicit ShardRouter(std::size_t shards, std::size_t vnodes = 64);

  /// The shard owning `key` (svc::descriptor_hash of the request).
  [[nodiscard]] std::size_t route(std::uint64_t key) const noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_; }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::size_t shards_;
};

}  // namespace pbc::net
