// Admission control for pbcd: AIMD load-shedding with per-client
// fairness, in the spirit of FastCap's fair degradation under a cap.
//
// The control signal is the served-request p99 computed from the
// engines' per-kind obs latency histograms (DeltaP99Tracker turns two
// registry snapshots into the p99 *of the last window*, not all-time).
// The actuator is one global admission rate in requests/second:
//
//   p99 over target  ->  rate *= decrease   (multiplicative decrease)
//   p99 within target -> rate += increase_frac * max_rate (additive)
//
// so the daemon sheds hard when latency degrades and recovers linearly,
// the classic AIMD shape that converges instead of oscillating.
//
// Fairness: the global rate is split into equal per-client token
// buckets, refilled every refill tick with (rate / active clients) and
// capped at one burst window. Under 2x overload every client keeps the
// same accept rate (within bucket-granularity noise) regardless of how
// aggressively it offers load — the bench gate holds per-client accept
// rates within 10% of each other. A client idle past the expiry window
// stops counting toward the split.
//
// Thread safety: all methods may be called concurrently; state is one
// mutex (per-request cost is a short critical section — the daemon's
// request path is dominated by engine work and socket IO).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace pbc::net {

struct AdmissionOptions {
  /// Shed until the served p99 is back under this bound (microseconds).
  double target_p99_us = 5000.0;
  /// Rate floor: even a saturated daemon admits this many req/s, so the
  /// control loop keeps observing fresh latencies and can recover.
  double min_rate = 2000.0;
  /// Rate ceiling; at the ceiling the limiter is effectively open.
  double max_rate = 2.0e6;
  /// Multiplicative decrease factor on a p99 breach.
  double decrease = 0.7;
  /// Additive increase per healthy update, as a fraction of max_rate.
  double increase_frac = 0.02;
  /// Token-bucket burst capacity, in seconds of a client's fair rate.
  double burst_s = 0.05;
  /// A client unseen for this long stops counting toward the fair split.
  double client_expiry_s = 1.0;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(AdmissionOptions opt = {});

  /// Admits or sheds one request from `client_id` (the daemon's
  /// per-connection id). Refills the client's bucket lazily from the
  /// elapsed time, so no background thread is needed for token flow.
  [[nodiscard]] bool try_admit(std::uint64_t client_id, Clock::time_point now);

  /// Feeds the latest windowed p99 (microseconds); steps the AIMD rate.
  void report_p99(double p99_us);

  /// Drops a disconnected client's bucket immediately.
  void forget_client(std::uint64_t client_id);

  /// The current global admission rate (req/s).
  [[nodiscard]] double rate() const;

  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return opt_;
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last_refill{};
    Clock::time_point last_seen{};
  };

  void expire_idle_locked(Clock::time_point now);

  AdmissionOptions opt_;
  mutable std::mutex mu_;
  double rate_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  Clock::time_point last_expiry_sweep_{};
};

/// Turns successive registry snapshots into the max per-kind p99 over
/// the window between them, by differencing the
/// pbc_svc_query_latency_us{kind=...} histogram bucket counts. The
/// all-time histogram p99 goes stale as soon as load changes; the delta
/// is the control signal the shedder needs.
class DeltaP99Tracker {
 public:
  /// Max p99 (µs) across query kinds for observations recorded since the
  /// previous update; 0 when the window saw no requests.
  [[nodiscard]] double update(const obs::MetricsSnapshot& snapshot);

 private:
  struct Prev {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, Prev> prev_;
};

}  // namespace pbc::net
