#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define PBC_NET_HAVE_EPOLL 1
#else
#define PBC_NET_HAVE_EPOLL 0
#endif

#include "net/codec.hpp"
#include "obs/exposition.hpp"
#include "svc/request.hpp"

namespace pbc::net {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Writes the whole buffer on a possibly-nonblocking socket, polling for
/// writability on EAGAIN. Returns false on a hard error.
[[nodiscard]] bool write_all(int fd, const std::uint8_t* data,
                             std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, 1000) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

[[nodiscard]] bool starts_with_get(const std::vector<std::uint8_t>& buf) {
  static constexpr char kGet[] = {'G', 'E', 'T', ' '};
  return buf.size() >= 4 && std::memcmp(buf.data(), kGet, 4) == 0;
}

[[nodiscard]] bool http_request_complete(const std::vector<std::uint8_t>& b) {
  static constexpr char kEnd[] = "\r\n\r\n";
  if (b.size() < 4) return false;
  for (std::size_t i = 0; i + 4 <= b.size(); ++i) {
    if (std::memcmp(b.data() + i, kEnd, 4) == 0) return true;
  }
  return false;
}

[[nodiscard]] std::string http_metrics_response(const std::string& body) {
  std::string out = "HTTP/1.1 200 OK\r\n";
  out += "Content-Type: text/plain; version=0.0.4\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

/// Per-connection state for both serving modes.
struct Daemon::Conn {
  int fd = -1;
  std::uint64_t client_id = 0;
  enum class Mode { kUnknown, kFrame, kHttp } mode = Mode::kUnknown;
  FrameDecoder decoder;
  std::vector<std::uint8_t> sniff;  ///< bytes held until the mode is known
  std::vector<std::uint8_t> http_buf;
};

Daemon::Daemon(DaemonOptions opt)
    : opt_(std::move(opt)),
      router_(opt_.shards == 0 ? 1 : opt_.shards, opt_.vnodes),
      admission_(opt_.admission),
      requests_total_(&registry_.counter("pbc_net_requests_total",
                                         "Frames received as requests")),
      responses_total_(&registry_.counter("pbc_net_responses_total",
                                          "Successful responses sent")),
      errors_total_(&registry_.counter(
          "pbc_net_errors_total",
          "Error responses sent (decode, validation, execution)")),
      shed_total_(&registry_.counter("pbc_net_shed_total",
                                     "Requests shed by admission control")),
      deadline_rejected_total_(&registry_.counter(
          "pbc_net_deadline_rejected_total",
          "Requests whose deadline elapsed before compute")),
      connections_total_(&registry_.counter("pbc_net_connections_total",
                                            "Connections accepted")),
      open_connections_(&registry_.gauge("pbc_net_open_connections",
                                         "Currently open connections")),
      admission_rate_(&registry_.gauge("pbc_net_admission_rate",
                                       "Current admission rate, req/s")) {
  const std::size_t n = opt_.shards == 0 ? 1 : opt_.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    svc::EngineOptions eo = opt_.engine;
    eo.registry = &registry_;
    shards_.push_back(std::make_unique<svc::QueryEngine>(eo));
  }
}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  if (running_.load()) return {};
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return unavailable("pbcd: socket() failed");
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return invalid_argument("pbcd: bad host " + opt_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return unavailable("pbcd: bind failed: " +
                       std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, opt_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return unavailable("pbcd: listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
#if PBC_NET_HAVE_EPOLL
  const bool epoll_mode = opt_.use_epoll;
#else
  const bool epoll_mode = false;
#endif
  if (epoll_mode) {
#if PBC_NET_HAVE_EPOLL
    // Created here, before the serve thread exists, and closed in stop()
    // after it is joined: wake_fd_ is never touched concurrently, so
    // stop() can write the wake token without racing the loop's reads
    // (or a close()) on the other thread.
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      return unavailable("pbcd: eventfd failed");
    }
#endif
    serve_thread_ = std::thread([this] { event_loop(); });
  } else {
    if (!set_nonblocking(listen_fd_)) {
      // accept_loop polls, so nonblocking accept is required there too.
    }
    serve_thread_ = std::thread([this] { accept_loop(); });
  }
  monitor_thread_ = std::thread([this] { monitor_loop(); });
  return {};
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  {
    std::scoped_lock lock(stop_mu_);
    stop_cv_.notify_all();
  }
#if PBC_NET_HAVE_EPOLL
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
#endif
  if (serve_thread_.joinable()) serve_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  {
    std::scoped_lock lock(conn_threads_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> joinees;
  {
    std::scoped_lock lock(conn_threads_mu_);
    joinees.swap(conn_threads_);
  }
  for (auto& t : joinees) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::string Daemon::metrics_payload() {
  // metrics_snapshot() refreshes each shard's cache gauges into the
  // shared registry; with several shards the entry gauges report the
  // last shard refreshed (counters aggregate exactly — see docs).
  for (auto& s : shards_) (void)s->metrics_snapshot();
  admission_rate_->set(admission_.rate());
  return obs::render_prometheus(registry_.snapshot());
}

std::vector<std::uint8_t> Daemon::process_frame(const Frame& frame,
                                                std::uint64_t client_id,
                                                Clock::time_point arrival) {
  const Codec codec = frame.header.codec;
  requests_total_->add(1);
  auto req = decode_request(frame.payload, codec);
  if (!req.ok()) {
    errors_total_->add(1);
    return frame_error_response(0, req.error(), codec);
  }
  const std::uint64_t id = req.value().id;
  const auto now = Clock::now();
  if (opt_.admission_enabled && !admission_.try_admit(client_id, now)) {
    shed_total_->add(1);
    return frame_error_response(
        id, unavailable("pbcd: shed by admission control"), codec);
  }
  const std::uint64_t deadline_us = req.value().options.deadline_us;
  if (deadline_us > 0) {
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - arrival)
            .count();
    if (elapsed_us >= static_cast<std::int64_t>(deadline_us)) {
      deadline_rejected_total_->add(1);
      return frame_error_response(
          id,
          deadline_exceeded("pbcd: deadline " + std::to_string(deadline_us) +
                            "us elapsed before compute (" +
                            std::to_string(elapsed_us) + "us in queue)"),
          codec);
    }
  }
  const std::size_t shard = router_.route(svc::descriptor_hash(req.value()));
  auto resp = shards_[shard]->execute(req.value());
  if (!resp.ok()) {
    errors_total_->add(1);
    return frame_error_response(id, resp.error(), codec);
  }
  responses_total_->add(1);
  return frame_response(resp.value(), codec);
}

bool Daemon::on_readable(Conn& c) {
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    const auto arrival = Clock::now();
    std::span<const std::uint8_t> bytes(buf, static_cast<std::size_t>(n));
    if (c.mode == Conn::Mode::kUnknown) {
      c.sniff.insert(c.sniff.end(), bytes.begin(), bytes.end());
      if (c.sniff.size() < 4) continue;
      c.mode = starts_with_get(c.sniff) ? Conn::Mode::kHttp
                                        : Conn::Mode::kFrame;
      bytes = std::span<const std::uint8_t>(c.sniff);
    }
    if (c.mode == Conn::Mode::kHttp) {
      c.http_buf.insert(c.http_buf.end(), bytes.begin(), bytes.end());
      c.sniff.clear();
      if (c.http_buf.size() > (1u << 16)) return false;
      if (!http_request_complete(c.http_buf)) continue;
      const std::string body = http_metrics_response(metrics_payload());
      (void)write_all(c.fd,
                      reinterpret_cast<const std::uint8_t*>(body.data()),
                      body.size());
      return false;  // one-shot endpoint: close after the scrape
    }
    c.decoder.feed(bytes);
    c.sniff.clear();
    while (true) {
      auto next = c.decoder.next();
      if (!next.ok()) return false;  // corrupt stream: drop the connection
      if (!next.value().has_value()) break;
      const auto out = process_frame(*next.value(), c.client_id, arrival);
      if (!write_all(c.fd, out.data(), out.size())) return false;
    }
  }
  return true;
}

#if PBC_NET_HAVE_EPOLL
void Daemon::event_loop() {
  const int ep = ::epoll_create1(0);
  if (ep < 0) return;
  (void)set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  (void)epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  (void)epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd_, &ev);

  std::unordered_map<int, Conn> conns;
  epoll_event events[128];
  while (running_.load()) {
    const int n = ::epoll_wait(ep, events, 128, 100);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        while (true) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          (void)set_nonblocking(cfd);
          set_nodelay(cfd);
          Conn c;
          c.fd = cfd;
          c.client_id = next_client_id_.fetch_add(1);
          conns.emplace(cfd, std::move(c));
          connections_total_->add(1);
          open_connections_->set(static_cast<double>(conns.size()));
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = cfd;
          (void)epoll_ctl(ep, EPOLL_CTL_ADD, cfd, &cev);
        }
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      bool keep = (events[i].events & (EPOLLHUP | EPOLLERR)) == 0;
      if (keep) keep = on_readable(it->second);
      if (!keep) {
        admission_.forget_client(it->second.client_id);
        (void)epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns.erase(it);
        open_connections_->set(static_cast<double>(conns.size()));
      }
    }
  }
  for (auto& [fd, c] : conns) ::close(fd);
  ::close(ep);  // wake_fd_ is owned by start()/stop(), not the loop
}
#else
void Daemon::event_loop() { accept_loop(); }
#endif

void Daemon::accept_loop() {
  (void)set_nonblocking(listen_fd_);
  while (running_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    set_nodelay(cfd);
    const std::uint64_t id = next_client_id_.fetch_add(1);
    connections_total_->add(1);
    std::scoped_lock lock(conn_threads_mu_);
    conn_fds_.push_back(cfd);
    open_connections_->set(static_cast<double>(conn_fds_.size()));
    conn_threads_.emplace_back(
        [this, cfd, id] { serve_connection(cfd, id); });
  }
}

void Daemon::serve_connection(int fd, std::uint64_t client_id) {
  Conn c;
  c.fd = fd;
  c.client_id = client_id;
  // Blocking reads; on_readable's recv loop exits via EAGAIN only for
  // nonblocking sockets, so flip the socket nonblocking and poll here.
  (void)set_nonblocking(fd);
  while (running_.load()) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    if (!on_readable(c)) break;
  }
  admission_.forget_client(client_id);
  ::close(fd);
  std::scoped_lock lock(conn_threads_mu_);
  std::erase(conn_fds_, fd);
  open_connections_->set(static_cast<double>(conn_fds_.size()));
}

void Daemon::monitor_loop() {
  const auto interval = std::chrono::duration<double>(opt_.monitor_interval_s);
  std::unique_lock lock(stop_mu_);
  while (running_.load()) {
    stop_cv_.wait_for(lock, interval, [this] { return !running_.load(); });
    if (!running_.load()) break;
    const double p99 = p99_tracker_.update(registry_.snapshot());
    if (p99 > 0.0) admission_.report_p99(p99);
    admission_rate_->set(admission_.rate());
  }
}

}  // namespace pbc::net
