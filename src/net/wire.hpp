// pbcd wire framing: the length-prefixed envelope around codec payloads.
//
// Every message on a pbcd connection — request or response, either
// direction — is one frame:
//
//   offset  size  field
//   0       4     magic "PBCF" (bytes 'P','B','C','F')
//   4       1     version (currently 1)
//   5       1     codec   (1 = binary, 2 = JSON debug)
//   6       2     flags   (reserved, must be 0), little-endian
//   8       4     payload length in bytes, little-endian, <= 16 MiB
//   12      N     payload (see net/codec.hpp)
//
// The parser never trusts the peer: bad magic, unknown version/codec,
// nonzero flags, and oversized lengths are clean kInvalidArgument errors
// before any payload allocation, and a FrameDecoder fed arbitrary bytes
// either produces frames or fails — it never crashes or over-allocates
// (tests/net/frame_fuzz_test.cpp runs it under ASan on garbage).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace pbc::net {

/// Payload encoding carried in the frame header.
enum class Codec : std::uint8_t {
  kBinary = 1,
  kJson = 2,
};

[[nodiscard]] constexpr const char* to_string(Codec c) noexcept {
  switch (c) {
    case Codec::kBinary:
      return "binary";
    case Codec::kJson:
      return "json";
  }
  return "unknown";
}

inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;
/// "PBCF" read as a little-endian u32 from the first four bytes.
inline constexpr std::uint32_t kFrameMagic = 0x46434250u;

struct FrameHeader {
  std::uint8_t version = kFrameVersion;
  Codec codec = Codec::kBinary;
  std::uint16_t flags = 0;
  std::uint32_t payload_len = 0;
};

/// Appends a frame header for a payload of `payload_len` bytes.
void append_frame_header(std::vector<std::uint8_t>& out, Codec codec,
                         std::uint32_t payload_len);

/// Appends header + payload in one go.
void append_frame(std::vector<std::uint8_t>& out, Codec codec,
                  std::span<const std::uint8_t> payload);

/// Validates and decodes the first kFrameHeaderSize bytes. Rejects bad
/// magic, unknown version or codec, nonzero reserved flags, and payload
/// lengths over kMaxFramePayload.
[[nodiscard]] Result<FrameHeader> parse_frame_header(
    std::span<const std::uint8_t> bytes);

/// One complete frame as returned by FrameDecoder.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame extractor over a TCP byte stream. Feed whatever the
/// socket produced; next() yields complete frames in order. The first
/// malformed header poisons the decoder (a byte stream with a corrupt
/// frame boundary cannot be resynchronized), and every later next()
/// returns the same error.
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame: a Frame when one is buffered, std::nullopt
  /// when more bytes are needed, an Error when the stream is corrupt.
  [[nodiscard]] Result<std::optional<Frame>> next();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buf_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
  std::optional<Error> poisoned_;
};

}  // namespace pbc::net
