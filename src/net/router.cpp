#include "net/router.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace pbc::net {

ShardRouter::ShardRouter(std::size_t shards, std::size_t vnodes)
    : shards_(shards == 0 ? 1 : shards) {
  if (vnodes == 0) vnodes = 1;
  ring_.reserve(shards_ * vnodes);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t r = 0; r < vnodes; ++r) {
      Fnv1a64 h(0x9e3779b9u);
      h.u64(static_cast<std::uint64_t>(s));
      h.u64(static_cast<std::uint64_t>(r));
      ring_.emplace_back(h.digest(), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::route(std::uint64_t key) const noexcept {
  // First ring point at or after the key, wrapping to the lowest point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const auto& point, std::uint64_t k) { return point.first < k; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace pbc::net
