#include "net/admission.hpp"

#include <algorithm>

namespace pbc::net {

AdmissionController::AdmissionController(AdmissionOptions opt)
    : opt_(opt), rate_(opt.max_rate) {}

bool AdmissionController::try_admit(std::uint64_t client_id,
                                    Clock::time_point now) {
  std::scoped_lock lock(mu_);
  expire_idle_locked(now);
  auto [it, inserted] = buckets_.try_emplace(client_id);
  Bucket& b = it->second;
  const double n = static_cast<double>(buckets_.size());
  const double fair_rate = rate_ / n;
  const double burst = std::max(1.0, fair_rate * opt_.burst_s);
  if (inserted) {
    // A new client starts with a full burst so short connections are not
    // starved by an empty bucket.
    b.tokens = burst;
    b.last_refill = now;
  } else {
    const double dt =
        std::chrono::duration<double>(now - b.last_refill).count();
    if (dt > 0.0) {
      b.tokens = std::min(burst, b.tokens + fair_rate * dt);
      b.last_refill = now;
    }
  }
  b.last_seen = now;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void AdmissionController::report_p99(double p99_us) {
  std::scoped_lock lock(mu_);
  if (p99_us > opt_.target_p99_us) {
    rate_ = std::max(opt_.min_rate, rate_ * opt_.decrease);
  } else {
    rate_ = std::min(opt_.max_rate,
                     rate_ + opt_.increase_frac * opt_.max_rate);
  }
}

void AdmissionController::forget_client(std::uint64_t client_id) {
  std::scoped_lock lock(mu_);
  buckets_.erase(client_id);
}

double AdmissionController::rate() const {
  std::scoped_lock lock(mu_);
  return rate_;
}

void AdmissionController::expire_idle_locked(Clock::time_point now) {
  // Sweep at most once per expiry window — the map is small (one entry
  // per live client), so the sweep itself is cheap, but there is no
  // reason to scan it on every request.
  const auto window = std::chrono::duration<double>(opt_.client_expiry_s);
  if (now - last_expiry_sweep_ < window) return;
  last_expiry_sweep_ = now;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now - it->second.last_seen >= window) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

double DeltaP99Tracker::update(const obs::MetricsSnapshot& snapshot) {
  double worst = 0.0;
  for (const auto& m : snapshot.metrics) {
    if (m.name != "pbc_svc_query_latency_us") continue;
    std::string key;
    for (const auto& [lk, lv] : m.labels) {
      key += lk;
      key += '=';
      key += lv;
      key += ';';
    }
    Prev& prev = prev_[key];
    const auto& cur = m.hist;
    obs::HistogramSnapshot delta;
    delta.bounds = cur.bounds;
    delta.buckets = cur.buckets;
    delta.max = cur.max;  // window max is unknowable; the all-time max
                          // only loosens the interpolation clamp upward
    if (prev.buckets.size() == cur.buckets.size()) {
      for (std::size_t i = 0; i < delta.buckets.size(); ++i) {
        delta.buckets[i] -= prev.buckets[i];
      }
      delta.count = cur.count - prev.count;
      delta.sum = cur.sum - prev.sum;
    } else {
      delta.count = cur.count;
      delta.sum = cur.sum;
    }
    prev.buckets = cur.buckets;
    prev.count = cur.count;
    prev.sum = cur.sum;
    if (delta.count == 0) continue;
    worst = std::max(worst, delta.percentile(99.0));
  }
  return worst;
}

}  // namespace pbc::net
