// pbcd: the TCP daemon serving svc::QueryEngine over the wire protocol.
//
// One Daemon owns N QueryEngine shards (consistent-hash routed by
// svc::descriptor_hash, so a descriptor's cache traffic stays on one
// shard), one shared obs::MetricsRegistry the shards publish into, an
// AdmissionController fed by the per-kind latency histogram p99s, and
// the listening socket. Two serving modes, selected by
// DaemonOptions::use_epoll:
//
//  * epoll event loop (the default on Linux): one event thread owns
//    accept + read + write on nonblocking sockets and executes requests
//    inline — engine work per request is microseconds warm, so a single
//    loop sustains the bench gate while keeping connection state
//    single-threaded.
//  * thread-per-connection fallback: an accept thread spawns one
//    blocking-IO thread per connection; requests on different
//    connections execute in parallel (the engine is thread-safe). This
//    is also the portable mode for non-Linux builds.
//
// Request lifecycle per frame, in order:
//   1. decode (net/codec.hpp)          -> kInvalidArgument on garbage
//   2. admission (net/admission.hpp)   -> kUnavailable when shed
//   3. deadline check: CallOptions::deadline_us is a relative budget
//      whose clock starts when the frame's bytes arrived; if it has
//      already elapsed (queueing behind earlier frames counts), the
//      request is rejected with kDeadlineExceeded BEFORE any compute.
//   4. route + QueryEngine::execute    -> result or engine error
// Every outcome is answered on the same connection in arrival order.
//
// A connection whose first bytes are "GET " is served as HTTP instead:
// the daemon answers one request with the Prometheus exposition of the
// shared registry (obs::render_prometheus) and closes — a live /metrics
// endpoint without an HTTP stack.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.hpp"
#include "net/router.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "svc/engine.hpp"
#include "util/status.hpp"

namespace pbc::net {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via Daemon::port().
  std::uint16_t port = 0;
  /// QueryEngine shards behind the consistent-hash router.
  std::size_t shards = 1;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// epoll event loop when true (Linux); thread-per-connection otherwise.
  /// Non-Linux builds always use the thread-per-connection fallback.
  bool use_epoll = true;
  int backlog = 128;
  /// Per-shard engine options. The registry field is ignored: every
  /// shard publishes into the daemon's shared registry so /metrics and
  /// the admission p99s see aggregate traffic.
  svc::EngineOptions engine;
  bool admission_enabled = true;
  AdmissionOptions admission;
  /// Cadence of the monitor loop that feeds histogram p99s to the
  /// admission controller.
  double monitor_interval_s = 0.005;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opt = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and starts the serving + monitor threads.
  [[nodiscard]] Status start();

  /// Stops serving and joins every thread. Idempotent.
  void stop();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }
  [[nodiscard]] svc::QueryEngine& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] AdmissionController& admission() noexcept {
    return admission_;
  }
  [[nodiscard]] const DaemonOptions& options() const noexcept { return opt_; }

  /// The Prometheus payload /metrics serves: the shared registry with
  /// every shard's cache gauges freshly refreshed.
  [[nodiscard]] std::string metrics_payload();

 private:
  struct Conn;

  /// Decodes, admits, deadline-checks, routes, executes; returns the
  /// fully framed response (success or error) to write back.
  [[nodiscard]] std::vector<std::uint8_t> process_frame(
      const Frame& frame, std::uint64_t client_id,
      std::chrono::steady_clock::time_point arrival);

  void event_loop();
  void accept_loop();
  void serve_connection(int fd, std::uint64_t client_id);
  void monitor_loop();

  /// Handles readable bytes on a connection; returns false when the
  /// connection should close.
  [[nodiscard]] bool on_readable(Conn& c);

  DaemonOptions opt_;
  obs::MetricsRegistry registry_;
  std::vector<std::unique_ptr<svc::QueryEngine>> shards_;
  ShardRouter router_;
  AdmissionController admission_;
  DeltaP99Tracker p99_tracker_;

  obs::Counter* requests_total_;
  obs::Counter* responses_total_;
  obs::Counter* errors_total_;
  obs::Counter* shed_total_;
  obs::Counter* deadline_rejected_total_;
  obs::Counter* connections_total_;
  obs::Gauge* open_connections_;
  obs::Gauge* admission_rate_;

  int listen_fd_ = -1;
  /// eventfd that wakes the epoll loop for stop(). Owned by start()/
  /// stop() (created before the serve thread, closed after its join),
  /// so no two threads ever touch it concurrently.
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> next_client_id_{1};

  std::thread serve_thread_;
  std::thread monitor_thread_;
  std::mutex conn_threads_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
};

}  // namespace pbc::net
