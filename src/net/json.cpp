#include "net/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pbc::net::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void render_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void render_into(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    if (!std::isfinite(d)) {
      out += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else if (v.is_string()) {
    render_string(v.as_string(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      render_into(e, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      render_string(k, out);
      out.push_back(':');
      render_into(e, out);
    }
    out.push_back('}');
  }
}

/// Recursive-descent parser with explicit depth and size guards.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Result<Value> run() {
    skip_ws();
    Value v;
    if (auto s = parse_value(v, 0); !s.ok()) return s.error();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[nodiscard]] Error fail(const char* what) const {
    return invalid_argument(std::string("json: ") + what + " at offset " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return {};
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Codec strings are ASCII; encode BMP code points as UTF-8 so
          // arbitrary input still round-trips without loss of bytes.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0u | (code >> 6)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          } else {
            out.push_back(static_cast<char>(0xE0u | (code >> 12)));
            out.push_back(static_cast<char>(0x80u | ((code >> 6) & 0x3Fu)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  [[nodiscard]] Status parse_value(Value& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      Object obj;
      skip_ws();
      if (consume('}')) {
        out = Value(std::move(obj));
        return {};
      }
      while (true) {
        skip_ws();
        std::string key;
        if (auto s = parse_string(key); !s.ok()) return s;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (auto s = parse_value(v, depth + 1); !s.ok()) return s;
        obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) break;
        return fail("expected ',' or '}'");
      }
      out = Value(std::move(obj));
      return {};
    }
    if (c == '[') {
      ++pos_;
      Array arr;
      skip_ws();
      if (consume(']')) {
        out = Value(std::move(arr));
        return {};
      }
      while (true) {
        Value v;
        if (auto s = parse_value(v, depth + 1); !s.ok()) return s;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) break;
        return fail("expected ',' or ']'");
      }
      out = Value(std::move(arr));
      return {};
    }
    if (c == '"') {
      std::string s;
      if (auto st = parse_string(s); !st.ok()) return st;
      out = Value(std::move(s));
      return {};
    }
    if (consume_lit("true")) {
      out = Value(true);
      return {};
    }
    if (consume_lit("false")) {
      out = Value(false);
      return {};
    }
    if (consume_lit("null")) {
      out = Value(nullptr);
      return {};
    }
    // Number: delegate to strtod over the longest plausible span.
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char n = text_[pos_];
      if ((n >= '0' && n <= '9') || n == '-' || n == '+' || n == '.' ||
          n == 'e' || n == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("unexpected character");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    out = Value(d);
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string render(const Value& v) {
  std::string out;
  render_into(v, out);
  return out;
}

Result<Value> parse(std::string_view text) {
  if (text.size() > (16u << 20)) {
    return invalid_argument("json: input over 16 MiB");
  }
  return Parser(text).run();
}

}  // namespace pbc::net::json
