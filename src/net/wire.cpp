#include "net/wire.hpp"

#include <cstring>

namespace pbc::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void append_frame_header(std::vector<std::uint8_t>& out, Codec codec,
                         std::uint32_t payload_len) {
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(codec));
  out.push_back(0);  // flags lo
  out.push_back(0);  // flags hi
  put_u32(out, payload_len);
}

void append_frame(std::vector<std::uint8_t>& out, Codec codec,
                  std::span<const std::uint8_t> payload) {
  append_frame_header(out, codec,
                      static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

Result<FrameHeader> parse_frame_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return invalid_argument("frame: header truncated");
  }
  if (get_u32(bytes.data()) != kFrameMagic) {
    return invalid_argument("frame: bad magic");
  }
  FrameHeader h;
  h.version = bytes[4];
  if (h.version != kFrameVersion) {
    return invalid_argument("frame: unsupported version " +
                            std::to_string(h.version));
  }
  const std::uint8_t codec = bytes[5];
  if (codec != static_cast<std::uint8_t>(Codec::kBinary) &&
      codec != static_cast<std::uint8_t>(Codec::kJson)) {
    return invalid_argument("frame: unknown codec " + std::to_string(codec));
  }
  h.codec = static_cast<Codec>(codec);
  h.flags = static_cast<std::uint16_t>(
      bytes[6] | (static_cast<std::uint16_t>(bytes[7]) << 8));
  if (h.flags != 0) {
    return invalid_argument("frame: reserved flags set");
  }
  h.payload_len = get_u32(bytes.data() + 8);
  if (h.payload_len > kMaxFramePayload) {
    return invalid_argument("frame: payload length " +
                            std::to_string(h.payload_len) + " over limit");
  }
  return h;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<Frame>> FrameDecoder::next() {
  if (poisoned_) return *poisoned_;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return std::optional<Frame>{};
  auto header = parse_frame_header(
      std::span<const std::uint8_t>(buf_.data() + consumed_, avail));
  if (!header.ok()) {
    poisoned_ = header.error();
    return *poisoned_;
  }
  const std::size_t total = kFrameHeaderSize + header.value().payload_len;
  if (avail < total) return std::optional<Frame>{};
  Frame f;
  f.header = header.value();
  const std::uint8_t* p = buf_.data() + consumed_ + kFrameHeaderSize;
  f.payload.assign(p, p + header.value().payload_len);
  consumed_ += total;
  return std::optional<Frame>{std::move(f)};
}

}  // namespace pbc::net
