// Controller-in-the-loop trace replay: the closed-loop third replay mode.
//
// sim::replay_trace holds the split fixed; core::replay_with_shifting
// climbs from COORD's profiled start. run_closed_loop is the third mode
// in that family: no profile at all — an OnlineController starts blind at
// the middle of the feasible band, and every segment's telemetry feeds
// the next segment's split. The loop's accounting (time-weighted
// aggregate, skip-invalid-segment tolerance, energy integration) matches
// the shifter's loop exactly, so results are comparable row-for-row and
// the offline paths remain the convergence oracle (bench/online_regret).
//
// The sim layer cannot depend on ctrl (ctrl consumes sim's telemetry),
// so this mode lives here rather than as a sim::ReplayPath enumerator;
// svc::QueryEngine::run_online serves it cached like the other two.
#pragma once

#include <vector>

#include "ctrl/controller.hpp"
#include "sim/cpu_node.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "util/status.hpp"
#include "workload/trace.hpp"

namespace pbc::ctrl {

/// The split the controller applied to one segment, plus the decision
/// flags that produced it.
struct ClosedLoopSegment {
  std::size_t phase_index = 0;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
  /// This split was an exploration probe (not an exploit/jump move).
  bool explored = false;
  /// The controller detected a phase-signature change entering this
  /// segment.
  bool phase_change = false;
};

struct ClosedLoopResult {
  /// Trace replay under the controller's dynamic caps. As with the
  /// shifter, the aggregate's proc_cap / mem_cap are time-weighted mean
  /// caps; `caps` is the per-segment source of truth.
  sim::TraceReplayResult replay;
  std::vector<ClosedLoopSegment> caps;
  /// The controller's final counters for this run.
  ControllerStats stats;
};

/// Replays `trace` with the online controller steering the split under
/// `total_budget`. Malformed segments (bad phase index, non-positive
/// work) are skipped, matching the unchecked replay/shifting contract.
[[nodiscard]] ClosedLoopResult run_closed_loop(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg = {});

/// Convenience overload building a transient PhaseNodeSet; callers
/// running more than once should build the set (or go through
/// svc::QueryEngine::run_online) and use the overload above.
[[nodiscard]] ClosedLoopResult run_closed_loop(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg = {});

/// Checked variants: validate the controller config, that the budget
/// clears the resolved floors, and the trace, returning a descriptive
/// Error instead of degrading — the same contract (and error codes) as
/// replay_with_shifting_checked.
[[nodiscard]] Result<ClosedLoopResult> run_closed_loop_checked(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg = {});

[[nodiscard]] Result<ClosedLoopResult> run_closed_loop_checked(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg = {});

}  // namespace pbc::ctrl
