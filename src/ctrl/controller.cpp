#include "ctrl/controller.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace pbc::ctrl {

namespace {

/// Quantization base for the bytes-per-unit phase fingerprint: buckets
/// are half-open intervals [1.5^k, 1.5^(k+1)). Coarse enough that the
/// same phase lands in one bucket under any caps (the ratio is a
/// workload property, not an allocation property), fine enough that the
/// suite's compute-bound and memory-bound phases never share one.
constexpr double kSignatureBase = 1.5;

[[nodiscard]] bool finite_nonneg(double v) noexcept {
  return std::isfinite(v) && v >= 0.0;
}

}  // namespace

std::pair<Watts, Watts> controller_floors(
    const ControllerConfig& cfg, const hw::CpuMachine& machine) noexcept {
  const auto resolve = [](const std::optional<Watts>& explicit_floor,
                          Watts machine_floor, double fallback) {
    if (explicit_floor.has_value()) return *explicit_floor;
    if (machine_floor.value() > 0.0) return machine_floor;
    return Watts{fallback};
  };
  return {resolve(cfg.cpu_min, machine.cpu.floor, 48.0),
          resolve(cfg.mem_min, machine.dram.floor, 68.0)};
}

OnlineController::OnlineController(const hw::CpuMachine& machine,
                                   Watts total_budget, ControllerConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed, /*stream=*/0) {
  const auto [cpu_floor, mem_floor] = controller_floors(cfg_, machine);
  cpu_min_ = cpu_floor.value();
  mem_min_ = mem_floor.value();
  budget_ = total_budget.value();
  const double band = budget_ - cpu_min_ - mem_min_;
  const double step = cfg_.step.value();
  if (band >= 0.0 && step > 0.0) {
    // Arms at cpu_min + i*step for every i that keeps mem above its
    // floor. The +1e-9 absorbs FP slop so an exactly-divisible band
    // includes its last lattice point.
    arm_count_ = 1 + static_cast<std::size_t>(band / step + 1e-9);
  } else {
    arm_count_ = 1;  // infeasible budget: pinned at cpu_min (tolerated)
  }
  // Uninformed start: the middle of the feasible band. No profile exists
  // yet, so there is nothing better to anchor on.
  const int mid = static_cast<int>(
      std::lround(std::max(band, 0.0) / (2.0 * step)));
  cur_arm_ = std::clamp(mid, 0, static_cast<int>(arm_count_) - 1);

  obs::MetricsRegistry& reg =
      cfg_.registry != nullptr ? *cfg_.registry : obs::global_registry();
  observations_total_ = &reg.counter("pbc_ctrl_observations_total",
                                     "Telemetry observations consumed");
  explorations_total_ = &reg.counter("pbc_ctrl_explorations_total",
                                     "Decisions that probed a neighbor arm");
  moves_total_ =
      &reg.counter("pbc_ctrl_moves_total", "Decisions that changed the split");
  phase_changes_total_ = &reg.counter("pbc_ctrl_phase_changes_total",
                                      "Phase-signature transitions observed");
}

Result<OnlineController> OnlineController::make_checked(
    const hw::CpuMachine& machine, Watts total_budget, ControllerConfig cfg) {
  if (!(cfg.step.value() > 0.0)) {
    return invalid_argument("controller step must be > 0 W, got " +
                            std::to_string(cfg.step.value()));
  }
  if (!(cfg.explore_rate >= 0.0 && cfg.explore_rate <= 1.0)) {
    return invalid_argument("explore_rate must be in [0, 1], got " +
                            std::to_string(cfg.explore_rate));
  }
  if (!(cfg.explore_floor >= 0.0 && cfg.explore_floor <= 1.0)) {
    return invalid_argument("explore_floor must be in [0, 1], got " +
                            std::to_string(cfg.explore_floor));
  }
  if (!(cfg.explore_decay > 0.0)) {
    return invalid_argument("explore_decay must be > 0, got " +
                            std::to_string(cfg.explore_decay));
  }
  if (!(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0)) {
    return invalid_argument("ema_alpha must be in (0, 1], got " +
                            std::to_string(cfg.ema_alpha));
  }
  if (!(cfg.hysteresis_margin >= 0.0)) {
    return invalid_argument("hysteresis_margin must be >= 0, got " +
                            std::to_string(cfg.hysteresis_margin));
  }
  const auto [cpu_min, mem_min] = controller_floors(cfg, machine);
  if (total_budget.value() < cpu_min.value() + mem_min.value()) {
    return failed_precondition(
               "total budget " + std::to_string(total_budget.value()) +
               " W below cpu_min + mem_min = " +
               std::to_string(cpu_min.value() + mem_min.value()) + " W");
  }
  return OnlineController(machine, total_budget, std::move(cfg));
}

double OnlineController::arm_cpu(int arm) const noexcept {
  return cpu_min_ + static_cast<double>(arm) * cfg_.step.value();
}

SplitDecision OnlineController::decision() const noexcept {
  SplitDecision d;
  const double cpu = arm_cpu(cur_arm_);
  d.cpu_cap = Watts{cpu};
  // mem is the exact complement, so cpu_cap + mem_cap == budget always.
  d.mem_cap = Watts{budget_ - cpu};
  d.explored = last_explored_;
  d.phase_change = last_phase_change_;
  return d;
}

int OnlineController::signature_of(const Observation& o) const noexcept {
  if (!(o.rate_gunits > 0.0) || !(o.achieved_bw.value() > 0.0)) {
    // No fingerprint in this sample (e.g. a floor-stalled segment):
    // attribute it to the current phase rather than inventing a new one.
    return cur_sig_;
  }
  const double bpu = o.achieved_bw.value() / o.rate_gunits;
  const double bucket = std::floor(std::log(bpu) / std::log(kSignatureBase));
  return static_cast<int>(std::clamp(bucket, -512.0, 512.0));
}

void OnlineController::credit(PhaseState& ps, int arm, const Observation& o) {
  if (ps.arms.empty()) ps.arms.resize(arm_count_);
  ArmStat& st = ps.arms[static_cast<std::size_t>(arm)];
  const double a = cfg_.ema_alpha;
  const double reward = o.rate_gunits;
  st.reward_ema =
      st.count == 0 ? reward : a * reward + (1.0 - a) * st.reward_ema;
  ++st.count;
  ++ps.visits;

  PhaseEstimate& est = ps.est;
  const auto ema = [&](double cur, double sample) {
    return est.observations == 0 ? sample : a * sample + (1.0 - a) * cur;
  };
  if (o.rate_gunits > 0.0) {
    est.bytes_per_unit =
        ema(est.bytes_per_unit, o.achieved_bw.value() / o.rate_gunits);
  }
  est.rate_gunits = ema(est.rate_gunits, o.rate_gunits);
  est.proc_power = Watts{ema(est.proc_power.value(), o.proc_power.value())};
  est.mem_power = Watts{ema(est.mem_power.value(), o.mem_power.value())};
  ++est.observations;

  // Refresh the cached argmax by full scan: the lattice is small (tens of
  // arms) and a stale best would mask a genuinely better split.
  int best = -1;
  double best_ema = 0.0;
  for (std::size_t i = 0; i < ps.arms.size(); ++i) {
    if (ps.arms[i].count == 0) continue;
    if (best < 0 || ps.arms[i].reward_ema > best_ema) {
      best = static_cast<int>(i);
      best_ema = ps.arms[i].reward_ema;
    }
  }
  ps.best_arm = best;
}

int OnlineController::choose_next(PhaseState& ps, bool phase_change, double u,
                                  bool* explored) const {
  *explored = false;
  // Re-entering a known phase: jump straight to its remembered best arm.
  // This is the hysteresis guarantee on alternating traces — one move per
  // phase boundary instead of a fresh climb.
  if (phase_change && ps.best_arm >= 0 && ps.best_arm != cur_arm_) {
    return ps.best_arm;
  }
  const double eps = std::max(
      cfg_.explore_floor,
      cfg_.explore_rate /
          (1.0 + static_cast<double>(ps.visits) / cfg_.explore_decay));
  if (arm_count_ > 1 && u < eps) {
    // Probe the less-visited valid neighbor; break ties with the draw's
    // low half so both directions get probed.
    const int lo = cur_arm_ - 1;
    const int hi = cur_arm_ + 1;
    const bool lo_ok = lo >= 0;
    const bool hi_ok = hi < static_cast<int>(arm_count_);
    int probe = cur_arm_;
    if (lo_ok && hi_ok) {
      const std::uint64_t lo_n = ps.arms[static_cast<std::size_t>(lo)].count;
      const std::uint64_t hi_n = ps.arms[static_cast<std::size_t>(hi)].count;
      if (lo_n != hi_n) {
        probe = lo_n < hi_n ? lo : hi;
      } else {
        probe = u < eps * 0.5 ? lo : hi;
      }
    } else if (lo_ok) {
      probe = lo;
    } else if (hi_ok) {
      probe = hi;
    }
    if (probe != cur_arm_) {
      *explored = true;
      return probe;
    }
    return cur_arm_;
  }
  // Exploit: step toward the best-known arm, but only when it clears the
  // hysteresis margin over where we already are.
  const int best = ps.best_arm;
  if (best >= 0 && best != cur_arm_) {
    const double best_ema = ps.arms[static_cast<std::size_t>(best)].reward_ema;
    const double cur_ema =
        ps.arms[static_cast<std::size_t>(cur_arm_)].reward_ema;
    if (best_ema > cur_ema * (1.0 + cfg_.hysteresis_margin)) {
      return cur_arm_ + (best > cur_arm_ ? 1 : -1);
    }
  }
  return cur_arm_;
}

void OnlineController::observe(const Observation& o) {
  // One draw per observation on every path keeps the RNG stream aligned
  // with the observation count — replaying a prefix replays decisions.
  const double u = rng_.uniform();
  const int sig = signature_of(o);
  const bool phase_change = have_sig_ && sig != cur_sig_;

  PhaseState& ps = phases_[sig];
  if (ps.arms.empty()) ps.arms.resize(arm_count_);
  credit(ps, cur_arm_, o);

  bool explored = false;
  const int next = choose_next(ps, phase_change, u, &explored);

  ++stats_.observations;
  observations_total_->add(1);
  if (phase_change) {
    ++stats_.phase_changes;
    phase_changes_total_->add(1);
  }
  if (explored) {
    ++stats_.explorations;
    explorations_total_->add(1);
  }
  if (next != cur_arm_) {
    ++stats_.moves;
    moves_total_->add(1);
  }
  stats_.signatures = phases_.size();

  cur_arm_ = next;
  cur_sig_ = sig;
  have_sig_ = true;
  last_explored_ = explored;
  last_phase_change_ = phase_change;
}

Status OnlineController::observe_checked(const Observation& o) {
  if (!std::isfinite(o.work_units) || o.work_units <= 0.0) {
    return invalid_argument("observation work_units must be > 0, got " +
                            std::to_string(o.work_units));
  }
  if (!finite_nonneg(o.rate_gunits)) {
    return invalid_argument("observation rate_gunits must be finite and "
                            ">= 0, got " +
                            std::to_string(o.rate_gunits));
  }
  if (!finite_nonneg(o.proc_power.value()) ||
      !finite_nonneg(o.mem_power.value())) {
    return invalid_argument("observation power draws must be finite and "
                            ">= 0");
  }
  if (!finite_nonneg(o.achieved_bw.value())) {
    return invalid_argument("observation achieved_bw must be finite and "
                            ">= 0, got " +
                            std::to_string(o.achieved_bw.value()));
  }
  observe(o);
  return Status{};
}

std::vector<PhaseEstimate> OnlineController::estimates() const {
  std::vector<PhaseEstimate> out;
  out.reserve(phases_.size());
  for (const auto& [sig, ps] : phases_) out.push_back(ps.est);
  return out;
}

}  // namespace pbc::ctrl
