// Online closed-loop power controller — COORD without offline profiling.
//
// Every coordination path in the repository (coord_cpu, the shifter, the
// cluster engine) starts from a profiled workload descriptor: critical
// powers measured by pinned simulator runs before the job starts. The
// paper's own motivation, though, is dynamic phase-changing workloads
// under a fixed bound — where no offline profile exists. OnlineController
// closes that gap: it consumes the telemetry the simulators already emit
// (achieved rate, per-component power, achieved bandwidth) one
// observation at a time and steers the CPU/DRAM split at runtime.
//
// Mechanism, in one paragraph: candidate splits live on a watt lattice
// {cpu_min + i·step} spanning the feasible band, exactly the lattice the
// offline shifter climbs. Each observation is fingerprinted by its
// bytes-per-unit ratio (achieved_bw / rate — the same inversion
// core/model_fit.hpp uses), quantized into a phase *signature*; the
// controller keeps one incremental model fit and one per-arm reward
// estimate (EMA of achieved rate) per signature. Decisions are
// epsilon-greedy with a decaying exploration rate: explore moves probe a
// neighboring arm, exploit moves step toward the best-known arm only when
// it beats the current one by a relative hysteresis margin (phase noise
// never pays a move), and a signature change jumps straight to that
// signature's remembered best arm — revisiting a known phase costs one
// move, not a fresh climb. All randomness is a seeded Xoshiro256 stream,
// so a controller run is bit-reproducible.
//
// The closed replay loop lives in ctrl/closed_loop.hpp; docs/online.md
// covers tuning and when the offline paths are still the right tool.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "hw/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::ctrl {

struct ControllerConfig {
  /// Watts between adjacent candidate splits (the arm lattice pitch).
  Watts step{4.0};
  /// Per-component lower bounds, resolved exactly like the offline
  /// shifter's (core::shifting_floors): explicit override wins, then the
  /// machine's positive hardware floors, then the paper's 48 W / 68 W.
  std::optional<Watts> cpu_min;
  std::optional<Watts> mem_min;
  /// Initial exploration probability. Per signature it decays as
  /// explore_rate / (1 + visits / explore_decay), floored at
  /// explore_floor; 0 (the default floor) means exploration dies out on
  /// stationary phases and the split pins to the learned optimum.
  double explore_rate = 0.25;
  double explore_decay = 24.0;
  double explore_floor = 0.0;
  /// Weight of the newest reward in the per-arm EMA.
  double ema_alpha = 0.35;
  /// Relative improvement the best-known arm must show over the current
  /// one before an exploit move is paid. This is the hysteresis band:
  /// arms within the margin are treated as equal and the split stays put.
  double hysteresis_margin = 0.02;
  /// Seed for the controller's private RNG stream.
  std::uint64_t seed = 2016;
  /// Registry for the pbc_ctrl_* counters; null uses obs::global_registry().
  obs::MetricsRegistry* registry = nullptr;
  /// Span sink for closed-loop runs; null disables spans.
  obs::Tracer* tracer = nullptr;
};

/// The (cpu_min, mem_min) floors a config resolves to on a machine.
/// Mirrors core::shifting_floors so the online and offline controllers
/// agree on the feasible band (the fuzz suite holds them to equality).
[[nodiscard]] std::pair<Watts, Watts> controller_floors(
    const ControllerConfig& cfg, const hw::CpuMachine& machine) noexcept;

/// One telemetry sample, as emitted per trace segment by the simulators:
/// how much work ran, how fast, what each component drew, and the
/// achieved memory bandwidth (the phase fingerprint's numerator).
struct Observation {
  double work_units = 0.0;
  double rate_gunits = 0.0;
  Watts proc_power{0.0};
  Watts mem_power{0.0};
  GBps achieved_bw{0.0};
};

/// The split the controller wants applied to the next segment.
/// cpu_cap + mem_cap always equals the budget exactly.
struct SplitDecision {
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
  /// The previous observe() chose this split as an exploration probe.
  bool explored = false;
  /// The previous observe() saw the phase signature change.
  bool phase_change = false;
};

/// Incrementally fitted per-signature workload estimate — the online
/// counterpart of core/model_fit.hpp's FittedPhase, built from partial
/// observations instead of a pinned profiling run.
struct PhaseEstimate {
  double bytes_per_unit = 0.0;   ///< EMA of achieved_bw / rate
  double rate_gunits = 0.0;      ///< EMA of achieved rate (any arm)
  Watts proc_power{0.0};         ///< EMA of processor draw
  Watts mem_power{0.0};          ///< EMA of memory draw
  std::uint64_t observations = 0;
};

/// Counters over a controller's lifetime (also published as
/// pbc_ctrl_*_total in the configured registry).
struct ControllerStats {
  std::uint64_t observations = 0;
  std::uint64_t explorations = 0;  ///< decisions that probed a neighbor
  std::uint64_t moves = 0;         ///< decisions that changed the split
  std::uint64_t phase_changes = 0; ///< signature transitions observed
  std::size_t signatures = 0;      ///< distinct phase signatures seen
};

class OnlineController {
 public:
  /// Unchecked: an infeasible budget (below cpu_min + mem_min) degrades
  /// deterministically to a single arm pinned at cpu_min, mirroring the
  /// offline shifter's tolerated-clamp behaviour.
  OnlineController(const hw::CpuMachine& machine, Watts total_budget,
                   ControllerConfig cfg = {});

  /// Checked: validates every knob (step > 0, rates in range, EMA weight
  /// in (0, 1]) and that the budget clears the resolved floors, returning
  /// a descriptive Error instead of degrading.
  [[nodiscard]] static Result<OnlineController> make_checked(
      const hw::CpuMachine& machine, Watts total_budget,
      ControllerConfig cfg = {});

  /// The split to apply next. Stable between observe() calls.
  [[nodiscard]] SplitDecision decision() const noexcept;

  /// Feeds one telemetry sample back and advances the policy. Exactly one
  /// RNG draw per call, on every code path, so runs with the same seed
  /// and observation sequence are bit-identical.
  void observe(const Observation& o);

  /// Checked variant: rejects non-finite or negative telemetry with
  /// kInvalidArgument and leaves the controller state untouched.
  [[nodiscard]] Status observe_checked(const Observation& o);

  [[nodiscard]] Watts budget() const noexcept { return Watts{budget_}; }
  [[nodiscard]] Watts cpu_min() const noexcept { return Watts{cpu_min_}; }
  [[nodiscard]] Watts mem_min() const noexcept { return Watts{mem_min_}; }
  /// Number of candidate splits on the lattice (>= 1).
  [[nodiscard]] std::size_t arm_count() const noexcept { return arm_count_; }

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_;
  }

  /// The incremental model fits, one per signature seen, in signature
  /// order. Deterministic for a deterministic observation sequence.
  [[nodiscard]] std::vector<PhaseEstimate> estimates() const;

  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct ArmStat {
    std::uint64_t count = 0;
    double reward_ema = 0.0;
  };
  struct PhaseState {
    std::uint64_t visits = 0;
    int best_arm = -1;  ///< argmax reward_ema over arms with data
    std::vector<ArmStat> arms;
    PhaseEstimate est;
  };

  [[nodiscard]] double arm_cpu(int arm) const noexcept;
  [[nodiscard]] int signature_of(const Observation& o) const noexcept;
  void credit(PhaseState& ps, int arm, const Observation& o);
  [[nodiscard]] int choose_next(PhaseState& ps, bool phase_change, double u,
                                bool* explored) const;

  ControllerConfig cfg_;
  double budget_ = 0.0;
  double cpu_min_ = 0.0;
  double mem_min_ = 0.0;
  std::size_t arm_count_ = 1;
  int cur_arm_ = 0;
  int cur_sig_ = 0;
  bool have_sig_ = false;
  bool last_explored_ = false;
  bool last_phase_change_ = false;
  Xoshiro256 rng_;
  /// Ordered so estimates() iterates signatures deterministically.
  std::map<int, PhaseState> phases_;
  ControllerStats stats_;
  obs::Counter* observations_total_;
  obs::Counter* explorations_total_;
  obs::Counter* moves_total_;
  obs::Counter* phase_changes_total_;
};

}  // namespace pbc::ctrl
