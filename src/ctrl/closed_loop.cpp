#include "ctrl/closed_loop.hpp"

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>

namespace pbc::ctrl {

namespace {

ClosedLoopResult closed_loop(const sim::PhaseNodeSet& nodes,
                             const workload::PhaseTrace& trace,
                             Watts total_budget,
                             const ControllerConfig& cfg) {
  PBC_TRACE_SPAN(cfg.tracer, "ctrl.closed_loop");
  ClosedLoopResult out;
  OnlineController controller(nodes.machine(), total_budget, cfg);

  // The controller revisits the same few lattice splits constantly, so
  // memoize solves per (phase, exact cpu_cap bit pattern) — the same
  // sound key the offline fast climber uses: every visited split is
  // reached through identical FP operations.
  const std::size_t phase_count = nodes.phase_count();
  std::vector<std::unordered_map<std::uint64_t, sim::AllocationSample>>
      split_memo(phase_count);
  std::vector<sim::SolveHint> hints(phase_count);

  double total_work = 0.0;
  double weighted_cpu_cap = 0.0;
  double weighted_mem_cap = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index >= phase_count || seg.work_units <= 0.0) {
      continue;  // unchecked contract: skip malformed segments
    }
    const SplitDecision d = controller.decision();
    const double cpu_cap = d.cpu_cap.value();

    auto& memo = split_memo[seg.phase_index];
    const std::uint64_t key = std::bit_cast<std::uint64_t>(cpu_cap);
    sim::AllocationSample s;
    if (const auto it = memo.find(key); it != memo.end()) {
      s = it->second;
    } else {
      s = nodes.phase(seg.phase_index)
              .steady_state_hinted(d.cpu_cap, d.mem_cap,
                                   &hints[seg.phase_index]);
      memo.emplace(key, s);
    }

    out.caps.push_back(ClosedLoopSegment{seg.phase_index, d.cpu_cap,
                                         d.mem_cap, d.explored,
                                         d.phase_change});

    sim::SegmentResult r;
    r.phase_index = seg.phase_index;
    r.work_units = seg.work_units;
    r.rate_gunits = s.rate_gunits;
    r.duration = Seconds{
        s.rate_gunits > 0.0 ? seg.work_units / s.rate_gunits : 0.0};
    r.proc_power = s.proc_power;
    r.mem_power = s.mem_power;
    out.replay.segments.push_back(r);
    out.replay.total_time += r.duration;
    out.replay.proc_energy += r.proc_power * r.duration;
    out.replay.mem_energy += r.mem_power * r.duration;
    total_work += seg.work_units;
    weighted_cpu_cap += cpu_cap * r.duration.value();
    weighted_mem_cap += d.mem_cap.value() * r.duration.value();

    // Close the loop: this segment's telemetry decides the next split.
    Observation o;
    o.work_units = seg.work_units;
    o.rate_gunits = s.rate_gunits;
    o.proc_power = s.proc_power;
    o.mem_power = s.mem_power;
    o.achieved_bw = s.achieved_bw;
    controller.observe(o);
  }

  auto& agg = out.replay.aggregate;
  if (out.replay.total_time.value() > 0.0) {
    agg.proc_cap = Watts{weighted_cpu_cap / out.replay.total_time.value()};
    agg.mem_cap = Watts{weighted_mem_cap / out.replay.total_time.value()};
    agg.rate_gunits = total_work / out.replay.total_time.value();
    agg.perf = agg.rate_gunits * nodes.wl().metric_per_gunit;
    agg.proc_power = out.replay.proc_energy / out.replay.total_time;
    agg.mem_power = out.replay.mem_energy / out.replay.total_time;
  }
  agg.proc_cap_respected = true;  // cpu + mem == budget by construction
  agg.mem_cap_respected = true;
  out.stats = controller.stats();
  return out;
}

Status validate_closed_loop(const sim::PhaseNodeSet& nodes,
                            const workload::PhaseTrace& trace,
                            Watts total_budget,
                            const ControllerConfig& cfg) {
  // make_checked owns the knob and floor validation; probe it without
  // keeping the controller (construction is cheap).
  if (auto made = OnlineController::make_checked(nodes.machine(),
                                                 total_budget, cfg);
      !made.ok()) {
    return made.status();
  }
  return sim::check_trace(trace, nodes.phase_count());
}

}  // namespace

ClosedLoopResult run_closed_loop(const sim::PhaseNodeSet& nodes,
                                 const workload::PhaseTrace& trace,
                                 Watts total_budget,
                                 const ControllerConfig& cfg) {
  return closed_loop(nodes, trace, total_budget, cfg);
}

ClosedLoopResult run_closed_loop(const sim::CpuNodeSim& node,
                                 const workload::PhaseTrace& trace,
                                 Watts total_budget,
                                 const ControllerConfig& cfg) {
  const sim::PhaseNodeSet nodes(node.machine(), node.wl());
  return closed_loop(nodes, trace, total_budget, cfg);
}

Result<ClosedLoopResult> run_closed_loop_checked(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg) {
  if (Status s = validate_closed_loop(nodes, trace, total_budget, cfg);
      !s.ok()) {
    return s.error();
  }
  return closed_loop(nodes, trace, total_budget, cfg);
}

Result<ClosedLoopResult> run_closed_loop_checked(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ControllerConfig& cfg) {
  const sim::PhaseNodeSet nodes(node.machine(), node.wl());
  return run_closed_loop_checked(nodes, trace, total_budget, cfg);
}

}  // namespace pbc::ctrl
