#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

namespace pbc::obs {

namespace {

constexpr std::size_t kFlushBatch = 64;

[[nodiscard]] std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

struct Tracer::Central {
  explicit Central(std::size_t cap) : capacity(std::max<std::size_t>(1, cap)) {}

  std::size_t capacity;
  mutable std::mutex ring_mu;
  std::deque<Span> ring;
  std::atomic<std::uint64_t> recorded{0};

  mutable std::mutex bufs_mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;

  void push(std::vector<Span>&& batch) {
    std::lock_guard lock(ring_mu);
    for (Span& s : batch) ring.push_back(s);
    while (ring.size() > capacity) ring.pop_front();
  }
};

struct Tracer::ThreadBuf {
  // weak, not shared: Central holds shared_ptr<ThreadBuf> in `bufs`, so a
  // shared back-edge would form a cycle and leak every destroyed Tracer.
  std::weak_ptr<Central> central;
  mutable std::mutex mu;
  std::vector<Span> pending;
  std::atomic<bool> retired{false};

  void flush_locked_batch() {
    // Called with mu held just long enough to steal the batch; the ring
    // lock is taken outside the buffer lock (fixed order: buf -> ring).
    std::vector<Span> batch;
    {
      std::lock_guard lock(mu);
      if (pending.empty()) return;
      batch.swap(pending);
    }
    if (const auto c = central.lock()) c->push(std::move(batch));
  }
};

namespace {

/// Per-thread buffer table, keyed by process-unique tracer id so a
/// recycled Tracer address can never alias a dead entry. The destructor
/// (thread exit) flushes whatever the thread still holds.
struct TlBufs {
  std::unordered_map<std::uint64_t, std::shared_ptr<Tracer::ThreadBuf>> map;

  ~TlBufs() {
    for (auto& [id, buf] : map) buf->flush_locked_batch();
  }

  void prune_retired() {
    for (auto it = map.begin(); it != map.end();) {
      if (it->second->retired.load(std::memory_order_relaxed)) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  }
};

[[nodiscard]] TlBufs& tl_bufs() {
  thread_local TlBufs bufs;
  return bufs;
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      central_(std::make_shared<Central>(capacity)) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer::~Tracer() {
  std::lock_guard lock(central_->bufs_mu);
  for (const auto& buf : central_->bufs) {
    buf->retired.store(true, std::memory_order_relaxed);
  }
}

std::uint64_t Tracer::now_ns() const noexcept {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

Tracer::ThreadBuf& Tracer::local_buf() {
  TlBufs& tl = tl_bufs();
  const auto it = tl.map.find(id_);
  if (it != tl.map.end()) return *it->second;
  if (tl.map.size() >= 16) tl.prune_retired();
  auto buf = std::make_shared<ThreadBuf>();
  buf->central = central_;
  {
    std::lock_guard lock(central_->bufs_mu);
    central_->bufs.push_back(buf);
  }
  ThreadBuf& ref = *buf;
  tl.map.emplace(id_, std::move(buf));
  return ref;
}

void Tracer::record(const Span& span) {
  ThreadBuf& buf = local_buf();
  central_->recorded.fetch_add(1, std::memory_order_relaxed);
  bool flush = false;
  {
    std::lock_guard lock(buf.mu);
    buf.pending.push_back(span);
    buf.pending.back().thread = thread_ordinal();
    flush = buf.pending.size() >= kFlushBatch;
  }
  if (flush) buf.flush_locked_batch();
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<Span> out;
  {
    std::lock_guard lock(central_->ring_mu);
    out.assign(central_->ring.begin(), central_->ring.end());
  }
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard lock(central_->bufs_mu);
    bufs = central_->bufs;
  }
  for (const auto& buf : bufs) {
    std::lock_guard lock(buf->mu);
    out.insert(out.end(), buf->pending.begin(), buf->pending.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t Tracer::recorded() const noexcept {
  return central_->recorded.load(std::memory_order_relaxed);
}

// --- SlowQueryLog ---

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void SlowQueryLog::record(std::uint64_t descriptor_hash, const char* kind,
                          double total_us,
                          std::initializer_list<SlowQuery::Stage> stages) {
  total_.fetch_add(1, std::memory_order_relaxed);
  SlowQuery q;
  q.descriptor_hash = descriptor_hash;
  q.kind = kind;
  q.total_us = total_us;
  q.stages.assign(stages.begin(), stages.end());
  std::lock_guard lock(mu_);
  ring_.push_back(std::move(q));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQuery> SlowQueryLog::snapshot() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

}  // namespace pbc::obs
