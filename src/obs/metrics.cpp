#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pbc::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

[[nodiscard]] bool labels_equal(const Labels& a, const Labels& b) noexcept {
  return a == b;
}

[[nodiscard]] bool metric_less(const MetricsSnapshot::Metric& a,
                               const MetricsSnapshot::Metric& b) noexcept {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

// --- HistogramSnapshot ---

std::uint64_t HistogramSnapshot::cumulative(std::size_t i) const noexcept {
  std::uint64_t n = 0;
  for (std::size_t k = 0; k <= i && k < buckets.size(); ++k) n += buckets[k];
  return n;
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank matches pbc::percentile over the sorted sample list:
  // rank = p/100 * (n-1), interpolated between order statistics — here
  // approximated by interpolating inside the bucket holding the rank.
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double last_rank = static_cast<double>(before + in_bucket - 1);
    if (rank <= last_rank) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (rank - static_cast<double>(before)) /
          static_cast<double>(in_bucket);
      const double v = lo + (hi - lo) * frac;
      // Never report beyond the exactly tracked maximum.
      return max > 0.0 ? std::min(v, max) : v;
    }
    before += in_bucket;
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (bounds.empty()) {
    *this = other;
    return;
  }
  if (other.count == 0) return;
  assert(bounds == other.bounds && "histogram merge requires equal bounds");
  for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

// --- Histogram ---

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(validate_bucket_bounds(bounds_).ok());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  double s = sum_.load(kRelaxed);
  while (!sum_.compare_exchange_weak(s, s + v, kRelaxed, kRelaxed)) {
  }
  double m = max_.load(kRelaxed);
  while (v > m && !max_.compare_exchange_weak(m, v, kRelaxed, kRelaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(kRelaxed);
  }
  s.count = count_.load(kRelaxed);
  s.sum = sum_.load(kRelaxed);
  s.max = max_.load(kRelaxed);
  return s;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

Status validate_bucket_bounds(std::span<const double> bounds) {
  if (bounds.empty()) {
    return invalid_argument("histogram needs at least one bucket bound");
  }
  double prev = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double b = bounds[i];
    if (!std::isfinite(b) || b <= 0.0) {
      return invalid_argument("histogram bound " + std::to_string(i) +
                              " must be finite and positive");
    }
    if (i > 0 && b <= prev) {
      return invalid_argument("histogram bounds must be strictly ascending "
                              "(bound " + std::to_string(i) + ")");
    }
    prev = b;
  }
  return Status{};
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds =
      Histogram::exponential_bounds(0.5, 2.0, 22);  // 0.5 us .. ~1 s
  return bounds;
}

// --- MetricsSnapshot ---

const MetricsSnapshot::Metric* MetricsSnapshot::find(
    std::string_view name, const Labels& labels) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name && labels_equal(m.labels, labels)) return &m;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       const Labels& labels) const noexcept {
  const Metric* m = find(name, labels);
  return m != nullptr && m->type == MetricType::kCounter ? m->counter_value
                                                         : 0;
}

double MetricsSnapshot::gauge(std::string_view name,
                              const Labels& labels) const noexcept {
  const Metric* m = find(name, labels);
  return m != nullptr && m->type == MetricType::kGauge ? m->gauge_value : 0.0;
}

// --- MetricsRegistry ---

MetricsRegistry::Entry* MetricsRegistry::find_locked(std::string_view name,
                                                     const Labels& labels) {
  for (const auto& e : entries_) {
    if (e->name == name && labels_equal(e->labels, labels)) return e.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  std::lock_guard lock(mu_);
  if (Entry* e = find_locked(name, labels)) {
    assert(e->type == MetricType::kCounter);
    return *e->c;
  }
  auto e = std::make_unique<Entry>();
  e->type = MetricType::kCounter;
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->c = std::make_unique<Counter>();
  Counter& ref = *e->c;
  entries_.push_back(std::move(e));
  return ref;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  std::lock_guard lock(mu_);
  if (Entry* e = find_locked(name, labels)) {
    assert(e->type == MetricType::kGauge);
    return *e->g;
  }
  auto e = std::make_unique<Entry>();
  e->type = MetricType::kGauge;
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->g = std::make_unique<Gauge>();
  Gauge& ref = *e->g;
  entries_.push_back(std::move(e));
  return ref;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> bounds,
                                      Labels labels) {
  std::lock_guard lock(mu_);
  if (Entry* e = find_locked(name, labels)) {
    assert(e->type == MetricType::kHistogram);
    return *e->h;
  }
  assert(validate_bucket_bounds(bounds).ok());
  auto e = std::make_unique<Entry>();
  e->type = MetricType::kHistogram;
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->h = std::make_unique<Histogram>(std::move(bounds));
  Histogram& ref = *e->h;
  entries_.push_back(std::move(e));
  return ref;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  {
    std::lock_guard lock(mu_);
    s.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricsSnapshot::Metric m;
      m.name = e->name;
      m.help = e->help;
      m.type = e->type;
      m.labels = e->labels;
      switch (e->type) {
        case MetricType::kCounter:
          m.counter_value = e->c->value();
          break;
        case MetricType::kGauge:
          m.gauge_value = e->g->value();
          break;
        case MetricType::kHistogram:
          m.hist = e->h->snapshot();
          break;
      }
      s.metrics.push_back(std::move(m));
    }
  }
  std::sort(s.metrics.begin(), s.metrics.end(), metric_less);
  return s;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace pbc::obs
