// Lightweight span tracing and the slow-query log.
//
// A span is one timed scope on the engine's miss path (profile compute,
// table build, single-flight wait, pool fan-out, ...). Scopes are opened
// with the PBC_TRACE_SPAN macro, which compiles to nothing when the build
// sets PBC_TRACING_ENABLED=0 (CMake option PBC_TRACING=OFF) and to an
// RAII SpanScope otherwise. Completed spans land in a per-thread buffer
// (one uncontended mutex each — the only contention is a snapshot reader)
// and are flushed in batches to a bounded central ring, so a hot thread
// never serializes against other tracing threads.
//
// The slow-query log is the operator-facing tail complement: any query
// whose end-to-end latency crosses a configurable threshold records its
// descriptor hash and per-stage timings into a bounded ring, so "what was
// slow, and in which stage" survives until scraped without keeping every
// span of every query.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Compile-time switch: CMake defines PBC_TRACING_ENABLED=0 when the
// PBC_TRACING option is OFF; default is on. The Tracer type always
// exists (so code holding one compiles either way) — only the macro's
// expansion changes, keeping traced TUs ODR-consistent.
#ifndef PBC_TRACING_ENABLED
#define PBC_TRACING_ENABLED 1
#endif

namespace pbc::obs {

/// One completed scope. `name` must be a string literal (spans store the
/// pointer, never a copy). Times are nanoseconds on the steady clock:
/// start relative to the tracer's construction, duration absolute.
struct Span {
  const char* name = "";
  std::uint64_t descriptor_hash = 0;  ///< 0 when the scope has no subject
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< small per-process thread ordinal
};

/// Bounded multi-producer span sink. Thread-safe; record() is wait-free
/// against other recording threads (each thread owns its buffer) and only
/// briefly locks the shared ring every kFlushBatch spans.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime switch consulted by SpanScope; flipping it off makes every
  /// scope a no-op without recompiling.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const Span& span);

  /// Every retained span — the central ring plus all unflushed per-thread
  /// buffers — oldest first. Bounded by `capacity` plus one flush batch
  /// per recording thread.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Total spans ever recorded (including ones the ring has dropped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  /// Nanoseconds since the tracer's epoch (spans' start_ns timebase).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Implementation types, public only so the .cpp's thread-local buffer
  /// table can name them; opaque to callers.
  struct ThreadBuf;
  struct Central;

 private:
  [[nodiscard]] ThreadBuf& local_buf();

  std::atomic<bool> enabled_{true};
  std::uint64_t id_ = 0;  ///< process-unique, guards thread-local reuse
  std::chrono::steady_clock::time_point epoch_;
  std::shared_ptr<Central> central_;
};

#if PBC_TRACING_ENABLED

/// RAII scope recorded into a Tracer on destruction. Null tracer = no-op.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const char* name,
            std::uint64_t descriptor_hash = 0) noexcept
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        hash_(descriptor_hash) {
    if (tracer_ != nullptr) start_ns_ = tracer_->now_ns();
  }
  ~SpanScope() {
    if (tracer_ == nullptr) return;
    Span s;
    s.name = name_;
    s.descriptor_hash = hash_;
    s.start_ns = start_ns_;
    s.duration_ns = tracer_->now_ns() - start_ns_;
    tracer_->record(s);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t hash_;
  std::uint64_t start_ns_ = 0;
};

#define PBC_OBS_CONCAT_INNER(a, b) a##b
#define PBC_OBS_CONCAT(a, b) PBC_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
/// Usage: PBC_TRACE_SPAN(&tracer_, "svc.profile_compute", key.hi);
#define PBC_TRACE_SPAN(tracer, ...)                       \
  ::pbc::obs::SpanScope PBC_OBS_CONCAT(pbc_trace_span_,   \
                                       __LINE__)((tracer), __VA_ARGS__)

#else  // !PBC_TRACING_ENABLED

#define PBC_TRACE_SPAN(tracer, ...) ((void)(tracer))

#endif

/// One over-threshold query: which descriptor, how long, where the time
/// went. Stage names are string literals (pointers are stored).
struct SlowQuery {
  std::uint64_t descriptor_hash = 0;
  const char* kind = "";
  double total_us = 0.0;
  struct Stage {
    const char* name = "";
    double us = 0.0;
  };
  std::vector<Stage> stages;
};

/// Bounded ring of the most recent slow queries.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity = 128);

  void record(std::uint64_t descriptor_hash, const char* kind, double total_us,
              std::initializer_list<SlowQuery::Stage> stages);

  [[nodiscard]] std::vector<SlowQuery> snapshot() const;
  /// Total slow queries ever recorded (including dropped entries).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::deque<SlowQuery> ring_;
  std::size_t capacity_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace pbc::obs
