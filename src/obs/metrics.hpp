// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The hot path is a relaxed atomic add (counters, histogram buckets) or a
// relaxed atomic store (gauges) — the same discipline the engine's old
// hand-rolled counter block used, generalized so every layer (svc, sim,
// core, benches) can publish through one vocabulary. Reads are snapshots:
// eventually consistent across metrics, exact per metric. Registration is
// get-or-create under a mutex and returns a reference that stays stable
// for the registry's lifetime, so instrumented code resolves its metrics
// once (often via a function-local static) and pays zero lookups per
// event afterwards.
//
// Exposition lives in obs/exposition.hpp (Prometheus text + JSON);
// tracing in obs/trace.hpp. docs/observability.md catalogs every metric
// this repository registers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace pbc::obs {

/// Metric labels, e.g. {{"kind", "query_cpu"}}. Order is preserved and
/// significant: (name, labels) identifies a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// One coherent read of a histogram. `buckets[i]` counts observations in
/// (bounds[i-1], bounds[i]]; the last slot (buckets.size() == bounds.size()
/// + 1) is the +Inf overflow bucket. Percentiles follow the recorded-
/// samples-only contract of svc::LatencyRecorder: they are computed over
/// the `count` observations actually made — an empty histogram reports 0,
/// never a value synthesized from empty buckets.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< ascending upper bounds
  std::vector<std::uint64_t> buckets; ///< per-bucket counts (not cumulative)
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;  ///< largest observation (exact), 0 when empty

  /// Cumulative count through bucket `i` (Prometheus `le` semantics).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const noexcept;

  /// Estimated percentile (p in [0, 100]) by linear interpolation inside
  /// the bucket holding the target rank, clamped to [0, max]. Computed
  /// over recorded samples only; 0 when `count` is 0.
  [[nodiscard]] double percentile(double p) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }

  /// Accumulates another snapshot taken with identical bounds.
  void merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram. Observation is two relaxed adds plus a CAS max;
/// bucket search is a branchless-ish linear scan (bucket counts are small
/// — latency histograms here use ~2 dozen bounds).
class Histogram {
 public:
  /// `upper_bounds` must satisfy validate_bucket_bounds().
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::span<const double> bounds() const noexcept {
    return bounds_;
  }

  /// `count` bounds: start, start*factor, start*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential_bounds(double start,
                                                              double factor,
                                                              std::size_t count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Unified-Status validation for histogram bucket configuration: bounds
/// must be non-empty, finite, positive, and strictly ascending. The
/// registry and Histogram constructor enforce this; config layers (e.g.
/// engine options) can call it up front for a descriptive error.
[[nodiscard]] Status validate_bucket_bounds(std::span<const double> bounds);

/// The default latency bucket ladder used across the repository:
/// 0.5 us .. ~1 s in powers of two (22 bounds + overflow).
[[nodiscard]] const std::vector<double>& default_latency_bounds_us();

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// One coherent-enough read of every registered metric, sorted by
/// (name, labels) so exposition output is stable across runs.
struct MetricsSnapshot {
  struct Metric {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    Labels labels;
    std::uint64_t counter_value = 0;  ///< kCounter
    double gauge_value = 0.0;         ///< kGauge
    HistogramSnapshot hist;           ///< kHistogram
  };
  std::vector<Metric> metrics;

  /// First metric matching (name, labels), or nullptr.
  [[nodiscard]] const Metric* find(std::string_view name,
                                   const Labels& labels = {}) const noexcept;
  /// Counter value of (name, labels), or 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name,
                                      const Labels& labels = {}) const noexcept;
  /// Gauge value of (name, labels), or 0 when absent.
  [[nodiscard]] double gauge(std::string_view name,
                             const Labels& labels = {}) const noexcept;
};

/// Named-metric registry. register-once / read-many: counter(), gauge()
/// and histogram() get-or-create under a mutex and return a stable
/// reference; snapshot() walks every metric. Re-registering an existing
/// (name, labels) with a different type is a programming error (asserted;
/// the existing metric wins in release builds).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, std::string_view help,
                                 Labels labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help,
                             Labels labels = {});
  /// `bounds` must satisfy validate_bucket_bounds(); asserted here and
  /// rejected (existing-metric fallback / first registration wins) when
  /// violated. On a get of an existing histogram the bounds are ignored.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::string_view help,
                                     std::vector<double> bounds,
                                     Labels labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  [[nodiscard]] Entry* find_locked(std::string_view name,
                                   const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Process-wide registry used by layers without an obvious owner (sim
/// table builds, cluster scheduler admission counters, benches).
/// svc::QueryEngine defaults to a private registry instead, so per-engine
/// stats stay isolated; see EngineOptions::registry.
[[nodiscard]] MetricsRegistry& global_registry();

}  // namespace pbc::obs
