#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace pbc::obs {

namespace {

/// Escapes a label value (backslash, double quote, newline) per the
/// Prometheus text-format spec.
[[nodiscard]] std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Escapes a HELP string (backslash and newline only; quotes are legal).
[[nodiscard]] std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Shortest faithful decimal: integers render without a fraction, other
/// values with enough digits to be useful in dashboards.
[[nodiscard]] std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// `{k1="v1",k2="v2"}`, or "" when there are no labels. `extra` appends
/// one more pair (used for histogram `le`).
[[nodiscard]] std::string label_block(const Labels& labels,
                                      const std::string& extra_key = "",
                                      const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape_label(extra_value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  const std::string* prev_family = nullptr;
  for (const auto& m : snapshot.metrics) {
    if (prev_family == nullptr || *prev_family != m.name) {
      out << "# HELP " << m.name << ' ' << escape_help(m.help) << '\n';
      out << "# TYPE " << m.name << ' ' << to_string(m.type) << '\n';
      prev_family = &m.name;
    }
    switch (m.type) {
      case MetricType::kCounter:
        out << m.name << label_block(m.labels) << ' ' << m.counter_value
            << '\n';
        break;
      case MetricType::kGauge:
        out << m.name << label_block(m.labels) << ' '
            << format_double(m.gauge_value) << '\n';
        break;
      case MetricType::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.hist.bounds.size(); ++i) {
          cum += m.hist.buckets[i];
          out << m.name << "_bucket"
              << label_block(m.labels, "le", format_double(m.hist.bounds[i]))
              << ' ' << cum << '\n';
        }
        out << m.name << "_bucket" << label_block(m.labels, "le", "+Inf")
            << ' ' << m.hist.count << '\n';
        out << m.name << "_sum" << label_block(m.labels) << ' '
            << format_double(m.hist.sum) << '\n';
        out << m.name << "_count" << label_block(m.labels) << ' '
            << m.hist.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

namespace {

[[nodiscard]] std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string json_key(const MetricsSnapshot::Metric& m) {
  return json_escape(m.name + label_block(m.labels));
}

}  // namespace

std::string render_json(const MetricsSnapshot& snapshot) {
  std::ostringstream counters, gauges, hists;
  bool c_first = true, g_first = true, h_first = true;
  for (const auto& m : snapshot.metrics) {
    switch (m.type) {
      case MetricType::kCounter:
        counters << (c_first ? "" : ",") << "\n    \"" << json_key(m)
                 << "\": " << m.counter_value;
        c_first = false;
        break;
      case MetricType::kGauge:
        gauges << (g_first ? "" : ",") << "\n    \"" << json_key(m)
               << "\": " << format_double(m.gauge_value);
        g_first = false;
        break;
      case MetricType::kHistogram: {
        hists << (h_first ? "" : ",") << "\n    \"" << json_key(m)
              << "\": {\"count\": " << m.hist.count
              << ", \"sum\": " << format_double(m.hist.sum)
              << ", \"max\": " << format_double(m.hist.max)
              << ", \"buckets\": [";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.hist.bounds.size(); ++i) {
          cum += m.hist.buckets[i];
          hists << (i == 0 ? "" : ", ") << "{\"le\": "
                << format_double(m.hist.bounds[i]) << ", \"count\": " << cum
                << "}";
        }
        hists << "]}";
        h_first = false;
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\n  \"counters\": {" << counters.str()
      << (c_first ? "" : "\n  ") << "},\n  \"gauges\": {" << gauges.str()
      << (g_first ? "" : "\n  ") << "},\n  \"histograms\": {" << hists.str()
      << (h_first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

}  // namespace pbc::obs
