// Text exposition of a MetricsSnapshot: Prometheus text format 0.0.4 and
// a JSON snapshot for the bench harnesses' machine-readable records.
//
// Output is deterministic for a given snapshot: metrics are emitted in
// (name, labels) order (the snapshot is pre-sorted), HELP/TYPE headers
// once per metric family, label values escaped per the Prometheus spec
// (backslash, double quote, newline). Histograms expose cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`, exactly as a scraper
// expects.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace pbc::obs {

/// Prometheus text format (content type text/plain; version=0.0.4).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// keyed by `name{label="v",...}` strings; histogram values carry count,
/// sum, max, and the cumulative bucket array.
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);

}  // namespace pbc::obs
