#include "core/cluster_profile.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "workload/serialize.hpp"

namespace pbc::core::detail {

ClusterProfiles build_cluster_profiles(const hw::CpuMachine& node_type,
                                       const hw::GpuMachine* gpu_type,
                                       const std::vector<SimJob>& jobs,
                                       const ClusterSimConfig& config,
                                       const ClusterNodeProvider* provider) {
  ClusterProfiles out;
  out.meta.resize(jobs.size());
  std::unordered_map<std::string, std::size_t> seen[2];
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bool gpu = jobs[i].wl.domain == workload::Domain::kGpu;
    out.meta[i].gpu = gpu;
    if (gpu && gpu_type == nullptr) continue;  // never starts; no slot
    auto [it, inserted] = seen[gpu ? 1 : 0].try_emplace(
        workload::to_text(jobs[i].wl), out.slots.size());
    if (inserted) {
      ClusterDistinctSlot slot;
      slot.gpu = gpu;
      slot.first_job = i;
      out.slots.push_back(std::move(slot));
    }
    out.meta[i].slot = it->second;
  }

  const auto build = [&](std::size_t s) {
    ClusterDistinctSlot& slot = out.slots[s];
    const workload::Workload& wl = jobs[slot.first_job].wl;
    if (slot.gpu) {
      slot.gpu_node = provider != nullptr && provider->gpu
                          ? provider->gpu(*gpu_type, wl)
                          : sim::make_prepared_gpu_node(*gpu_type, wl);
      slot.gpu_profile = profile_gpu_params(*slot.gpu_node);
    } else {
      slot.cpu_node = provider != nullptr && provider->cpu
                          ? provider->cpu(node_type, wl)
                          : sim::make_prepared_cpu_node(node_type, wl);
      slot.cpu_profile = profile_critical_powers(*slot.cpu_node);
    }
  };
  ThreadPool& pool = config.pool != nullptr ? *config.pool : global_pool();
  // Serial fallback when already on a pool worker (an svc engine solving
  // a cluster query from its own pool): a nested parallel_for_index
  // against the same pool would deadlock.
  if (out.slots.size() < 2 || pool.is_worker_thread()) {
    for (std::size_t s = 0; s < out.slots.size(); ++s) build(s);
  } else {
    pool.parallel_for_index(out.slots.size(), build);
  }

  // Start thresholds: free_power >= threshold ⟺ the grant check in
  // try_start_job passes (grant = min(demand, free)), so the queue index
  // can skip jobs that would deterministically be refused.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ClusterJobMeta& m = out.meta[i];
    if (m.slot == kClusterNoSlot) continue;  // threshold stays +inf
    if (m.gpu) {
      const auto& p = out.slots[m.slot].gpu_profile;
      const double demand =
          std::min(p.tot_max.value(), gpu_type->gpu.board_max_cap.value());
      const double floor = gpu_type->gpu.board_min_cap.value();
      m.threshold = demand >= floor ? floor : kClusterInf;
    } else {
      const auto& p = out.slots[m.slot].cpu_profile;
      const double demand = p.max_demand().value();
      const double floor = config.admission_control
                               ? p.productive_threshold().value()
                               : config.min_grant.value();
      m.threshold = demand >= floor ? floor : kClusterInf;
    }
  }
  return out;
}

}  // namespace pbc::core::detail
