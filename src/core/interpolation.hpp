// Interpolation-based optimal-allocation search — the approach of Sarood
// et al. [30], reproduced as a baseline.
//
// Instead of the exhaustive sweep (oracle) or COORD's seven-point profile,
// this strategy samples a moderate subset of allocation points, fits a
// piecewise-linear performance model over the split axis, and picks the
// model's optimum. It trades profiling cost against accuracy: the paper's
// §7 positions COORD against exactly this class of "extensive profiling"
// methods.
#pragma once

#include <span>
#include <vector>

#include "sim/cpu_node.hpp"
#include "util/interp.hpp"

namespace pbc::core {

struct InterpolationResult {
  /// The split chosen by the interpolated model.
  Watts best_proc_cap{0.0};
  Watts best_mem_cap{0.0};
  /// Performance the model predicted at that split.
  double predicted_perf = 0.0;
  /// Performance actually achieved when running there.
  double achieved_perf = 0.0;
  /// Number of real profiling runs spent.
  std::size_t samples_used = 0;
};

/// Samples every `stride` watts of memory cap in
/// [mem_lo, budget − proc_lo], interpolates, and evaluates the model
/// optimum (searched on a 1 W grid) with a real run.
[[nodiscard]] InterpolationResult interpolated_best(
    const sim::CpuNodeSim& node, Watts budget, Watts stride = Watts{16.0},
    Watts mem_lo = Watts{48.0}, Watts proc_lo = Watts{40.0});

/// Batched multi-budget variant: every budget's knot grid is solved in
/// one batched pass, and the model optima are confirmed in a second, so
/// the profiling runs vectorize across budgets instead of issuing one
/// scalar solve each. out[i] is bit-identical to
/// interpolated_best(node, budgets[i], stride, mem_lo, proc_lo) — same
/// knot recurrence, same fit, same confirmation.
[[nodiscard]] std::vector<InterpolationResult> interpolated_best_batch(
    const sim::CpuNodeSim& node, std::span<const Watts> budgets,
    Watts stride = Watts{16.0}, Watts mem_lo = Watts{48.0},
    Watts proc_lo = Watts{40.0});

}  // namespace pbc::core
