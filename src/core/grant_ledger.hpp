// Power-grant ledger: tracks the free share of a budget as
// budget − Σ(held grants) instead of a running add/subtract balance.
//
// A running accumulator drifts: every start/finish pair contributes one
// rounding error, and over tens of thousands of jobs the "free" figure
// wanders away from what the held grants actually imply (occasionally
// below zero, admitting or refusing jobs the exact balance would not).
// Recomputing from the held slots on every release bounds the error by
// one summation regardless of trace length.
//
// PR 3 introduced the ledger with a full rescan of every slot ever
// allocated on each release — O(peak concurrent grants) even when most
// slots are idle. This version walks only the *active* slots, in slot
// index order, which is bit-identical to the full rescan: released slots
// hold exactly 0.0, partial sums of non-negative grants are never -0.0,
// and IEEE-754 guarantees x + (+0.0) == x for every such partial sum, so
// skipping the zeros cannot change a single bit of the result. The old
// rescan is retained as release_full_rescan() for the equivalence test
// and the cluster_throughput ledger micro-bench.
//
// Shared by the flat cluster engines (one ledger for the global budget)
// and the event-driven hierarchical engine (one ledger per rack, whose
// budget moves under redistribution and power emergencies — see
// set_budget and docs/cluster.md).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <set>
#include <vector>

namespace pbc::core {

class GrantLedger {
 public:
  explicit GrantLedger(double budget) : budget_(budget), free_(budget) {}

  [[nodiscard]] double budget() const noexcept { return budget_; }
  [[nodiscard]] double free_power() const noexcept { return free_; }
  [[nodiscard]] std::size_t active_grants() const noexcept {
    return active_.size();
  }

  /// Exact sum of the held grants, in slot index order (the same order
  /// release() recomputes with).
  [[nodiscard]] double held_power() const {
    double in_use = 0.0;
    for (const std::size_t s : active_) in_use += held_[s];
    return in_use;
  }

  /// Records a grant and returns the slot to release it with. The caller
  /// guarantees watts <= free_power(), so the subtraction cannot go
  /// negative.
  [[nodiscard]] std::size_t hold(double watts) {
    std::size_t slot;
    if (!spare_slots_.empty()) {
      slot = spare_slots_.back();
      spare_slots_.pop_back();
      held_[slot] = watts;
    } else {
      slot = held_.size();
      held_.push_back(watts);
    }
    active_.insert(slot);
    free_ -= watts;
    return slot;
  }

  /// Incremental release: zero the slot, then recompute free power over
  /// the remaining active grants only — O(active grants). Returns the
  /// recomputed held power so hierarchical callers can refresh their
  /// per-vertex aggregates without a second pass.
  double release(std::size_t slot) {
    retire(slot);
    const double in_use = held_power();
    settle(in_use);
    return in_use;
  }

  /// The pre-PR-8 release: rescans every slot ever allocated, including
  /// the released ones holding 0.0. Bit-identical to release() (see the
  /// header comment); kept for the equivalence test and the ledger
  /// micro-bench in bench/cluster_throughput.
  double release_full_rescan(std::size_t slot) {
    retire(slot);
    double in_use = 0.0;
    for (const double h : held_) in_use += h;
    settle(in_use);
    return in_use;
  }

  /// Re-caps the ledger (hierarchical redistribution moves budget between
  /// racks; a power emergency drops it). Free power is recomputed from
  /// the active grants and clamps at zero — a new budget below the held
  /// power is legal and simply admits nothing until the engine sheds
  /// (the held grants stay valid; held_power() still reports them).
  void set_budget(double budget) {
    budget_ = budget;
    free_ = budget_ - held_power();
    if (free_ < 0.0) free_ = 0.0;
  }

 private:
  void retire(std::size_t slot) {
    held_[slot] = 0.0;
    active_.erase(slot);
    spare_slots_.push_back(slot);
  }

  void settle(double in_use) {
    free_ = budget_ - in_use;
    // One summation's worth of rounding at most; anything larger is a
    // bookkeeping bug, not float drift. (An emergency re-cap below the
    // held power goes through set_budget, which clamps without the
    // assert — by the time grants release, the engine has shed back
    // under the cap.)
    assert(free_ >= -1e-7 * std::max(1.0, budget_));
    if (free_ < 0.0) free_ = 0.0;
  }

  double budget_;
  double free_;
  std::vector<double> held_;            ///< active grants, 0 when released
  std::vector<std::size_t> spare_slots_;
  std::set<std::size_t> active_;        ///< live slots, ascending
};

}  // namespace pbc::core
