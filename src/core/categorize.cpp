#include "core/categorize.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pbc::core {

namespace {

/// Relative slope of perf with respect to sample index, normalized by the
/// sweep's best performance (so thresholds are scale-free).
double local_rel_slope(const sim::BudgetSweep& sweep, std::size_t i) {
  const auto& s = sweep.samples;
  if (s.size() < 2) return 0.0;
  double best = 0.0;
  for (const auto& x : s) best = std::max(best, x.perf);
  if (best <= 0.0) return 0.0;
  const std::size_t lo = i > 0 ? i - 1 : i;
  const std::size_t hi = i + 1 < s.size() ? i + 1 : i;
  const double dx = static_cast<double>(hi - lo);
  return dx > 0.0 ? (s[hi].perf - s[lo].perf) / dx / best : 0.0;
}

}  // namespace

Category categorize_cpu(const sim::AllocationSample& s,
                        const hw::CpuMachine& machine) noexcept {
  // Floor violations first: these caps are not respected by hardware.
  if (s.proc_cap.value() < machine.cpu.floor.value() ||
      s.proc_region == sim::ProcRegion::kSleepFloor) {
    return Category::kVI;
  }
  if (s.mem_cap.value() < machine.dram.floor.value() ||
      s.mem_region == sim::MemRegion::kFloor) {
    return Category::kV;
  }
  // Duty-cycle throttling = seriously constrained CPU.
  if (s.proc_region == sim::ProcRegion::kTState) return Category::kIV;

  const bool proc_top =
      s.pstate_index + 1 == machine.cpu.pstates.size() && s.duty >= 1.0;
  const bool mem_unthrottled = s.mem_region == sim::MemRegion::kUnthrottled;

  if (proc_top && mem_unthrottled) return Category::kI;
  if (!proc_top && mem_unthrottled) return Category::kII;
  if (proc_top && !mem_unthrottled) return Category::kIII;

  // Both constrained (only at small budgets where spans overlap): attribute
  // the sample to the more deeply constrained component.
  const double depth_cpu =
      1.0 - static_cast<double>(s.pstate_index) /
                static_cast<double>(machine.cpu.pstates.size() - 1);
  const double span = machine.dram.peak_bw.value() - machine.dram.min_bw.value();
  const double depth_mem =
      span > 0.0
          ? (machine.dram.peak_bw.value() - s.avail_bw.value()) / span
          : 0.0;
  return depth_cpu >= depth_mem ? Category::kII : Category::kIII;
}

Category categorize_cpu_blackbox(const sim::BudgetSweep& sweep,
                                 std::size_t index,
                                 const hw::CpuMachine& machine) {
  const auto& s = sweep.samples[index];
  constexpr double kTrackTolW = 4.0;   // "actual ≈ cap"
  constexpr double kFloorTolW = 1.5;

  // Power pinned at a hardware floor while the cap sits below it.
  if (s.proc_power.value() <= machine.cpu.floor.value() + kFloorTolW &&
      s.proc_cap.value() <= s.proc_power.value() + kTrackTolW) {
    return Category::kVI;
  }
  if (s.mem_power.value() <= machine.dram.floor.value() + kFloorTolW &&
      s.mem_cap.value() <= s.mem_power.value() + kTrackTolW) {
    return Category::kV;
  }

  const bool proc_tracks =
      s.proc_cap.value() - s.proc_power.value() < kTrackTolW;
  const bool mem_tracks = s.mem_cap.value() - s.mem_power.value() < kTrackTolW;

  if (!proc_tracks && !mem_tracks) return Category::kI;
  if (mem_tracks && !proc_tracks) return Category::kIII;

  // CPU-constrained side: distinguish the gentle DVFS region (II) from the
  // duty-cycling cliff (IV) by slope steepness relative to the sweep median.
  std::vector<double> slopes;
  slopes.reserve(sweep.samples.size());
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    slopes.push_back(std::fabs(local_rel_slope(sweep, i)));
  }
  std::nth_element(slopes.begin(), slopes.begin() + slopes.size() / 2,
                   slopes.end());
  const double median_slope = slopes[slopes.size() / 2];
  const double here = std::fabs(local_rel_slope(sweep, index));
  return here > 3.0 * std::max(median_slope, 1e-4) ? Category::kIV
                                                   : Category::kII;
}

Category categorize_gpu(const sim::BudgetSweep& sweep,
                        std::size_t index) noexcept {
  // Per-index relative slope; ±1% per clock step counts as flat.
  constexpr double kFlatTol = 0.01;
  const double g = local_rel_slope(sweep, index);
  if (std::fabs(g) <= kFlatTol) return Category::kI;
  return g > 0.0 ? Category::kIII : Category::kII;
}

namespace {

template <class Classifier>
std::vector<CategorySpan> build_spans(const sim::BudgetSweep& sweep,
                                      Classifier&& classify) {
  std::vector<CategorySpan> spans;
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const Category c = classify(i);
    if (!spans.empty() && spans.back().category == c) {
      spans.back().last = i;
      spans.back().mem_hi = sweep.samples[i].mem_cap;
    } else {
      spans.push_back(CategorySpan{c, i, i, sweep.samples[i].mem_cap,
                                   sweep.samples[i].mem_cap});
    }
  }
  return spans;
}

}  // namespace

std::vector<CategorySpan> category_spans_cpu(const sim::BudgetSweep& sweep,
                                             const hw::CpuMachine& machine) {
  return build_spans(sweep, [&](std::size_t i) {
    return categorize_cpu(sweep.samples[i], machine);
  });
}

std::vector<CategorySpan> category_spans_gpu(const sim::BudgetSweep& sweep) {
  return build_spans(sweep,
                     [&](std::size_t i) { return categorize_gpu(sweep, i); });
}

std::vector<Category> categories_present(
    const std::vector<CategorySpan>& spans) {
  std::vector<Category> cats;
  for (const auto& sp : spans) {
    if (std::find(cats.begin(), cats.end(), sp.category) == cats.end()) {
      cats.push_back(sp.category);
    }
  }
  return cats;
}

std::string format_spans(const std::vector<CategorySpan>& spans) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i) ss << ' ';
    ss << to_string(spans[i].category) << '[' << spans[i].mem_lo.value() << ','
       << spans[i].mem_hi.value() << ']';
  }
  return ss.str();
}

}  // namespace pbc::core
