#include "core/hybrid.hpp"

#include <algorithm>

namespace pbc::core {

namespace {

struct Solo {
  double host = 0.0;
  double gpu = 0.0;
};

Solo solo_performance(const HybridNode& node) {
  Solo s;
  const sim::CpuNodeSim host(node.host, node.host_wl);
  s.host = host.uncapped().perf;
  const sim::GpuNodeSim gpu(node.gpu, node.gpu_wl);
  s.gpu = gpu.steady_state(sim::GpuNodeSim(node.gpu, node.gpu_wl)
                               .gpu_model()
                               .mem_clock_count() -
                               1,
                           node.gpu.gpu.board_max_cap)
              .perf;
  // The default policy at max cap is not always the GPU's best; take the
  // best over clocks.
  for (std::size_t clk = 0; clk + 1 < gpu.gpu_model().mem_clock_count();
       ++clk) {
    s.gpu = std::max(
        s.gpu, gpu.steady_state(clk, node.gpu.gpu.board_max_cap).perf);
  }
  return s;
}

HybridAllocation realize(const HybridNode& node, Watts host_share,
                         Watts gpu_share, const CpuCriticalPowers& host_prof,
                         const GpuProfileParams& gpu_prof, const Solo& solo) {
  HybridAllocation a;
  const sim::CpuNodeSim host(node.host, node.host_wl);
  const sim::GpuNodeSim gpu(node.gpu, node.gpu_wl);

  a.host = coord_cpu(host_prof, host_share);
  const GpuAllocation g =
      coord_gpu(gpu_prof, gpu.gpu_model(), gpu_share);
  a.gpu_cap = gpu_share;
  a.gpu_mem_clock_index = g.mem_clock_index;

  a.host_perf =
      host.steady_state(a.host.cpu, a.host.mem).perf;
  a.gpu_perf = gpu.steady_state(g.mem_clock_index, gpu_share).perf;
  a.utility = (solo.host > 0.0 ? a.host_perf / solo.host : 0.0) +
              (solo.gpu > 0.0 ? a.gpu_perf / solo.gpu : 0.0);
  return a;
}

}  // namespace

HybridAllocation coord_hybrid(const HybridNode& node, Watts node_budget) {
  const sim::CpuNodeSim host(node.host, node.host_wl);
  const sim::GpuNodeSim gpu(node.gpu, node.gpu_wl);
  const CpuCriticalPowers host_prof = profile_critical_powers(host);
  const GpuProfileParams gpu_prof = profile_gpu_params(gpu);
  const Solo solo = solo_performance(node);

  // Component demand ranges: [productive minimum, full demand].
  const double host_min = host_prof.productive_threshold().value();
  const double host_max = host_prof.max_demand().value();
  const double gpu_min = node.gpu.gpu.board_min_cap.value();
  const double gpu_max = std::min(gpu_prof.tot_max.value(),
                                  node.gpu.gpu.board_max_cap.value());
  const double pb = node_budget.value();

  double host_share;
  double gpu_share;
  CoordStatus status = CoordStatus::kSuccess;
  double surplus = 0.0;
  if (pb >= host_max + gpu_max) {
    host_share = host_max;
    gpu_share = gpu_max;
    status = CoordStatus::kPowerSurplus;
    surplus = pb - host_max - gpu_max;
  } else if (pb >= host_min + gpu_min) {
    // Proportional shares of the headroom above the productive minima,
    // weighted by each side's demand range (Algorithm 1's regime C logic,
    // lifted one level up).
    const double range_host = host_max - host_min;
    const double range_gpu = gpu_max - gpu_min;
    const double pct_host =
        range_host + range_gpu > 0.0
            ? range_host / (range_host + range_gpu)
            : 0.5;
    const double headroom = pb - host_min - gpu_min;
    host_share = std::min(host_min + pct_host * headroom, host_max);
    gpu_share = std::min(pb - host_share, gpu_max);
    host_share = pb - gpu_share;  // return any GPU clamp-back to the host
    host_share = std::min(host_share, host_max);
  } else {
    // Not enough for both to run productively.
    status = CoordStatus::kBudgetTooSmall;
    host_share = std::max(pb - gpu_min, 0.0);
    gpu_share = pb - host_share;
  }

  HybridAllocation a =
      realize(node, Watts{host_share}, Watts{gpu_share}, host_prof,
              gpu_prof, solo);
  a.status = status;
  a.surplus = Watts{surplus};
  return a;
}

HybridAllocation hybrid_oracle(const HybridNode& node, Watts node_budget,
                               Watts step) {
  const sim::CpuNodeSim host(node.host, node.host_wl);
  const sim::GpuNodeSim gpu(node.gpu, node.gpu_wl);
  const Solo solo = solo_performance(node);
  const double pb = node_budget.value();
  const double gpu_lo = node.gpu.gpu.board_min_cap.value();
  const double gpu_hi = std::min(node.gpu.gpu.board_max_cap.value(),
                                 pb - node.host.floor_power().value());

  HybridAllocation best;
  best.utility = -1.0;
  for (double g = gpu_lo; g <= gpu_hi + 1e-9; g += step.value()) {
    const double host_budget = pb - g;
    for (std::size_t clk = 0; clk < gpu.gpu_model().mem_clock_count();
         ++clk) {
      const double gpu_perf = gpu.steady_state(clk, Watts{g}).perf;
      // Host split grid.
      for (double m = node.host.dram.floor.value();
           m <= host_budget - node.host.cpu.floor.value() + 1e-9;
           m += step.value()) {
        const double host_perf =
            host.steady_state(Watts{host_budget - m}, Watts{m}).perf;
        const double utility =
            (solo.host > 0.0 ? host_perf / solo.host : 0.0) +
            (solo.gpu > 0.0 ? gpu_perf / solo.gpu : 0.0);
        if (utility > best.utility) {
          best.utility = utility;
          best.host.cpu = Watts{host_budget - m};
          best.host.mem = Watts{m};
          best.gpu_cap = Watts{g};
          best.gpu_mem_clock_index = clk;
          best.host_perf = host_perf;
          best.gpu_perf = gpu_perf;
        }
      }
    }
  }
  return best;
}

}  // namespace pbc::core
