#include "core/optimal.hpp"

#include <algorithm>

namespace pbc::core {

OptimalAllocationRow optimal_allocation_row(const sim::CpuNodeSim& node,
                                            Watts budget, Watts shift,
                                            const sim::CpuSweepOptions& opt) {
  OptimalAllocationRow row;
  row.budget = budget;

  sim::BudgetSweep sweep;
  sweep.budget = budget;
  sweep.samples = sim::sweep_cpu_split(node, budget, opt);
  if (sweep.samples.empty()) return row;

  const auto spans = category_spans_cpu(sweep, node.machine());
  row.valid_scenarios = categories_present(spans);

  // Locate the optimum. In scenario I the performance curve is flat across
  // a whole plateau; take the plateau's midpoint so the "intersection" and
  // the shift probes are measured from the interior, not an edge.
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < sweep.samples.size(); ++i) {
    if (sweep.samples[i].perf > sweep.samples[best_idx].perf) best_idx = i;
  }
  const double best_perf = sweep.samples[best_idx].perf;
  std::size_t plateau_lo = best_idx;
  std::size_t plateau_hi = best_idx;
  while (plateau_lo > 0 &&
         sweep.samples[plateau_lo - 1].perf >= 0.999 * best_perf) {
    --plateau_lo;
  }
  while (plateau_hi + 1 < sweep.samples.size() &&
         sweep.samples[plateau_hi + 1].perf >= 0.999 * best_perf) {
    ++plateau_hi;
  }
  best_idx = (plateau_lo + plateau_hi) / 2;
  const sim::AllocationSample& best = sweep.samples[best_idx];
  row.best_proc = best.proc_cap;
  row.best_mem = best.mem_cap;
  row.perf_max = best.perf;

  // Neighbouring categories at the optimum (lower mem side / higher mem
  // side): the intersection the optimum sits on.
  const std::size_t left = best_idx > 0 ? best_idx - 1 : best_idx;
  const std::size_t right =
      best_idx + 1 < sweep.samples.size() ? best_idx + 1 : best_idx;
  row.intersection = {categorize_cpu(sweep.samples[left], node.machine()),
                      categorize_cpu(sweep.samples[right], node.machine())};

  // Probe the critical component: move `shift` watts each way.
  const sim::AllocationSample mem_under = node.steady_state(
      Watts{best.proc_cap.value() + shift.value()},
      Watts{best.mem_cap.value() - shift.value()});
  const sim::AllocationSample proc_under = node.steady_state(
      Watts{best.proc_cap.value() - shift.value()},
      Watts{best.mem_cap.value() + shift.value()});
  if (row.perf_max > 0.0) {
    row.loss_mem_underpowered =
        std::max(0.0, 1.0 - mem_under.perf / row.perf_max);
    row.loss_proc_underpowered =
        std::max(0.0, 1.0 - proc_under.perf / row.perf_max);
  }
  // A meaningful asymmetry marks a critical component; in scenario I with
  // slack both losses are ~0 and there is none.
  const double lo =
      std::min(row.loss_mem_underpowered, row.loss_proc_underpowered);
  const double hi =
      std::max(row.loss_mem_underpowered, row.loss_proc_underpowered);
  if (hi > 0.02 && hi > lo + 0.01) {
    row.critical = row.loss_mem_underpowered > row.loss_proc_underpowered
                       ? hw::Component::kMemory
                       : hw::Component::kProcessor;
  }
  return row;
}

}  // namespace pbc::core
