// Workload-model fitting: recover the phase parameters of a *running*
// application from a handful of instrumented runs.
//
// COORD needs only the seven critical power values, but richer power
// management (the model-based allocation of Tiwari et al. [34], or the
// compute-intensity classification Algorithm 2 branches on) needs the
// application's characteristics. On real machines these are measurable
// with standard counters: achieved DRAM bandwidth (uncore counters),
// package/DRAM power (RAPL energy), effective frequency (APERF/MPERF).
// fit_single_phase probes the node the same way — pinned runs only — and
// inverts the power/performance model:
//
//   bytes/unit        = achieved_bw / rate                (unconstrained)
//   energy/byte scale = (P_dram − background) / (e_dyn · achieved_bw)
//   MLP ceiling       = achieved_bw / peak_bw at full grant
//   clock exponent λ  = log-ratio of achieved bw at two P-states
//   activity          = inverted from package power at the top P-state
//   flops/unit ÷ eff  = capacity / rate when compute-bound
#pragma once

#include "sim/cpu_node.hpp"
#include "workload/workload.hpp"

namespace pbc::core {

struct FittedPhase {
  /// Memory traffic per work unit (cacheline bytes).
  double bytes_per_unit = 0.0;
  /// DRAM energy-per-byte multiplier (≥ 1 for row-buffer-hostile codes).
  double mem_energy_scale = 1.0;
  /// Achieved fraction of peak bandwidth with everything unconstrained.
  double max_bw_frac = 0.0;
  /// Clock-sensitivity exponent of the bandwidth ceiling. Only
  /// identifiable when the ceiling binds at both probe clocks; otherwise
  /// reported as measured but flagged via compute_bound.
  double freq_scaling = 0.0;
  /// Effective switching activity at the top P-state (power inversion).
  double activity_eff = 0.0;
  /// FLOPs per unit divided by compute efficiency — the two are not
  /// separately identifiable from black-box rates.
  double effective_flops_per_unit = 0.0;
  /// Compute utilization of the unconstrained run — the stalled fraction
  /// is what separates memory-bound codes (low) from balanced ones.
  double compute_util = 0.0;
  /// True when the unconstrained run saturates compute (compute_util ≈ 1):
  /// then effective_flops_per_unit is exact and freq_scaling is not
  /// meaningful.
  bool compute_bound = false;
};

/// Fits from four pinned probe runs. Exact for single-phase workloads;
/// multi-phase workloads yield time-averaged effective parameters.
[[nodiscard]] FittedPhase fit_single_phase(const sim::CpuNodeSim& node);

/// Intensity classification from a fit (the label Algorithm 2 needs),
/// using the machine's balance point: compute-bound fits are compute
/// intensive; fits whose bandwidth demand dominates are memory intensive.
[[nodiscard]] workload::Intensity classify_intensity(
    const FittedPhase& fit, const hw::CpuMachine& machine);

}  // namespace pbc::core
