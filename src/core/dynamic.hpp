// Online dynamic cross-component power shifting — the paper's §5 "future
// work": adapt the CPU/DRAM split at runtime instead of fixing it before
// the job starts.
//
// The shifter starts from COORD's static split and, on every phase
// segment of a trace, hill-climbs the split one step at a time while
// keeping the total at the node budget (cf. Hanson et al.'s
// processor-memory power shifting, ref. [20]). For phase-heterogeneous
// workloads (FT's fft/transpose, BT's solve/exchange) no single static
// split is right for every phase, so per-phase adaptation wins at tight
// budgets.
//
// Two engines produce bit-identical ShiftingResults (docs/dynamic.md):
//  * ReplayPath::kFast (default) runs over a shared PhaseNodeSet and
//    memoizes the climb — one split-memo per (phase, exact cpu_cap) and
//    one climb-memo per (phase, entry cpu_cap), so segments that re-enter
//    a phase at a split seen before replay the whole climb from cache;
//  * ReplayPath::kReference retains the original implementation (fresh
//    phase nodes, a full steady-state solve per candidate per segment).
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim/cpu_node.hpp"
#include "sim/phase_nodes.hpp"
#include "sim/trace_replay.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "workload/trace.hpp"

namespace pbc::core {

struct ShiftingConfig {
  /// Watts moved per control step.
  Watts step{4.0};
  /// Control steps allowed per segment (the climber settles quickly).
  int max_steps_per_segment = 8;
  /// Per-component lower bounds. Unset (the default) derives them from
  /// the node machine's hardware floors (cpu.floor / dram.floor), falling
  /// back to the paper's 48 W / 68 W Sandy Bridge-class values when the
  /// machine provides no positive floor. Set explicitly to override.
  std::optional<Watts> cpu_min;
  std::optional<Watts> mem_min;
  /// Engine selection; both paths are bit-identical.
  sim::ReplayPath path = sim::ReplayPath::kFast;
};

/// The (cpu_min, mem_min) floors a config resolves to on a machine:
/// explicit overrides win, then positive machine floors, then 48 W / 68 W.
[[nodiscard]] std::pair<Watts, Watts> shifting_floors(
    const ShiftingConfig& cfg, const hw::CpuMachine& machine) noexcept;

/// Caps chosen for one segment.
struct SegmentCaps {
  std::size_t phase_index = 0;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
};

struct ShiftingResult {
  /// Trace replay under the dynamic caps. The aggregate's proc_cap /
  /// mem_cap report the *time-weighted mean* caps over the trace (the
  /// split varies per segment; `caps` below is the source of truth).
  sim::TraceReplayResult replay;
  /// The split the shifter converged to in each segment.
  std::vector<SegmentCaps> caps;
  /// Number of watts-moves performed over the whole trace.
  std::size_t shifts = 0;
};

/// Replays `trace` with dynamic shifting under `total_budget`, starting
/// from COORD's static split.
[[nodiscard]] ShiftingResult replay_with_shifting(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg = {});

/// Shifting over a prepared phase-node set; callers shifting the same
/// (machine, workload) more than once should build the set (or query
/// through svc::QueryEngine) and use this overload.
[[nodiscard]] ShiftingResult replay_with_shifting(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg = {});

/// Checked variants: validate the trace, the step size, and that the
/// budget clears cpu_min + mem_min, returning a descriptive Error instead
/// of silently skipping segments or clamping into an empty range.
[[nodiscard]] Result<ShiftingResult> replay_with_shifting_checked(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg = {});

[[nodiscard]] Result<ShiftingResult> replay_with_shifting_checked(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg = {});

/// Batched shifting over a (trace × budget) grid: the critical-power
/// profile is computed once and the grid fans out across `pool`
/// (global_pool() when null; serial when nested on a pool worker).
/// out[t * budgets.size() + b] is bit-identical to
/// replay_with_shifting(nodes, traces[t], budgets[b], cfg) for every cell.
[[nodiscard]] std::vector<ShiftingResult> shifting_batch(
    const sim::PhaseNodeSet& nodes,
    std::span<const workload::PhaseTrace> traces,
    std::span<const Watts> budgets, const ShiftingConfig& cfg = {},
    ThreadPool* pool = nullptr);

}  // namespace pbc::core
