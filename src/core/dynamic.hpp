// Online dynamic cross-component power shifting — the paper's §5 "future
// work": adapt the CPU/DRAM split at runtime instead of fixing it before
// the job starts.
//
// The shifter starts from COORD's static split and, on every phase
// segment of a trace, hill-climbs the split one step at a time while
// keeping the total at the node budget (cf. Hanson et al.'s
// processor-memory power shifting, ref. [20]). For phase-heterogeneous
// workloads (FT's fft/transpose, BT's solve/exchange) no single static
// split is right for every phase, so per-phase adaptation wins at tight
// budgets.
#pragma once

#include "sim/cpu_node.hpp"
#include "sim/trace_replay.hpp"
#include "workload/trace.hpp"

namespace pbc::core {

struct ShiftingConfig {
  /// Watts moved per control step.
  Watts step{4.0};
  /// Control steps allowed per segment (the climber settles quickly).
  int max_steps_per_segment = 8;
  /// Per-component lower bounds (hardware floors by default).
  Watts cpu_min{48.0};
  Watts mem_min{68.0};
};

/// Caps chosen for one segment.
struct SegmentCaps {
  std::size_t phase_index = 0;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
};

struct ShiftingResult {
  /// Trace replay under the dynamic caps.
  sim::TraceReplayResult replay;
  /// The split the shifter converged to in each segment.
  std::vector<SegmentCaps> caps;
  /// Number of watts-moves performed over the whole trace.
  std::size_t shifts = 0;
};

/// Replays `trace` with dynamic shifting under `total_budget`, starting
/// from an even split.
[[nodiscard]] ShiftingResult replay_with_shifting(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg = {});

}  // namespace pbc::core
