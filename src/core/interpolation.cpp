#include "core/interpolation.hpp"

#include <algorithm>

namespace pbc::core {

InterpolationResult interpolated_best(const sim::CpuNodeSim& node,
                                      Watts budget, Watts stride,
                                      Watts mem_lo, Watts proc_lo) {
  InterpolationResult out;

  std::vector<std::pair<double, double>> knots;
  const double hi = budget.value() - proc_lo.value();
  for (double m = mem_lo.value(); m <= hi + 1e-9; m += stride.value()) {
    const auto s = node.steady_state(Watts{budget.value() - m}, Watts{m});
    knots.emplace_back(m, s.perf);
    ++out.samples_used;
  }
  if (knots.empty()) return out;

  auto curve = PiecewiseLinear::from_points(std::move(knots));
  if (!curve.ok()) return out;
  const PiecewiseLinear& f = curve.value();

  // Search the interpolant on a fine grid.
  double best_m = f.x_min();
  double best_perf = f(best_m);
  for (double m = f.x_min(); m <= f.x_max() + 1e-9; m += 1.0) {
    const double p = f(m);
    if (p > best_perf) {
      best_perf = p;
      best_m = m;
    }
  }

  out.best_mem_cap = Watts{best_m};
  out.best_proc_cap = Watts{budget.value() - best_m};
  out.predicted_perf = best_perf;
  out.achieved_perf =
      node.steady_state(out.best_proc_cap, out.best_mem_cap).perf;
  ++out.samples_used;  // the confirmation run
  return out;
}

}  // namespace pbc::core
