#include "core/interpolation.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "sim/solve_arena.hpp"

namespace pbc::core {

namespace {

// The one knot-grid loop. The scalar and batched entry points both run
// this exact FP recurrence (m += stride from the same start), so every
// caller visits bit-identical knot positions — same discipline as
// sweep.cpp's for_each_split.
template <class Emit>
void for_each_knot(Watts budget, Watts stride, Watts mem_lo, Watts proc_lo,
                   Emit&& emit) {
  const double hi = budget.value() - proc_lo.value();
  for (double m = mem_lo.value(); m <= hi + 1e-9; m += stride.value()) {
    emit(m);
  }
}

// Fits the sampled knots and searches the interpolant on the 1 W grid.
// Fills everything except achieved_perf; *fitted reports whether a
// confirmation run is owed (false for an empty grid or a failed fit,
// where the scalar path also stops early).
InterpolationResult fit_knots(Watts budget,
                              std::vector<std::pair<double, double>> knots,
                              bool* fitted) {
  InterpolationResult out;
  out.samples_used = knots.size();
  *fitted = false;
  if (knots.empty()) return out;

  auto curve = PiecewiseLinear::from_points(std::move(knots));
  if (!curve.ok()) return out;
  const PiecewiseLinear& f = curve.value();

  // Search the interpolant on a fine grid.
  double best_m = f.x_min();
  double best_perf = f(best_m);
  for (double m = f.x_min(); m <= f.x_max() + 1e-9; m += 1.0) {
    const double p = f(m);
    if (p > best_perf) {
      best_perf = p;
      best_m = m;
    }
  }

  out.best_mem_cap = Watts{best_m};
  out.best_proc_cap = Watts{budget.value() - best_m};
  out.predicted_perf = best_perf;
  *fitted = true;
  return out;
}

}  // namespace

std::vector<InterpolationResult> interpolated_best_batch(
    const sim::CpuNodeSim& node, std::span<const Watts> budgets,
    Watts stride, Watts mem_lo, Watts proc_lo) {
  std::vector<InterpolationResult> out(budgets.size());
  if (budgets.empty()) return out;

  // Every budget's knot grid, concatenated, and all profiling runs
  // resolved in one batched solve — each sample bit-identical to the
  // steady_state call the scalar loop makes at that knot.
  sim::SolveArena& arena = sim::thread_solve_arena();
  const auto scope = arena.scope();
  const auto bounds = arena.get<std::int32_t>(budgets.size() + 1);
  std::size_t total = 0;
  bounds[0] = 0;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    for_each_knot(budgets[b], stride, mem_lo, proc_lo,
                  [&](double) { ++total; });
    bounds[b + 1] = static_cast<std::int32_t>(total);
  }
  const auto caps = arena.get<sim::CapPair>(total);
  std::size_t k = 0;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    for_each_knot(budgets[b], stride, mem_lo, proc_lo, [&](double m) {
      caps[k++] = sim::CapPair{Watts{budgets[b].value() - m}, Watts{m}};
    });
  }
  const auto samples = arena.get<sim::AllocationSample>(total);
  node.steady_state_batch(caps, samples, arena);

  // Fit each budget's model and queue its confirmation run.
  const auto confirm = arena.get<sim::CapPair>(budgets.size());
  const auto confirm_idx = arena.get<std::int32_t>(budgets.size());
  std::size_t nconf = 0;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    std::vector<std::pair<double, double>> knots;
    knots.reserve(static_cast<std::size_t>(bounds[b + 1] - bounds[b]));
    std::size_t j = static_cast<std::size_t>(bounds[b]);
    for_each_knot(budgets[b], stride, mem_lo, proc_lo, [&](double m) {
      knots.emplace_back(m, samples[j++].perf);
    });
    bool fitted = false;
    out[b] = fit_knots(budgets[b], std::move(knots), &fitted);
    if (fitted) {
      confirm[nconf] =
          sim::CapPair{out[b].best_proc_cap, out[b].best_mem_cap};
      confirm_idx[nconf] = static_cast<std::int32_t>(b);
      ++nconf;
    }
  }

  // One batched pass over the model optima — the confirmation runs.
  const auto achieved = arena.get<sim::AllocationSample>(nconf);
  node.steady_state_batch(confirm.first(nconf), achieved, arena);
  for (std::size_t i = 0; i < nconf; ++i) {
    const auto b = static_cast<std::size_t>(confirm_idx[i]);
    out[b].achieved_perf = achieved[i].perf;
    ++out[b].samples_used;
  }
  return out;
}

InterpolationResult interpolated_best(const sim::CpuNodeSim& node,
                                      Watts budget, Watts stride,
                                      Watts mem_lo, Watts proc_lo) {
  // The batched driver with a single budget — identical knot grid, fit,
  // and confirmation, so results match the historical scalar loop bit
  // for bit.
  return interpolated_best_batch(node, std::span<const Watts>{&budget, 1},
                                 stride, mem_lo, proc_lo)[0];
}

}  // namespace pbc::core
