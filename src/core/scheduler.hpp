// Node-level power management and cluster-level power-bounded scheduling.
//
// The paper positions node-level coordination as the building block of
// higher-level power scheduling (§2, §8): a node manager profiles the
// application, runs COORD for its budget, rejects unproductive budgets, and
// reports surplus; a cluster scheduler distributes a global power budget
// across nodes/jobs with admission control and surplus reclamation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/coord.hpp"
#include "sim/cpu_node.hpp"
#include "util/thread_pool.hpp"

namespace pbc::core {

/// Per-node agent: profile once, then plan allocations for any budget.
class NodePowerManager {
 public:
  NodePowerManager(hw::CpuMachine machine, workload::Workload wl);

  /// Wraps an already-prepared simulator node. Managers for identical
  /// (machine, workload) pairs can share one handle — the operating-point
  /// table is built once instead of per manager; plans are bit-identical
  /// to the constructing overload's.
  explicit NodePowerManager(sim::PreparedCpuNode node);

  [[nodiscard]] const CpuCriticalPowers& profile() const noexcept {
    return profile_;
  }

  struct Plan {
    bool accepted = false;        ///< false when the budget is unproductive
    CpuAllocation allocation;     ///< COORD's split (valid when accepted)
    sim::AllocationSample predicted;  ///< simulated steady state at the split
  };

  /// COORD + steady-state prediction for a budget. Budgets below the
  /// productive threshold are rejected (paper: small budgets should not be
  /// allocated to run new jobs).
  [[nodiscard]] Plan plan(Watts budget) const;

  /// Smallest budget the manager accepts.
  [[nodiscard]] Watts min_productive() const noexcept {
    return profile_.productive_threshold();
  }
  /// Budget beyond which power is surplus.
  [[nodiscard]] Watts max_demand() const noexcept {
    return profile_.max_demand();
  }

  [[nodiscard]] const sim::CpuNodeSim& node() const noexcept { return *node_; }

 private:
  sim::PreparedCpuNode node_;
  CpuCriticalPowers profile_;
};

/// One job awaiting placement.
struct JobRequest {
  std::string name;
  workload::Workload wl;
};

/// A scheduled job with its budget and coordinated split.
struct Placement {
  std::string job;
  std::size_t node_index = 0;
  Watts budget{0.0};
  CpuAllocation allocation;
  double predicted_perf = 0.0;
};

struct ScheduleResult {
  std::vector<Placement> placements;
  /// Jobs denied a slot (no node left, or any productive budget would not
  /// fit the remaining global power).
  std::vector<std::string> rejected;
  Watts allocated{0.0};  ///< total power granted to placements
  Watts reclaimed{0.0};  ///< global budget left over (returned upward)
};

/// Distributes a global power budget across identical nodes running one job
/// each: fair-share water-filling clipped to each job's
/// [productive-threshold, max-demand] range, with leftover power
/// redistributed to jobs that can still use it and the rest reclaimed.
class ClusterScheduler {
 public:
  ClusterScheduler(hw::CpuMachine node_type, std::size_t node_count);

  /// Plans the distribution. One prepared simulator node is built per
  /// distinct workload in `jobs` and shared by every manager running that
  /// workload; with a pool, those builds (profiling included) fan out in
  /// parallel. The result is identical for any pool size, including none.
  [[nodiscard]] ScheduleResult schedule(std::span<const JobRequest> jobs,
                                        Watts global_budget,
                                        ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

 private:
  hw::CpuMachine node_type_;
  std::size_t node_count_;
};

}  // namespace pbc::core
